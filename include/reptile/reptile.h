// Umbrella header of the public Reptile API.
//
//   #include <reptile/reptile.h>
//
// pulls in the whole facade: reptile::Session (the interactive exploration
// loop), the shared-dataset layer (DatasetRegistry / PreparedDataset /
// DatasetHandle — build a dataset once, open many lightweight sessions over
// it), the Status/Result error model, the name-based request builders, and
// the serializable response types. Clients should depend on this header (or
// the individual src/api/ headers) only — everything under core/, factor/,
// fmatrix/ and model/ is internal and free to change.

#ifndef REPTILE_REPTILE_H_
#define REPTILE_REPTILE_H_

#include "api/model_spec.h"
#include "api/registry.h"
#include "api/request.h"
#include "api/response.h"
#include "api/session.h"
#include "api/status.h"

#endif  // REPTILE_REPTILE_H_
