// Shared helpers for the example binaries.

#ifndef REPTILE_EXAMPLES_EXAMPLE_UTIL_H_
#define REPTILE_EXAMPLES_EXAMPLE_UTIL_H_

#include <cstdio>
#include <cstdlib>

#include "api/status.h"

namespace reptile {

// Exit immediately when an API call failed; every failure path in the
// examples is a bug in the example, not in user input.
inline void ExitOnError(const Status& status) {
  if (status.ok()) return;
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

}  // namespace reptile

#endif  // REPTILE_EXAMPLES_EXAMPLE_UTIL_H_
