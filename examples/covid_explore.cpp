// COVID-19 exploration (paper Section 5.3): a simulated JHU-style daily
// panel with an injected data error (Texas's reports mostly missing on one
// day). The analyst complains that the national total for that day is too
// low; Reptile recommends the state to investigate, the session commits the
// drill-down, and a second complaint narrows to the counties.
//
// Demonstrates: iterative drill-down sessions, multi-attribute (location,
// day) lag features as auxiliary datasets, and SUM complaints.

#include <cstdio>

#include "core/engine.h"
#include "datagen/covid_gen.h"

using namespace reptile;

int main() {
  // Build the corrupted panel for the Texas missing-reports issue.
  CovidPanelConfig config;
  CovidIssueSpec issue = UsIssueList()[0];
  std::printf("Injected issue: %s (day %d)\n\n", issue.name.c_str(), issue.day);
  Dataset panel = MakeCorruptedPanel(config, issue);
  const Table& table = panel.table();
  int day_col = table.ColumnIndex("day");
  int measure = table.ColumnIndex(issue.measure);

  // 1-day and 7-day lag features, built from the observed data.
  Table lag1 = MakeCovidLagTable(panel, issue.measure, 1);
  Table lag7 = MakeCovidLagTable(panel, issue.measure, 7);

  EngineOptions options;
  options.random_effects = RandomEffects::kAllFeatures;
  Engine engine(&panel, options);
  engine.ExcludeFromRandomEffects("state");
  for (const auto& [name, lag] : {std::make_pair("lag1", &lag1),
                                  std::make_pair("lag7", &lag7)}) {
    AuxiliarySpec spec;
    spec.name = name;
    spec.table = lag;
    spec.join_attrs = {"state", "day"};
    spec.measure = lag->column_name(2);
    engine.RegisterAuxiliary(std::move(spec));
  }
  engine.CommitDrillDown(1);  // the analyst is already looking at daily totals

  // --- Complaint 1: the US total on the issue day is too low. ---
  char day_name[16];
  std::snprintf(day_name, sizeof(day_name), "d%03d", issue.day);
  RowFilter filter;
  filter.Add(day_col, *table.dict(day_col).Find(day_name));
  Complaint complaint;
  complaint.agg = AggFn::kSum;
  complaint.measure_column = measure;
  complaint.filter = filter;
  complaint.direction = issue.direction;
  std::printf("Complaint 1: national %s on %s — %s\n", issue.measure.c_str(), day_name,
              complaint.Describe().c_str());

  Recommendation rec = engine.RecommendDrillDown(complaint);
  const HierarchyRecommendation& best = rec.best();
  std::printf("Reptile recommends drilling down to: %s\n", best.attribute.c_str());
  for (const GroupRecommendation& g : best.top_groups) {
    std::printf("  %-36s observed sum %9.1f, predicted mean %8.2f, score %12.2f\n",
                g.description.c_str(), g.observed.sum, g.predicted.at(AggFn::kMean), g.score);
  }

  // --- Commit and drill into the flagged state's counties. ---
  engine.CommitDrillDown(0);
  int state_col = table.ColumnIndex("state");
  RowFilter filter2 = filter;
  filter2.Add(state_col, *table.dict(state_col).Find(issue.location));
  Complaint complaint2 = complaint;
  complaint2.filter = filter2;
  std::printf("\nComplaint 2: %s's %s on %s is too low — drilling further\n",
              issue.location.c_str(), issue.measure.c_str(), day_name);
  Recommendation rec2 = engine.RecommendDrillDown(complaint2);
  const HierarchyRecommendation& best2 = rec2.best();
  std::printf("Reptile recommends drilling down to: %s\n", best2.attribute.c_str());
  for (const GroupRecommendation& g : best2.top_groups) {
    std::printf("  %-56s observed sum %8.1f, score %12.2f\n", g.description.c_str(),
                g.observed.sum, g.score);
  }
  std::printf("\nEvery county under-reports on the missing day, so all of %s's counties\n"
              "surface with similar repair scores — the signature of a state-wide feed\n"
              "outage rather than a single bad county.\n",
              issue.location.c_str());
  return 0;
}
