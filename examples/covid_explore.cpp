// COVID-19 exploration (paper Section 5.3) on the public Session facade: a
// simulated JHU-style daily panel with an injected data error (Texas's
// reports mostly missing on one day). The analyst complains that the
// national total for that day is too low; Reptile recommends the state to
// investigate, the session commits the drill-down, and a second complaint
// narrows to the counties.
//
// Demonstrates: iterative drill-down sessions, multi-attribute (location,
// day) lag features as auxiliary datasets, and SUM complaints — all through
// name-based requests and Status-based error handling.

#include <cstdio>
#include <cstdlib>

#include "datagen/covid_gen.h"
#include "example_util.h"
#include "reptile/reptile.h"

using namespace reptile;

int main() {
  // Build the corrupted panel for the Texas missing-reports issue.
  CovidPanelConfig config;
  CovidIssueSpec issue = UsIssueList()[0];
  std::printf("Injected issue: %s (day %d)\n\n", issue.name.c_str(), issue.day);
  Dataset panel = MakeCorruptedPanel(config, issue);

  // 1-day and 7-day lag features, built from the observed data.
  Table lag1 = MakeCovidLagTable(panel, issue.measure, 1);
  Table lag7 = MakeCovidLagTable(panel, issue.measure, 7);

  Result<Session> session = Session::Create(
      std::move(panel), ExploreRequest().RandomEffects("all"));
  ExitOnError(session.status());
  ExitOnError(session->ExcludeFromRandomEffects("state"));
  for (auto& [name, lag] : {std::make_pair("lag1", &lag1), std::make_pair("lag7", &lag7)}) {
    AuxiliaryRequest aux;
    aux.name = name;
    aux.table = std::move(*lag);
    aux.join_attributes = {"state", "day"};
    aux.measure = aux.table.column_name(2);
    ExitOnError(session->RegisterAuxiliary(std::move(aux)));
  }
  ExitOnError(session->Commit("time"));  // the analyst is already on daily totals

  // --- Complaint 1: the US total on the issue day is too low. ---
  char day_name[16];
  std::snprintf(day_name, sizeof(day_name), "d%03d", issue.day);
  ComplaintSpec complaint =
      issue.direction == ComplaintDirection::kTooLow
          ? ComplaintSpec::TooLow("sum", issue.measure).Where("day", day_name)
          : ComplaintSpec::TooHigh("sum", issue.measure).Where("day", day_name);
  std::printf("Complaint 1: national %s on %s — %s\n", issue.measure.c_str(), day_name,
              complaint.Describe().c_str());

  Result<ExploreResponse> response = session->Recommend(complaint);
  ExitOnError(response.status());
  const HierarchyResponse* best = response->best();
  if (best == nullptr) {
    std::printf("No drill-down recommendation available.\n");
    return 1;
  }
  std::printf("Reptile recommends drilling down to: %s\n", best->attribute.c_str());
  for (const GroupResponse& g : best->groups) {
    std::printf("  %-36s observed sum %9.1f, predicted mean %8.2f, score %12.2f\n",
                g.description.c_str(), g.observed.at("sum"), g.predicted.at("mean"), g.score);
  }

  // --- Commit and drill into the flagged state's counties. ---
  ExitOnError(session->Commit(best->hierarchy));
  ComplaintSpec complaint2 = complaint;
  complaint2.Where("state", issue.location);
  std::printf("\nComplaint 2: %s's %s on %s is too low — drilling further\n",
              issue.location.c_str(), issue.measure.c_str(), day_name);
  Result<ExploreResponse> response2 = session->Recommend(complaint2);
  ExitOnError(response2.status());
  const HierarchyResponse* best2 = response2->best();
  if (best2 == nullptr) {
    std::printf("No further drill-down available.\n");
    return 1;
  }
  std::printf("Reptile recommends drilling down to: %s\n", best2->attribute.c_str());
  for (const GroupResponse& g : best2->groups) {
    std::printf("  %-56s observed sum %8.1f, score %12.2f\n", g.description.c_str(),
                g.observed.at("sum"), g.score);
  }
  std::printf("\nEvery county under-reports on the missing day, so all of %s's counties\n"
              "surface with similar repair scores — the signature of a state-wide feed\n"
              "outage rather than a single bad county.\n",
              issue.location.c_str());
  return 0;
}
