// FIST drought-survey exploration (paper Sections 2.1 and 5.4) on the public
// Session facade: simulated Ethiopian farmer-reported drought severity with
// injected reporting errors and a satellite rainfall auxiliary dataset.
// Replays two complaints from the expert study end to end: a village
// reporting a non-drought year as severe (MEAN too high) and a village with
// missing reports (COUNT too low).
//
// Demonstrates: three-level geography + time hierarchies, auxiliary joins
// on (village, year), and complaints over different statistics.

#include <cstdio>
#include <cstdlib>

#include "datagen/fist_gen.h"
#include "example_util.h"
#include "reptile/reptile.h"

using namespace reptile;

namespace {

// The study generator scripts its complaints as internal Complaint objects;
// a client of the facade speaks names, so translate through the table
// metadata (this is exactly the information a user would type).
ComplaintSpec SpecFromCase(const Table& table, const Complaint& complaint) {
  std::string aggregate = AggFnName(complaint.agg);
  std::string measure =
      complaint.measure_column >= 0 ? table.column_name(complaint.measure_column) : "";
  ComplaintSpec spec;
  switch (complaint.direction) {
    case ComplaintDirection::kTooHigh:
      spec = ComplaintSpec::TooHigh(aggregate, measure);
      break;
    case ComplaintDirection::kTooLow:
      spec = ComplaintSpec::TooLow(aggregate, measure);
      break;
    case ComplaintDirection::kEquals:
      spec = ComplaintSpec::Equals(aggregate, measure, complaint.target);
      break;
  }
  for (const auto& [column, code] : complaint.filter.equals) {
    spec.Where(table.column_name(column), table.dict(column).name(code));
  }
  return spec;
}

void Replay(const FistStudy& study, const FistComplaintCase& c) {
  ComplaintSpec spec = SpecFromCase(study.dataset.table(), c.complaint);
  std::printf("Complaint: %s — %s\n", c.name.c_str(), spec.Describe().c_str());

  // Each replay is its own session over a copy of the study dataset.
  Result<Session> session = Session::Create(study.dataset);
  ExitOnError(session.status());
  AuxiliaryRequest aux;
  aux.name = "rainfall";
  aux.table = study.rainfall;
  aux.join_attributes = {"village", "year"};
  aux.measure = "rainfall";
  ExitOnError(session->RegisterAuxiliary(std::move(aux)));
  ExitOnError(session->Commit("time"));  // years
  for (int depth = 0; depth < c.geo_commit_depth; ++depth) ExitOnError(session->Commit("geo"));

  Result<ExploreResponse> response = session->Recommend(spec);
  ExitOnError(response.status());
  const HierarchyResponse* best = response->best();
  if (best == nullptr) {
    std::printf("  no drill-down recommendation available\n\n");
    return;
  }
  std::printf("  drill down to: %s (model over %lld parallel groups, %lld clusters)\n",
              best->attribute.c_str(), static_cast<long long>(best->model_rows),
              static_cast<long long>(best->model_clusters));
  for (size_t i = 0; i < best->groups.size() && i < 3; ++i) {
    const GroupResponse& g = best->groups[i];
    std::printf("  #%zu %-58s mean %5.2f count %4.0f score %9.4f\n", i + 1,
                g.description.c_str(), g.observed.at("mean"), g.observed.at("count"), g.score);
  }
  std::printf("  expected culprit: %s — %s\n\n", c.expected_substr.c_str(),
              best->groups[0].description.find(c.expected_substr) != std::string::npos
                  ? "found"
                  : "NOT FOUND");
}

}  // namespace

int main() {
  std::printf("FIST drought survey exploration (simulated, 162 villages x 36 years)\n\n");
  FistStudy study = MakeFistStudy();
  // Case 1: a non-drought year reported as highly severe (MEAN too high).
  Replay(study, study.cases[0]);
  // Case 3: a village-year with most reports missing (COUNT too low).
  Replay(study, study.cases[2]);
  std::printf("The full 22-complaint study is reproduced by bench/table_fist_study.\n");
  return 0;
}
