// FIST drought-survey exploration (paper Sections 2.1 and 5.4): simulated
// Ethiopian farmer-reported drought severity with injected reporting errors
// and a satellite rainfall auxiliary dataset. Replays two complaints from
// the expert study end to end: a village reporting a non-drought year as
// severe (MEAN too high) and a village with missing reports (COUNT too
// low).
//
// Demonstrates: three-level geography + time hierarchies, auxiliary joins
// on (village, year), and complaints over different statistics.

#include <cstdio>

#include "core/engine.h"
#include "datagen/fist_gen.h"

using namespace reptile;

namespace {

void Replay(const FistStudy& study, const FistComplaintCase& c) {
  std::printf("Complaint: %s — %s\n", c.name.c_str(), c.complaint.Describe().c_str());
  Engine engine(&study.dataset);
  AuxiliarySpec spec;
  spec.name = "rainfall";
  spec.table = &study.rainfall;
  spec.join_attrs = {"village", "year"};
  spec.measure = "rainfall";
  engine.RegisterAuxiliary(std::move(spec));
  engine.CommitDrillDown(1);  // years
  for (int depth = 0; depth < c.geo_commit_depth; ++depth) engine.CommitDrillDown(0);

  Recommendation rec = engine.RecommendDrillDown(c.complaint);
  const HierarchyRecommendation& best = rec.best();
  std::printf("  drill down to: %s (model over %lld parallel groups, %lld clusters)\n",
              best.attribute.c_str(), static_cast<long long>(best.model_rows),
              static_cast<long long>(best.model_clusters));
  for (size_t i = 0; i < best.top_groups.size() && i < 3; ++i) {
    const GroupRecommendation& g = best.top_groups[i];
    std::printf("  #%zu %-58s mean %5.2f count %4.0f score %9.4f\n", i + 1,
                g.description.c_str(), g.observed.Mean(), g.observed.count, g.score);
  }
  std::printf("  expected culprit: %s — %s\n\n", c.expected_substr.c_str(),
              best.top_groups[0].description.find(c.expected_substr) != std::string::npos
                  ? "found"
                  : "NOT FOUND");
}

}  // namespace

int main() {
  std::printf("FIST drought survey exploration (simulated, 162 villages x 36 years)\n\n");
  FistStudy study = MakeFistStudy();
  // Case 1: a non-drought year reported as highly severe (MEAN too high).
  Replay(study, study.cases[0]);
  // Case 3: a village-year with most reports missing (COUNT too low).
  Replay(study, study.cases[2]);
  std::printf("The full 22-complaint study is reproduced by bench/table_fist_study.\n");
  return 0;
}
