// Quickstart: the paper's running example (Figure 1 / Examples 1-8).
//
// FIST researchers collect farmer-reported drought severity per village and
// year. The researcher looks at annual statistics for the Ofla district,
// finds the 1986 standard deviation suspiciously high, and complains.
// Two villages have abnormally low means: Darube's is explained by high
// rainfall in the auxiliary satellite data, while Zata's is a genuine
// reporting error — Reptile recommends drilling down to villages and ranks
// Zata first.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "common/rng.h"
#include "core/engine.h"
#include "core/view.h"

using namespace reptile;

namespace {

struct Example {
  Dataset dataset;
  Table rainfall;
};

// Severity is driven by rainfall: dry villages report high severity.
double SeverityFromRainfall(double rainfall, Rng* rng) {
  return std::clamp(11.0 - rainfall / 60.0 + rng->Normal(0.0, 0.6), 1.0, 10.0);
}

Example MakeExample() {
  Rng rng(1986);
  Table t;
  int district = t.AddDimensionColumn("district");
  int village = t.AddDimensionColumn("village");
  int year = t.AddDimensionColumn("year");
  int severity = t.AddMeasureColumn("severity");

  Table rain;
  int rain_village = rain.AddDimensionColumn("village");
  int rain_year = rain.AddDimensionColumn("year");
  int rain_mm = rain.AddMeasureColumn("rainfall");

  // Ofla's villages (Figure 1) plus two parallel districts that give the
  // model its training signal.
  struct Village {
    const char* district;
    const char* name;
  };
  const Village villages[] = {
      {"Ofla", "Adishim"},   {"Ofla", "Darube"},   {"Ofla", "Dinka"},
      {"Ofla", "Fala"},      {"Ofla", "Zata"},     {"Raya", "Kukufto"},
      {"Raya", "Genete"},    {"Raya", "Mehoni"},   {"Raya", "Chercher"},
      {"Endamehoni", "Maichew"}, {"Endamehoni", "Mesobo"}, {"Endamehoni", "Hintalo"},
  };
  for (int y = 1984; y <= 1988; ++y) {
    for (const Village& v : villages) {
      // 1986 was a drought year (low rainfall) everywhere — except Darube,
      // which genuinely had rain.
      double rainfall = y == 1986 ? rng.Uniform(140.0, 230.0) : rng.Uniform(320.0, 520.0);
      bool darube_1986 = std::string(v.name) == "Darube" && y == 1986;
      if (darube_1986) rainfall = 603.2;  // Figure 1c
      rain.SetDim(rain_village, v.name);
      rain.SetDim(rain_year, std::to_string(y));
      rain.SetMeasure(rain_mm, rainfall);
      rain.CommitRow();
      int reports = 10 + static_cast<int>(rng.UniformInt(0, 3));
      for (int i = 0; i < reports; ++i) {
        double s = SeverityFromRainfall(rainfall, &rng);
        // The data error: Zata's 1986 reports are far too low (the farmers'
        // reports were mis-keyed), despite the drought.
        if (std::string(v.name) == "Zata" && y == 1986) s = rng.Uniform(1.5, 2.8);
        t.SetDim(district, v.district);
        t.SetDim(village, v.name);
        t.SetDim(year, std::to_string(y));
        t.SetMeasure(severity, s);
        t.CommitRow();
      }
    }
  }
  Example ex;
  ex.dataset = Dataset(std::move(t), {{"geo", {"district", "village"}}, {"time", {"year"}}});
  ex.rainfall = std::move(rain);
  return ex;
}

}  // namespace

int main() {
  Example ex = MakeExample();
  const Table& t = ex.dataset.table();

  // --- The researcher's view: severity statistics per year in Ofla. ---
  ViewSpec spec;
  spec.key_columns = {t.ColumnIndex("year")};
  spec.measure_column = t.ColumnIndex("severity");
  spec.filter.Add(t.ColumnIndex("district"), *t.dict(t.ColumnIndex("district")).Find("Ofla"));
  ViewResult view = ComputeView(t, spec);
  std::printf("District: Ofla — annual severity statistics\n");
  std::printf("  %-6s %8s %8s %8s\n", "year", "mean", "count", "std");
  for (size_t g = 0; g < view.groups.num_groups(); ++g) {
    const Moments& m = view.groups.stats(g);
    std::printf("  %-6s %8.1f %8.0f %8.2f\n",
                t.dict(spec.key_columns[0]).name(view.groups.key(g, 0)).c_str(), m.Mean(),
                m.count, m.SampleStd());
  }

  // --- The complaint: 1986's standard deviation is too high. ---
  RowFilter filter = spec.filter;
  filter.Add(t.ColumnIndex("year"), *t.dict(t.ColumnIndex("year")).Find("1986"));
  Complaint complaint = Complaint::TooHigh(AggFn::kStd, t.ColumnIndex("severity"), filter);
  std::printf("\nComplaint: in Ofla 1986, %s\n", complaint.Describe().c_str());

  // --- Reptile session: register the satellite rainfall auxiliary data and
  // ask for a drill-down recommendation. ---
  Engine engine(&ex.dataset);
  AuxiliarySpec aux;
  aux.name = "rainfall";
  aux.table = &ex.rainfall;
  aux.join_attrs = {"village", "year"};
  aux.measure = "rainfall";
  engine.RegisterAuxiliary(std::move(aux));
  engine.CommitDrillDown(0);  // the view is already at district level
  engine.CommitDrillDown(1);  // ... and at year level

  Recommendation rec = engine.RecommendDrillDown(complaint);
  const HierarchyRecommendation& best = rec.best();
  std::printf("\nReptile recommends drilling down to: %s\n", best.attribute.c_str());
  std::printf("  %-52s %7s %8s %9s %9s\n", "group", "mean", "obs_std", "pred_std", "score");
  for (const GroupRecommendation& g : best.top_groups) {
    std::printf("  %-52s %7.2f %8.2f %9.2f %9.4f\n", g.description.c_str(), g.observed.Mean(),
                g.observed.SampleStd(), g.predicted.at(AggFn::kStd), g.score);
  }
  std::printf("\nTop group: %s\n", best.top_groups[0].description.c_str());
  std::printf("Zata's low 1986 severity is unexplained by rainfall, so repairing it best\n"
              "resolves the STD complaint; Darube's low severity is explained away by its\n"
              "high rainfall (603.2mm) in the auxiliary sensing data, as in Figure 1.\n");
  return 0;
}
