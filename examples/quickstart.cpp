// Quickstart: the paper's running example (Figure 1 / Examples 1-8), on the
// public reptile::Session facade.
//
// FIST researchers collect farmer-reported drought severity per village and
// year. The researcher looks at annual statistics for the Ofla district,
// finds the 1986 standard deviation suspiciously high, and complains.
// Two villages have abnormally low means: Darube's is explained by high
// rainfall in the auxiliary satellite data, while Zata's is a genuine
// reporting error — Reptile recommends drilling down to villages and ranks
// Zata first.
//
// Everything below goes through the api/ layer only: name-based requests,
// Status-based error handling, serializable responses.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "example_util.h"
#include "reptile/reptile.h"

using namespace reptile;

namespace {

struct Example {
  Table reports;
  Table rainfall;
};

// Severity is driven by rainfall: dry villages report high severity.
// (A tiny deterministic LCG keeps this example dependency-free.)
struct TinyRng {
  uint64_t state;
  double Uniform(double lo, double hi) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    double unit = static_cast<double>(state >> 11) / 9007199254740992.0;
    return lo + unit * (hi - lo);
  }
  double Noise() { return Uniform(-1.2, 1.2); }
};

Example MakeExample() {
  TinyRng rng{1986};
  Example ex;
  int district = ex.reports.AddDimensionColumn("district");
  int village = ex.reports.AddDimensionColumn("village");
  int year = ex.reports.AddDimensionColumn("year");
  int severity = ex.reports.AddMeasureColumn("severity");

  int rain_village = ex.rainfall.AddDimensionColumn("village");
  int rain_year = ex.rainfall.AddDimensionColumn("year");
  int rain_mm = ex.rainfall.AddMeasureColumn("rainfall");

  // Ofla's villages (Figure 1) plus two parallel districts that give the
  // model its training signal.
  struct Village {
    const char* district;
    const char* name;
  };
  const Village villages[] = {
      {"Ofla", "Adishim"},   {"Ofla", "Darube"},   {"Ofla", "Dinka"},
      {"Ofla", "Fala"},      {"Ofla", "Zata"},     {"Raya", "Kukufto"},
      {"Raya", "Genete"},    {"Raya", "Mehoni"},   {"Raya", "Chercher"},
      {"Endamehoni", "Maichew"}, {"Endamehoni", "Mesobo"}, {"Endamehoni", "Hintalo"},
  };
  for (int y = 1984; y <= 1988; ++y) {
    for (const Village& v : villages) {
      // 1986 was a drought year (low rainfall) everywhere — except Darube,
      // which genuinely had rain.
      double rainfall = y == 1986 ? rng.Uniform(140.0, 230.0) : rng.Uniform(320.0, 520.0);
      bool darube_1986 = std::string(v.name) == "Darube" && y == 1986;
      if (darube_1986) rainfall = 603.2;  // Figure 1c
      ex.rainfall.SetDim(rain_village, v.name);
      ex.rainfall.SetDim(rain_year, std::to_string(y));
      ex.rainfall.SetMeasure(rain_mm, rainfall);
      ex.rainfall.CommitRow();
      int reports = 10 + static_cast<int>(rng.Uniform(0.0, 3.0));
      for (int i = 0; i < reports; ++i) {
        double s = std::clamp(11.0 - rainfall / 60.0 + rng.Noise() * 0.5, 1.0, 10.0);
        // The data error: Zata's 1986 reports are far too low (the farmers'
        // reports were mis-keyed), despite the drought.
        if (std::string(v.name) == "Zata" && y == 1986) s = rng.Uniform(1.5, 2.8);
        ex.reports.SetDim(district, v.district);
        ex.reports.SetDim(village, v.name);
        ex.reports.SetDim(year, std::to_string(y));
        ex.reports.SetMeasure(severity, s);
        ex.reports.CommitRow();
      }
    }
  }
  return ex;
}

}  // namespace

int main() {
  Example ex = MakeExample();

  // --- Open the session: dataset + hierarchy metadata, all by name. ---
  Result<Session> session = Session::Create(
      std::move(ex.reports), {{"geo", {"district", "village"}}, {"time", {"year"}}});
  ExitOnError(session.status());

  // Register the satellite rainfall auxiliary data (paper §3.3.2).
  AuxiliaryRequest aux;
  aux.name = "rainfall";
  aux.table = std::move(ex.rainfall);
  aux.join_attributes = {"village", "year"};
  aux.measure = "rainfall";
  ExitOnError(session->RegisterAuxiliary(std::move(aux)));

  // The view the researcher is looking at: severity per year in Ofla.
  ExitOnError(session->Commit("geo"));   // the view is at district level
  ExitOnError(session->Commit("time"));  // ... and at year level
  Result<ViewResponse> view = session->View(
      ViewRequest().GroupBy("year").Measure("severity").Where("district", "Ofla"));
  ExitOnError(view.status());
  std::printf("District: Ofla — annual severity statistics\n");
  std::printf("  %-6s %8s %8s %8s\n", "year", "mean", "count", "std");
  for (const ViewRow& row : view->rows) {
    std::printf("  %-6s %8.1f %8.0f %8.2f\n", row.key[0].second.c_str(),
                row.stats.at("mean"), row.stats.at("count"), row.stats.at("std"));
  }

  // --- The complaint: 1986's standard deviation is too high. ---
  ComplaintSpec complaint = ComplaintSpec::TooHigh("std", "severity")
                                .Where("district", "Ofla")
                                .Where("year", "1986");
  std::printf("\nComplaint: %s\n", complaint.Describe().c_str());

  Result<ExploreResponse> response = session->Recommend(complaint);
  ExitOnError(response.status());
  const HierarchyResponse* best = response->best();
  if (best == nullptr) {
    std::printf("No drill-down recommendation available.\n");
    return 1;
  }
  std::printf("\nReptile recommends drilling down to: %s\n", best->attribute.c_str());
  std::printf("  %-52s %7s %8s %9s %9s\n", "group", "mean", "obs_std", "pred_std", "score");
  for (const GroupResponse& g : best->groups) {
    std::printf("  %-52s %7.2f %8.2f %9.2f %9.4f\n", g.description.c_str(),
                g.observed.at("mean"), g.observed.at("std"), g.predicted.at("std"), g.score);
  }
  std::printf("\nTop group: %s\n", best->groups[0].description.c_str());
  std::printf("Zata's low 1986 severity is unexplained by rainfall, so repairing it best\n"
              "resolves the STD complaint; Darube's low severity is explained away by its\n"
              "high rainfall (603.2mm) in the auxiliary sensing data, as in Figure 1.\n");

  // Responses serialise themselves — this is what a server would return.
  std::printf("\nResponse as JSON (truncated): %.120s...\n", response->ToJson().c_str());

  // Invalid input returns Status instead of aborting:
  Result<ExploreResponse> bad =
      session->Recommend(ComplaintSpec::TooHigh("std", "serverity"));
  std::printf("Misspelled measure -> %s\n", bad.status().ToString().c_str());
  return 0;
}
