// Election case study (paper Appendix N): county-level vote shares in a
// Georgia-like swing state. The complaint is that the statewide percentage
// is too low; Reptile ranks counties by the margin gained when their
// statistics are repaired to the model's expectation. Registering the 2016
// share as an auxiliary dataset turns the ranking from "share outliers"
// into "2016-adjusted anomalies"; repairing COUNT alongside MEAN makes the
// ranking sensitive to missing vote records.
//
// Demonstrates: distributive sets of statistics (share = weighted mean,
// total votes = count), extra repair statistics, auxiliary features.

#include <cstdio>

#include "core/engine.h"
#include "datagen/vote_gen.h"

using namespace reptile;

int main() {
  GeorgiaPanel georgia = MakeGeorgia();
  const Table& table = georgia.dataset_missing.table();

  std::printf("Georgia-like panel: 159 counties; missing vote records injected into:");
  for (const std::string& county : georgia.missing_counties) {
    std::printf(" %s", county.c_str());
  }
  std::printf("\n\n");

  EngineOptions options;
  options.top_k = 8;
  options.extra_repair_stats = {AggFn::kCount};  // repair total votes too
  Engine engine(&georgia.dataset_missing, options);
  AuxiliarySpec aux;
  aux.name = "share2016";
  aux.table = &georgia.aux2016;
  aux.join_attrs = {"county"};
  aux.measure = "share2016";
  engine.RegisterAuxiliary(std::move(aux));
  AuxiliarySpec votes;
  votes.name = "votes2016";
  votes.table = &georgia.aux2016;
  votes.join_attrs = {"county"};
  votes.measure = "votes2016";
  engine.RegisterAuxiliary(std::move(votes));

  Complaint complaint =
      Complaint::TooLow(AggFn::kMean, table.ColumnIndex("trump_share"), RowFilter());
  std::printf("Complaint: statewide vote percentage is too low.\n\n");
  Recommendation rec = engine.RecommendDrillDown(complaint);
  const HierarchyRecommendation& best = rec.best();

  Moments statewide;
  for (double v : table.measure(table.ColumnIndex("trump_share"))) statewide.Observe(v);
  std::printf("Observed statewide share: %.4f\n", statewide.Mean());
  std::printf("Top counties by margin gain after repairing (votes, share):\n");
  for (const GroupRecommendation& g : best.top_groups) {
    bool injected = false;
    for (const std::string& county : georgia.missing_counties) {
      if (g.description == "county=" + county) injected = true;
    }
    std::printf("  %-22s gain %+0.4f  share %.3f -> %.3f, votes %4.0f -> %6.1f%s\n",
                g.description.c_str(), g.repaired_complaint_value - statewide.Mean(),
                g.observed.Mean(), g.predicted.at(AggFn::kMean), g.observed.count,
                g.predicted.at(AggFn::kCount), injected ? "  [missing records]" : "");
  }
  std::printf("\nCounties with missing vote records gain margin when their totals are\n"
              "restored — the Appendix N behaviour of repairing a distributive *set*\n"
              "of statistics rather than the complained statistic alone.\n");
  return 0;
}
