// Election case study (paper Appendix N) on the public Session facade:
// county-level vote shares in a Georgia-like swing state. The complaint is
// that the statewide percentage is too low; Reptile ranks counties by the
// margin gained when their statistics are repaired to the model's
// expectation. Registering the 2016 share as an auxiliary dataset turns the
// ranking from "share outliers" into "2016-adjusted anomalies"; repairing
// COUNT alongside MEAN makes the ranking sensitive to missing vote records.
//
// Demonstrates: distributive sets of statistics (share = weighted mean,
// total votes = count), extra repair statistics, auxiliary features.

#include <cstdio>
#include <cstdlib>

#include "datagen/vote_gen.h"
#include "example_util.h"
#include "reptile/reptile.h"

using namespace reptile;

int main() {
  GeorgiaPanel georgia = MakeGeorgia();

  std::printf("Georgia-like panel: 159 counties; missing vote records injected into:");
  for (const std::string& county : georgia.missing_counties) {
    std::printf(" %s", county.c_str());
  }
  std::printf("\n\n");

  Result<Session> session = Session::Create(
      std::move(georgia.dataset_missing),
      ExploreRequest().TopK(8).RepairAlso("count"));  // repair total votes too
  ExitOnError(session.status());
  AuxiliaryRequest share;
  share.name = "share2016";
  share.table = georgia.aux2016;
  share.join_attributes = {"county"};
  share.measure = "share2016";
  ExitOnError(session->RegisterAuxiliary(std::move(share)));
  AuxiliaryRequest votes;
  votes.name = "votes2016";
  votes.table = georgia.aux2016;
  votes.join_attributes = {"county"};
  votes.measure = "votes2016";
  ExitOnError(session->RegisterAuxiliary(std::move(votes)));

  ComplaintSpec complaint = ComplaintSpec::TooLow("mean", "trump_share");
  std::printf("Complaint: statewide vote percentage is too low.\n\n");
  Result<ExploreResponse> response = session->Recommend(complaint);
  ExitOnError(response.status());
  const HierarchyResponse* best = response->best();
  if (best == nullptr) {
    std::printf("No drill-down recommendation available.\n");
    return 1;
  }

  const Table& table = session->dataset()->table();
  Moments statewide;
  for (double v : table.measure(table.ColumnIndex("trump_share"))) statewide.Observe(v);
  std::printf("Observed statewide share: %.4f\n", statewide.Mean());
  std::printf("Top counties by margin gain after repairing (votes, share):\n");
  for (const GroupResponse& g : best->groups) {
    bool injected = false;
    for (const std::string& county : georgia.missing_counties) {
      if (g.description == "county=" + county) injected = true;
    }
    std::printf("  %-22s gain %+0.4f  share %.3f -> %.3f, votes %4.0f -> %6.1f%s\n",
                g.description.c_str(), g.repaired_complaint_value - statewide.Mean(),
                g.observed.at("mean"), g.predicted.at("mean"), g.observed.at("count"),
                g.predicted.at("count"), injected ? "  [missing records]" : "");
  }
  std::printf("\nCounties with missing vote records gain margin when their totals are\n"
              "restored — the Appendix N behaviour of repairing a distributive *set*\n"
              "of statistics rather than the complained statistic alone.\n");
  return 0;
}
