// HTTP front-end overhead: the same recommend workload measured as a direct
// Session call vs over loopback HTTP (parse request JSON -> engine -> write
// response JSON -> socket round trip), plus /healthz as the pure
// framing-floor measurement and the strict JSON parser on a realistic
// recommend_batch response body.
//
// The interesting number is the Direct vs Http gap: everything in between
// — request parsing, routing, per-session locking, response framing — is
// the server subsystem's cost. Exercises only public surfaces (api/ and
// server/).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "benchmark/benchmark.h"
#include "datagen/panel_gen.h"
#include "reptile/reptile.h"
#include "server/http_client.h"
#include "server/http_server.h"
#include "server/json.h"
#include "server/service.h"

namespace reptile {
namespace {

constexpr int kDistricts = 8;
constexpr int kVillages = 6;
constexpr int kYears = 8;
constexpr int kRowsPerGroup = 4;

Dataset MakePanel() {
  PanelSpec spec;
  spec.districts = kDistricts;
  spec.villages_per_district = kVillages;
  spec.years = kYears;
  spec.rows_per_group = kRowsPerGroup;
  return MakeSeverityPanel(spec);
}

Session MakePanelSession() {
  Result<Session> session = Session::Create(MakePanel());
  if (!session.ok() || !session->Commit("time").ok()) {
    std::fprintf(stderr, "session setup failed\n");
    std::abort();
  }
  return std::move(session).value();
}

// One server shared by every benchmark, started on first use.
struct ServerHarness {
  ReptileService service;
  std::unique_ptr<HttpServer> server;

  ServerHarness() {
    if (!service.AddDataset("panel", MakePanel(), {"time"}).ok()) std::abort();
    HttpServerOptions options;
    options.port = 0;
    options.num_threads = 4;
    server = std::make_unique<HttpServer>(
        options, [this](const HttpRequest& request) { return service.Handle(request); });
    if (!server->Start().ok()) {
      std::fprintf(stderr, "server failed to start\n");
      std::abort();
    }
  }
};

ServerHarness& Harness() {
  static ServerHarness& harness = *new ServerHarness();
  return harness;
}

const std::string kRecommendBody =
    R"({"dataset":"panel","complaint":{"aggregate":"std","measure":"severity",)"
    R"("where":[{"column":"year","value":"y3"}]}})";

std::string BatchBody(int64_t n) {
  std::string body = R"({"dataset":"panel","complaints":[)";
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) body += ',';
    body += R"({"aggregate":"std","measure":"severity","where":[{"column":"year","value":"y)" +
            std::to_string(i % kYears) + R"("}]})";
  }
  body += "]}";
  return body;
}

void BM_Http_Healthz(benchmark::State& state) {
  HttpClient client("127.0.0.1", Harness().server->port());
  for (auto _ : state) {
    Result<HttpClientResponse> response = client.Get("/healthz");
    if (!response.ok() || response->status != 200) {
      state.SkipWithError("healthz failed");
      return;
    }
    benchmark::DoNotOptimize(response);
  }
}

void BM_Direct_Recommend(benchmark::State& state) {
  static Session& session = *new Session(MakePanelSession());
  ComplaintSpec complaint = ComplaintSpec::TooHigh("std", "severity").Where("year", "y3");
  for (auto _ : state) {
    Result<ExploreResponse> response = session.Recommend(complaint);
    if (!response.ok()) {
      state.SkipWithError(response.status().ToString().c_str());
      return;
    }
    std::string json = response->ToJson();  // include serialisation, like the wire
    benchmark::DoNotOptimize(json);
  }
}

void BM_Http_Recommend(benchmark::State& state) {
  HttpClient client("127.0.0.1", Harness().server->port());
  for (auto _ : state) {
    Result<HttpClientResponse> response = client.Post("/v1/recommend", kRecommendBody);
    if (!response.ok() || response->status != 200) {
      state.SkipWithError("recommend failed");
      return;
    }
    benchmark::DoNotOptimize(response);
  }
}

void BM_Http_RecommendBatch(benchmark::State& state) {
  HttpClient client("127.0.0.1", Harness().server->port());
  std::string body = BatchBody(state.range(0));
  for (auto _ : state) {
    Result<HttpClientResponse> response = client.Post("/v1/recommend_batch", body);
    if (!response.ok() || response->status != 200) {
      state.SkipWithError("recommend_batch failed");
      return;
    }
    benchmark::DoNotOptimize(response);
  }
  state.counters["complaints"] = static_cast<double>(state.range(0));
}

void BM_JsonParse_ResponseBody(benchmark::State& state) {
  // Parse a real recommend_batch response body — the shape a wire client
  // round-trips — not synthetic JSON.
  HttpClient client("127.0.0.1", Harness().server->port());
  Result<HttpClientResponse> response =
      client.Post("/v1/recommend_batch", BatchBody(kYears));
  if (!response.ok() || response->status != 200) {
    state.SkipWithError("setup request failed");
    return;
  }
  const std::string body = response->body;
  for (auto _ : state) {
    Result<JsonValue> parsed = ParseJson(body);
    if (!parsed.ok()) {
      state.SkipWithError("parse failed");
      return;
    }
    benchmark::DoNotOptimize(parsed);
  }
  state.counters["bytes"] = static_cast<double>(body.size());
}

BENCHMARK(BM_Http_Healthz)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Direct_Recommend)->Unit(benchmark::kMillisecond)->MinTime(0.05);
BENCHMARK(BM_Http_Recommend)->Unit(benchmark::kMillisecond)->MinTime(0.05);
BENCHMARK(BM_Http_RecommendBatch)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8);
BENCHMARK(BM_JsonParse_ResponseBody)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace reptile

BENCHMARK_MAIN();
