// FIST expert study (Section 5.4, Appendix M): 22 scripted complaints over
// simulated Ethiopian drought-survey data with injected errors of the
// classes the paper reports. A complaint counts as resolved when the
// top-ranked drill-down group is the corrupted one AND repairing it recovers
// most of the anomaly (the study's experts verified recommendations by
// examining the records).
//
// Paper outcome to reproduce: 20 of 22 complaints resolved; one failure is
// inherently ambiguous (error below reporting noise) and one is the
// two-district standard-deviation case where no single-group repair can
// reduce the STD (Appendix M's parabola argument).

#include <cmath>
#include <cstdio>

#include "core/engine.h"
#include "datagen/fist_gen.h"

namespace reptile {
namespace {

double ComplaintValue(const Table& table, const Complaint& c, int fallback_measure) {
  Moments observed;
  const std::vector<double>& values =
      table.measure(c.measure_column >= 0 ? c.measure_column : fallback_measure);
  for (size_t row = 0; row < table.num_rows(); ++row) {
    if (table.Matches(c.filter, row)) observed.Observe(values[row]);
  }
  return observed.Value(c.agg);
}

bool RunCase(const FistStudy& study, const Table& clean_table, const FistComplaintCase& c) {
  Engine engine(&study.dataset);
  AuxiliarySpec spec;
  spec.name = "rainfall";
  spec.table = &study.rainfall;
  spec.join_attrs = {"village", "year"};
  spec.measure = "rainfall";
  engine.RegisterAuxiliary(std::move(spec));

  // Session state for this complaint: time drilled to years, geography to
  // the level above the expected explanation.
  engine.CommitDrillDown(1);
  for (int depth = 0; depth < c.geo_commit_depth; ++depth) engine.CommitDrillDown(0);

  Recommendation rec = engine.RecommendDrillDown(c.complaint);
  if (rec.best_index < 0 || rec.best().top_groups.empty()) return false;
  const GroupRecommendation& top = rec.best().top_groups[0];
  if (top.description.find(c.expected_substr) == std::string::npos) return false;

  // Anomaly-recovery check: the clean panel shares the generator seed, so
  // the complaint's ground-truth value is computable. The repair must
  // recover at least half of the anomaly — in the two-district STD case it
  // recovers almost none of it (Appendix M), so the expert rejects it.
  int severity = study.dataset.table().ColumnIndex("severity");
  double observed = ComplaintValue(study.dataset.table(), c.complaint, severity);
  double clean = ComplaintValue(clean_table, c.complaint, severity);
  double repaired = top.repaired_complaint_value;
  double anomaly = std::fabs(observed - clean);
  if (anomaly <= 0.0) return false;
  double recovered = (anomaly - std::fabs(repaired - clean)) / anomaly;
  return recovered > 0.5;
}

}  // namespace
}  // namespace reptile

int main() {
  using namespace reptile;
  std::printf("FIST expert study: 22 complaints over simulated drought-survey data\n\n");
  FistStudy study = MakeFistStudy();
  FistStudy clean = MakeCleanFist();  // same seed: identical noise draws
  int resolved = 0;
  int agree_with_paper = 0;
  for (const FistComplaintCase& c : study.cases) {
    bool hit = RunCase(study, clean.dataset.table(), c);
    resolved += hit;
    agree_with_paper += hit == c.expect_success;
    std::printf("  %-46s [%s] %s  expected: %s\n", c.name.c_str(),
                c.complaint.Describe().c_str(), hit ? "resolved" : "FAILED",
                c.expect_success ? "resolved" : "failure");
  }
  std::printf("\nResolved %d / %zu complaints (paper: 20/22); outcome matches the paper's "
              "per-case expectation for %d/%zu cases.\n",
              resolved, study.cases.size(), agree_with_paper, study.cases.size());
  return 0;
}
