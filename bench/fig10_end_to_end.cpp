// Figure 10 (Section 5.1.4): end-to-end runtime on the two real-world
// dataset shapes — Reptile (factorised training, drill-down caching) vs the
// Matlab/LAPACK-style baseline (fully materialised matrix, dense EM, no
// caching).
//
// Absentee shape: 179K rows, 4 single-attribute hierarchies (county 100,
// party 6, week 53, gender 3), 4 invocations drilling county, party, week,
// gender. COMPAS shape: 60,843 rows, time (year/month/day, 704 days) + age +
// race + charge degree, 6 invocations. Complaint: overall COUNT too high;
// 20 EM iterations. Paper shape: Reptile > 6x faster end to end.

#include <cstdio>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/timer.h"
#include "core/engine.h"
#include "datagen/shapes_gen.h"
#include "datagen/synthetic.h"

namespace reptile {
namespace {

struct RunResult {
  std::vector<double> invocation_seconds;
  std::vector<double> train_seconds;
  double total = 0.0;
  double train_total = 0.0;
};

RunResult RunSession(const Dataset& dataset, const std::vector<int>& drill_sequence,
                     ModelSpec::Backend backend, DrillDownState::Mode mode) {
  EngineOptions options;
  options.model.backend = backend;
  options.drill_mode = mode;
  options.top_k = 1;
  Engine engine(&dataset, options);
  Complaint complaint = Complaint::TooHigh(AggFn::kCount, -1, RowFilter());
  RunResult result;
  for (int hierarchy : drill_sequence) {
    Timer timer;
    Recommendation rec = engine.RecommendDrillDown(complaint);
    double seconds = timer.Seconds();
    double train = 0.0;
    for (const HierarchyRecommendation& cand : rec.candidates) train += cand.train_seconds;
    result.invocation_seconds.push_back(seconds);
    result.train_seconds.push_back(train);
    result.total += seconds;
    result.train_total += train;
    engine.CommitDrillDown(hierarchy);
  }
  return result;
}

void Report(const char* name, const Dataset& dataset, const std::vector<int>& sequence) {
  std::printf("%s (%zu rows)\n", name, dataset.table().num_rows());
  RunResult reptile =
      RunSession(dataset, sequence, ModelSpec::Backend::kFactorized, DrillDownState::Mode::kCacheDynamic);
  RunResult matlab =
      RunSession(dataset, sequence, ModelSpec::Backend::kDense, DrillDownState::Mode::kStatic);
  std::printf("  %-26s", "invocation:");
  for (size_t i = 0; i < sequence.size(); ++i) std::printf(" %10zu", i + 1);
  std::printf(" %12s\n", "total");
  std::printf("  %-26s", "Reptile (s):");
  for (double s : reptile.invocation_seconds) std::printf(" %10.3f", s);
  std::printf(" %12.3f\n", reptile.total);
  std::printf("  %-26s", "  of which training:");
  for (double s : reptile.train_seconds) std::printf(" %10.3f", s);
  std::printf(" %12.3f\n", reptile.train_total);
  std::printf("  %-26s", "Matlab-style (s):");
  for (double s : matlab.invocation_seconds) std::printf(" %10.3f", s);
  std::printf(" %12.3f\n", matlab.total);
  std::printf("  %-26s", "  of which training:");
  for (double s : matlab.train_seconds) std::printf(" %10.3f", s);
  std::printf(" %12.3f\n", matlab.train_total);
  std::printf("  %-26s %12.2fx end-to-end, %.2fx on model training\n\n",
              "speedup:", matlab.total / reptile.total,
              matlab.train_total / reptile.train_total);
}

}  // namespace
}  // namespace reptile

int main() {
  std::printf("Figure 10: end-to-end runtime, Reptile vs Matlab/LAPACK-style baseline\n");
  std::printf("(COUNT complaint, 20 EM iterations, paper expectation: >6x speedup)\n\n");
  {
    reptile::Dataset absentee = reptile::MakeAbsenteeShaped();
    // Hierarchies: 0=county, 1=party, 2=week, 3=gender.
    reptile::Report("Absentee-shaped", absentee, {0, 1, 2, 3});
  }
  {
    reptile::Dataset compas = reptile::MakeCompasShaped();
    // Hierarchies: 0=time (year, month, day), 1=age, 2=race, 3=degree.
    reptile::Report("COMPAS-shaped", compas, {0, 0, 0, 1, 2, 3});
  }
  {
    // Cross-product stress: 4 hierarchies whose parallel groups multiply to
    // w^4 rows — the regime where avoiding materialisation is structural
    // (the paper's §5.1.4 discussion: y is an aggregate that varies per
    // group, so the parallel groups include every — possibly empty — group).
    reptile::SyntheticOptions options;
    options.num_hierarchies = 4;
    options.attrs_per_hierarchy = 1;
    options.cardinality = reptile::EnvInt("REPTILE_FIG10_STRESS_W", 40);
    reptile::Dataset stress = reptile::MakeChainDataset(options, 50000);
    reptile::Report("Cross-product stress", stress, {0, 1, 2, 3});
  }
  std::printf(
      "Substitution note: the paper's >6x baseline is Matlab driving LAPACK, i.e.\n"
      "an interpreted pipeline; both of our paths share the same optimized C++\n"
      "substrate, so the end-to-end gap shrinks while its direction and growth\n"
      "with drill depth are preserved. The stress shape isolates the paper's\n"
      "mechanism (exponential parallel groups): the factorised gap widens with\n"
      "the cross-product size, bounded by the EM loop's O(n) vector work that\n"
      "both backends share.\n");
  return 0;
}
