// Figure 13 + Tables 1-2 (Section 5.3, Appendix L): the COVID-19 case
// study. Thirty reproduced data issues are injected one at a time; for each,
// a SUM complaint is filed at the national/global level for the issue day,
// and Reptile, Sensitivity and Support each recommend the drill-down
// location. A method scores when its top pick is the ground-truth location.
//
// Paper shape: Reptile ~70% (21/30) at ~0.5 s per complaint; Sensitivity
// 6.6% (2/30); Support 3.3% (1/30). Prevalent errors (starred) and sub-noise
// errors stay undetected.

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/sensitivity.h"
#include "baselines/support.h"
#include "common/timer.h"
#include "core/engine.h"
#include "datagen/covid_gen.h"

namespace reptile {
namespace {

struct MethodResult {
  bool reptile = false;
  bool sensitivity = false;
  bool support = false;
  double reptile_seconds = 0.0;
  double baseline_seconds = 0.0;
};

MethodResult RunIssue(bool global, const CovidIssueSpec& issue) {
  CovidPanelConfig config;
  config.global = global;
  Dataset panel = MakeCorruptedPanel(config, issue);
  const Table& table = panel.table();
  std::string loc_attr = CovidLocationAttr(global);
  int loc_col = table.ColumnIndex(loc_attr);
  int day_col = table.ColumnIndex("day");
  int measure = table.ColumnIndex(issue.measure);

  // Lag features are built from the observed (corrupted) panel, as a real
  // deployment would.
  Table lag1 = MakeCovidLagTable(panel, issue.measure, 1);
  Table lag7 = MakeCovidLagTable(panel, issue.measure, 7);

  RowFilter filter;
  char day_name[16];
  std::snprintf(day_name, sizeof(day_name), "d%03d", issue.day);
  filter.Add(day_col, *table.dict(day_col).Find(day_name));
  Complaint complaint;
  complaint.agg = AggFn::kSum;
  complaint.measure_column = measure;
  complaint.filter = filter;
  complaint.direction = issue.direction;

  MethodResult result;
  {
    Timer timer;
    // Multi-level with per-day clusters and random effects on all features
    // except the location main effect: the day clusters adapt the lag
    // coefficients (the paper's "systematic variation between parent
    // groups"), which the multiplicative epidemic curves require.
    EngineOptions options;
    options.random_effects = RandomEffects::kAllFeatures;
    Engine engine(&panel, options);
    engine.ExcludeFromRandomEffects(loc_attr);
    for (const auto& [name, lag] : {std::make_pair("lag1", &lag1),
                                    std::make_pair("lag7", &lag7)}) {
      AuxiliarySpec spec;
      spec.name = name;
      spec.table = lag;
      spec.join_attrs = {loc_attr, "day"};
      spec.measure = lag->column_name(2);
      engine.RegisterAuxiliary(std::move(spec));
    }
    engine.CommitDrillDown(1);  // the user has already drilled time to days
    Recommendation rec = engine.RecommendDrillDown(complaint);
    result.reptile_seconds = timer.Seconds();
    if (rec.best_index >= 0 && !rec.best().top_groups.empty()) {
      int32_t top_loc = rec.best().top_groups[0].key.back();  // day key, then loc?
      // Key columns are [day, location] (time committed first, geo drilled
      // last); the location is the second key position.
      top_loc = rec.best().top_groups[0].key[1];
      result.reptile = table.dict(loc_col).name(top_loc) == issue.location;
    }
  }
  {
    Timer timer;
    GroupByResult siblings = GroupBy(table, {day_col, loc_col}, measure, filter);
    std::vector<ScoredGroup> sens = SensitivityRank(siblings, complaint);
    if (!sens.empty()) {
      result.sensitivity = table.dict(loc_col).name(sens[0].key[1]) == issue.location;
    }
    std::vector<ScoredGroup> supp = SupportRank(siblings);
    if (!supp.empty()) {
      result.support = table.dict(loc_col).name(supp[0].key[1]) == issue.location;
    }
    result.baseline_seconds = timer.Seconds();
  }
  return result;
}

void RunSuite(bool global, const std::vector<CovidIssueSpec>& issues, int* rp, int* st,
              int* sp, int* total, double* rp_seconds, double* base_seconds) {
  std::printf("%s issues (%s = prevalent error)\n", global ? "Global" : "US", "*");
  std::printf("%-6s %-44s %4s %4s %4s   %s\n", "id", "issue", "RP", "ST", "SP", "paper RP");
  for (const CovidIssueSpec& issue : issues) {
    MethodResult result = RunIssue(global, issue);
    std::printf("%-6d %s%-43s %4s %4s %4s   %s\n", issue.id, issue.prevalent ? "*" : " ",
                issue.name.c_str(), result.reptile ? "Y" : ".",
                result.sensitivity ? "Y" : ".", result.support ? "Y" : ".",
                issue.paper_reptile_detects ? "Y" : ".");
    *rp += result.reptile;
    *st += result.sensitivity;
    *sp += result.support;
    *total += 1;
    *rp_seconds += result.reptile_seconds;
    *base_seconds += result.baseline_seconds;
  }
  std::printf("\n");
}

}  // namespace
}  // namespace reptile

int main() {
  using namespace reptile;
  std::printf("Figure 13 + Tables 1-2: COVID-19 case study (simulated JHU panels)\n\n");
  int rp = 0, st = 0, sp = 0, total = 0;
  double rp_seconds = 0.0, base_seconds = 0.0;
  RunSuite(false, UsIssueList(), &rp, &st, &sp, &total, &rp_seconds, &base_seconds);
  RunSuite(true, GlobalIssueList(), &rp, &st, &sp, &total, &rp_seconds, &base_seconds);
  std::printf("Figure 13a — correct rate: Reptile %.3f (%d/%d), Sensitivity %.3f (%d/%d), "
              "Support %.3f (%d/%d)\n",
              rp / static_cast<double>(total), rp, total, st / static_cast<double>(total), st,
              total, sp / static_cast<double>(total), sp, total);
  std::printf("Figure 13b — average runtime per complaint: Reptile %.3f s, baselines %.4f s\n",
              rp_seconds / total, base_seconds / total);
  std::printf("\nPaper: Reptile 21/30 (70%%), Sensitivity 2/30, Support 1/30; Reptile ~0.5 s.\n");
  return 0;
}
