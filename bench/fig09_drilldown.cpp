// Figure 9 (Section 5.1.3): drill-down optimization. Two hierarchies
// A = [A1..A6] and B = [B1..B6]; hierarchy A is already drilled to A3 and B
// to n = 3, 4, 5 attributes. Reptile is invoked three times, drilling A each
// time, and we measure the per-hierarchy cost of computing decomposed
// aggregates under the three policies:
//
//   Static         — recompute everything touched, every invocation.
//   Dynamic        — keep committed-depth aggregates (hierarchy
//                    independence); recompute candidate depths.
//   Cache+Dynamic  — additionally reuse candidate-depth aggregates computed
//                    in earlier invocations (2ndB/3rdB become free).
//
// Paper shape: Dynamic > 1.2x faster than Static; caching eliminates the
// 2ndB and 3rdB areas entirely.

#include <cstdio>
#include <string>

#include "common/env.h"
#include "datagen/synthetic.h"
#include "factor/drilldown.h"

namespace reptile {
namespace {

struct InvocationCosts {
  double a_seconds = 0.0;
  double b_seconds = 0.0;
};

// Runs the three invocations for one policy and one pre-drilled B depth.
std::vector<InvocationCosts> Run(const Dataset& dataset, DrillDownState::Mode mode,
                                 int b_depth) {
  DrillDownState state(&dataset, mode);
  // Pre-committed session state: A drilled to A3, B to B<n>.
  for (int i = 0; i < 3; ++i) state.Commit(0);
  for (int i = 0; i < b_depth; ++i) state.Commit(1);

  std::vector<InvocationCosts> costs;
  for (int invocation = 0; invocation < 3; ++invocation) {
    state.BeginInvocation();
    // A Reptile invocation evaluates both hierarchies as candidates: each
    // needs its own aggregates one level deeper plus the other's at the
    // committed depth.
    state.Get(0, state.depth(0) + 1);  // candidate A
    state.Get(0, state.depth(0));      // A at committed depth (for candidate B)
    state.Get(1, state.depth(1) + 1);  // candidate B
    state.Get(1, state.depth(1));      // B at committed depth (for candidate A)
    costs.push_back(
        InvocationCosts{state.InvocationBuildSeconds(0), state.InvocationBuildSeconds(1)});
    state.Commit(0);  // the user picks A every time
  }
  return costs;
}

const char* ModeName(DrillDownState::Mode mode) {
  switch (mode) {
    case DrillDownState::Mode::kStatic:
      return "Static";
    case DrillDownState::Mode::kDynamic:
      return "Dynamic";
    case DrillDownState::Mode::kCacheDynamic:
      return "Cache+Dynamic";
  }
  return "?";
}

}  // namespace
}  // namespace reptile

int main() {
  using reptile::DrillDownState;
  reptile::SyntheticOptions options;
  options.num_hierarchies = 2;
  options.attrs_per_hierarchy = 6;
  options.cardinality = reptile::EnvInt("REPTILE_FIG9_W", 20000);
  int64_t rows = reptile::EnvInt("REPTILE_FIG9_ROWS", 200000);
  reptile::Dataset dataset = reptile::MakeChainDataset(options, rows);

  std::printf("Figure 9: drill-down optimization (2 hierarchies x 6 attrs, w=%lld, %lld rows)\n",
              static_cast<long long>(options.cardinality), static_cast<long long>(rows));
  std::printf("Per-invocation decomposed-aggregate build seconds while drilling A three times.\n\n");
  std::printf("%-14s %-9s %12s %12s %12s %12s %12s\n", "mode", "B depth", "1stA+2+3", "1stB",
              "2ndB", "3rdB", "total");
  for (int b_depth : {3, 4, 5}) {
    for (DrillDownState::Mode mode :
         {DrillDownState::Mode::kStatic, DrillDownState::Mode::kDynamic,
          DrillDownState::Mode::kCacheDynamic}) {
      std::vector<reptile::InvocationCosts> costs = reptile::Run(dataset, mode, b_depth);
      double a_total = costs[0].a_seconds + costs[1].a_seconds + costs[2].a_seconds;
      double total = a_total;
      for (const auto& c : costs) total += c.b_seconds;
      std::printf("%-14s %-9d %12.4f %12.4f %12.4f %12.4f %12.4f\n", reptile::ModeName(mode),
                  b_depth, a_total, costs[0].b_seconds, costs[1].b_seconds, costs[2].b_seconds,
                  total);
    }
  }
  std::printf("\nExpected shape (paper): Dynamic > 1.2x faster than Static overall; with\n"
              "caching the 2ndB and 3rdB areas vanish (their aggregates were computed and\n"
              "cached in the first invocation).\n");
  return 0;
}
