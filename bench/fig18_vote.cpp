// Figure 18 (Appendix N): the Vote case study on a Georgia-like swing
// state. The complaint is that the statewide vote percentage is too low;
// Reptile ranks counties by the margin gained if their statistics are
// repaired to the model's expectation. Model 1 uses default features only
// (it mainly surfaces outliers); model 2 adds the 2016 share auxiliary
// feature. A third run injects missing vote records into a few counties
// (Figure 18h/i): with frepair also restoring COUNT (the distributive set
// of Appendix N), the missing-record counties surface.

#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.h"
#include "datagen/vote_gen.h"

namespace reptile {
namespace {

struct Run {
  std::string title;
  const Dataset* dataset;
  bool use_aux;
  bool repair_count;
};

void Report(const Run& run, const Table& aux2016, const std::vector<std::string>& missing) {
  EngineOptions options;
  options.top_k = 10;
  if (run.repair_count) options.model.extra_repair_stats = {AggFn::kCount};
  Engine engine(run.dataset, options);
  if (run.use_aux) {
    AuxiliarySpec spec;
    spec.name = "share2016";
    spec.table = &aux2016;
    spec.join_attrs = {"county"};
    spec.measure = "share2016";
    engine.RegisterAuxiliary(std::move(spec));
    AuxiliarySpec votes;
    votes.name = "votes2016";
    votes.table = &aux2016;
    votes.join_attrs = {"county"};
    votes.measure = "votes2016";
    engine.RegisterAuxiliary(std::move(votes));
  }
  const Table& table = run.dataset->table();
  Complaint complaint =
      Complaint::TooLow(AggFn::kMean, table.ColumnIndex("trump_share"), RowFilter());
  Recommendation rec = engine.RecommendDrillDown(complaint);
  const HierarchyRecommendation& best = rec.best();

  // Statewide observed share for the margin-gain baseline.
  Moments statewide;
  for (double v : table.measure(table.ColumnIndex("trump_share"))) statewide.Observe(v);
  double observed = statewide.Mean();

  std::printf("%s\n", run.title.c_str());
  std::printf("  statewide share: %.4f — top-10 counties by margin gain after repair\n",
              observed);
  for (const GroupRecommendation& g : best.top_groups) {
    bool injected = false;
    for (const std::string& county : missing) {
      if (g.description.find("county=" + county + ",") != std::string::npos ||
          g.description == "county=" + county) {
        injected = true;
      }
    }
    std::printf("    %-22s margin gain %+0.4f  (obs share %.3f -> pred %.3f, votes %5.0f)%s\n",
                g.description.c_str(), g.repaired_complaint_value - observed,
                g.observed.Mean(), g.predicted.at(AggFn::kMean), g.observed.count,
                injected ? "  [missing-records county]" : "");
  }
  std::printf("\n");
}

}  // namespace
}  // namespace reptile

int main() {
  using namespace reptile;
  std::printf("Figure 18: Vote case study (Georgia-like, 159 counties)\n\n");
  GeorgiaPanel georgia = MakeGeorgia();
  Report({"Model 1 (default features): margin gain mainly reflects outliers",
          &georgia.dataset, /*use_aux=*/false, /*repair_count=*/false},
         georgia.aux2016, {});
  Report({"Model 2 (+2016 share): margin gain reflects 2016-adjusted anomalies",
          &georgia.dataset, /*use_aux=*/true, /*repair_count=*/false},
         georgia.aux2016, {});
  Report({"Model 2 on data with injected missing records (repairing COUNT and MEAN)",
          &georgia.dataset_missing, /*use_aux=*/true, /*repair_count=*/true},
         georgia.aux2016, georgia.missing_counties);
  std::printf("Injected missing-record counties:");
  for (const std::string& county : georgia.missing_counties) std::printf(" %s", county.c_str());
  std::printf("\n\nExpected shape (paper): model 1 highlights share outliers; model 2's gains\n"
              "track the 2016-adjusted change; with missing records injected, those\n"
              "counties' margin gains grow because Reptile also repairs total votes.\n");
  return 0;
}
