// Figure 8: multi-query execution through the public Session facade —
// Reptile's batched RecommendAll, which plans every complaint over one pass
// of the drill-down caches and trains each shared (hierarchy, primitive)
// model once, vs issuing the same complaints as N independent Recommend
// calls (the LMFAO-style contrast of paper Section 5.1.2: batching many
// aggregate queries behind one planning API).
//
// Setup: a district x village x year severity panel; the batch files one
// STD complaint per year (all sharing the "drill geo to villages" hierarchy
// extension). x-axis: batch size. Expected shape: batched wall-clock stays
// near-flat in the model-training term (3 primitive models total) while
// sequential grows linearly (3 models per complaint); the models_trained
// counters report exactly that sharing.
//
// Exercises only the public api/ surface (no core/engine.h include);
// common/env.h is shared benchmark-harness plumbing, not engine internals.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "benchmark/benchmark.h"
#include "common/env.h"
#include "reptile/reptile.h"

namespace reptile {
namespace {

constexpr int kDistricts = 12;
constexpr int kVillages = 8;
constexpr int kYears = 16;
constexpr int kRowsPerGroup = 6;

Dataset MakePanel() {
  Table table;
  int district = table.AddDimensionColumn("district");
  int village = table.AddDimensionColumn("village");
  int year = table.AddDimensionColumn("year");
  int severity = table.AddMeasureColumn("severity");
  uint64_t state = 8; /* deterministic LCG noise */
  auto noise = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(state >> 11) / 9007199254740992.0 - 0.5;
  };
  for (int d = 0; d < kDistricts; ++d) {
    for (int v = 0; v < kVillages; ++v) {
      std::string district_name = "d" + std::to_string(d);
      std::string village_name = district_name + "_v" + std::to_string(v);
      for (int y = 0; y < kYears; ++y) {
        for (int r = 0; r < kRowsPerGroup; ++r) {
          table.SetDim(district, district_name);
          table.SetDim(village, village_name);
          table.SetDim(year, "y" + std::to_string(y));
          table.SetMeasure(severity, 5.0 + 0.4 * d + 0.25 * y + noise());
          table.CommitRow();
        }
      }
    }
  }
  Result<Dataset> dataset = Dataset::Make(
      std::move(table), {{"geo", {"district", "village"}}, {"time", {"year"}}});
  if (!dataset.ok()) {
    std::fprintf(stderr, "panel setup failed: %s\n", dataset.status().ToString().c_str());
    std::abort();
  }
  return std::move(dataset).value();
}

// One long-lived session per benchmark; drill state: years committed, geo
// drillable (every complaint shares the geo extension). STD complaints
// decompose into three primitives (COUNT, MEAN, STD).
Session& SharedSession() {
  static Session& session = *new Session([] {
    Result<Session> created = Session::Create(MakePanel());
    if (!created.ok()) {
      std::fprintf(stderr, "session setup failed: %s\n", created.status().ToString().c_str());
      std::abort();
    }
    Status committed = created->Commit("time");
    if (!committed.ok()) {
      std::fprintf(stderr, "commit failed: %s\n", committed.ToString().c_str());
      std::abort();
    }
    return std::move(created).value();
  }());
  return session;
}

std::vector<ComplaintSpec> MakeComplaints(int64_t n) {
  std::vector<ComplaintSpec> complaints;
  complaints.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    complaints.push_back(ComplaintSpec::TooHigh("std", "severity")
                             .Where("year", "y" + std::to_string(i % kYears)));
  }
  return complaints;
}

void BM_MultiQuery_Batched(benchmark::State& state) {
  Session& session = SharedSession();
  std::vector<ComplaintSpec> complaints = MakeComplaints(state.range(0));
  int64_t models = 0;
  for (auto _ : state) {
    Result<BatchExploreResponse> batch =
        session.RecommendAll(std::span<const ComplaintSpec>(complaints));
    if (!batch.ok()) {
      state.SkipWithError(batch.status().ToString().c_str());
      return;
    }
    models = batch->models_trained;
    benchmark::DoNotOptimize(batch);
  }
  state.counters["models_trained"] = static_cast<double>(models);
}

void BM_MultiQuery_Sequential(benchmark::State& state) {
  Session& session = SharedSession();
  std::vector<ComplaintSpec> complaints = MakeComplaints(state.range(0));
  int64_t models = 0;
  for (auto _ : state) {
    int64_t before = session.models_trained();
    for (const ComplaintSpec& complaint : complaints) {
      Result<ExploreResponse> response = session.Recommend(complaint);
      if (!response.ok()) {
        state.SkipWithError(response.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(response);
    }
    models = session.models_trained() - before;
  }
  state.counters["models_trained"] = static_cast<double>(models);
}

void RegisterAll() {
  int64_t max_batch = EnvInt("REPTILE_FIG8_MAX_BATCH", 16);
  if (max_batch <= 0) max_batch = 16;
  for (auto fn : {std::make_pair("Fig8/MultiQuery/Batched", BM_MultiQuery_Batched),
                  std::make_pair("Fig8/MultiQuery/Sequential", BM_MultiQuery_Sequential)}) {
    auto* bench = benchmark::RegisterBenchmark(fn.first, fn.second)
                      ->Unit(benchmark::kMillisecond)
                      ->MinTime(0.05);
    for (int64_t n = 1; n <= max_batch; n *= 2) bench->Arg(n);
  }
}

}  // namespace
}  // namespace reptile

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  reptile::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
