// Figure 8: multi-query execution of the decomposed aggregates (COUNT for
// every attribute + the gram matrix) — Reptile's shared plan with the
// cross-hierarchy cartesian-product optimization vs an LMFAO-style engine
// that runs each aggregate separately and materialises cross-hierarchy COFs
// (paper Section 5.1.2).
//
// Setup: d = 3 hierarchies x t = 3 attributes, attribute cardinality on the
// x-axis. Paper shape: Reptile > 4x faster, the gap growing with
// cardinality (the materialised COF is quadratic in w).

#include <map>

#include "baselines/lmfao_style.h"
#include "benchmark/benchmark.h"
#include "common/env.h"
#include "datagen/synthetic.h"
#include "fmatrix/gram.h"

namespace reptile {
namespace {

const SyntheticMatrix& MatrixFor(int64_t w) {
  static std::map<int64_t, SyntheticMatrix>& cache = *new std::map<int64_t, SyntheticMatrix>();
  auto it = cache.find(w);
  if (it == cache.end()) {
    SyntheticOptions options;
    options.num_hierarchies = 3;
    options.attrs_per_hierarchy = 3;
    options.cardinality = w;
    it = cache.emplace(w, MakeSyntheticMatrix(options)).first;
  }
  return it->second;
}

// Shared bottom-up pass computing every level's subtree counts at once —
// Algorithm 10's work sharing, timed explicitly (the equivalent of the
// LMFAO baseline's per-query SubtreeCounts passes).
std::vector<std::vector<int64_t>> SharedCounts(const FTree& tree) {
  std::vector<std::vector<int64_t>> counts(static_cast<size_t>(tree.depth()));
  counts[static_cast<size_t>(tree.depth() - 1)]
      .assign(static_cast<size_t>(tree.num_nodes(tree.depth() - 1)), 1);
  for (int l = tree.depth() - 1; l > 0; --l) {
    std::vector<int64_t>& up = counts[static_cast<size_t>(l - 1)];
    up.assign(static_cast<size_t>(tree.num_nodes(l - 1)), 0);
    const std::vector<int64_t>& parents = tree.level(l).parent;
    for (size_t node = 0; node < parents.size(); ++node) {
      up[static_cast<size_t>(parents[node])] += counts[static_cast<size_t>(l)][node];
    }
  }
  return counts;
}

void BM_MultiQuery_Reptile(benchmark::State& state) {
  const SyntheticMatrix& sm = MatrixFor(state.range(0));
  for (auto _ : state) {
    // Shared COUNT pass per hierarchy + shared COF (ancestor) tables +
    // gram with implicit cross-hierarchy COFs.
    std::vector<std::vector<std::vector<int64_t>>> counts;
    std::vector<LocalAggregates> locals;
    std::vector<const LocalAggregates*> local_ptrs;
    for (int k = 0; k < sm.fm.num_trees(); ++k) {
      counts.push_back(SharedCounts(sm.fm.tree(k)));
      locals.emplace_back(&sm.fm.tree(k));
    }
    for (const auto& l : locals) local_ptrs.push_back(&l);
    DecomposedAggregates agg(&sm.fm, local_ptrs);
    Matrix gram = FactorizedGram(sm.fm, agg);
    benchmark::DoNotOptimize(counts);
    benchmark::DoNotOptimize(gram);
  }
}

void BM_MultiQuery_LmfaoStyle(benchmark::State& state) {
  const SyntheticMatrix& sm = MatrixFor(state.range(0));
  int64_t cof_cells = 0;
  for (auto _ : state) {
    LmfaoStyleResult result = LmfaoStyleComputeAggregates(sm.fm);
    cof_cells = result.materialized_cof_cells;
    benchmark::DoNotOptimize(result);
  }
  state.counters["cof_cells"] = static_cast<double>(cof_cells);
}

void RegisterAll() {
  int64_t max_w = EnvInt("REPTILE_FIG8_MAX_W", 3200);
  for (auto fn : {std::make_pair("Fig8/MultiQuery/Reptile", BM_MultiQuery_Reptile),
                  std::make_pair("Fig8/MultiQuery/LmfaoStyle", BM_MultiQuery_LmfaoStyle)}) {
    auto* bench = benchmark::RegisterBenchmark(fn.first, fn.second)
                      ->Unit(benchmark::kMillisecond)
                      ->MinTime(0.05);
    for (int64_t w = 100; w <= max_w; w *= 2) bench->Arg(w);
  }
}

}  // namespace
}  // namespace reptile

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  reptile::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
