// Figure 8: multi-query execution through the public Session facade —
// Reptile's batched RecommendAll, which plans every complaint over one pass
// of the drill-down caches and trains each shared (hierarchy, primitive)
// model once, vs issuing the same complaints as N independent Recommend
// calls (the LMFAO-style contrast of paper Section 5.1.2: batching many
// aggregate queries behind one planning API).
//
// Setup: a district x village x year severity panel; the batch files one
// STD complaint per year (all sharing the "drill geo to villages" hierarchy
// extension). x-axis: batch size. Expected shape: batched wall-clock stays
// near-flat in the model-training term (3 primitive models total) while
// sequential grows linearly (3 models per complaint); the models_trained
// counters report exactly that sharing.
//
// The Parallel sweep fixes the batch at the maximum size and sweeps the
// per-call worker count over {1, 2, 4, 8} (REPTILE_FIG8_MAX_THREADS caps
// it): model fits and per-complaint rankings fan out, so wall time drops
// while models_trained (fits per batch) stays constant. Recommendations are
// verified byte-identical across thread counts before the benchmarks run.
//
// Exercises only the public api/ surface (no core/engine.h include);
// common/env.h is shared benchmark-harness plumbing, not engine internals.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "benchmark/benchmark.h"
#include "common/env.h"
#include "reptile/reptile.h"

namespace reptile {
namespace {

constexpr int kDistricts = 12;
constexpr int kVillages = 8;
constexpr int kYears = 16;
constexpr int kRowsPerGroup = 6;

Dataset MakePanel() {
  Table table;
  int district = table.AddDimensionColumn("district");
  int village = table.AddDimensionColumn("village");
  int year = table.AddDimensionColumn("year");
  int severity = table.AddMeasureColumn("severity");
  uint64_t state = 8; /* deterministic LCG noise */
  auto noise = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(state >> 11) / 9007199254740992.0 - 0.5;
  };
  for (int d = 0; d < kDistricts; ++d) {
    for (int v = 0; v < kVillages; ++v) {
      std::string district_name = "d" + std::to_string(d);
      std::string village_name = district_name + "_v" + std::to_string(v);
      for (int y = 0; y < kYears; ++y) {
        for (int r = 0; r < kRowsPerGroup; ++r) {
          table.SetDim(district, district_name);
          table.SetDim(village, village_name);
          table.SetDim(year, "y" + std::to_string(y));
          table.SetMeasure(severity, 5.0 + 0.4 * d + 0.25 * y + noise());
          table.CommitRow();
        }
      }
    }
  }
  Result<Dataset> dataset = Dataset::Make(
      std::move(table), {{"geo", {"district", "village"}}, {"time", {"year"}}});
  if (!dataset.ok()) {
    std::fprintf(stderr, "panel setup failed: %s\n", dataset.status().ToString().c_str());
    std::abort();
  }
  return std::move(dataset).value();
}

// One long-lived session per benchmark; drill state: years committed, geo
// drillable (every complaint shares the geo extension). STD complaints
// decompose into three primitives (COUNT, MEAN, STD).
Session& SharedSession() {
  static Session& session = *new Session([] {
    Result<Session> created = Session::Create(MakePanel());
    if (!created.ok()) {
      std::fprintf(stderr, "session setup failed: %s\n", created.status().ToString().c_str());
      std::abort();
    }
    Status committed = created->Commit("time");
    if (!committed.ok()) {
      std::fprintf(stderr, "commit failed: %s\n", committed.ToString().c_str());
      std::abort();
    }
    return std::move(created).value();
  }());
  return session;
}

std::vector<ComplaintSpec> MakeComplaints(int64_t n) {
  std::vector<ComplaintSpec> complaints;
  complaints.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    complaints.push_back(ComplaintSpec::TooHigh("std", "severity")
                             .Where("year", "y" + std::to_string(i % kYears)));
  }
  return complaints;
}

// Serialisation of a batch with the (legitimately scheduling-dependent)
// timing fields zeroed, so results can be compared byte-for-byte. The fit
// counters are cache temperature, not answers — the verify's first batch
// fits the shared models and every later batch reuses them — so they are
// zeroed along with the timings.
std::string TimelessJson(BatchExploreResponse batch) {
  batch.models_trained = 0;
  batch.fit_cache_hits = 0;
  batch.train_seconds = 0.0;
  batch.wall_seconds = 0.0;
  for (ExploreResponse& response : batch.responses) {
    for (HierarchyResponse& candidate : response.candidates) {
      candidate.train_seconds = 0.0;
      candidate.total_seconds = 0.0;
    }
  }
  return batch.ToJson();
}

// Aborts unless the batch produces byte-identical recommendations at every
// swept thread count (the Section 5.1.2 requirement: parallelism changes the
// schedule, never the answer).
void VerifyIdenticalAcrossThreads(int64_t batch_size, int max_threads) {
  Session& session = SharedSession();
  std::vector<ComplaintSpec> complaints = MakeComplaints(batch_size);
  Result<BatchExploreResponse> reference =
      session.RecommendAll(std::span<const ComplaintSpec>(complaints), BatchOptions().Threads(1));
  if (!reference.ok()) {
    std::fprintf(stderr, "verify failed: %s\n", reference.status().ToString().c_str());
    std::abort();
  }
  std::string expected = TimelessJson(*reference);
  for (int threads = 2; threads <= max_threads; threads *= 2) {
    Result<BatchExploreResponse> batch = session.RecommendAll(
        std::span<const ComplaintSpec>(complaints), BatchOptions().Threads(threads));
    if (!batch.ok()) {
      std::fprintf(stderr, "verify failed at %d threads: %s\n", threads,
                   batch.status().ToString().c_str());
      std::abort();
    }
    if (TimelessJson(*batch) != expected) {
      std::fprintf(stderr,
                   "verify failed: recommendations at %d threads differ from sequential\n",
                   threads);
      std::abort();
    }
  }
  std::fprintf(stderr, "fig08 verify: batch of %lld byte-identical at 1..%d threads\n",
               static_cast<long long>(batch_size), max_threads);
}

void BM_MultiQuery_Batched(benchmark::State& state) {
  Session& session = SharedSession();
  std::vector<ComplaintSpec> complaints = MakeComplaints(state.range(0));
  int64_t models = 0;
  for (auto _ : state) {
    Result<BatchExploreResponse> batch = session.RecommendAll(
        std::span<const ComplaintSpec>(complaints), BatchOptions().Threads(1));
    if (!batch.ok()) {
      state.SkipWithError(batch.status().ToString().c_str());
      return;
    }
    models = batch->models_trained;
    benchmark::DoNotOptimize(batch);
  }
  state.counters["models_trained"] = static_cast<double>(models);
}

void BM_MultiQuery_Sequential(benchmark::State& state) {
  Session& session = SharedSession();
  std::vector<ComplaintSpec> complaints = MakeComplaints(state.range(0));
  int64_t models = 0;
  for (auto _ : state) {
    int64_t before = session.models_trained();
    for (const ComplaintSpec& complaint : complaints) {
      Result<ExploreResponse> response = session.Recommend(complaint, BatchOptions().Threads(1));
      if (!response.ok()) {
        state.SkipWithError(response.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(response);
    }
    models = session.models_trained() - before;
  }
  state.counters["models_trained"] = static_cast<double>(models);
}

// Fixed batch, swept per-call worker count: the tentpole measurement. The
// "speedup" counter is this run's wall time relative to the 1-thread run of
// the same batch size (measured once up front, outside the timed loop).
double SequentialBaselineSeconds(int64_t batch_size) {
  Session& session = SharedSession();
  std::vector<ComplaintSpec> complaints = MakeComplaints(batch_size);
  // Warm the drill-down caches, then take the best of three.
  double best = 0.0;
  for (int rep = 0; rep < 4; ++rep) {
    Result<BatchExploreResponse> batch = session.RecommendAll(
        std::span<const ComplaintSpec>(complaints), BatchOptions().Threads(1));
    if (!batch.ok()) return 0.0;
    if (rep == 0) continue;
    if (best == 0.0 || batch->wall_seconds < best) best = batch->wall_seconds;
  }
  return best;
}

void BM_MultiQuery_Parallel(benchmark::State& state) {
  static std::map<int64_t, double> baseline;  // batch size -> 1-thread seconds
  Session& session = SharedSession();
  int64_t batch_size = state.range(0);
  int threads = static_cast<int>(state.range(1));
  if (baseline.find(batch_size) == baseline.end()) {
    baseline[batch_size] = SequentialBaselineSeconds(batch_size);
  }
  std::vector<ComplaintSpec> complaints = MakeComplaints(batch_size);
  int64_t models = 0;
  double wall = 0.0;
  int64_t iters = 0;
  for (auto _ : state) {
    Result<BatchExploreResponse> batch = session.RecommendAll(
        std::span<const ComplaintSpec>(complaints), BatchOptions().Threads(threads));
    if (!batch.ok()) {
      state.SkipWithError(batch.status().ToString().c_str());
      return;
    }
    models = batch->models_trained;
    wall += batch->wall_seconds;
    ++iters;
    benchmark::DoNotOptimize(batch);
  }
  state.counters["threads"] = threads;
  state.counters["models_trained"] = static_cast<double>(models);  // fits per batch
  if (iters > 0 && wall > 0.0 && baseline[batch_size] > 0.0) {
    state.counters["speedup"] =
        baseline[batch_size] / (wall / static_cast<double>(iters));
  }
}

void RegisterAll() {
  int64_t max_batch = EnvInt("REPTILE_FIG8_MAX_BATCH", 16);
  if (max_batch <= 0) max_batch = 16;
  int64_t max_threads = EnvInt("REPTILE_FIG8_MAX_THREADS", 8);
  if (max_threads <= 0) max_threads = 8;
  VerifyIdenticalAcrossThreads(max_batch, static_cast<int>(max_threads));
  for (auto fn : {std::make_pair("Fig8/MultiQuery/Batched", BM_MultiQuery_Batched),
                  std::make_pair("Fig8/MultiQuery/Sequential", BM_MultiQuery_Sequential)}) {
    auto* bench = benchmark::RegisterBenchmark(fn.first, fn.second)
                      ->Unit(benchmark::kMillisecond)
                      ->MinTime(0.05);
    for (int64_t n = 1; n <= max_batch; n *= 2) bench->Arg(n);
  }
  auto* parallel = benchmark::RegisterBenchmark("Fig8/MultiQuery/Parallel", BM_MultiQuery_Parallel)
                       ->Unit(benchmark::kMillisecond)
                       ->MinTime(0.05);
  for (int64_t t = 1; t <= max_threads; t *= 2) parallel->Args({max_batch, t});
}

}  // namespace
}  // namespace reptile

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  reptile::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
