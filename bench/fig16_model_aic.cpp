// Figure 16 (Appendix K): model quality via AIC on the FIST and Vote
// datasets. Four models per dataset: Linear (default features only),
// Linear-f (+ auxiliary feature), Multi-level, Multi-level-f. DeltaAIC is
// reported relative to the best model; a gap > 10 is "substantially better"
// (Burnham & Anderson).
//
// Paper shape: on FIST, multi-level models substantially beat linear ones;
// on Vote, models with the 2016 auxiliary feature substantially beat models
// without it, and Multi-level-f beats Linear-f.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "data/group_by.h"
#include "datagen/fist_gen.h"
#include "datagen/vote_gen.h"
#include "factor/frep.h"
#include "fmatrix/materialize.h"
#include "model/features.h"
#include "model/linear.h"
#include "model/model_eval.h"
#include "model/multilevel.h"

namespace reptile {
namespace {

struct EvalData {
  Matrix x;                          // materialised features
  std::vector<double> y;             // group statistic
  std::vector<int64_t> cluster_begin;
  int aux_column = -1;               // column to drop for the non-f variants
};

struct FourAic {
  double linear, linear_f, multilevel, multilevel_f;
};

// Drops `column` from a matrix (for the non-auxiliary variants).
Matrix DropColumn(const Matrix& x, int column) {
  Matrix out(x.rows(), x.cols() - 1);
  for (size_t r = 0; r < x.rows(); ++r) {
    size_t oc = 0;
    for (size_t c = 0; c < x.cols(); ++c) {
      if (static_cast<int>(c) == column) continue;
      out(r, oc++) = x(r, c);
    }
  }
  return out;
}

FourAic Evaluate(const EvalData& data) {
  FourAic out{};
  int64_t n = static_cast<int64_t>(data.y.size());
  Matrix x_nof = DropColumn(data.x, data.aux_column);

  LinearModel linear = TrainLinearDense(x_nof, data.y);
  out.linear = LinearAic(linear, n);
  LinearModel linear_f = TrainLinearDense(data.x, data.y);
  out.linear_f = LinearAic(linear_f, n);

  MultiLevelOptions options;
  {
    DenseEmBackend backend(&x_nof, data.cluster_begin, /*z_cols=*/{0});
    MultiLevelModel model = TrainMultiLevel(&backend, data.y, options);
    out.multilevel = MultiLevelAic(&backend, model, data.y);
  }
  {
    DenseEmBackend backend(&data.x, data.cluster_begin, {0});
    MultiLevelModel model = TrainMultiLevel(&backend, data.y, options);
    out.multilevel_f = MultiLevelAic(&backend, model, data.y);
  }
  return out;
}

void Print(const char* dataset, const FourAic& aic) {
  double best = std::min({aic.linear, aic.linear_f, aic.multilevel, aic.multilevel_f});
  std::printf("%-6s %-14s dAIC=%10.1f\n", dataset, "Linear", aic.linear - best);
  std::printf("%-6s %-14s dAIC=%10.1f\n", dataset, "Linear-f", aic.linear_f - best);
  std::printf("%-6s %-14s dAIC=%10.1f\n", dataset, "Multi-level", aic.multilevel - best);
  std::printf("%-6s %-14s dAIC=%10.1f\n\n", dataset, "Multi-level-f", aic.multilevel_f - best);
}

// FIST: y = MEAN severity per (year, village); geography is the drilled
// hierarchy, so clusters = (year, district) parents — the paper's village
// drill-down scenario, where the multi-level model absorbs the
// district-by-year interaction the additive main effects cannot. Features:
// intercept + main effects (year, region, district, village) + rainfall
// (village, year) as the auxiliary feature.
EvalData BuildFist() {
  FistStudy study = MakeCleanFist();
  const Table& t = study.dataset.table();
  int region = t.ColumnIndex("region"), district = t.ColumnIndex("district");
  int village = t.ColumnIndex("village"), year = t.ColumnIndex("year");
  int severity = t.ColumnIndex("severity");

  FTree intercept = FTree::Singleton();
  FTree time = FTree::FromTable(t, {year});
  FTree geo = FTree::FromTable(t, {region, district, village});
  FactorizedMatrix fm;
  fm.AddTree(&intercept);
  fm.AddTree(&time);
  fm.AddTree(&geo);  // geography last: clusters = (year, district)

  GroupByResult groups = GroupBy(t, {year, region, district, village}, severity);
  auto main_effect = [&](AttrId attr, size_t key_pos, int column) {
    FeatureColumn fc;
    fc.name = t.column_name(column);
    fc.attr = attr;
    fc.value_map = MainEffectMap(groups, key_pos, AggFn::kMean, t.dict(column).size());
    fm.AddColumn(std::move(fc));
  };
  FeatureColumn one;
  one.name = "intercept";
  one.attr = AttrId{0, 0};
  one.value_map = {1.0};
  fm.AddColumn(std::move(one));
  main_effect(AttrId{1, 0}, 0, year);
  main_effect(AttrId{2, 0}, 1, region);
  main_effect(AttrId{2, 1}, 2, district);
  main_effect(AttrId{2, 2}, 3, village);
  // Rainfall auxiliary: (village, year) multi-attribute feature.
  {
    FeatureColumn fc;
    fc.name = "rainfall";
    fc.is_multi = true;
    fc.attrs = {AttrId{2, 2}, AttrId{1, 0}};
    std::vector<int32_t> v_codes = TranslateCodes(
        study.rainfall.dict(study.rainfall.ColumnIndex("village")), t.dict(village),
        study.rainfall.dim_codes(study.rainfall.ColumnIndex("village")));
    std::vector<int32_t> y_codes = TranslateCodes(
        study.rainfall.dict(study.rainfall.ColumnIndex("year")), t.dict(year),
        study.rainfall.dim_codes(study.rainfall.ColumnIndex("year")));
    fc.multi_map = MultiAuxiliaryMapFromCodes(
        {&v_codes, &y_codes}, study.rainfall.measure(study.rainfall.ColumnIndex("rainfall")));
    fm.AddColumn(std::move(fc));
  }

  EvalData data;
  data.aux_column = fm.num_cols() - 1;
  data.x = MaterializeMatrix(fm);
  std::vector<Moments> moments =
      BuildGroupMoments(fm, t, {{}, {year}, {region, district, village}}, severity);
  data.y.resize(moments.size());
  for (size_t i = 0; i < moments.size(); ++i) data.y[i] = moments[i].Mean();
  data.cluster_begin.push_back(0);
  for (int64_t row = 1; row < fm.num_rows(); ++row) {
    if (fm.ClusterOfRow(row) != fm.ClusterOfRow(row - 1)) data.cluster_begin.push_back(row);
  }
  data.cluster_begin.push_back(fm.num_rows());
  return data;
}

// Vote: y = 2020 share per county; clusters = states; features intercept +
// state main effect + 2016 share as the auxiliary feature.
EvalData BuildVote() {
  VoteCountry country = MakeVoteCountry();
  const Table& t = country.dataset.table();
  int state = t.ColumnIndex("state"), county = t.ColumnIndex("county");
  int share = t.ColumnIndex("share2020");

  FTree intercept = FTree::Singleton();
  FTree geo = FTree::FromTable(t, {state, county});
  FactorizedMatrix fm;
  fm.AddTree(&intercept);
  fm.AddTree(&geo);  // clusters = states

  GroupByResult groups = GroupBy(t, {state, county}, share);
  FeatureColumn one;
  one.name = "intercept";
  one.attr = AttrId{0, 0};
  one.value_map = {1.0};
  fm.AddColumn(std::move(one));
  {
    FeatureColumn fc;
    fc.name = "state";
    fc.attr = AttrId{1, 0};
    fc.value_map = MainEffectMap(groups, 0, AggFn::kMean, t.dict(state).size());
    fm.AddColumn(std::move(fc));
  }
  {
    FeatureColumn fc;
    fc.name = "share2016";
    fc.attr = AttrId{1, 1};
    int aux_county = country.aux2016.ColumnIndex("county");
    std::vector<int32_t> codes = TranslateCodes(country.aux2016.dict(aux_county),
                                                t.dict(county),
                                                country.aux2016.dim_codes(aux_county));
    fc.value_map = AuxiliaryMapFromCodes(
        codes, country.aux2016.measure(country.aux2016.ColumnIndex("share2016")),
        t.dict(county).size());
    fm.AddColumn(std::move(fc));
  }

  EvalData data;
  data.aux_column = fm.num_cols() - 1;
  data.x = MaterializeMatrix(fm);
  std::vector<Moments> moments = BuildGroupMoments(fm, t, {{}, {state, county}}, share);
  data.y.resize(moments.size());
  for (size_t i = 0; i < moments.size(); ++i) data.y[i] = moments[i].Mean();
  data.cluster_begin.push_back(0);
  for (int64_t row = 1; row < fm.num_rows(); ++row) {
    if (fm.ClusterOfRow(row) != fm.ClusterOfRow(row - 1)) data.cluster_begin.push_back(row);
  }
  data.cluster_begin.push_back(fm.num_rows());
  return data;
}

}  // namespace
}  // namespace reptile

int main() {
  std::printf("Figure 16: model evaluation (DeltaAIC vs the best model; >10 = substantially\n"
              "better, Burnham & Anderson)\n\n");
  reptile::Print("FIST", reptile::Evaluate(reptile::BuildFist()));
  reptile::Print("Vote", reptile::Evaluate(reptile::BuildVote()));
  std::printf("Expected shape (paper): FIST — multi-level models substantially better than\n"
              "linear; Vote — auxiliary (2016) models substantially better than non-aux,\n"
              "and Multi-level-f better than Linear-f.\n");
  return 0;
}
