// Figure 12 (Section 5.2.3): complaint ablation — Reptile vs Outlier when
// several groups are corrupted but only some in the complaint's direction.
// Two groups carry the true error, a third is corrupted the opposite way
// (false positive). Outlier ranks by |observed - predicted| and cannot tell
// the three apart, capping its top-1 accuracy near 2/3; Reptile uses the
// complaint direction to reject the false positive.

#include <cstdio>
#include <vector>

#include "common/env.h"
#include "common/rng.h"
#include "core/engine.h"
#include "datagen/accuracy_gen.h"

namespace reptile {
namespace {

// Returns (reptile_top, outlier_top) group codes for one instance. The
// engine is run once with a large top_k; the outlier pick is the group with
// the largest |observed - repaired| complaint statistic, reusing the same
// model predictions (Section 5.2.3 compares exactly this ablation).
std::pair<int32_t, int32_t> RunBoth(const AccuracyInstance& inst) {
  EngineOptions options;
  options.top_k = 1000;
  Engine engine(&inst.dataset, options);
  auto register_aux = [&](const char* name, const Table& table) {
    AuxiliarySpec spec;
    spec.name = name;
    spec.table = &table;
    spec.join_attrs = {"group"};
    spec.measure = "aux";
    engine.RegisterAuxiliary(std::move(spec));
  };
  // One auxiliary table per complained statistic (Section 5.2.1): COUNT and
  // MEAN complaints use their own table; SUM decomposes into both.
  switch (inst.complaint.agg) {
    case AggFn::kCount:
      register_aux("aux_count", inst.aux_count);
      break;
    case AggFn::kMean:
      register_aux("aux_mean", inst.aux_mean);
      break;
    case AggFn::kStd:
    case AggFn::kVar:
      register_aux("aux_std", inst.aux_std);
      break;
    case AggFn::kSum:
      register_aux("aux_count", inst.aux_count);
      register_aux("aux_mean", inst.aux_mean);
      break;
  }
  Recommendation rec = engine.RecommendDrillDown(inst.complaint);
  if (rec.best_index < 0 || rec.best().top_groups.empty()) return {-1, -1};
  const auto& groups = rec.best().top_groups;
  int32_t reptile_top = groups[0].key[0];
  int32_t outlier_top = -1;
  double best_dev = -1.0;
  for (const GroupRecommendation& g : groups) {
    double dev = std::fabs(g.observed.Value(inst.complaint.agg) -
                           g.repaired.Value(inst.complaint.agg));
    if (dev > best_dev) {
      best_dev = dev;
      outlier_top = g.key[0];
    }
  }
  return {reptile_top, outlier_top};
}

bool IsHit(int32_t top, const std::vector<int32_t>& truth) {
  for (int32_t t : truth) {
    if (top == t) return true;
  }
  return false;
}

}  // namespace
}  // namespace reptile

int main() {
  using namespace reptile;
  int reps = static_cast<int>(EnvInt("REPTILE_FIG12_REPS", 60));
  std::vector<double> rhos = {0.6, 0.7, 0.8, 0.9, 1.0};
  std::vector<AblationCondition> conditions = {AblationCondition::kMissingPlusDup,
                                               AblationCondition::kDecreasePlusIncrease,
                                               AblationCondition::kAll};
  std::printf("Figure 12: top-1 accuracy with 2 true errors + 1 false positive "
              "(%d datasets per cell)\n\n",
              reps);
  std::printf("%-32s %5s %9s %9s\n", "condition", "rho", "Reptile", "Outlier");
  Rng rng(321);
  for (AblationCondition condition : conditions) {
    for (double rho : rhos) {
      int reptile_hits = 0, outlier_hits = 0;
      for (int rep = 0; rep < reps; ++rep) {
        AccuracyOptions options;
        AccuracyInstance inst = MakeAblationInstance(options, condition, rho, &rng);
        auto [reptile_top, outlier_top] = RunBoth(inst);
        reptile_hits += IsHit(reptile_top, inst.true_errors);
        outlier_hits += IsHit(outlier_top, inst.true_errors);
      }
      std::printf("%-32s %5.2f %9.2f %9.2f\n", AblationConditionName(condition).c_str(), rho,
                  reptile_hits / static_cast<double>(reps),
                  outlier_hits / static_cast<double>(reps));
    }
    std::printf("\n");
  }
  std::printf("Expected shape (paper): Outlier hovers at 50-70%% (bounded by 2/3: it\n"
              "cannot distinguish the false positive); Reptile is well above it.\n");
  return 0;
}
