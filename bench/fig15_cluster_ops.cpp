// Figure 15 (Appendix F): per-cluster matrix operations — cluster gram,
// cluster left multiplication and cluster right multiplication — factorised
// (incremental, Algorithms 5-7) vs a LAPACK-style implementation that
// slices each cluster out of the materialised matrix and runs dense kernels
// on it (the per-cluster call pattern of the paper's baseline).
//
// Setup: d = 1..REPTILE_FIG15_MAX_D hierarchies x 3 attributes, w = 10;
// X is 10^d x (3d + 1) with 10^(d-1) clusters of ~10 rows. Paper shape at
// d = 7: 3x (gram), 5.8x (left), 6.9x (right) in Reptile's favour.

#include <map>

#include "baselines/naive_trainer.h"
#include "benchmark/benchmark.h"
#include "common/env.h"
#include "common/rng.h"
#include "datagen/synthetic.h"
#include "fmatrix/cluster_ops.h"
#include "fmatrix/materialize.h"
#include "model/multilevel.h"

namespace reptile {
namespace {

struct Workload {
  SyntheticMatrix sm;
  Matrix dense;
  std::vector<int64_t> cluster_begin;
  std::vector<int> cols;
  std::vector<double> r;
  Matrix b;  // G x q coefficients for the right multiplication
};

const Workload& WorkloadFor(int d) {
  static std::map<int, Workload>& cache = *new std::map<int, Workload>();
  auto it = cache.find(d);
  if (it == cache.end()) {
    SyntheticOptions options;
    options.num_hierarchies = d;
    options.attrs_per_hierarchy = 3;
    options.cardinality = 10;
    options.fan_leaves = true;  // Appendix F: clusters of shape 10 x (3d+1)
    Workload w;
    w.sm = MakeSyntheticMatrix(options);
    w.dense = MaterializeMatrix(w.sm.fm);
    w.cluster_begin = ClusterBeginsOf(w.sm.fm);
    for (int c = 0; c < w.sm.fm.num_cols(); ++c) w.cols.push_back(c);
    Rng rng(5);
    w.r.resize(static_cast<size_t>(w.sm.fm.num_rows()));
    for (double& v : w.r) v = rng.Normal(0.0, 1.0);
    w.b = Matrix(static_cast<size_t>(w.sm.fm.num_clusters()), w.cols.size());
    for (size_t i = 0; i < w.b.size(); ++i) w.b.mutable_data()[i] = rng.Normal(0.0, 1.0);
    it = cache.emplace(d, std::move(w)).first;
  }
  return it->second;
}

// Slices cluster g's rows out of the materialised matrix (the LAPACK-style
// baseline materialises per-cluster operands before each kernel call).
Matrix SliceCluster(const Workload& w, size_t g) {
  int64_t begin = w.cluster_begin[g];
  int64_t end = w.cluster_begin[g + 1];
  Matrix xi(static_cast<size_t>(end - begin), w.cols.size());
  for (int64_t row = begin; row < end; ++row) {
    const double* src_row = w.dense.RowPtr(static_cast<size_t>(row));
    double* dst = xi.RowPtr(static_cast<size_t>(row - begin));
    for (size_t c = 0; c < w.cols.size(); ++c) dst[c] = src_row[w.cols[c]];
  }
  return xi;
}

void BM_ClusterGram_Dense(benchmark::State& state) {
  const Workload& w = WorkloadFor(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    double sink = 0.0;
    for (size_t g = 0; g + 1 < w.cluster_begin.size(); ++g) {
      Matrix xi = SliceCluster(w, g);
      Matrix ztz = xi.Transposed().Multiply(xi);
      sink += ztz(0, 0);
    }
    benchmark::DoNotOptimize(sink);
  }
}

void BM_ClusterGram_Factorized(benchmark::State& state) {
  const Workload& w = WorkloadFor(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    double sink = 0.0;
    ForEachClusterGram(w.sm.fm, w.cols, nullptr,
                       [&](const ClusterData& data) { sink += (*data.gram)(0, 0); });
    benchmark::DoNotOptimize(sink);
  }
}

// Cluster left multiplication D_i · X_i: streamed as Z_i^T r_i.
void BM_ClusterLeft_Dense(benchmark::State& state) {
  const Workload& w = WorkloadFor(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    double sink = 0.0;
    for (size_t g = 0; g + 1 < w.cluster_begin.size(); ++g) {
      Matrix xi = SliceCluster(w, g);
      std::vector<double> ri(w.r.begin() + w.cluster_begin[g],
                             w.r.begin() + w.cluster_begin[g + 1]);
      Matrix ztr = Matrix::RowVector(ri).Multiply(xi);
      sink += ztr(0, 0);
    }
    benchmark::DoNotOptimize(sink);
  }
}

void BM_ClusterLeft_Factorized(benchmark::State& state) {
  const Workload& w = WorkloadFor(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    double sink = 0.0;
    ForEachClusterLeft(w.sm.fm, w.cols, w.r,
                       [&](const ClusterData& data) { sink += (*data.ztr)[0]; });
    benchmark::DoNotOptimize(sink);
  }
}

void BM_ClusterRight_Dense(benchmark::State& state) {
  const Workload& w = WorkloadFor(static_cast<int>(state.range(0)));
  std::vector<double> out(static_cast<size_t>(w.sm.fm.num_rows()));
  for (auto _ : state) {
    for (size_t g = 0; g + 1 < w.cluster_begin.size(); ++g) {
      Matrix xi = SliceCluster(w, g);
      Matrix bi(w.cols.size(), 1);
      for (size_t c = 0; c < w.cols.size(); ++c) bi(c, 0) = w.b(g, c);
      Matrix product = xi.Multiply(bi);
      for (size_t i = 0; i < product.rows(); ++i) {
        out[static_cast<size_t>(w.cluster_begin[g]) + i] = product(i, 0);
      }
    }
    benchmark::DoNotOptimize(out);
  }
}

void BM_ClusterRight_Factorized(benchmark::State& state) {
  const Workload& w = WorkloadFor(static_cast<int>(state.range(0)));
  std::vector<double> out(static_cast<size_t>(w.sm.fm.num_rows()));
  for (auto _ : state) {
    ClusterRightMultiply(w.sm.fm, w.cols, w.b, &out);
    benchmark::DoNotOptimize(out);
  }
}

void RegisterAll() {
  int max_d = static_cast<int>(EnvInt("REPTILE_FIG15_MAX_D", 5));
  auto add = [&](const char* name, void (*fn)(benchmark::State&)) {
    benchmark::RegisterBenchmark(name, fn)
        ->DenseRange(1, max_d)
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.05);
  };
  add("Fig15/ClusterGram/Dense", BM_ClusterGram_Dense);
  add("Fig15/ClusterGram/Factorized", BM_ClusterGram_Factorized);
  add("Fig15/ClusterLeft/Dense", BM_ClusterLeft_Dense);
  add("Fig15/ClusterLeft/Factorized", BM_ClusterLeft_Factorized);
  add("Fig15/ClusterRight/Dense", BM_ClusterRight_Dense);
  add("Fig15/ClusterRight/Factorized", BM_ClusterRight_Factorized);
}

}  // namespace
}  // namespace reptile

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  reptile::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
