// Saturation profile of the epoll serving tier, emitted as
// BENCH_server_saturation.json: a client-count sweep (p50/p99 latency and
// throughput per step) over loopback /v1/recommend against a ReactorServer
// with a fixed thread budget, followed by an idle-hold phase that parks 256
// keep-alive connections and proves the process thread count does not move —
// idle clients are connection state, not threads.
//
// Like bench/model_cache.cpp (and unlike the google-benchmark binaries) this
// has NO external dependency: it is part of the tier-1 gate, so it must
// build wherever the library builds. scripts/check.sh runs it and asserts
// the structural contract — every request 200, byte-identical bodies across
// the sweep, idle_ok true — not absolute timings, which a loaded CI machine
// cannot promise. Exits non-zero when the contract breaks.
//
// Usage: server_saturation [output.json]
//        (default ./BENCH_server_saturation.json)

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "datagen/panel_gen.h"
#include "net/reactor_server.h"
#include "reptile/reptile.h"
#include "server/http_client.h"
#include "server/service.h"

namespace reptile {
namespace {

constexpr int kYears = 4;
constexpr int kIdleConnections = 256;
constexpr int kRequestsPerClient = 24;

Dataset MakePanel() {
  PanelSpec spec;
  spec.districts = 4;
  spec.villages_per_district = 3;
  spec.years = kYears;
  spec.rows_per_group = 3;
  return MakeSeverityPanel(spec);
}

std::string RecommendBody(int year) {
  return R"({"dataset":"panel","complaint":{"aggregate":"std",)"
         R"("measure":"severity","where":[{"column":"year","value":"y)" +
         std::to_string(year) +
         R"("}]},"options":{"zero_timings":true}})";
}

int ProcessThreadCount() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) return std::atoi(line.c_str() + 8);
  }
  return -1;
}

/// A bare connected socket held open to occupy a reactor slot.
class IdleConnection {
 public:
  explicit IdleConnection(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~IdleConnection() {
    if (fd_ >= 0) ::close(fd_);
  }
  IdleConnection(IdleConnection&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  IdleConnection& operator=(IdleConnection&&) = delete;
  bool ok() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

struct SweepStep {
  int clients = 0;
  int requests = 0;     // total completed
  int failures = 0;     // non-200 or transport errors
  int mismatches = 0;   // body differed from the serial reference
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double rps = 0.0;
};

double Percentile(std::vector<double>& sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  size_t index = static_cast<size_t>(q * static_cast<double>(sorted_ms.size() - 1));
  return sorted_ms[index];
}

SweepStep RunStep(int port, int clients, const std::vector<std::string>& expected) {
  SweepStep step;
  step.clients = clients;
  std::mutex mutex;
  std::vector<double> latencies_ms;
  std::atomic<int> failures{0};
  std::atomic<int> mismatches{0};

  Timer wall;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      HttpClient client("127.0.0.1", port);
      std::vector<double> local_ms;
      local_ms.reserve(kRequestsPerClient);
      for (int i = 0; i < kRequestsPerClient; ++i) {
        int year = (c + i) % kYears;
        Timer timer;
        Result<HttpClientResponse> response =
            client.Post("/v1/recommend", RecommendBody(year));
        double ms = timer.Seconds() * 1000.0;
        if (!response.ok() || response->status != 200) {
          failures.fetch_add(1);
          continue;
        }
        if (response->body != expected[static_cast<size_t>(year)]) {
          mismatches.fetch_add(1);
          continue;
        }
        local_ms.push_back(ms);
      }
      std::lock_guard<std::mutex> lock(mutex);
      latencies_ms.insert(latencies_ms.end(), local_ms.begin(), local_ms.end());
    });
  }
  for (std::thread& t : threads) t.join();
  double wall_seconds = wall.Seconds();

  std::sort(latencies_ms.begin(), latencies_ms.end());
  step.requests = static_cast<int>(latencies_ms.size());
  step.failures = failures.load();
  step.mismatches = mismatches.load();
  step.p50_ms = Percentile(latencies_ms, 0.50);
  step.p99_ms = Percentile(latencies_ms, 0.99);
  step.rps = wall_seconds > 0.0 ? static_cast<double>(step.requests) / wall_seconds : 0.0;
  return step;
}

int Run(const char* output_path) {
  ReptileService service;
  Status added = service.AddDataset("panel", MakePanel(), {"time"});
  if (!added.ok()) {
    std::fprintf(stderr, "dataset setup failed: %s\n", added.ToString().c_str());
    return 1;
  }

  ReactorServerOptions options;
  options.num_threads = 2;  // fixed budget: the point of the idle-hold phase
  options.tick_interval_ms = 50;
  options.stream_factory = [&service](const HttpRequest& head) {
    return service.StartStreamingBody(head);
  };
  ReactorServer server(std::move(options), [&service](const HttpRequest& request) {
    return service.Handle(request);
  });
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", started.ToString().c_str());
    return 1;
  }

  // Serial reference pass: warms every model fit and pins the expected bytes
  // (zero_timings makes them deterministic) the sweep verifies against.
  std::vector<std::string> expected;
  {
    HttpClient client("127.0.0.1", server.port());
    for (int y = 0; y < kYears; ++y) {
      Result<HttpClientResponse> response =
          client.Post("/v1/recommend", RecommendBody(y));
      if (!response.ok() || response->status != 200) {
        std::fprintf(stderr, "warmup request failed (year %d)\n", y);
        return 1;
      }
      expected.push_back(response->body);
    }
  }

  // Saturation sweep: 1 → 4 → 16 concurrent clients over 2 worker threads.
  std::vector<SweepStep> sweep;
  for (int clients : {1, 4, 16}) {
    sweep.push_back(RunStep(server.port(), clients, expected));
  }

  // Idle-hold phase: 256 parked keep-alive connections must not grow the
  // process and must not block a live request.
  int threads_before = ProcessThreadCount();
  std::vector<IdleConnection> idle;
  idle.reserve(kIdleConnections);
  bool idle_connect_ok = true;
  for (int i = 0; i < kIdleConnections; ++i) {
    idle.emplace_back(server.port());
    if (!idle.back().ok()) idle_connect_ok = false;
  }
  Timer settle;
  while (server.open_connections() < kIdleConnections && settle.Seconds() < 5.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  int64_t open_with_idle = server.open_connections();
  int threads_after = ProcessThreadCount();
  bool probe_ok = false;
  {
    HttpClient client("127.0.0.1", server.port());
    Result<HttpClientResponse> probe = client.Post("/v1/recommend", RecommendBody(0));
    probe_ok = probe.ok() && probe->status == 200 && probe->body == expected[0];
  }
  bool idle_ok = idle_connect_ok && open_with_idle >= kIdleConnections &&
                 threads_after == threads_before && probe_ok;
  idle.clear();

  std::string json = "{\"workload\":\"reactor_loopback_recommend\",";
  json += "\"worker_threads\":2,\"requests_per_client\":" +
          std::to_string(kRequestsPerClient) + ",\"sweep\":[";
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepStep& step = sweep[i];
    char buffer[256];
    std::snprintf(buffer, sizeof(buffer),
                  "%s{\"clients\":%d,\"requests\":%d,\"failures\":%d,"
                  "\"mismatches\":%d,\"p50_ms\":%.3f,\"p99_ms\":%.3f,"
                  "\"rps\":%.1f}",
                  i == 0 ? "" : ",", step.clients, step.requests, step.failures,
                  step.mismatches, step.p50_ms, step.p99_ms, step.rps);
    json += buffer;
  }
  json += "],\"idle\":{\"connections\":" + std::to_string(kIdleConnections) +
          ",\"open_with_idle\":" + std::to_string(open_with_idle) +
          ",\"threads_before\":" + std::to_string(threads_before) +
          ",\"threads_after\":" + std::to_string(threads_after) +
          ",\"probe_ok\":" + (probe_ok ? "true" : "false") +
          ",\"idle_ok\":" + (idle_ok ? "true" : "false") + "},";
  json += "\"reactor\":" + server.StatsJson() + "}\n";

  std::ofstream out(output_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", output_path);
    return 1;
  }
  out << json;
  out.close();
  std::fputs(json.c_str(), stdout);

  server.Stop();

  // The structural contract check.sh gates on — correctness, not timings.
  for (const SweepStep& step : sweep) {
    if (step.failures != 0 || step.mismatches != 0) {
      std::fprintf(stderr, "FAIL: %d clients saw %d failures / %d mismatched bodies\n",
                   step.clients, step.failures, step.mismatches);
      return 1;
    }
    if (step.requests != step.clients * kRequestsPerClient) {
      std::fprintf(stderr, "FAIL: %d clients completed %d/%d requests\n", step.clients,
                   step.requests, step.clients * kRequestsPerClient);
      return 1;
    }
  }
  if (!idle_ok) {
    std::fprintf(stderr,
                 "FAIL: idle-hold broke (connect_ok=%d open=%lld threads %d -> %d "
                 "probe_ok=%d)\n",
                 idle_connect_ok, static_cast<long long>(open_with_idle), threads_before,
                 threads_after, probe_ok);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace reptile

int main(int argc, char** argv) {
  const char* output = argc > 1 ? argv[1] : "BENCH_server_saturation.json";
  return reptile::Run(output);
}
