// The fitted-model cache in numbers: cold vs warm recommend latency and —
// the hard contract scripts/check.sh asserts — fits performed at each cache
// temperature, emitted as BENCH_model_cache.json.
//
// Three measurements over the fig08 complaint panel (one STD complaint per
// year, RecommendAll):
//   cold          — a fresh PreparedDataset: the first session builds the
//                   aggregate cache AND trains every primitive model;
//   warm_session  — a NEW session over the warmed dataset: shared aggregates
//                   and shared fitted models, so its batch performs 0 fits;
//   warm_repeat   — the same session repeating the batch: the steady-state
//                   per-request floor.
//
// Unlike the other bench/ binaries this one has no google-benchmark
// dependency: it is part of the tier-1 gate (check.sh runs it and asserts
// "warm_fits":0), so it must build wherever the library builds. Exits
// non-zero if a warm run performs any fit.
//
// Usage: model_cache [output.json]   (default ./BENCH_model_cache.json)

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/timer.h"
#include "datagen/panel_gen.h"
#include "reptile/reptile.h"

namespace reptile {
namespace {

Dataset MakePanel() {
  PanelSpec spec;
  spec.districts = 8;
  spec.villages_per_district = 6;
  spec.years = 8;
  spec.rows_per_group = 4;
  return MakeSeverityPanel(spec);
}

DatasetHandle PrepareOrDie() {
  Result<DatasetHandle> handle = PreparedDataset::Prepare(MakePanel());
  if (!handle.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", handle.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(handle).value();
}

Session OpenOrDie(const DatasetHandle& handle) {
  Result<Session> session = Session::Open(handle);
  if (!session.ok() || !session->Commit("time").ok()) {
    std::fprintf(stderr, "session open failed\n");
    std::exit(1);
  }
  return std::move(session).value();
}

std::vector<ComplaintSpec> PanelComplaints() {
  std::vector<ComplaintSpec> complaints;
  for (int y = 0; y < 8; ++y) {
    complaints.push_back(
        ComplaintSpec::TooHigh("std", "severity").Where("year", "y" + std::to_string(y)));
  }
  return complaints;
}

struct Measurement {
  double millis = 0.0;
  int64_t fits = 0;
};

Measurement RecommendBatch(Session& session, const std::vector<ComplaintSpec>& complaints) {
  int64_t before = session.models_trained();
  Timer timer;
  Result<BatchExploreResponse> batch =
      session.RecommendAll(std::span<const ComplaintSpec>(complaints));
  Measurement m;
  m.millis = timer.Seconds() * 1000.0;
  if (!batch.ok()) {
    std::fprintf(stderr, "recommend failed: %s\n", batch.status().ToString().c_str());
    std::exit(1);
  }
  m.fits = session.models_trained() - before;
  return m;
}

int Run(const char* output_path) {
  std::vector<ComplaintSpec> complaints = PanelComplaints();

  // Cold: fresh dataset, first session pays aggregates + every model fit.
  DatasetHandle handle = PrepareOrDie();
  Session cold_session = OpenOrDie(handle);
  Measurement cold = RecommendBatch(cold_session, complaints);

  // Warm session: a brand-new session over the warmed dataset.
  Session warm_session = OpenOrDie(handle);
  Measurement warm = RecommendBatch(warm_session, complaints);

  // Steady state: the same session again.
  Measurement repeat = RecommendBatch(warm_session, complaints);

  const double speedup = warm.millis > 0.0 ? cold.millis / warm.millis : 0.0;
  char json[1024];
  std::snprintf(
      json, sizeof(json),
      "{\"workload\":\"fig08_panel_8x6x8\",\"complaints\":%zu,"
      "\"cold_ms\":%.3f,\"cold_fits\":%lld,"
      "\"warm_session_ms\":%.3f,\"warm_fits\":%lld,"
      "\"warm_repeat_ms\":%.3f,\"warm_repeat_fits\":%lld,"
      "\"cold_over_warm_speedup\":%.2f,"
      "\"model_cache\":{\"entries\":%lld,\"hits\":%lld,\"misses\":%lld,\"fits\":%lld}}\n",
      complaints.size(), cold.millis, static_cast<long long>(cold.fits), warm.millis,
      static_cast<long long>(warm.fits), repeat.millis,
      static_cast<long long>(repeat.fits), speedup,
      static_cast<long long>(handle->model_cache_entries()),
      static_cast<long long>(handle->model_cache_hits()),
      static_cast<long long>(handle->model_cache_misses()),
      static_cast<long long>(handle->model_cache_fits()));

  std::ofstream out(output_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", output_path);
    return 1;
  }
  out << json;
  out.close();
  std::fputs(json, stdout);

  // The warm-cache contract this binary exists to enforce.
  if (cold.fits <= 0) {
    std::fprintf(stderr, "FAIL: cold run performed no fits — the bench measured nothing\n");
    return 1;
  }
  if (warm.fits != 0 || repeat.fits != 0) {
    std::fprintf(stderr, "FAIL: warm runs performed %lld/%lld fits (expected 0)\n",
                 static_cast<long long>(warm.fits), static_cast<long long>(repeat.fits));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace reptile

int main(int argc, char** argv) {
  const char* output = argc > 1 ? argv[1] : "BENCH_model_cache.json";
  return reptile::Run(output);
}
