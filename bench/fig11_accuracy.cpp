// Figure 11 (Section 5.2.2): explanation accuracy of Reptile vs Raw,
// Sensitivity and Support across error classes and auxiliary-data
// correlation strengths. One hierarchy of 100 groups, one corrupted group
// per dataset; accuracy = fraction of datasets where the top-ranked group is
// the corrupted one.
//
// Paper shape: Reptile consistently highest and rising with correlation;
// Raw fails Missing/Dup entirely (record-level repairs can't change counts)
// but does well on Dup+Increase; Sensitivity and Support are flat (no
// auxiliary data); Support only works under duplication.

#include <cstdio>
#include <map>
#include <vector>

#include "baselines/raw_winsor.h"
#include "baselines/sensitivity.h"
#include "baselines/support.h"
#include "common/env.h"
#include "common/rng.h"
#include "core/engine.h"
#include "datagen/accuracy_gen.h"

namespace reptile {
namespace {

struct Scores {
  std::map<std::string, int> correct;
  int total = 0;
};

// Runs Reptile on one instance and returns the top group's code, or -1.
int32_t RunReptile(const AccuracyInstance& inst) {
  EngineOptions options;
  options.top_k = 1;
  Engine engine(&inst.dataset, options);
  auto register_aux = [&](const char* name, const Table& table) {
    AuxiliarySpec spec;
    spec.name = name;
    spec.table = &table;
    spec.join_attrs = {"group"};
    spec.measure = "aux";
    engine.RegisterAuxiliary(std::move(spec));
  };
  // One auxiliary table per complained statistic (Section 5.2.1): COUNT and
  // MEAN complaints use their own table; SUM decomposes into both.
  switch (inst.complaint.agg) {
    case AggFn::kCount:
      register_aux("aux_count", inst.aux_count);
      break;
    case AggFn::kMean:
      register_aux("aux_mean", inst.aux_mean);
      break;
    case AggFn::kStd:
    case AggFn::kVar:
      register_aux("aux_std", inst.aux_std);
      break;
    case AggFn::kSum:
      register_aux("aux_count", inst.aux_count);
      register_aux("aux_mean", inst.aux_mean);
      break;
  }
  Recommendation rec = engine.RecommendDrillDown(inst.complaint);
  if (rec.best_index < 0 || rec.best().top_groups.empty()) return -1;
  return rec.best().top_groups[0].key[0];
}

bool IsHit(int32_t top, const std::vector<int32_t>& truth) {
  for (int32_t t : truth) {
    if (top == t) return true;
  }
  return false;
}

}  // namespace
}  // namespace reptile

int main() {
  using namespace reptile;
  int reps = static_cast<int>(EnvInt("REPTILE_FIG11_REPS", 60));
  std::vector<double> rhos = {0.6, 0.7, 0.8, 0.9, 1.0};
  std::vector<ErrorType> types = {ErrorType::kMissing,        ErrorType::kDup,
                                  ErrorType::kIncrease,       ErrorType::kDecrease,
                                  ErrorType::kMissingDecrease, ErrorType::kDupIncrease};

  std::printf("Figure 11: top-1 accuracy over %d datasets per cell (rho = aux correlation)\n\n",
              reps);
  std::printf("%-24s %5s %9s %9s %12s %9s\n", "error (complaint)", "rho", "Reptile", "Raw",
              "Sensitivity", "Support");
  Rng rng(123);
  for (ErrorType type : types) {
    for (double rho : rhos) {
      int reptile_hits = 0, raw_hits = 0, sens_hits = 0, supp_hits = 0;
      for (int rep = 0; rep < reps; ++rep) {
        AccuracyOptions options;
        AccuracyInstance inst = MakeAccuracyInstance(options, type, rho, &rng);
        const Table& table = inst.dataset.table();
        std::vector<int> key_columns = {table.ColumnIndex("group")};

        int32_t top = RunReptile(inst);
        reptile_hits += IsHit(top, inst.true_errors);

        // Raw needs a measure column even for COUNT complaints (its repair
        // is value clipping; counts are unchanged, so it fails by design).
        Complaint raw_complaint = inst.complaint;
        if (raw_complaint.measure_column < 0) {
          raw_complaint.measure_column = table.ColumnIndex("m");
        }
        std::vector<ScoredGroup> raw = RawWinsorRank(table, key_columns, raw_complaint);
        raw_hits += !raw.empty() && IsHit(raw[0].key[0], inst.true_errors);

        GroupByResult siblings =
            GroupBy(table, key_columns, inst.complaint.measure_column, inst.complaint.filter);
        std::vector<ScoredGroup> sens = SensitivityRank(siblings, inst.complaint);
        sens_hits += !sens.empty() && IsHit(sens[0].key[0], inst.true_errors);
        std::vector<ScoredGroup> supp = SupportRank(siblings);
        supp_hits += !supp.empty() && IsHit(supp[0].key[0], inst.true_errors);
      }
      double denom = static_cast<double>(reps);
      std::printf("%-24s %5.2f %9.2f %9.2f %12.2f %9.2f\n", ErrorTypeName(type).c_str(), rho,
                  reptile_hits / denom, raw_hits / denom, sens_hits / denom,
                  supp_hits / denom);
    }
    std::printf("\n");
  }
  std::printf("Expected shape (paper): Reptile consistently highest, rising with rho;\n"
              "Raw ~0 for Missing/Dup, strong only for Dup+Increase; Sensitivity and\n"
              "Support flat, Support good only under duplication.\n");
  return 0;
}
