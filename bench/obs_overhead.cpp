// The observability tax in numbers: the fig08 complaint panel through
// Session::RecommendAll with the full instrumentation path attached (a
// TraceContext recording stage spans, fed into latency histograms the way
// ReptileService::Handle does) versus detached (BatchOptions::trace null, the
// shipped default for in-process callers) — emitted as
// BENCH_observability.json.
//
// The contract scripts/check.sh asserts: the instrumented arm records spans
// (the pipeline is actually traced, not silently skipped) and costs less
// than 2% over the no-op arm — with a small absolute floor so a sub-
// millisecond scheduling wobble on a 1-CPU CI box cannot fail a relative
// gate. Both arms run over a pre-warmed dataset and take the minimum of
// several repeats: overhead is a steady-state property, and min-of-N is the
// noise-robust estimator for it.
//
// Benchmark-free (no google-benchmark dependency) like the other gate
// benches: it must build and run wherever the library builds.
//
// Usage: obs_overhead [output.json]   (default ./BENCH_observability.json)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/timer.h"
#include "datagen/panel_gen.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "reptile/reptile.h"

namespace reptile {
namespace {

constexpr int kRepeats = 9;
constexpr double kMaxOverheadPct = 2.0;
// Absolute noise floor: a delta this small is scheduling jitter, not
// instrumentation cost, regardless of what the ratio says.
constexpr double kNoiseFloorMs = 0.5;

Dataset MakePanel() {
  PanelSpec spec;
  spec.districts = 8;
  spec.villages_per_district = 6;
  spec.years = 8;
  spec.rows_per_group = 4;
  return MakeSeverityPanel(spec);
}

Session OpenOrDie(const DatasetHandle& handle) {
  Result<Session> session = Session::Open(handle);
  if (!session.ok() || !session->Commit("time").ok()) {
    std::fprintf(stderr, "session open failed\n");
    std::exit(1);
  }
  return std::move(session).value();
}

std::vector<ComplaintSpec> PanelComplaints() {
  std::vector<ComplaintSpec> complaints;
  for (int y = 0; y < 8; ++y) {
    complaints.push_back(
        ComplaintSpec::TooHigh("std", "severity").Where("year", "y" + std::to_string(y)));
  }
  return complaints;
}

void RunOrDie(Session& session, const std::vector<ComplaintSpec>& complaints,
              const BatchOptions& options) {
  Result<BatchExploreResponse> batch =
      session.RecommendAll(std::span<const ComplaintSpec>(complaints), options);
  if (!batch.ok()) {
    std::fprintf(stderr, "recommend failed: %s\n", batch.status().ToString().c_str());
    std::exit(1);
  }
}

int Run(const char* output_path) {
  Result<DatasetHandle> handle = PreparedDataset::Prepare(MakePanel());
  if (!handle.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", handle.status().ToString().c_str());
    std::exit(1);
  }
  Session session = OpenOrDie(*handle);
  std::vector<ComplaintSpec> complaints = PanelComplaints();

  // Warm everything once — aggregate cache, fitted models — so both arms
  // measure the steady-state request path, not one-time fit cost.
  RunOrDie(session, complaints, BatchOptions());

  // The histograms the instrumented arm feeds, mirroring the service's
  // per-stage and overall series.
  MetricsRegistry registry;
  Histogram* overall = registry.GetHistogram(
      "reptile_http_request_duration_seconds", "bench overall latency");
  std::map<std::string, Histogram*> stages;
  for (const char* stage : {"validate", "plan", "fit", "rank"}) {
    stages[stage] = registry.GetHistogram("reptile_request_stage_duration_seconds",
                                          "bench stage latency", {{"stage", stage}});
  }

  double off_ms = 1e300, on_ms = 1e300;
  int64_t spans_recorded = 0;
  // Interleave the arms so drift (thermal, page cache) hits both equally.
  for (int r = 0; r < kRepeats; ++r) {
    {
      Timer timer;
      RunOrDie(session, complaints, BatchOptions());
      off_ms = std::min(off_ms, timer.Seconds() * 1000.0);
    }
    {
      TraceContext trace(MintTraceId());
      Timer timer;
      RunOrDie(session, complaints, BatchOptions().WithTrace(&trace));
      std::vector<TraceSpan> spans = trace.Spans();
      for (const TraceSpan& span : spans) {
        auto it = stages.find(span.name);
        if (it != stages.end()) it->second->Observe(span.duration_seconds);
      }
      overall->Observe(timer.Seconds());
      on_ms = std::min(on_ms, timer.Seconds() * 1000.0);
      spans_recorded = static_cast<int64_t>(spans.size());
    }
  }

  const double delta_ms = on_ms - off_ms;
  const double overhead_pct = off_ms > 0.0 ? delta_ms / off_ms * 100.0 : 0.0;
  const bool within_budget = overhead_pct < kMaxOverheadPct || delta_ms < kNoiseFloorMs;

  char json[512];
  std::snprintf(json, sizeof(json),
                "{\"workload\":\"fig08_panel_8x6x8\",\"repeats\":%d,"
                "\"trace_off_ms\":%.3f,\"trace_on_ms\":%.3f,"
                "\"overhead_pct\":%.2f,\"spans_recorded\":%lld,"
                "\"histogram_count\":%lld,\"within_budget\":%s}\n",
                kRepeats, off_ms, on_ms, overhead_pct,
                static_cast<long long>(spans_recorded),
                static_cast<long long>(overall->count()),
                within_budget ? "true" : "false");

  std::ofstream out(output_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", output_path);
    return 1;
  }
  out << json;
  out.close();
  std::fputs(json, stdout);

  if (spans_recorded <= 0) {
    std::fprintf(stderr, "FAIL: the traced arm recorded no spans\n");
    return 1;
  }
  if (!within_budget) {
    std::fprintf(stderr,
                 "FAIL: observability overhead %.2f%% (%.3fms) exceeds the %.1f%% "
                 "budget (floor %.1fms)\n",
                 overhead_pct, delta_ms, kMaxOverheadPct, kNoiseFloorMs);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace reptile

int main(int argc, char** argv) {
  const char* output = argc > 1 ? argv[1] : "BENCH_observability.json";
  return reptile::Run(output);
}
