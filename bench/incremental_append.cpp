// The incremental-version contract in numbers: for the SAME arrival event —
// delta rows land while a pinned analyst keeps working and a fresh analyst
// probes the new head — how much work does the versioned system perform
// versus the no-versioning counterfactual (throw the dataset away, rebuild
// from the concatenated CSV, everyone starts cold)? Emitted as
// BENCH_incremental.json; scripts/check.sh gates on the structural fields,
// never on timings, so the stage is safe on a 1-CPU CI runner.
//
// The traffic is identical in both worlds (that is what makes the
// comparison honest): a pinned POPULATION — one analyst at the shallow
// state (time committed) and one drilled a level into geo — re-runs its
// full 8-complaint batches after the event, and one fresh analyst probes
// the new head with 4 complaints at the deep state. Only the system
// differs:
//
//   cold        — one PreparedDataset from the concatenated CSV; every
//                 session pays from zero: each pinned analyst refits its
//                 state's models and every (hierarchy, depth) f-tree the
//                 workload touches is rebuilt.
//   incremental — AppendRowsCsv builds version 2 sharing the parent's
//                 caches; the pinned analysts' entries and models are all
//                 still resident (0 builds, 0 fits), so the event's only
//                 work is the head probe's own state — and its only f-tree
//                 miss is the (geo, 2) entry the delta actually dirtied.
//
// Hard assertions (exit 1 on violation):
//   * append performs strictly fewer f-tree builds AND model fits;
//   * zero rebuilds outside the dirtied subtrees (builds <= invalidated);
//   * the probe's responses over version 2 are byte-identical to the cold
//     rebuild's, and the pinned analyst's bytes do not change across the
//     append.
//
// Usage: incremental_append [output.json]  (default ./BENCH_incremental.json)

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "data/csv.h"
#include "data/dataset.h"
#include "datagen/panel_gen.h"
#include "reptile/reptile.h"
#include "sim/oracle.h"
#include "version/append.h"

namespace reptile {
namespace {

Dataset MakePanel() {
  PanelSpec spec;
  spec.districts = 8;
  spec.villages_per_district = 6;
  spec.years = 8;
  spec.rows_per_group = 4;
  return MakeSeverityPanel(spec);
}

// Three delta rows: existing districts and years, NEW villages — so the geo
// hierarchy dirties at depth 2 only and time stays fully clean.
const char kDeltaCsv[] =
    "district,village,year,severity\n"
    "d0,d0_x,y0,1.5\n"
    "d1,d1_x,y1,2.75\n"
    "d2,d2_x,y2,3.5\n";

// The delta's data rows alone, for building the concatenated cold CSV.
std::string DeltaRows() {
  std::string delta = kDeltaCsv;
  return delta.substr(delta.find('\n') + 1);
}

DatasetHandle PrepareOrDie(Dataset dataset) {
  Result<DatasetHandle> handle = PreparedDataset::Prepare(std::move(dataset));
  if (!handle.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", handle.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(handle).value();
}

DatasetHandle PrepareFromCsvOrDie(const std::string& csv) {
  CsvSpec spec;
  spec.dimension_columns = {"district", "village", "year"};
  spec.measure_columns = {"severity"};
  CsvStreamParser parser(spec, "bench csv");
  parser.Feed(csv);
  Result<Table> table = parser.Finish();
  if (!table.ok()) {
    std::fprintf(stderr, "csv parse failed: %s\n", table.status().ToString().c_str());
    std::exit(1);
  }
  Result<Dataset> dataset = Dataset::Make(
      std::move(table).value(), {{"geo", {"district", "village"}}, {"time", {"year"}}});
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset make failed: %s\n", dataset.status().ToString().c_str());
    std::exit(1);
  }
  return PrepareOrDie(std::move(dataset).value());
}

// Shallow analyst state: time committed, geo at the root.
Session OpenShallowOrDie(const DatasetHandle& handle) {
  Result<Session> session = Session::Open(handle);
  if (!session.ok() || !session->Commit("time").ok()) {
    std::fprintf(stderr, "session open failed\n");
    std::exit(1);
  }
  return std::move(session).value();
}

// Deep analyst state: time committed, geo drilled one level — probes at
// this state exercise the depth-2 geo subtree, exactly the one the delta
// dirties.
Session OpenDeepOrDie(const DatasetHandle& handle) {
  Session session = OpenShallowOrDie(handle);
  if (!session.Commit("geo").ok()) {
    std::fprintf(stderr, "geo commit failed\n");
    std::exit(1);
  }
  return session;
}

std::vector<ComplaintSpec> FullBatch() {
  std::vector<ComplaintSpec> complaints;
  for (int y = 0; y < 8; ++y) {
    complaints.push_back(
        ComplaintSpec::TooHigh("std", "severity").Where("year", "y" + std::to_string(y)));
  }
  return complaints;
}

std::vector<ComplaintSpec> Probe() {
  std::vector<ComplaintSpec> full = FullBatch();
  return {full.begin(), full.begin() + 4};
}

void RecommendAllOrDie(Session& session, const std::vector<ComplaintSpec>& complaints) {
  Result<BatchExploreResponse> batch =
      session.RecommendAll(std::span<const ComplaintSpec>(complaints));
  if (!batch.ok()) {
    std::fprintf(stderr, "recommend failed: %s\n", batch.status().ToString().c_str());
    std::exit(1);
  }
}

// A recommend response with the scheduling-dependent timing fields zeroed —
// the same transform the serving tier's zero_timings option applies, so the
// remaining bytes are fully deterministic and comparable.
std::string ZeroTimedJson(Session& session, const ComplaintSpec& complaint) {
  Result<ExploreResponse> response = session.Recommend(complaint);
  if (!response.ok()) {
    std::fprintf(stderr, "recommend failed: %s\n", response.status().ToString().c_str());
    std::exit(1);
  }
  for (HierarchyResponse& candidate : response->candidates) {
    candidate.train_seconds = 0.0;
    candidate.total_seconds = 0.0;
  }
  return response->ToJson();
}

int Run(const char* output_path) {
  const std::vector<ComplaintSpec> full = FullBatch();
  const std::vector<ComplaintSpec> probe = Probe();

  // ===== Incremental world ==================================================
  Dataset panel = MakePanel();
  const size_t base_rows = panel.table().num_rows();
  DatasetHandle v1 = PrepareOrDie(std::move(panel));
  Session pinned_shallow = OpenShallowOrDie(v1);
  Session pinned_deep = OpenDeepOrDie(v1);
  RecommendAllOrDie(pinned_shallow, full);  // fully warms v1's aggregates and
  RecommendAllOrDie(pinned_deep, full);     // models at both analyst states
  const std::string pinned_before = ZeroTimedJson(pinned_deep, full[0]);

  // The event begins here: every build and fit from this point on is the
  // price of absorbing the delta.
  const int64_t builds_before = v1->cache_misses();
  const int64_t fits_before = v1->model_cache_fits();

  Result<AppendResult> appended = AppendRowsCsv(v1, kDeltaCsv, "bench delta");
  if (!appended.ok()) {
    std::fprintf(stderr, "append failed: %s\n", appended.status().ToString().c_str());
    std::exit(1);
  }
  const DatasetHandle& v2 = appended->child;

  // The pinned analysts keep working on v1 — nothing was flushed, so these
  // re-runs must hit everywhere.
  RecommendAllOrDie(pinned_shallow, full);
  RecommendAllOrDie(pinned_deep, full);
  // The fresh analyst probes version 2 at the deep state.
  Session head = OpenDeepOrDie(v2);
  RecommendAllOrDie(head, probe);

  // v1 and v2 share the cache objects, so deltas on v1's counters cover both.
  const int64_t builds_append = v1->cache_misses() - builds_before;
  const int64_t fits_append = v1->model_cache_fits() - fits_before;
  const int64_t rebuilds_outside_dirty =
      builds_append > appended->invalidated_entries
          ? builds_append - appended->invalidated_entries
          : 0;

  // ===== Cold world (no-versioning counterfactual) ==========================
  // The append throws the old dataset away: every analyst restarts on a
  // from-scratch build of the concatenated CSV and replays the same traffic.
  DatasetHandle cold = PrepareFromCsvOrDie(RenderTableCsv(v1->table()) + DeltaRows());
  Session cold_shallow = OpenShallowOrDie(cold);
  Session cold_deep = OpenDeepOrDie(cold);
  RecommendAllOrDie(cold_shallow, full);
  RecommendAllOrDie(cold_deep, full);
  Session cold_head = OpenDeepOrDie(cold);
  RecommendAllOrDie(cold_head, probe);
  const int64_t builds_cold = cold->cache_misses();
  const int64_t fits_cold = cold->model_cache_fits();

  // ===== Byte identity ======================================================
  // The probe over incrementally-built v2 must render the exact bytes the
  // cold rebuild renders, and the pinned analyst's bytes must not have moved.
  bool byte_identical = true;
  for (const ComplaintSpec& complaint : probe) {
    if (ZeroTimedJson(head, complaint) != ZeroTimedJson(cold_head, complaint)) {
      byte_identical = false;
    }
  }
  const bool pinned_stable = ZeroTimedJson(pinned_deep, full[0]) == pinned_before;

  const bool strictly_fewer = builds_append < builds_cold && fits_append < fits_cold;
  char json[1024];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\":\"incremental_append\",\"base_rows\":%zu,\"delta_rows\":3,"
      "\"ftree_builds_cold\":%lld,\"ftree_builds_append\":%lld,"
      "\"model_fits_cold\":%lld,\"model_fits_append\":%lld,"
      "\"invalidated_entries\":%lld,\"shared_entries\":%lld,"
      "\"rebuilds_outside_dirty\":%lld,"
      "\"append_strictly_fewer\":%s,\"byte_identical\":%s,\"pinned_stable\":%s}\n",
      base_rows, static_cast<long long>(builds_cold),
      static_cast<long long>(builds_append), static_cast<long long>(fits_cold),
      static_cast<long long>(fits_append),
      static_cast<long long>(appended->invalidated_entries),
      static_cast<long long>(appended->shared_entries),
      static_cast<long long>(rebuilds_outside_dirty),
      strictly_fewer ? "true" : "false", byte_identical ? "true" : "false",
      pinned_stable ? "true" : "false");

  std::ofstream out(output_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", output_path);
    return 1;
  }
  out << json;
  out.close();
  std::fputs(json, stdout);

  if (fits_cold <= 0 || builds_cold <= 0) {
    std::fprintf(stderr, "FAIL: the cold world did no work — the bench measured nothing\n");
    return 1;
  }
  if (!strictly_fewer) {
    std::fprintf(stderr,
                 "FAIL: append did not beat the cold rebuild (builds %lld vs %lld, "
                 "fits %lld vs %lld)\n",
                 static_cast<long long>(builds_append),
                 static_cast<long long>(builds_cold),
                 static_cast<long long>(fits_append),
                 static_cast<long long>(fits_cold));
    return 1;
  }
  if (rebuilds_outside_dirty != 0) {
    std::fprintf(stderr, "FAIL: %lld rebuilds landed outside the dirtied subtrees\n",
                 static_cast<long long>(rebuilds_outside_dirty));
    return 1;
  }
  if (!byte_identical || !pinned_stable) {
    std::fprintf(stderr, "FAIL: byte identity broke (probe %s, pinned %s)\n",
                 byte_identical ? "ok" : "diverged", pinned_stable ? "ok" : "moved");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace reptile

int main(int argc, char** argv) {
  const char* output = argc > 1 ? argv[1] : "BENCH_incremental.json";
  return reptile::Run(output);
}
