// The snapshot tier in numbers, emitted as BENCH_snapshot.json — and the
// contracts scripts/check.sh gates on:
//
//   cold  — CSV parse + dictionary encode + Prepare + first RecommendAll
//           (aggregate builds AND every model fit), timed end to end;
//   warm  — LoadPreparedDataset of the snapshot the cold process wrote, then
//           the same batch: zero fits ("warm_fits":0) and a byte-identical
//           response ("byte_identical":true) once timings are zeroed;
//   churn — a fresh dataset pinned to a tiny cache budget, hammered across
//           drill states: both caches' reported bytes must stay under their
//           budgets while evicting ("under_budget":true), and every
//           recommend must still succeed (evicted entries are rebuilt;
//           in-flight holders survive via shared_ptr).
//
// Like bench/model_cache.cpp and bench/server_saturation.cpp this binary has
// NO google-benchmark dependency — it is part of the tier-1 gate, so it must
// build wherever the library builds. Exits non-zero on any contract break.
//
// Usage: snapshot_restart [output.json]   (default ./BENCH_snapshot.json)

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "api/dataset_snapshot.h"
#include "common/timer.h"
#include "data/csv.h"
#include "datagen/panel_gen.h"
#include "reptile/reptile.h"

namespace reptile {
namespace {

Dataset MakePanel() {
  PanelSpec spec;
  spec.districts = 8;
  spec.villages_per_district = 6;
  spec.years = 8;
  spec.rows_per_group = 4;
  return MakeSeverityPanel(spec);
}

std::vector<ComplaintSpec> PanelComplaints() {
  std::vector<ComplaintSpec> complaints;
  for (int y = 0; y < 8; ++y) {
    complaints.push_back(
        ComplaintSpec::TooHigh("std", "severity").Where("year", "y" + std::to_string(y)));
  }
  return complaints;
}

/// The batch's ToJson() with every timing and cache-temperature field zeroed
/// — what "byte-identical across a restart" means (a warm process cannot
/// reproduce the cold process's wall-clock).
std::string TimelessBatchJson(BatchExploreResponse batch) {
  batch.models_trained = 0;
  batch.fit_cache_hits = 0;
  batch.train_seconds = 0.0;
  batch.wall_seconds = 0.0;
  for (ExploreResponse& response : batch.responses) {
    for (HierarchyResponse& candidate : response.candidates) {
      candidate.train_seconds = 0.0;
      candidate.total_seconds = 0.0;
    }
  }
  return batch.ToJson();
}

[[noreturn]] void Die(const char* what, const Status& status) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  std::exit(1);
}

struct ColdResult {
  DatasetHandle handle;
  double millis = 0.0;
  int64_t fits = 0;
  std::string timeless_json;
};

/// The full cold path a fresh server pays: bytes on disk to first answer.
ColdResult ColdRun(const std::string& csv_path,
                   const std::vector<ComplaintSpec>& complaints) {
  Timer timer;
  CsvSpec csv_spec;
  csv_spec.dimension_columns = {"district", "village", "year"};
  csv_spec.measure_columns = {"severity"};
  Result<Table> table = LoadCsv(csv_path, csv_spec);
  if (!table.ok()) Die("csv load failed", table.status());
  Result<Dataset> dataset =
      Dataset::Make(std::move(table).value(),
                    {HierarchySchema{"geo", {"district", "village"}},
                     HierarchySchema{"time", {"year"}}});
  if (!dataset.ok()) Die("dataset build failed", dataset.status());
  Result<DatasetHandle> handle = PreparedDataset::Prepare(std::move(dataset).value());
  if (!handle.ok()) Die("prepare failed", handle.status());
  Result<Session> session = Session::Open(handle.value());
  if (!session.ok()) Die("session open failed", session.status());
  if (Status commit = session->Commit("time"); !commit.ok()) Die("commit failed", commit);
  Result<BatchExploreResponse> batch =
      session->RecommendAll(std::span<const ComplaintSpec>(complaints));
  if (!batch.ok()) Die("cold recommend failed", batch.status());
  ColdResult result;
  result.millis = timer.Seconds() * 1000.0;
  result.handle = std::move(handle).value();
  result.fits = session->models_trained();
  result.timeless_json = TimelessBatchJson(std::move(batch).value());
  return result;
}

struct WarmResult {
  double millis = 0.0;
  int64_t fits = 0;
  std::string timeless_json;
};

/// The restart path: snapshot on disk to first answer.
WarmResult WarmRun(const std::string& snap_path,
                   const std::vector<ComplaintSpec>& complaints) {
  Timer timer;
  Result<DatasetHandle> handle = LoadPreparedDataset(snap_path);
  if (!handle.ok()) Die("snapshot load failed", handle.status());
  Result<Session> session = Session::Open(std::move(handle).value());
  if (!session.ok()) Die("warm session open failed", session.status());
  if (Status commit = session->Commit("time"); !commit.ok()) Die("commit failed", commit);
  Result<BatchExploreResponse> batch =
      session->RecommendAll(std::span<const ComplaintSpec>(complaints));
  if (!batch.ok()) Die("warm recommend failed", batch.status());
  WarmResult result;
  result.millis = timer.Seconds() * 1000.0;
  result.fits = session->models_trained();
  result.timeless_json = TimelessBatchJson(std::move(batch).value());
  return result;
}

struct ChurnResult {
  size_t budget_bytes = 0;
  int64_t agg_bytes = 0;
  int64_t agg_evictions = 0;
  int64_t model_bytes = 0;
  int64_t model_evictions = 0;
  bool under_budget = false;
};

/// Pins a fresh dataset to a budget far below its working set, then sweeps
/// sessions across distinct drill states so both caches insert well past
/// their ceilings. Steady state must hold bytes <= budget with evictions.
ChurnResult ChurnRun(const std::vector<ComplaintSpec>& complaints) {
  Result<DatasetHandle> prepared = PreparedDataset::Prepare(MakePanel());
  if (!prepared.ok()) Die("churn prepare failed", prepared.status());
  DatasetHandle handle = std::move(prepared).value();
  const size_t budget = 4 * 1024;  // 2 KiB per cache: every aggregate entry oversizes
  handle->SetCacheBudgetBytes(budget);

  // Distinct committed drill states mint distinct aggregate and model keys.
  const std::vector<std::vector<std::string>> drill_states = {
      {}, {"time"}, {"geo"}, {"geo", "geo"}, {"time", "geo"}, {"geo", "time"}};
  for (int round = 0; round < 2; ++round) {
    for (const std::vector<std::string>& commits : drill_states) {
      Result<Session> session = Session::Open(handle);
      if (!session.ok()) Die("churn session open failed", session.status());
      for (const std::string& hierarchy : commits) {
        if (Status commit = session->Commit(hierarchy); !commit.ok()) {
          Die("churn commit failed", commit);
        }
      }
      Result<BatchExploreResponse> batch =
          session->RecommendAll(std::span<const ComplaintSpec>(complaints));
      if (!batch.ok()) Die("churn recommend failed", batch.status());
    }
  }

  ChurnResult result;
  result.budget_bytes = budget;
  result.agg_bytes = handle->cache_bytes();
  result.agg_evictions = handle->cache_evictions();
  result.model_bytes = handle->model_cache_bytes();
  result.model_evictions = handle->model_cache_evictions();
  result.under_budget =
      result.agg_bytes + result.model_bytes <= static_cast<int64_t>(budget);
  return result;
}

int Run(const char* output_path) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / ("reptile_snapshot_bench." + std::to_string(getpid()));
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s\n", dir.string().c_str());
    return 1;
  }
  const std::string csv_path = (dir / "panel.csv").string();
  const std::string snap_path = (dir / "panel.snap").string();

  const Dataset panel = MakePanel();
  if (Status save = SaveCsv(panel.table(), csv_path); !save.ok()) Die("csv save failed", save);
  const std::vector<ComplaintSpec> complaints = PanelComplaints();

  ColdResult cold = ColdRun(csv_path, complaints);
  if (Status save = SavePreparedDataset(*cold.handle, snap_path); !save.ok()) {
    Die("snapshot save failed", save);
  }
  const uint64_t snapshot_bytes = static_cast<uint64_t>(fs::file_size(snap_path, ec));
  WarmResult warm = WarmRun(snap_path, complaints);
  const bool byte_identical = cold.timeless_json == warm.timeless_json;
  ChurnResult churn = ChurnRun(complaints);
  fs::remove_all(dir, ec);

  const double speedup = warm.millis > 0.0 ? cold.millis / warm.millis : 0.0;
  char json[1024];
  std::snprintf(
      json, sizeof(json),
      "{\"workload\":\"fig08_panel_8x6x8\",\"rows\":%zu,\"snapshot_bytes\":%llu,"
      "\"cold_ms\":%.3f,\"cold_fits\":%lld,\"warm_ms\":%.3f,\"warm_fits\":%lld,"
      "\"cold_over_warm_speedup\":%.2f,\"byte_identical\":%s,"
      "\"churn\":{\"budget_bytes\":%zu,"
      "\"aggregate\":{\"bytes\":%lld,\"evictions\":%lld},"
      "\"model\":{\"bytes\":%lld,\"evictions\":%lld},"
      "\"under_budget\":%s}}\n",
      panel.table().num_rows(), static_cast<unsigned long long>(snapshot_bytes),
      cold.millis, static_cast<long long>(cold.fits), warm.millis,
      static_cast<long long>(warm.fits), speedup, byte_identical ? "true" : "false",
      churn.budget_bytes, static_cast<long long>(churn.agg_bytes),
      static_cast<long long>(churn.agg_evictions),
      static_cast<long long>(churn.model_bytes),
      static_cast<long long>(churn.model_evictions),
      churn.under_budget ? "true" : "false");

  std::ofstream out(output_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", output_path);
    return 1;
  }
  out << json;
  out.close();
  std::fputs(json, stdout);

  // The contracts this binary exists to enforce.
  int failures = 0;
  if (cold.fits <= 0) {
    std::fprintf(stderr, "FAIL: cold run performed no fits — the bench measured nothing\n");
    ++failures;
  }
  if (warm.fits != 0) {
    std::fprintf(stderr, "FAIL: warm run performed %lld fits (snapshot should carry models)\n",
                 static_cast<long long>(warm.fits));
    ++failures;
  }
  if (!byte_identical) {
    std::fprintf(stderr, "FAIL: warm response differs from cold (snapshot is lossy)\n");
    ++failures;
  }
  if (!churn.under_budget) {
    std::fprintf(stderr, "FAIL: steady-state cache bytes %lld exceed budget %zu\n",
                 static_cast<long long>(churn.agg_bytes + churn.model_bytes),
                 churn.budget_bytes);
    ++failures;
  }
  if (churn.agg_evictions <= 0 || churn.model_evictions <= 0) {
    std::fprintf(stderr, "FAIL: churn evicted nothing (agg %lld, model %lld) — no pressure\n",
                 static_cast<long long>(churn.agg_evictions),
                 static_cast<long long>(churn.model_evictions));
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace reptile

int main(int argc, char** argv) {
  const char* output = argc > 1 ? argv[1] : "BENCH_snapshot.json";
  return reptile::Run(output);
}
