// Figure 7: factorised matrix operations vs a LAPACK-style dense
// implementation over the fully materialised matrix (paper Section 5.1.1).
//
// Setup: d = 1..REPTILE_FIG7_MAX_D hierarchies, one attribute each,
// cardinality w = 10; X has shape 10^d x (d + 1). The dense baseline pays
// materialisation plus dense kernels; the factorised operators never touch
// a 10^d-row object except for the (inherently dense) left/right inputs and
// outputs.
//
// Paper shape to reproduce: materialisation and gram are exponential for the
// baseline but ~linear for Reptile; left multiplication ~5x faster at d = 7;
// right multiplication ~1.6x faster (output must be materialised).

#include <map>

#include "benchmark/benchmark.h"
#include "common/env.h"
#include "common/rng.h"
#include "datagen/synthetic.h"
#include "fmatrix/gram.h"
#include "fmatrix/left_mult.h"
#include "fmatrix/materialize.h"
#include "fmatrix/right_mult.h"

namespace reptile {
namespace {

const SyntheticMatrix& MatrixFor(int d) {
  static std::map<int, SyntheticMatrix>& cache = *new std::map<int, SyntheticMatrix>();
  auto it = cache.find(d);
  if (it == cache.end()) {
    SyntheticOptions options;
    options.num_hierarchies = d;
    options.attrs_per_hierarchy = 1;
    options.cardinality = 10;
    it = cache.emplace(d, MakeSyntheticMatrix(options)).first;
  }
  return it->second;
}

const Matrix& DenseFor(int d) {
  static std::map<int, Matrix>& cache = *new std::map<int, Matrix>();
  auto it = cache.find(d);
  if (it == cache.end()) {
    it = cache.emplace(d, MaterializeMatrix(MatrixFor(d).fm)).first;
  }
  return it->second;
}

std::vector<double> RandomRow(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> row(static_cast<size_t>(n));
  for (double& v : row) v = rng.Normal(0.0, 1.0);
  return row;
}

// ---- Materialisation ----

void BM_Materialize_Dense(benchmark::State& state) {
  const SyntheticMatrix& sm = MatrixFor(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Matrix x = MaterializeMatrix(sm.fm);
    benchmark::DoNotOptimize(x);
  }
  state.counters["rows"] = static_cast<double>(sm.fm.num_rows());
}

// Factorised "materialisation" is building the f-representation state the
// operators need (the trees already exist; this measures the per-drill-down
// aggregate construction).
void BM_Materialize_Factorized(benchmark::State& state) {
  const SyntheticMatrix& sm = MatrixFor(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::vector<LocalAggregates> locals;
    for (int k = 0; k < sm.fm.num_trees(); ++k) {
      locals.emplace_back(&sm.fm.tree(k));
    }
    benchmark::DoNotOptimize(locals);
  }
  state.counters["rows"] = static_cast<double>(sm.fm.num_rows());
}

// ---- Gram matrix ----

void BM_Gram_Dense(benchmark::State& state) {
  const SyntheticMatrix& sm = MatrixFor(static_cast<int>(state.range(0)));
  const Matrix& x = DenseFor(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Matrix gram = x.Transposed().Multiply(x);
    benchmark::DoNotOptimize(gram);
  }
  state.counters["rows"] = static_cast<double>(sm.fm.num_rows());
}

void BM_Gram_Factorized(benchmark::State& state) {
  const SyntheticMatrix& sm = MatrixFor(static_cast<int>(state.range(0)));
  DecomposedAggregates agg(&sm.fm, sm.LocalPtrs());
  for (auto _ : state) {
    Matrix gram = FactorizedGram(sm.fm, agg);
    benchmark::DoNotOptimize(gram);
  }
  state.counters["rows"] = static_cast<double>(sm.fm.num_rows());
}

// ---- Left multiplication (1 x n input) ----

void BM_LeftMult_Dense(benchmark::State& state) {
  const SyntheticMatrix& sm = MatrixFor(static_cast<int>(state.range(0)));
  const Matrix& x = DenseFor(static_cast<int>(state.range(0)));
  std::vector<double> r = RandomRow(sm.fm.num_rows(), 7);
  Matrix a = Matrix::RowVector(r);
  for (auto _ : state) {
    Matrix out = a.Multiply(x);
    benchmark::DoNotOptimize(out);
  }
}

void BM_LeftMult_Factorized(benchmark::State& state) {
  const SyntheticMatrix& sm = MatrixFor(static_cast<int>(state.range(0)));
  std::vector<double> r = RandomRow(sm.fm.num_rows(), 7);
  for (auto _ : state) {
    std::vector<double> out = FactorizedVecLeftMultiply(sm.fm, r);
    benchmark::DoNotOptimize(out);
  }
}

// ---- Right multiplication (m x 1 input, n x 1 output) ----

void BM_RightMult_Dense(benchmark::State& state) {
  const SyntheticMatrix& sm = MatrixFor(static_cast<int>(state.range(0)));
  const Matrix& x = DenseFor(static_cast<int>(state.range(0)));
  std::vector<double> beta = RandomRow(sm.fm.num_cols(), 11);
  Matrix b = Matrix::ColumnVector(beta);
  for (auto _ : state) {
    Matrix out = x.Multiply(b);
    benchmark::DoNotOptimize(out);
  }
}

void BM_RightMult_Factorized(benchmark::State& state) {
  const SyntheticMatrix& sm = MatrixFor(static_cast<int>(state.range(0)));
  std::vector<double> beta = RandomRow(sm.fm.num_cols(), 11);
  for (auto _ : state) {
    std::vector<double> out = FactorizedVecRightMultiply(sm.fm, beta);
    benchmark::DoNotOptimize(out);
  }
}

int MaxD() { return static_cast<int>(EnvInt("REPTILE_FIG7_MAX_D", 6)); }

void RegisterAll() {
  int max_d = MaxD();
  auto add = [&](const char* name, void (*fn)(benchmark::State&)) {
    benchmark::RegisterBenchmark(name, fn)
        ->DenseRange(1, max_d)
        ->Unit(benchmark::kMillisecond)
        ->MinTime(0.05);
  };
  add("Fig7/Materialize/Dense", BM_Materialize_Dense);
  add("Fig7/Materialize/Factorized", BM_Materialize_Factorized);
  add("Fig7/Gram/Dense", BM_Gram_Dense);
  add("Fig7/Gram/Factorized", BM_Gram_Factorized);
  add("Fig7/LeftMult/Dense", BM_LeftMult_Dense);
  add("Fig7/LeftMult/Factorized", BM_LeftMult_Factorized);
  add("Fig7/RightMult/Dense", BM_RightMult_Dense);
  add("Fig7/RightMult/Factorized", BM_RightMult_Factorized);
}

}  // namespace
}  // namespace reptile

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  reptile::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
