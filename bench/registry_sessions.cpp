// The dataset/session split in numbers: what a session costs to open over a
// COLD prepared dataset (it builds the shared aggregate cache) vs a WARM one
// (every (hierarchy, depth) entry is a cache hit), the recommend latency at
// each cache temperature, and the marginal memory of a session — which the
// registry redesign makes near-zero, since the table, f-trees, and
// committed-depth aggregates are shared and a session owns only its drill
// depths.
//
// Exercises only public surfaces (api/).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "benchmark/benchmark.h"
#include "datagen/panel_gen.h"
#include "reptile/reptile.h"

namespace reptile {
namespace {

constexpr int kDistricts = 8;
constexpr int kVillages = 6;
constexpr int kYears = 8;
constexpr int kRowsPerGroup = 4;

Dataset MakePanel() {
  PanelSpec spec;
  spec.districts = kDistricts;
  spec.villages_per_district = kVillages;
  spec.years = kYears;
  spec.rows_per_group = kRowsPerGroup;
  return MakeSeverityPanel(spec);
}

DatasetHandle PrepareOrDie() {
  Result<DatasetHandle> handle = PreparedDataset::Prepare(MakePanel());
  if (!handle.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", handle.status().ToString().c_str());
    std::abort();
  }
  return std::move(handle).value();
}

Session OpenOrDie(const DatasetHandle& handle) {
  Result<Session> session = Session::Open(handle);
  if (!session.ok() || !session->RestoreCommitted({{"time", 1}}).ok()) {
    std::fprintf(stderr, "session open failed\n");
    std::abort();
  }
  return std::move(session).value();
}

ComplaintSpec PanelComplaint() {
  return ComplaintSpec::TooHigh("std", "severity").Where("year", "y3");
}

void RecommendOrDie(Session& session) {
  Result<ExploreResponse> response = session.Recommend(PanelComplaint());
  if (!response.ok()) {
    std::fprintf(stderr, "recommend failed: %s\n", response.status().ToString().c_str());
    std::abort();
  }
  benchmark::DoNotOptimize(response->best_index);
}

/// Resident set size in bytes (Linux /proc/self/statm; 0 when unreadable).
int64_t ResidentBytes() {
  std::ifstream statm("/proc/self/statm");
  long long total_pages = 0;
  long long resident_pages = 0;
  if (!(statm >> total_pages >> resident_pages)) return 0;
  return static_cast<int64_t>(resident_pages) *
         static_cast<int64_t>(::sysconf(_SC_PAGESIZE));
}

// Cold: every iteration prepares a fresh dataset, so the first session pays
// the full aggregate-cache warm-up inside its recommend.
void BM_ColdSessionFirstRecommend(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    DatasetHandle handle = PrepareOrDie();
    state.ResumeTiming();
    Session session = OpenOrDie(handle);
    RecommendOrDie(session);
  }
}
BENCHMARK(BM_ColdSessionFirstRecommend)->Unit(benchmark::kMillisecond);

// Warm: the handle's cache was filled once; each new session's first
// recommend reads shared aggregates and only trains its own models.
void BM_WarmSessionFirstRecommend(benchmark::State& state) {
  static DatasetHandle& handle = *new DatasetHandle(PrepareOrDie());
  {
    Session warmup = OpenOrDie(handle);
    RecommendOrDie(warmup);
  }
  int64_t builds = 0;
  for (auto _ : state) {
    Session session = OpenOrDie(handle);
    RecommendOrDie(session);
    builds += session.aggregate_builds();
  }
  state.counters["aggregate_builds"] =
      benchmark::Counter(static_cast<double>(builds), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_WarmSessionFirstRecommend)->Unit(benchmark::kMillisecond);

// Steady state: one session, cache fully warm — the per-request floor.
void BM_WarmCacheRecommendLatency(benchmark::State& state) {
  static DatasetHandle& handle = *new DatasetHandle(PrepareOrDie());
  static Session& session = *new Session(OpenOrDie(handle));
  RecommendOrDie(session);
  for (auto _ : state) {
    RecommendOrDie(session);
  }
}
BENCHMARK(BM_WarmCacheRecommendLatency)->Unit(benchmark::kMillisecond);

// Session creation alone (no recommend): what POST /v1/sessions costs the
// server once the dataset is registered.
void BM_WarmSessionOpen(benchmark::State& state) {
  static DatasetHandle& handle = *new DatasetHandle(PrepareOrDie());
  for (auto _ : state) {
    Session session = OpenOrDie(handle);
    benchmark::DoNotOptimize(&session);
  }
}
BENCHMARK(BM_WarmSessionOpen);

// Marginal memory per warm session: RSS delta across a batch of sessions
// held live simultaneously, divided by the batch size. Under the old design
// every session duplicated the dataset and caches; now it holds drill
// depths and a handle.
void BM_PerSessionResidentMemory(benchmark::State& state) {
  static DatasetHandle& handle = *new DatasetHandle(PrepareOrDie());
  {
    Session warmup = OpenOrDie(handle);
    RecommendOrDie(warmup);
  }
  const int64_t batch = state.range(0);
  double rss_per_session = 0.0;
  for (auto _ : state) {
    int64_t before = ResidentBytes();
    std::vector<Session> sessions;
    sessions.reserve(static_cast<size_t>(batch));
    for (int64_t i = 0; i < batch; ++i) sessions.push_back(OpenOrDie(handle));
    int64_t after = ResidentBytes();
    rss_per_session = static_cast<double>(after - before) / static_cast<double>(batch);
    benchmark::DoNotOptimize(sessions.data());
  }
  state.counters["rss_per_session_bytes"] = rss_per_session;
}
BENCHMARK(BM_PerSessionResidentMemory)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace reptile

BENCHMARK_MAIN();
