#include "fmatrix/cluster_ops.h"

#include "common/check.h"

namespace reptile {

ClusterIterator::ClusterIterator(const FactorizedMatrix& fm) : fm_(&fm) {
  REPTILE_CHECK_GT(fm.num_trees(), 0);
  int flat = 0;
  for (int k = 0; k < fm.num_trees(); ++k) {
    attr_offset_.push_back(flat);
    flat += fm.tree(k).depth();
  }
  for (int k = 0; k + 1 < fm.num_trees(); ++k) {
    prefix_cursors_.emplace_back(&fm.tree(k), fm.tree(k).depth() - 1);
  }
  const FTree& last = fm.tree(fm.num_trees() - 1);
  if (last.depth() >= 2) {
    parent_cursor_ = std::make_unique<FTree::Cursor>(&last, last.depth() - 2);
  }
  codes_.assign(fm.num_attrs(), 0);
}

void ClusterIterator::RefreshTreeCodes(int tree, int from_level) {
  const FTree& t = fm_->tree(tree);
  bool is_last = tree == fm_->num_trees() - 1;
  const FTree::Cursor* cursor =
      is_last ? parent_cursor_.get() : &prefix_cursors_[static_cast<size_t>(tree)];
  if (cursor == nullptr) return;  // last tree with depth 1: no inter levels
  int top = is_last ? t.depth() - 2 : t.depth() - 1;
  for (int l = from_level; l <= top; ++l) {
    codes_[attr_offset_[tree] + l] = t.level(l).value[cursor->node(l)];
    changed_attrs_.push_back(attr_offset_[tree] + l);
  }
}

void ClusterIterator::RefreshChildRange() {
  const FTree& last = fm_->tree(fm_->num_trees() - 1);
  if (parent_cursor_ != nullptr) {
    const FTree::Level& parent_level = last.level(last.depth() - 2);
    int64_t parent = parent_cursor_->position();
    child_begin_ = parent_level.first_child[parent];
    num_children_ = parent_level.num_children[parent];
  } else {
    child_begin_ = 0;
    num_children_ = last.num_nodes(0);
  }
}

bool ClusterIterator::Start() {
  if (fm_->num_rows() == 0) return false;
  for (auto& cursor : prefix_cursors_) cursor.Reset();
  if (parent_cursor_ != nullptr) parent_cursor_->Reset();
  cluster_ = 0;
  row_begin_ = 0;
  changed_attrs_.clear();
  for (int k = 0; k < fm_->num_trees(); ++k) RefreshTreeCodes(k, 0);
  RefreshChildRange();
  return true;
}

bool ClusterIterator::Next() {
  row_begin_ += num_children_;
  changed_attrs_.clear();
  int last = fm_->num_trees() - 1;
  if (parent_cursor_ != nullptr) {
    int top = parent_cursor_->Advance();
    if (top >= 0) {
      RefreshTreeCodes(last, top);
      RefreshChildRange();
      ++cluster_;
      return true;
    }
    RefreshTreeCodes(last, 0);  // wrapped back to the first parent
  }
  for (int k = last - 1; k >= 0; --k) {
    int top = prefix_cursors_[static_cast<size_t>(k)].Advance();
    if (top >= 0) {
      RefreshTreeCodes(k, top);
      RefreshChildRange();
      ++cluster_;
      return true;
    }
    RefreshTreeCodes(k, 0);
  }
  return false;
}

namespace {

// Column classification and lookup tables shared by the per-cluster
// operators, hoisted out of the cluster loop.
struct ClusterColumns {
  // Positions (into `cols`) of columns constant within a cluster, and of
  // columns varying with the intra attribute.
  std::vector<int> inter;
  std::vector<int> intra;
  int intra_flat = -1;  // flat index of the intra attribute

  // Per position: column index, flat attr (single-attribute columns only,
  // -1 for multi), and whether the column is multi-attribute.
  std::vector<int> column_of;
  std::vector<int> flat_of;
  std::vector<char> is_multi;
  // flat attr -> inter positions of single columns on it.
  std::vector<std::vector<int>> inter_on_flat;
  // inter positions of multi columns touched by each flat attr.
  std::vector<std::vector<int>> multi_on_flat;
};

ClusterColumns ClassifyColumns(const FactorizedMatrix& fm, const std::vector<int>& cols) {
  ClusterColumns out;
  AttrId intra = fm.IntraAttr();
  out.intra_flat = fm.FlatAttrIndex(intra);
  out.inter_on_flat.assign(static_cast<size_t>(fm.num_attrs()), {});
  out.multi_on_flat.assign(static_cast<size_t>(fm.num_attrs()), {});
  for (size_t i = 0; i < cols.size(); ++i) {
    const FeatureColumn& column = fm.column(cols[i]);
    bool varies = false;
    if (column.is_multi) {
      for (AttrId attr : column.attrs) {
        if (attr == intra) varies = true;
      }
    } else {
      varies = column.attr == intra;
    }
    out.column_of.push_back(cols[i]);
    out.is_multi.push_back(column.is_multi ? 1 : 0);
    out.flat_of.push_back(column.is_multi ? -1 : fm.FlatAttrIndex(column.attr));
    int pos = static_cast<int>(i);
    if (varies) {
      out.intra.push_back(pos);
    } else {
      out.inter.push_back(pos);
      if (column.is_multi) {
        for (AttrId attr : column.attrs) {
          out.multi_on_flat[static_cast<size_t>(fm.FlatAttrIndex(attr))].push_back(pos);
        }
      } else {
        out.inter_on_flat[static_cast<size_t>(out.flat_of.back())].push_back(pos);
      }
    }
  }
  return out;
}

// Value of column `cols[pos]` in the current cluster context; for intra
// columns `child_code` supplies the intra attribute's value.
double ColumnValueInCluster(const FactorizedMatrix& fm, int column_index,
                            const std::vector<int32_t>& codes, int intra_flat,
                            int32_t child_code, std::vector<int32_t>* key_scratch) {
  const FeatureColumn& column = fm.column(column_index);
  if (!column.is_multi) {
    int flat = fm.FlatAttrIndex(column.attr);
    int32_t code = flat == intra_flat ? child_code : codes[flat];
    return column.ValueForCode(code);
  }
  key_scratch->resize(column.attrs.size());
  for (size_t i = 0; i < column.attrs.size(); ++i) {
    int flat = fm.FlatAttrIndex(column.attrs[i]);
    (*key_scratch)[i] = flat == intra_flat ? child_code : codes[flat];
  }
  return column.ValueForTuple(*key_scratch);
}

}  // namespace

void ForEachClusterGram(const FactorizedMatrix& fm, const std::vector<int>& cols,
                        const std::vector<double>* r,
                        const std::function<void(const ClusterData&)>& emit) {
  size_t q = cols.size();
  ClusterColumns cc = ClassifyColumns(fm, cols);
  const FTree& last_tree = fm.tree(fm.num_trees() - 1);
  const FTree::Level& child_level = last_tree.level(last_tree.depth() - 1);

  std::vector<double> r_prefix;
  if (r != nullptr) {
    REPTILE_CHECK_EQ(static_cast<int64_t>(r->size()), fm.num_rows());
    r_prefix.resize(r->size() + 1, 0.0);
    for (size_t i = 0; i < r->size(); ++i) r_prefix[i + 1] = r_prefix[i] + (*r)[i];
  }

  Matrix gram(q, q);
  std::vector<double> ztr(q, 0.0);
  std::vector<double> values(q, 0.0);  // inter values for this cluster
  std::vector<double> child_values(cc.intra.size(), 0.0);
  std::vector<double> s1(cc.intra.size(), 0.0);
  Matrix s2(cc.intra.size(), cc.intra.size());
  std::vector<double> rx(cc.intra.size(), 0.0);
  std::vector<int32_t> key_scratch;
  std::vector<int> changed_positions;
  std::vector<char> changed_flag(q, 0);
  double n_prev = 0.0;
  bool first = true;

  ClusterIterator it(fm);
  for (bool ok = it.Start(); ok; ok = it.Next()) {
    int64_t n_c = it.num_children();
    double n_c_d = static_cast<double>(n_c);

    // --- Changed inter columns (Algorithm 5: adjacent clusters differ in
    // few attributes; only the touched rows/columns of the gram are
    // recomputed, the rest is rescaled by the size ratio). ---
    changed_positions.clear();
    if (first) {
      changed_positions = cc.inter;
    } else {
      for (int flat : it.changed_attrs()) {
        for (int pos : cc.inter_on_flat[static_cast<size_t>(flat)]) {
          changed_positions.push_back(pos);
        }
        for (int pos : cc.multi_on_flat[static_cast<size_t>(flat)]) {
          changed_positions.push_back(pos);
        }
      }
    }
    for (int pos : changed_positions) {
      values[static_cast<size_t>(pos)] = ColumnValueInCluster(
          fm, cc.column_of[static_cast<size_t>(pos)], it.codes(), cc.intra_flat, 0,
          &key_scratch);
      changed_flag[static_cast<size_t>(pos)] = 1;
    }

    // --- Intra column sums over the children (always recomputed: the child
    // set is new in every cluster). ---
    std::fill(s1.begin(), s1.end(), 0.0);
    std::fill(s2.mutable_data().begin(), s2.mutable_data().end(), 0.0);
    std::fill(rx.begin(), rx.end(), 0.0);
    for (int64_t child = 0; child < n_c; ++child) {
      int32_t child_code = child_level.value[it.child_node_begin() + child];
      for (size_t i = 0; i < cc.intra.size(); ++i) {
        child_values[i] =
            ColumnValueInCluster(fm, cc.column_of[static_cast<size_t>(cc.intra[i])],
                                 it.codes(), cc.intra_flat, child_code, &key_scratch);
      }
      for (size_t i = 0; i < cc.intra.size(); ++i) {
        s1[i] += child_values[i];
        for (size_t j = i; j < cc.intra.size(); ++j) {
          s2(i, j) += child_values[i] * child_values[j];
        }
      }
      if (r != nullptr) {
        double rv = (*r)[static_cast<size_t>(it.row_begin() + child)];
        for (size_t i = 0; i < cc.intra.size(); ++i) rx[i] += child_values[i] * rv;
      }
    }

    // --- Gram update. ---
    bool size_changed = first || n_c_d != n_prev;
    double ratio = first || n_prev == 0.0 ? 0.0 : n_c_d / n_prev;
    if (first || !changed_positions.empty() || size_changed) {
      for (size_t a = 0; a < cc.inter.size(); ++a) {
        int i = cc.inter[a];
        bool i_changed = first || changed_flag[static_cast<size_t>(i)];
        double vi = values[static_cast<size_t>(i)];
        for (size_t b = a; b < cc.inter.size(); ++b) {
          int j = cc.inter[b];
          double cell;
          if (i_changed || changed_flag[static_cast<size_t>(j)] || first) {
            cell = vi * values[static_cast<size_t>(j)] * n_c_d;
          } else if (size_changed) {
            cell = gram(static_cast<size_t>(i), static_cast<size_t>(j)) * ratio;
          } else {
            continue;  // untouched pair, same size: cell is already correct
          }
          gram(static_cast<size_t>(i), static_cast<size_t>(j)) = cell;
          gram(static_cast<size_t>(j), static_cast<size_t>(i)) = cell;
        }
      }
    }
    // Inter x intra and intra x intra involve the (new) child sums.
    for (size_t a = 0; a < cc.inter.size(); ++a) {
      int i = cc.inter[a];
      double vi = values[static_cast<size_t>(i)];
      for (size_t b = 0; b < cc.intra.size(); ++b) {
        int j = cc.intra[b];
        double cell = vi * s1[b];
        gram(static_cast<size_t>(i), static_cast<size_t>(j)) = cell;
        gram(static_cast<size_t>(j), static_cast<size_t>(i)) = cell;
      }
    }
    for (size_t a = 0; a < cc.intra.size(); ++a) {
      for (size_t b = a; b < cc.intra.size(); ++b) {
        gram(static_cast<size_t>(cc.intra[a]), static_cast<size_t>(cc.intra[b])) = s2(a, b);
        gram(static_cast<size_t>(cc.intra[b]), static_cast<size_t>(cc.intra[a])) = s2(a, b);
      }
    }
    for (int pos : changed_positions) changed_flag[static_cast<size_t>(pos)] = 0;

    ClusterData data;
    data.cluster = it.cluster();
    data.row_begin = it.row_begin();
    data.size = n_c;
    data.gram = &gram;
    if (r != nullptr) {
      double r_sum = r_prefix[static_cast<size_t>(it.row_begin() + n_c)] -
                     r_prefix[static_cast<size_t>(it.row_begin())];
      for (int pos : cc.inter) ztr[pos] = values[static_cast<size_t>(pos)] * r_sum;
      for (size_t i = 0; i < cc.intra.size(); ++i) ztr[cc.intra[i]] = rx[i];
      data.ztr = &ztr;
    }
    emit(data);
    n_prev = n_c_d;
    first = false;
  }
}

void ForEachClusterLeft(const FactorizedMatrix& fm, const std::vector<int>& cols,
                        const std::vector<double>& r,
                        const std::function<void(const ClusterData&)>& emit) {
  REPTILE_CHECK_EQ(static_cast<int64_t>(r.size()), fm.num_rows());
  ClusterColumns cc = ClassifyColumns(fm, cols);
  const FTree& last_tree = fm.tree(fm.num_trees() - 1);
  const FTree::Level& child_level = last_tree.level(last_tree.depth() - 1);
  std::vector<double> r_prefix(r.size() + 1, 0.0);
  for (size_t i = 0; i < r.size(); ++i) r_prefix[i + 1] = r_prefix[i] + r[i];

  std::vector<double> values(cols.size(), 0.0);
  std::vector<double> ztr(cols.size(), 0.0);
  std::vector<int32_t> key_scratch;
  bool first = true;

  ClusterIterator it(fm);
  for (bool ok = it.Start(); ok; ok = it.Next()) {
    if (first) {
      for (int pos : cc.inter) {
        values[static_cast<size_t>(pos)] = ColumnValueInCluster(
            fm, cc.column_of[static_cast<size_t>(pos)], it.codes(), cc.intra_flat, 0,
            &key_scratch);
      }
      first = false;
    } else {
      for (int flat : it.changed_attrs()) {
        for (int pos : cc.inter_on_flat[static_cast<size_t>(flat)]) {
          values[static_cast<size_t>(pos)] = ColumnValueInCluster(
              fm, cc.column_of[static_cast<size_t>(pos)], it.codes(), cc.intra_flat, 0,
              &key_scratch);
        }
        for (int pos : cc.multi_on_flat[static_cast<size_t>(flat)]) {
          values[static_cast<size_t>(pos)] = ColumnValueInCluster(
              fm, cc.column_of[static_cast<size_t>(pos)], it.codes(), cc.intra_flat, 0,
              &key_scratch);
        }
      }
    }
    int64_t n_c = it.num_children();
    double r_sum = r_prefix[static_cast<size_t>(it.row_begin() + n_c)] -
                   r_prefix[static_cast<size_t>(it.row_begin())];
    for (int pos : cc.inter) ztr[pos] = values[static_cast<size_t>(pos)] * r_sum;
    for (int pos : cc.intra) ztr[pos] = 0.0;
    for (int64_t child = 0; child < n_c; ++child) {
      int32_t child_code = child_level.value[it.child_node_begin() + child];
      double rv = r[static_cast<size_t>(it.row_begin() + child)];
      for (int pos : cc.intra) {
        ztr[pos] += ColumnValueInCluster(fm, cc.column_of[static_cast<size_t>(pos)],
                                         it.codes(), cc.intra_flat, child_code,
                                         &key_scratch) *
                    rv;
      }
    }
    ClusterData data;
    data.cluster = it.cluster();
    data.row_begin = it.row_begin();
    data.size = n_c;
    data.ztr = &ztr;
    emit(data);
  }
}

void ClusterRightMultiply(const FactorizedMatrix& fm, const std::vector<int>& cols,
                          const Matrix& b, std::vector<double>* out) {
  REPTILE_CHECK_EQ(static_cast<int64_t>(b.rows()), fm.num_clusters());
  REPTILE_CHECK_EQ(b.cols(), cols.size());
  REPTILE_CHECK_EQ(static_cast<int64_t>(out->size()), fm.num_rows());
  ClusterColumns cc = ClassifyColumns(fm, cols);
  const FTree& last_tree = fm.tree(fm.num_trees() - 1);
  const FTree::Level& child_level = last_tree.level(last_tree.depth() - 1);
  std::vector<int32_t> key_scratch;
  std::vector<double> values(cols.size(), 0.0);
  bool first = true;

  ClusterIterator it(fm);
  for (bool ok = it.Start(); ok; ok = it.Next()) {
    // Inter values: refresh only what changed between adjacent clusters.
    if (first) {
      for (int pos : cc.inter) {
        values[static_cast<size_t>(pos)] = ColumnValueInCluster(
            fm, cc.column_of[static_cast<size_t>(pos)], it.codes(), cc.intra_flat, 0,
            &key_scratch);
      }
      first = false;
    } else {
      for (int flat : it.changed_attrs()) {
        for (int pos : cc.inter_on_flat[static_cast<size_t>(flat)]) {
          values[static_cast<size_t>(pos)] = ColumnValueInCluster(
              fm, cc.column_of[static_cast<size_t>(pos)], it.codes(), cc.intra_flat, 0,
              &key_scratch);
        }
        for (int pos : cc.multi_on_flat[static_cast<size_t>(flat)]) {
          values[static_cast<size_t>(pos)] = ColumnValueInCluster(
              fm, cc.column_of[static_cast<size_t>(pos)], it.codes(), cc.intra_flat, 0,
              &key_scratch);
        }
      }
    }
    const double* b_row = b.RowPtr(static_cast<size_t>(it.cluster()));
    double base = 0.0;
    for (int pos : cc.inter) base += values[static_cast<size_t>(pos)] * b_row[pos];
    for (int64_t child = 0; child < it.num_children(); ++child) {
      int32_t child_code = child_level.value[it.child_node_begin() + child];
      double value = base;
      for (int pos : cc.intra) {
        value += ColumnValueInCluster(fm, cols[static_cast<size_t>(pos)], it.codes(),
                                      cc.intra_flat, child_code, &key_scratch) *
                 b_row[pos];
      }
      (*out)[static_cast<size_t>(it.row_begin() + child)] = value;
    }
  }
}

}  // namespace reptile
