// Factorised left multiplication A · X (paper Section 4.2.2, Algorithm 3).
//
// A is a dense q x n matrix (n = virtual rows of X). Each column of X is a
// block-repetitive pattern fully described by the decomposed aggregates:
// within one repetition, each node value occupies lc(node) * suffix
// consecutive rows. Prefix sums over each row of A turn every block into an
// O(1) range sum, giving total cost O(q * n) — optimal, since the input A is
// itself q x n.

#ifndef REPTILE_FMATRIX_LEFT_MULT_H_
#define REPTILE_FMATRIX_LEFT_MULT_H_

#include <vector>

#include "factor/frep.h"
#include "linalg/matrix.h"

namespace reptile {

/// Computes A · X, returning a dense q x m matrix.
Matrix FactorizedLeftMultiply(const FactorizedMatrix& fm, const Matrix& a);

/// Computes X^T r for a length-n vector r (one row of the general case),
/// returning an m-vector. This is the EM inner-loop form.
std::vector<double> FactorizedVecLeftMultiply(const FactorizedMatrix& fm,
                                              const std::vector<double>& r);

}  // namespace reptile

#endif  // REPTILE_FMATRIX_LEFT_MULT_H_
