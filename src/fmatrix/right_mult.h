// Factorised right multiplication X · B (paper Section 4.2.2, Algorithm 4).
//
// The output is n x p and has no redundancy to exploit, so it is
// materialised; the optimization is on the input side: vertically adjacent
// rows of X overlap except in the few attributes that changed, so each output
// row is updated incrementally from its predecessor via the row iterator.

#ifndef REPTILE_FMATRIX_RIGHT_MULT_H_
#define REPTILE_FMATRIX_RIGHT_MULT_H_

#include <vector>

#include "factor/frep.h"
#include "linalg/matrix.h"

namespace reptile {

/// Computes X · B (B is m x p), returning a dense n x p matrix.
Matrix FactorizedRightMultiply(const FactorizedMatrix& fm, const Matrix& b);

/// Computes X · beta for a coefficient vector (p = 1), returning an n-vector.
/// This is the EM inner-loop form.
std::vector<double> FactorizedVecRightMultiply(const FactorizedMatrix& fm,
                                               const std::vector<double>& beta);

}  // namespace reptile

#endif  // REPTILE_FMATRIX_RIGHT_MULT_H_
