#include "fmatrix/materialize.h"

#include "common/check.h"
#include "factor/row_iterator.h"

namespace reptile {

Matrix MaterializeMatrix(const FactorizedMatrix& fm, int64_t max_rows) {
  REPTILE_CHECK_LE(fm.num_rows(), max_rows) << "materialisation too large";
  int64_t n = fm.num_rows();
  int m = fm.num_cols();
  Matrix x(static_cast<size_t>(n), static_cast<size_t>(m));

  // Incremental fill: only columns whose attribute changed are recomputed.
  RowIterator it(fm);
  std::vector<AttrChange> changed;
  std::vector<double> current(m, 0.0);
  std::vector<int32_t> codes(fm.num_attrs(), 0);
  // Multi-attribute columns touched by each flat attribute.
  std::vector<std::vector<int>> multi_on_attr(fm.num_attrs());
  for (int mc : fm.MultiColumns()) {
    for (AttrId a : fm.column(mc).attrs) multi_on_attr[fm.FlatAttrIndex(a)].push_back(mc);
  }
  std::vector<int32_t> key;
  std::vector<char> multi_dirty(fm.num_cols(), 0);

  for (bool ok = it.Start(&changed); ok; ok = it.Next(&changed)) {
    for (const AttrChange& change : changed) {
      codes[change.flat_attr] = change.code;
      for (int c : fm.ColumnsOnAttr(fm.FlatAttr(change.flat_attr))) {
        current[c] = fm.column(c).ValueForCode(change.code);
      }
      for (int mc : multi_on_attr[change.flat_attr]) multi_dirty[mc] = 1;
    }
    for (int mc : fm.MultiColumns()) {
      if (!multi_dirty[mc]) continue;
      multi_dirty[mc] = 0;
      const FeatureColumn& column = fm.column(mc);
      key.resize(column.attrs.size());
      for (size_t i = 0; i < column.attrs.size(); ++i) {
        key[i] = codes[fm.FlatAttrIndex(column.attrs[i])];
      }
      current[mc] = column.ValueForTuple(key);
    }
    double* row = x.RowPtr(static_cast<size_t>(it.row()));
    for (int c = 0; c < m; ++c) row[c] = current[c];
  }
  return x;
}

}  // namespace reptile
