#include "fmatrix/right_mult.h"

#include "common/check.h"
#include "factor/row_iterator.h"

namespace reptile {
namespace {

// Shared incremental driver: for each row, maintains the per-column feature
// value and the running output row out = sum_c f_c * B[c, :], updating only
// the columns whose attribute changed.
template <typename EmitRow>
void RightMultiplyImpl(const FactorizedMatrix& fm, const Matrix& b, const EmitRow& emit) {
  REPTILE_CHECK_EQ(b.rows(), static_cast<size_t>(fm.num_cols()));
  size_t p = b.cols();
  std::vector<double> acc(p, 0.0);
  std::vector<double> current(fm.num_cols(), 0.0);
  std::vector<int32_t> codes(fm.num_attrs(), 0);
  std::vector<std::vector<int>> multi_on_attr(fm.num_attrs());
  for (int mc : fm.MultiColumns()) {
    for (AttrId attr : fm.column(mc).attrs) {
      multi_on_attr[fm.FlatAttrIndex(attr)].push_back(mc);
    }
  }
  std::vector<char> dirty(fm.num_cols(), 0);
  std::vector<int32_t> key;

  auto apply_delta = [&](int c, double new_value) {
    double delta = new_value - current[c];
    if (delta == 0.0) return;
    current[c] = new_value;
    const double* b_row = b.RowPtr(static_cast<size_t>(c));
    for (size_t j = 0; j < p; ++j) acc[j] += delta * b_row[j];
  };

  RowIterator it(fm);
  std::vector<AttrChange> changed;
  for (bool ok = it.Start(&changed); ok; ok = it.Next(&changed)) {
    for (const AttrChange& change : changed) {
      codes[change.flat_attr] = change.code;
      for (int c : fm.ColumnsOnAttr(fm.FlatAttr(change.flat_attr))) {
        apply_delta(c, fm.column(c).ValueForCode(change.code));
      }
      for (int mc : multi_on_attr[change.flat_attr]) dirty[mc] = 1;
    }
    for (int mc : fm.MultiColumns()) {
      if (!dirty[mc]) continue;
      dirty[mc] = 0;
      const FeatureColumn& column = fm.column(mc);
      key.resize(column.attrs.size());
      for (size_t i = 0; i < column.attrs.size(); ++i) {
        key[i] = codes[fm.FlatAttrIndex(column.attrs[i])];
      }
      apply_delta(mc, column.ValueForTuple(key));
    }
    emit(it.row(), acc);
  }
}

// Per-tree leaf contribution: contrib[leaf * p + j] = sum over the tree's
// columns c of f_c(path value) * B[c][j]. Computed with one cursor pass and
// per-level partial sums, so shared ancestors are not recomputed.
std::vector<double> TreeLeafContributions(const FactorizedMatrix& fm, int tree_index,
                                          const Matrix& b) {
  const FTree& tree = fm.tree(tree_index);
  size_t p = b.cols();
  int depth = tree.depth();
  std::vector<double> out(static_cast<size_t>(tree.num_leaves()) * p, 0.0);
  // level_sum[l] = contribution of the columns on levels 0..l of the current
  // path; recomputing from the highest changed level keeps the pass O(nodes).
  Matrix level_sum(static_cast<size_t>(depth), p);
  FTree::Cursor cursor(&tree, depth - 1);
  int64_t leaf = 0;
  int changed_from = 0;
  for (;;) {
    for (int l = changed_from; l < depth; ++l) {
      const double* prev = l > 0 ? level_sum.RowPtr(static_cast<size_t>(l) - 1) : nullptr;
      double* cur = level_sum.RowPtr(static_cast<size_t>(l));
      for (size_t j = 0; j < p; ++j) cur[j] = prev != nullptr ? prev[j] : 0.0;
      int32_t code = tree.level(l).value[cursor.node(l)];
      for (int c : fm.ColumnsOnAttr(AttrId{tree_index, l})) {
        double f = fm.column(c).ValueForCode(code);
        if (f == 0.0) continue;
        const double* b_row = b.RowPtr(static_cast<size_t>(c));
        for (size_t j = 0; j < p; ++j) cur[j] += f * b_row[j];
      }
    }
    const double* deepest = level_sum.RowPtr(static_cast<size_t>(depth) - 1);
    double* out_row = out.data() + static_cast<size_t>(leaf) * p;
    for (size_t j = 0; j < p; ++j) out_row[j] = deepest[j];
    changed_from = cursor.Advance();
    if (changed_from < 0) break;
    ++leaf;
  }
  return out;
}

// Fast path for single-attribute matrices: X · B decomposes into per-tree
// leaf-contribution patterns combined by nested repetition — roughly one
// p-vector addition per output cell, independent of the number of columns.
void RightMultiplyBlocks(const FactorizedMatrix& fm, const Matrix& b, double* out) {
  size_t p = b.cols();
  // cur holds the combined contributions over trees 0..k, one p-vector per
  // prefix combination.
  std::vector<double> cur(p, 0.0);
  for (int k = 0; k < fm.num_trees(); ++k) {
    std::vector<double> tree_contrib = TreeLeafContributions(fm, k, b);
    size_t prefix = cur.size() / p;
    size_t leaves = static_cast<size_t>(fm.tree(k).num_leaves());
    bool last = k + 1 == fm.num_trees();
    std::vector<double> next(last ? 0 : prefix * leaves * p);
    double* dst = last ? out : next.data();  // final stage writes the output
    for (size_t i = 0; i < prefix; ++i) {
      const double* base = cur.data() + i * p;
      const double* leaf_row = tree_contrib.data();
      for (size_t leaf = 0; leaf < leaves; ++leaf) {
        for (size_t j = 0; j < p; ++j) dst[j] = base[j] + leaf_row[j];
        dst += p;
        leaf_row += p;
      }
    }
    if (!last) cur = std::move(next);
  }
}

}  // namespace

Matrix FactorizedRightMultiply(const FactorizedMatrix& fm, const Matrix& b) {
  Matrix out(static_cast<size_t>(fm.num_rows()), b.cols());
  if (fm.AllSingleAttribute()) {
    RightMultiplyBlocks(fm, b, out.mutable_data().data());
    return out;
  }
  RightMultiplyImpl(fm, b, [&](int64_t row, const std::vector<double>& acc) {
    double* out_row = out.RowPtr(static_cast<size_t>(row));
    for (size_t j = 0; j < acc.size(); ++j) out_row[j] = acc[j];
  });
  return out;
}

std::vector<double> FactorizedVecRightMultiply(const FactorizedMatrix& fm,
                                               const std::vector<double>& beta) {
  Matrix b = Matrix::ColumnVector(beta);
  std::vector<double> out(static_cast<size_t>(fm.num_rows()), 0.0);
  if (fm.AllSingleAttribute()) {
    RightMultiplyBlocks(fm, b, out.data());
    return out;
  }
  RightMultiplyImpl(fm, b, [&](int64_t row, const std::vector<double>& acc) {
    out[static_cast<size_t>(row)] = acc[0];
  });
  return out;
}

}  // namespace reptile
