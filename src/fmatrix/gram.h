// Factorised gram matrix X^T X (paper Section 4.2.2, Algorithm 2).
//
// Each output cell quantifies the duplication of a column pair through the
// decomposed aggregates instead of enumerating rows:
//
//   same attribute     : (n / L_k) * sum_node lc(node) f(v) g(v)
//   same hierarchy a<b : (n / L_k) * sum_{node at b} lc(node) f(anc) g(v)
//   cross hierarchy    : (n / (L_k L_k')) * WS_f * WS_g
//
// where lc is the subtree leaf count (local COUNT), L_k the tree's leaf
// total, and WS the leaf-weighted column sum. The cross-hierarchy case is the
// cartesian-product optimization: COF across hierarchies is never
// materialised.

#ifndef REPTILE_FMATRIX_GRAM_H_
#define REPTILE_FMATRIX_GRAM_H_

#include "factor/decomposed.h"
#include "factor/frep.h"
#include "linalg/matrix.h"

namespace reptile {

/// Computes X^T X (m x m). Requires local aggregates for each tree (for the
/// same-hierarchy COF/ancestor tables). Columns involving multi-attribute
/// features are computed through a single row-enumeration pass (Appendix H
/// hybrid path); all other cells use the closed-form aggregates.
Matrix FactorizedGram(const FactorizedMatrix& fm, const DecomposedAggregates& agg);

/// Leaf-weighted column sum WS = sum_node lc(node) * f(value(node)) for a
/// single-attribute column; exposed for reuse by the left-multiplication and
/// the LMFAO-style baseline.
double WeightedColumnSum(const FactorizedMatrix& fm, int column);

}  // namespace reptile

#endif  // REPTILE_FMATRIX_GRAM_H_
