// Full materialisation of the factorised feature matrix. This is the
// exponential-cost path the baselines pay (paper Section 5.1.1) and the input
// to the dense ("Matlab/LAPACK-style") trainer; Reptile's operators never
// call it.

#ifndef REPTILE_FMATRIX_MATERIALIZE_H_
#define REPTILE_FMATRIX_MATERIALIZE_H_

#include "factor/frep.h"
#include "linalg/matrix.h"

namespace reptile {

/// Materialises X (num_rows x num_cols). Aborts when the row count exceeds
/// `max_rows` as a guard against accidental exponential blowups.
Matrix MaterializeMatrix(const FactorizedMatrix& fm, int64_t max_rows = int64_t{1} << 26);

}  // namespace reptile

#endif  // REPTILE_FMATRIX_MATERIALIZE_H_
