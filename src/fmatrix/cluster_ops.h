// Per-cluster factorised matrix operations (paper Appendix F,
// Algorithms 5-7).
//
// Clusters of the multi-level model are the combinations of every attribute
// except the drilled (intra) one; with the drilled hierarchy last in the
// attribute order they are contiguous row ranges, enumerated here without
// materialising anything. Within a cluster all inter-cluster columns are
// constant, so a cluster's gram / left / right products reduce to the
// cluster size, the intra-column child sums, and O(q^2) scalar work.

#ifndef REPTILE_FMATRIX_CLUSTER_OPS_H_
#define REPTILE_FMATRIX_CLUSTER_OPS_H_

#include <functional>
#include <memory>
#include <vector>

#include "factor/frep.h"
#include "factor/row_iterator.h"
#include "linalg/matrix.h"

namespace reptile {

/// Enumerates clusters in row order, exposing the constant (inter) attribute
/// codes and the intra attribute's child node range.
class ClusterIterator {
 public:
  explicit ClusterIterator(const FactorizedMatrix& fm);

  /// Positions at the first cluster; false when the matrix is empty.
  bool Start();

  /// Advances; false at the end.
  bool Next();

  int64_t cluster() const { return cluster_; }
  int64_t row_begin() const { return row_begin_; }

  /// Number of rows (= children of the intra attribute) in this cluster.
  int64_t num_children() const { return num_children_; }

  /// First child node index at the last tree's deepest level.
  int64_t child_node_begin() const { return child_begin_; }

  /// Current value code of any non-intra attribute.
  int32_t inter_code(int flat_attr) const { return codes_[flat_attr]; }
  const std::vector<int32_t>& codes() const { return codes_; }

  /// Flat attributes whose code changed in the last Start()/Next() — the
  /// adjacency the incremental per-cluster operators (Algorithm 5) exploit.
  const std::vector<int>& changed_attrs() const { return changed_attrs_; }

 private:
  const FactorizedMatrix* fm_;
  std::vector<FTree::Cursor> prefix_cursors_;  // trees 0 .. h-2, deepest level
  std::unique_ptr<FTree::Cursor> parent_cursor_;  // last tree at depth-2; null if depth==1
  std::vector<int> attr_offset_;
  std::vector<int32_t> codes_;
  std::vector<int> changed_attrs_;
  int64_t cluster_ = -1;
  int64_t row_begin_ = 0;
  int64_t num_children_ = 0;
  int64_t child_begin_ = 0;

  void RefreshChildRange();
  void RefreshTreeCodes(int tree, int from_level);
};

/// Per-cluster outputs delivered to the visitor of ForEachCluster.
struct ClusterData {
  int64_t cluster = 0;
  int64_t row_begin = 0;
  int64_t size = 0;
  const Matrix* gram = nullptr;             // q x q: Z_i^T Z_i over `cols`
  const std::vector<double>* ztr = nullptr; // q: Z_i^T r_i (only when r given)
};

/// Streams every cluster's gram matrix over the selected columns — and, when
/// `r` (length n) is provided, the per-cluster product Z_i^T r_i — to `emit`.
/// This fuses Algorithm 5 (cluster gram) and Algorithm 6 (cluster left
/// multiplication): the EM expectation step consumes both per cluster.
void ForEachClusterGram(const FactorizedMatrix& fm, const std::vector<int>& cols,
                        const std::vector<double>* r,
                        const std::function<void(const ClusterData&)>& emit);

/// Per-cluster left multiplication only (Algorithm 6): streams
/// Z_i^T r_i per cluster without computing the gram, for callers that need
/// just the projections.
void ForEachClusterLeft(const FactorizedMatrix& fm, const std::vector<int>& cols,
                        const std::vector<double>& r,
                        const std::function<void(const ClusterData&)>& emit);

/// Per-cluster right multiplication (Algorithm 7): writes
/// out[row] = X_i(cols) · b_i for every row, where b row i of `b` (G x q)
/// holds cluster i's coefficients. `out` must have length n.
void ClusterRightMultiply(const FactorizedMatrix& fm, const std::vector<int>& cols,
                          const Matrix& b, std::vector<double>* out);

}  // namespace reptile

#endif  // REPTILE_FMATRIX_CLUSTER_OPS_H_
