#include "fmatrix/left_mult.h"

#include "common/check.h"
#include "factor/row_iterator.h"

namespace reptile {
namespace {

// Accumulates r^T X into `out` given the prefix sums of r. `prefix[i]` is the
// sum of r[0..i). Handles single-attribute columns via range sums; multi
// columns are accumulated by the caller's row pass.
void AccumulateSingleColumns(const FactorizedMatrix& fm, const std::vector<double>& prefix,
                             double* out) {
  for (int c = 0; c < fm.num_cols(); ++c) {
    const FeatureColumn& col = fm.column(c);
    if (col.is_multi) continue;
    const FTree& tree = fm.tree(col.attr.hierarchy);
    const FTree::Level& level = tree.level(col.attr.level);
    int64_t suffix = fm.SuffixLeaves(col.attr.hierarchy);
    int64_t repeats = fm.PrefixLeaves(col.attr.hierarchy);
    double acc = 0.0;
    int64_t pos = 0;
    for (int64_t rep = 0; rep < repeats; ++rep) {
      for (int64_t node = 0; node < level.size(); ++node) {
        int64_t len = level.leaf_count[node] * suffix;
        acc += (prefix[pos + len] - prefix[pos]) * col.ValueForCode(level.value[node]);
        pos += len;
      }
    }
    REPTILE_DCHECK(pos == fm.num_rows());
    out[c] = acc;
  }
}

// One row-enumeration pass accumulating r^T X for the multi-attribute
// columns only (Appendix H hybrid path).
void AccumulateMultiColumns(const FactorizedMatrix& fm, const std::vector<double>& r,
                            double* out) {
  if (fm.MultiColumns().empty()) return;
  RowIterator it(fm);
  std::vector<AttrChange> changed;
  std::vector<int32_t> codes(fm.num_attrs(), 0);
  std::vector<std::vector<int>> multi_on_attr(fm.num_attrs());
  for (int mc : fm.MultiColumns()) {
    for (AttrId attr : fm.column(mc).attrs) {
      multi_on_attr[fm.FlatAttrIndex(attr)].push_back(mc);
    }
  }
  std::vector<double> current(fm.num_cols(), 0.0);
  std::vector<char> dirty(fm.num_cols(), 0);
  std::vector<int32_t> key;
  for (bool ok = it.Start(&changed); ok; ok = it.Next(&changed)) {
    for (const AttrChange& change : changed) {
      codes[change.flat_attr] = change.code;
      for (int mc : multi_on_attr[change.flat_attr]) dirty[mc] = 1;
    }
    for (int mc : fm.MultiColumns()) {
      if (dirty[mc]) {
        dirty[mc] = 0;
        const FeatureColumn& column = fm.column(mc);
        key.resize(column.attrs.size());
        for (size_t i = 0; i < column.attrs.size(); ++i) {
          key[i] = codes[fm.FlatAttrIndex(column.attrs[i])];
        }
        current[mc] = column.ValueForTuple(key);
      }
      out[mc] += current[mc] * r[static_cast<size_t>(it.row())];
    }
  }
}

}  // namespace

Matrix FactorizedLeftMultiply(const FactorizedMatrix& fm, const Matrix& a) {
  REPTILE_CHECK_EQ(static_cast<int64_t>(a.cols()), fm.num_rows());
  Matrix out(a.rows(), static_cast<size_t>(fm.num_cols()));
  std::vector<double> prefix(static_cast<size_t>(fm.num_rows()) + 1, 0.0);
  std::vector<double> row(static_cast<size_t>(fm.num_rows()));
  for (size_t q = 0; q < a.rows(); ++q) {
    const double* a_row = a.RowPtr(q);
    for (size_t i = 0; i < row.size(); ++i) {
      row[i] = a_row[i];
      prefix[i + 1] = prefix[i] + a_row[i];
    }
    AccumulateSingleColumns(fm, prefix, out.RowPtr(q));
    AccumulateMultiColumns(fm, row, out.RowPtr(q));
  }
  return out;
}

std::vector<double> FactorizedVecLeftMultiply(const FactorizedMatrix& fm,
                                              const std::vector<double>& r) {
  REPTILE_CHECK_EQ(static_cast<int64_t>(r.size()), fm.num_rows());
  std::vector<double> prefix(r.size() + 1, 0.0);
  for (size_t i = 0; i < r.size(); ++i) prefix[i + 1] = prefix[i] + r[i];
  std::vector<double> out(fm.num_cols(), 0.0);
  AccumulateSingleColumns(fm, prefix, out.data());
  AccumulateMultiColumns(fm, r, out.data());
  return out;
}

}  // namespace reptile
