#include "fmatrix/gram.h"

#include "common/check.h"
#include "factor/row_iterator.h"

namespace reptile {

double WeightedColumnSum(const FactorizedMatrix& fm, int column) {
  const FeatureColumn& col = fm.column(column);
  REPTILE_CHECK(!col.is_multi);
  const FTree& tree = fm.tree(col.attr.hierarchy);
  const FTree::Level& level = tree.level(col.attr.level);
  double sum = 0.0;
  for (int64_t node = 0; node < level.size(); ++node) {
    sum += static_cast<double>(level.leaf_count[node]) * col.ValueForCode(level.value[node]);
  }
  return sum;
}

namespace {

// Gram cell for two single-attribute columns, using the decomposed
// aggregates. `ci` must not come after `cj` in attribute order.
double SingleAttrCell(const FactorizedMatrix& fm, const DecomposedAggregates& agg, int ci,
                      int cj) {
  const FeatureColumn& a = fm.column(ci);
  const FeatureColumn& b = fm.column(cj);
  double n = static_cast<double>(fm.num_rows());
  if (a.attr.hierarchy != b.attr.hierarchy) {
    // Cross-hierarchy: cartesian product; the COF factorises into the two
    // leaf-weighted sums.
    double la = static_cast<double>(fm.tree(a.attr.hierarchy).num_leaves());
    double lb = static_cast<double>(fm.tree(b.attr.hierarchy).num_leaves());
    return n / (la * lb) * WeightedColumnSum(fm, ci) * WeightedColumnSum(fm, cj);
  }
  const FTree& tree = fm.tree(a.attr.hierarchy);
  double lk = static_cast<double>(tree.num_leaves());
  double multiplier = n / lk;
  int la_level = a.attr.level;
  int lb_level = b.attr.level;
  const FeatureColumn* upper = &a;  // column on the less specific level
  const FeatureColumn* lower = &b;
  if (la_level > lb_level) {
    std::swap(la_level, lb_level);
    std::swap(upper, lower);
  }
  const FTree::Level& deep = tree.level(lb_level);
  double sum = 0.0;
  if (la_level == lb_level) {
    for (int64_t node = 0; node < deep.size(); ++node) {
      sum += static_cast<double>(deep.leaf_count[node]) *
             upper->ValueForCode(deep.value[node]) * lower->ValueForCode(deep.value[node]);
    }
  } else {
    const std::vector<int64_t>& anc =
        agg.local(a.attr.hierarchy).AncestorTable(la_level, lb_level);
    const FTree::Level& shallow = tree.level(la_level);
    for (int64_t node = 0; node < deep.size(); ++node) {
      sum += static_cast<double>(deep.leaf_count[node]) *
             upper->ValueForCode(shallow.value[anc[node]]) *
             lower->ValueForCode(deep.value[node]);
    }
  }
  return multiplier * sum;
}

}  // namespace

Matrix FactorizedGram(const FactorizedMatrix& fm, const DecomposedAggregates& agg) {
  int m = fm.num_cols();
  Matrix gram(m, m);
  for (int i = 0; i < m; ++i) {
    if (fm.column(i).is_multi) continue;
    for (int j = i; j < m; ++j) {
      if (fm.column(j).is_multi) continue;
      double cell = SingleAttrCell(fm, agg, i, j);
      gram(i, j) = cell;
      gram(j, i) = cell;
    }
  }

  // Hybrid path for multi-attribute columns: one incremental row pass
  // accumulating every cell that involves at least one multi column.
  if (!fm.MultiColumns().empty()) {
    RowIterator it(fm);
    std::vector<AttrChange> changed;
    std::vector<double> current(m, 0.0);
    std::vector<int32_t> codes(fm.num_attrs(), 0);
    std::vector<std::vector<int>> multi_on_attr(fm.num_attrs());
    for (int mc : fm.MultiColumns()) {
      for (AttrId attr : fm.column(mc).attrs) {
        multi_on_attr[fm.FlatAttrIndex(attr)].push_back(mc);
      }
    }
    std::vector<int32_t> key;
    std::vector<char> dirty(m, 0);
    for (bool ok = it.Start(&changed); ok; ok = it.Next(&changed)) {
      for (const AttrChange& change : changed) {
        codes[change.flat_attr] = change.code;
        for (int c : fm.ColumnsOnAttr(fm.FlatAttr(change.flat_attr))) {
          current[c] = fm.column(c).ValueForCode(change.code);
        }
        for (int mc : multi_on_attr[change.flat_attr]) dirty[mc] = 1;
      }
      for (int mc : fm.MultiColumns()) {
        if (!dirty[mc]) continue;
        dirty[mc] = 0;
        const FeatureColumn& column = fm.column(mc);
        key.resize(column.attrs.size());
        for (size_t i = 0; i < column.attrs.size(); ++i) {
          key[i] = codes[fm.FlatAttrIndex(column.attrs[i])];
        }
        current[mc] = column.ValueForTuple(key);
      }
      for (int mc : fm.MultiColumns()) {
        double v = current[mc];
        for (int j = 0; j < m; ++j) {
          if (fm.column(j).is_multi && j < mc) continue;  // count each pair once
          gram(mc, j) += v * current[j];
        }
      }
    }
    for (int mc : fm.MultiColumns()) {
      for (int j = 0; j < m; ++j) {
        if (j != mc) gram(j, mc) = gram(mc, j);
      }
    }
  }
  return gram;
}

}  // namespace reptile
