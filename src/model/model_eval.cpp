#include "model/model_eval.h"

#include <cmath>

#include "common/check.h"
#include "linalg/solve.h"

namespace reptile {
namespace {

constexpr double kLog2Pi = 1.8378770664093453;

}  // namespace

double LinearLogLikelihood(const LinearModel& model, int64_t n) {
  double sigma2 = std::max(model.sigma2, 1e-12);
  return -0.5 * static_cast<double>(n) * (kLog2Pi + std::log(sigma2) + 1.0);
}

double LinearAic(const LinearModel& model, int64_t n) {
  double k = static_cast<double>(model.beta.size()) + 1.0;
  return 2.0 * k - 2.0 * LinearLogLikelihood(model, n);
}

double MultiLevelLogLikelihood(const EmBackend* backend, const MultiLevelModel& model,
                               const std::vector<double>& y) {
  REPTILE_CHECK(backend != nullptr);
  size_t q = model.z_cols.size();
  double sigma2 = std::max(model.sigma2, 1e-12);

  // Fixed-effect residual and its per-cluster squared sums.
  std::vector<double> fitted = backend->XTimes(model.beta);
  std::vector<double> r(y.size());
  for (size_t i = 0; i < y.size(); ++i) r[i] = y[i] - fitted[i];

  Matrix sigma_inv = InverseSymmetricRidge(model.sigma_b, 1e-10);
  double log_lik = 0.0;
  int64_t row_offset = 0;
  backend->ForEachCluster(r, [&](int64_t g, int64_t size, const Matrix& ztz,
                                 const std::vector<double>& ztr) {
    (void)g;
    double rr = 0.0;
    for (int64_t i = 0; i < size; ++i) {
      double v = r[static_cast<size_t>(row_offset + i)];
      rr += v * v;
    }
    row_offset += size;

    // log det(sigma2 I + Z Sigma Z^T)
    //   = n_i log sigma2 + log det(I_q + Sigma Z^T Z / sigma2).
    Matrix inner = Matrix::Identity(q).Add(model.sigma_b.Multiply(ztz).Scale(1.0 / sigma2));
    double log_det_inner = LogAbsDet(inner).value_or(0.0);
    double log_det = static_cast<double>(size) * std::log(sigma2) + log_det_inner;

    // Quadratic form via Woodbury:
    //   r^T V^-1 r = (r^T r - ztr^T (sigma2 Sigma^-1 + Z^T Z)^-1 ztr) / sigma2.
    Matrix core = sigma_inv.Scale(sigma2).Add(ztz);
    Matrix core_inv = InverseSymmetricRidge(core, 1e-10);
    double correction = 0.0;
    for (size_t i = 0; i < q; ++i) {
      for (size_t j = 0; j < q; ++j) correction += ztr[i] * core_inv(i, j) * ztr[j];
    }
    double quad = (rr - correction) / sigma2;

    log_lik += -0.5 * (static_cast<double>(size) * kLog2Pi + log_det + quad);
  });
  return log_lik;
}

double MultiLevelAic(const EmBackend* backend, const MultiLevelModel& model,
                     const std::vector<double>& y) {
  double q = static_cast<double>(model.z_cols.size());
  double k = static_cast<double>(model.beta.size()) + q * (q + 1.0) / 2.0 + 1.0;
  return 2.0 * k - 2.0 * MultiLevelLogLikelihood(backend, model, y);
}

}  // namespace reptile
