// Multi-level (mixed-effects) linear model trained by EM (paper Section 3.2
// and Appendix D):
//
//   y_i = X_i beta + Z_i b_i + eps_i,   b_i ~ N(0, Sigma),  eps_i ~ N(0, s2 I)
//
// for clusters i = 1..G (the drill-down parent groups). Z_i is X_i restricted
// to the random-effect columns (all columns by default, Section 3.3.4).
//
// The EM loop is written once against an EmBackend interface; the factorised
// backend routes every operation through the factorised operators (the
// paper's contribution), and the dense backend runs the same algebra over a
// materialised matrix (the Matlab/LAPACK-style baseline of Section 5.1.4).

#ifndef REPTILE_MODEL_MULTILEVEL_H_
#define REPTILE_MODEL_MULTILEVEL_H_

#include <functional>
#include <memory>
#include <vector>

#include "factor/decomposed.h"
#include "factor/frep.h"
#include "linalg/matrix.h"

namespace reptile {

/// Abstract matrix-operation provider for the EM loop. All six bottleneck
/// operations of Appendix D appear here.
class EmBackend {
 public:
  virtual ~EmBackend() = default;

  virtual int64_t n() const = 0;
  virtual int m() const = 0;
  virtual int64_t num_clusters() const = 0;
  virtual const std::vector<int>& z_cols() const = 0;

  // All operations are const: a backend borrows immutable inputs (the
  // factorised matrix and aggregates, or the materialised matrix) and holds
  // no per-fit scratch state, so one backend — and the read-only structures
  // under it — can serve fits on several worker threads at once.

  /// X^T X (precomputed once per fit).
  virtual Matrix Gram() const = 0;

  /// X^T v for an n-vector v (left multiplication).
  virtual std::vector<double> XtV(const std::vector<double>& v) const = 0;

  /// X beta for an m-vector beta (right multiplication).
  virtual std::vector<double> XTimes(const std::vector<double>& beta) const = 0;

  /// Per-cluster Z_i^T Z_i and Z_i^T r_i, streamed in cluster order.
  virtual void ForEachCluster(
      const std::vector<double>& r,
      const std::function<void(int64_t cluster, int64_t size, const Matrix& ztz,
                               const std::vector<double>& ztr)>& emit) const = 0;

  /// Z b: per-cluster right multiplication with cluster coefficients
  /// (b is G x q); out must have length n.
  virtual void ZTimesB(const Matrix& b, std::vector<double>* out) const = 0;
};

/// Factorised backend over a FactorizedMatrix (+ decomposed aggregates).
class FactorizedEmBackend : public EmBackend {
 public:
  FactorizedEmBackend(const FactorizedMatrix* fm, const DecomposedAggregates* agg,
                      std::vector<int> z_cols);

  int64_t n() const override { return fm_->num_rows(); }
  int m() const override { return fm_->num_cols(); }
  int64_t num_clusters() const override { return fm_->num_clusters(); }
  const std::vector<int>& z_cols() const override { return z_cols_; }
  Matrix Gram() const override;
  std::vector<double> XtV(const std::vector<double>& v) const override;
  std::vector<double> XTimes(const std::vector<double>& beta) const override;
  void ForEachCluster(
      const std::vector<double>& r,
      const std::function<void(int64_t, int64_t, const Matrix&, const std::vector<double>&)>&
          emit) const override;
  void ZTimesB(const Matrix& b, std::vector<double>* out) const override;

 private:
  const FactorizedMatrix* fm_;
  const DecomposedAggregates* agg_;
  std::vector<int> z_cols_;
};

/// Dense backend over a materialised matrix with contiguous cluster ranges.
class DenseEmBackend : public EmBackend {
 public:
  /// `cluster_begin` holds the first row of each cluster plus a final
  /// sentinel equal to n (so cluster i spans [begin[i], begin[i+1])).
  DenseEmBackend(const Matrix* x, std::vector<int64_t> cluster_begin, std::vector<int> z_cols);

  int64_t n() const override { return static_cast<int64_t>(x_->rows()); }
  int m() const override { return static_cast<int>(x_->cols()); }
  int64_t num_clusters() const override {
    return static_cast<int64_t>(cluster_begin_.size()) - 1;
  }
  const std::vector<int>& z_cols() const override { return z_cols_; }
  Matrix Gram() const override;
  std::vector<double> XtV(const std::vector<double>& v) const override;
  std::vector<double> XTimes(const std::vector<double>& beta) const override;
  void ForEachCluster(
      const std::vector<double>& r,
      const std::function<void(int64_t, int64_t, const Matrix&, const std::vector<double>&)>&
          emit) const override;
  void ZTimesB(const Matrix& b, std::vector<double>* out) const override;

 private:
  const Matrix* x_;
  std::vector<int64_t> cluster_begin_;
  std::vector<int> z_cols_;
};

/// Training options. em_iters = 20 matches the paper's experiments.
/// A positive `tolerance` stops EM early once an iteration moves no beta
/// coefficient by more than that amount (max |Δbeta| <= tolerance); 0 runs
/// every iteration, the bit-reproducible default.
struct MultiLevelOptions {
  int em_iters = 20;
  double min_sigma2 = 1e-9;
  double ridge = 1e-9;
  double tolerance = 0.0;
};

/// Fitted multi-level model.
struct MultiLevelModel {
  std::vector<double> beta;    // fixed effects (m)
  Matrix sigma_b;              // random-effect covariance (q x q)
  double sigma2 = 0.0;         // residual variance
  Matrix b;                    // posterior cluster effects (G x q)
  std::vector<int> z_cols;     // columns of X forming Z
  std::vector<double> fitted;  // X beta + Z b per row (n)
  // EM iterations actually executed: em_iters when the loop ran to its cap,
  // fewer when a positive tolerance stopped it early — the number users need
  // to see to tune em_tolerance.
  int iterations_run = 0;
};

/// Runs EM (Appendix D) for `options.em_iters` iterations. The backend is
/// read-only throughout the fit.
MultiLevelModel TrainMultiLevel(const EmBackend* backend, const std::vector<double>& y,
                                const MultiLevelOptions& options = MultiLevelOptions());

}  // namespace reptile

#endif  // REPTILE_MODEL_MULTILEVEL_H_
