// Model-quality evaluation (paper Appendix K): marginal Gaussian
// log-likelihoods and the Akaike information criterion used to compare
// Linear / Linear-f / Multi-level / Multi-level-f on the FIST and Vote
// datasets (Figure 16).

#ifndef REPTILE_MODEL_MODEL_EVAL_H_
#define REPTILE_MODEL_MODEL_EVAL_H_

#include <vector>

#include "model/linear.h"
#include "model/multilevel.h"

namespace reptile {

/// Gaussian log-likelihood of a fitted linear model (MLE variance).
double LinearLogLikelihood(const LinearModel& model, int64_t n);

/// AIC of a linear model: k = m + 1 (coefficients + variance).
double LinearAic(const LinearModel& model, int64_t n);

/// Marginal log-likelihood of a multi-level model: per cluster,
/// y_i ~ N(X_i beta, sigma2 I + Z_i Sigma Z_i^T), evaluated with q x q
/// Woodbury / determinant-lemma identities so no n_i x n_i matrix is formed.
double MultiLevelLogLikelihood(const EmBackend* backend, const MultiLevelModel& model,
                               const std::vector<double>& y);

/// AIC of a multi-level model: k = m + q(q+1)/2 + 1.
double MultiLevelAic(const EmBackend* backend, const MultiLevelModel& model,
                     const std::vector<double>& y);

}  // namespace reptile

#endif  // REPTILE_MODEL_MODEL_EVAL_H_
