#include "model/features.h"

#include <cmath>

#include "common/check.h"
#include "common/stats.h"

namespace reptile {

AttrValueStats CollectAttrValueStats(const GroupByResult& groups, size_t key_pos, AggFn fn,
                                     int32_t cardinality) {
  AttrValueStats stats;
  stats.y_per_code.assign(static_cast<size_t>(cardinality), {});
  for (size_t g = 0; g < groups.num_groups(); ++g) {
    int32_t code = groups.key(g, key_pos);
    REPTILE_CHECK(code >= 0 && code < cardinality);
    stats.y_per_code[static_cast<size_t>(code)].push_back(groups.stats(g).Value(fn));
  }
  return stats;
}

std::vector<double> MainEffectMap(const GroupByResult& groups, size_t key_pos, AggFn fn,
                                  int32_t cardinality) {
  AttrValueStats stats = CollectAttrValueStats(groups, key_pos, fn, cardinality);
  std::vector<double> all;
  for (const auto& ys : stats.y_per_code) all.insert(all.end(), ys.begin(), ys.end());
  double global_median = Median(std::move(all));
  std::vector<double> map(static_cast<size_t>(cardinality), global_median);
  for (int32_t code = 0; code < cardinality; ++code) {
    const auto& ys = stats.y_per_code[static_cast<size_t>(code)];
    if (!ys.empty()) map[static_cast<size_t>(code)] = Median(ys);
  }
  return map;
}

std::vector<double> AuxiliaryMap(const Table& aux, int join_column, int measure_column,
                                 int32_t cardinality, bool normalize) {
  return AuxiliaryMapFromCodes(aux.dim_codes(join_column), aux.measure(measure_column),
                               cardinality, normalize);
}

std::vector<double> AuxiliaryMapFromCodes(const std::vector<int32_t>& join_codes,
                                          const std::vector<double>& values,
                                          int32_t cardinality, bool normalize) {
  REPTILE_CHECK_EQ(join_codes.size(), values.size());
  std::vector<double> sum(static_cast<size_t>(cardinality), 0.0);
  std::vector<int64_t> count(static_cast<size_t>(cardinality), 0);
  for (size_t row = 0; row < join_codes.size(); ++row) {
    int32_t code = join_codes[row];
    if (code < 0 || code >= cardinality) continue;  // value unseen in the base data
    sum[static_cast<size_t>(code)] += values[row];
    ++count[static_cast<size_t>(code)];
  }
  std::vector<double> map(static_cast<size_t>(cardinality), 0.0);
  std::vector<double> present;
  for (int32_t code = 0; code < cardinality; ++code) {
    if (count[static_cast<size_t>(code)] > 0) {
      map[static_cast<size_t>(code)] =
          sum[static_cast<size_t>(code)] / static_cast<double>(count[static_cast<size_t>(code)]);
      present.push_back(map[static_cast<size_t>(code)]);
    }
  }
  if (normalize && present.size() >= 2) {
    double mean = Mean(present);
    double std = SampleStd(present);
    if (std <= 0.0) std = 1.0;
    for (int32_t code = 0; code < cardinality; ++code) {
      if (count[static_cast<size_t>(code)] > 0) {
        map[static_cast<size_t>(code)] = (map[static_cast<size_t>(code)] - mean) / std;
      }
      // absent codes stay at 0, the normalised mean.
    }
  }
  return map;
}

std::unordered_map<std::vector<int32_t>, double, CodeTupleHash> MultiAuxiliaryMap(
    const Table& aux, const std::vector<int>& join_columns, int measure_column,
    bool normalize) {
  std::vector<const std::vector<int32_t>*> codes;
  for (int c : join_columns) codes.push_back(&aux.dim_codes(c));
  return MultiAuxiliaryMapFromCodes(codes, aux.measure(measure_column), normalize);
}

std::unordered_map<std::vector<int32_t>, double, CodeTupleHash> MultiAuxiliaryMapFromCodes(
    const std::vector<const std::vector<int32_t>*>& join_codes,
    const std::vector<double>& values, bool normalize) {
  std::unordered_map<std::vector<int32_t>, double, CodeTupleHash> sums;
  std::unordered_map<std::vector<int32_t>, int64_t, CodeTupleHash> counts;
  std::vector<int32_t> key(join_codes.size());
  for (size_t row = 0; row < values.size(); ++row) {
    bool valid = true;
    for (size_t k = 0; k < join_codes.size(); ++k) {
      key[k] = (*join_codes[k])[row];
      if (key[k] < 0) valid = false;
    }
    if (!valid) continue;
    sums[key] += values[row];
    counts[key] += 1;
  }
  std::unordered_map<std::vector<int32_t>, double, CodeTupleHash> map;
  std::vector<double> present;
  for (auto& [tuple, sum] : sums) {
    double mean = sum / static_cast<double>(counts[tuple]);
    map[tuple] = mean;
    present.push_back(mean);
  }
  if (normalize && present.size() >= 2) {
    double mean = Mean(present);
    double std = SampleStd(present);
    if (std <= 0.0) std = 1.0;
    for (auto& [tuple, value] : map) value = (value - mean) / std;
  }
  return map;
}

std::vector<int32_t> TranslateCodes(const ValueDict& from, const ValueDict& to,
                                    const std::vector<int32_t>& codes) {
  // Per-distinct-value translation table, then a vectorised remap.
  std::vector<int32_t> table(static_cast<size_t>(from.size()), -1);
  for (int32_t code = 0; code < from.size(); ++code) {
    table[static_cast<size_t>(code)] = to.Find(from.name(code)).value_or(-1);
  }
  std::vector<int32_t> out(codes.size());
  for (size_t i = 0; i < codes.size(); ++i) out[i] = table[static_cast<size_t>(codes[i])];
  return out;
}

void NormalizeMap(std::vector<double>* map) {
  if (map->size() < 2) return;
  double mean = Mean(*map);
  double std = SampleStd(*map);
  if (std <= 0.0) return;
  for (double& v : *map) v = (v - mean) / std;
}

}  // namespace reptile
