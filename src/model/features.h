// Featurization (paper Section 3.3, Appendices B and H).
//
// Every feature is a map from attribute value codes (or code tuples) to a
// double, which keeps the feature matrix factorised:
//
//  * Default (main-effect) features — each categorical value is replaced by
//    the median of the group statistic Y over the non-empty groups carrying
//    that value, following OLAP-cube anomaly detection practice (§3.3.1).
//  * Auxiliary features — measures of a joined auxiliary dataset, centered
//    and normalised over the distinct join values (§3.3.2); multi-attribute
//    joins produce tuple-keyed maps (Appendix H).
//  * Custom features — user functions from per-value group statistics to
//    feature values (§3.3.3), e.g., lags or spatial neighbourhoods.

#ifndef REPTILE_MODEL_FEATURES_H_
#define REPTILE_MODEL_FEATURES_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "agg/aggregates.h"
#include "common/hashing.h"
#include "data/group_by.h"
#include "data/table.h"

namespace reptile {

/// Per-value group statistics handed to custom featurizers: y_per_code[code]
/// lists the group statistic of every non-empty group carrying that value.
struct AttrValueStats {
  std::vector<std::vector<double>> y_per_code;
};

/// Custom featurizer q(A, Y): receives the per-value statistics and returns
/// one feature value per code (vector indexed by code).
using CustomFeatureFn = std::function<std::vector<double>(const AttrValueStats&)>;

/// Collects the y statistic of every non-empty group by the value of the
/// key at `key_pos`, for codes in [0, cardinality).
AttrValueStats CollectAttrValueStats(const GroupByResult& groups, size_t key_pos, AggFn fn,
                                     int32_t cardinality);

/// Main-effect map: median of the group statistic per value code; codes with
/// no groups get the global median (a neutral estimate).
std::vector<double> MainEffectMap(const GroupByResult& groups, size_t key_pos, AggFn fn,
                                  int32_t cardinality);

/// Auxiliary single-attribute map: joins `aux` on `join_column` and exposes
/// `measure_column`, averaged per join value and optionally z-normalised
/// across the distinct values. Codes absent from the auxiliary data get 0
/// (the post-normalisation mean).
std::vector<double> AuxiliaryMap(const Table& aux, int join_column, int measure_column,
                                 int32_t cardinality, bool normalize = true);

/// Auxiliary multi-attribute map (Appendix H): tuple of join codes ->
/// averaged, optionally z-normalised measure.
std::unordered_map<std::vector<int32_t>, double, CodeTupleHash> MultiAuxiliaryMap(
    const Table& aux, const std::vector<int>& join_columns, int measure_column,
    bool normalize = true);

/// Core of AuxiliaryMap operating on pre-extracted (and possibly
/// dictionary-translated) code/value arrays; codes < 0 are skipped.
std::vector<double> AuxiliaryMapFromCodes(const std::vector<int32_t>& join_codes,
                                          const std::vector<double>& values,
                                          int32_t cardinality, bool normalize = true);

/// Core of MultiAuxiliaryMap on pre-extracted per-attribute code arrays;
/// tuples containing a negative code are skipped.
std::unordered_map<std::vector<int32_t>, double, CodeTupleHash> MultiAuxiliaryMapFromCodes(
    const std::vector<const std::vector<int32_t>*>& join_codes,
    const std::vector<double>& values, bool normalize = true);

/// Translates codes from one dictionary to another by value name; values
/// absent from `to` become -1. Used to align auxiliary tables with the base
/// table's dictionaries before building feature maps.
std::vector<int32_t> TranslateCodes(const ValueDict& from, const ValueDict& to,
                                    const std::vector<int32_t>& codes);

/// Centers and z-normalises the values of a map in place (used on custom
/// feature outputs); no-op when the spread is degenerate.
void NormalizeMap(std::vector<double>* map);

}  // namespace reptile

#endif  // REPTILE_MODEL_FEATURES_H_
