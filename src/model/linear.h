// Linear regression (ordinary least squares) — the naive model of paper
// Section 3.2 and the "Linear" baseline of Appendix K. Trainable over a
// dense matrix or a factorised matrix (gram + left multiplication only).

#ifndef REPTILE_MODEL_LINEAR_H_
#define REPTILE_MODEL_LINEAR_H_

#include <vector>

#include "factor/decomposed.h"
#include "factor/frep.h"
#include "linalg/matrix.h"

namespace reptile {

/// Fitted linear model. The caller provides the intercept as a feature
/// column (the engine always does).
struct LinearModel {
  std::vector<double> beta;
  double sigma2 = 0.0;  // MLE residual variance
  int64_t n = 0;
};

/// OLS over a dense design matrix.
LinearModel TrainLinearDense(const Matrix& x, const std::vector<double>& y,
                             double ridge = 1e-9);

/// OLS over a factorised matrix: beta = (X^T X)^-1 X^T y with the factorised
/// gram and left-multiplication operators; the residual norm uses the
/// factorised right multiplication.
LinearModel TrainLinearFactorized(const FactorizedMatrix& fm, const DecomposedAggregates& agg,
                                  const std::vector<double>& y, double ridge = 1e-9);

/// Prediction for one feature row.
double PredictLinear(const LinearModel& model, const std::vector<double>& features);

}  // namespace reptile

#endif  // REPTILE_MODEL_LINEAR_H_
