#include "model/multilevel.h"

#include <cmath>

#include "common/check.h"
#include "fmatrix/cluster_ops.h"
#include "fmatrix/gram.h"
#include "fmatrix/left_mult.h"
#include "fmatrix/right_mult.h"
#include "linalg/solve.h"

namespace reptile {

// ---------- Factorised backend ----------

FactorizedEmBackend::FactorizedEmBackend(const FactorizedMatrix* fm,
                                         const DecomposedAggregates* agg,
                                         std::vector<int> z_cols)
    : fm_(fm), agg_(agg), z_cols_(std::move(z_cols)) {
  REPTILE_CHECK(fm != nullptr && agg != nullptr);
  if (z_cols_.empty()) {
    for (int c = 0; c < fm_->num_cols(); ++c) z_cols_.push_back(c);
  }
}

Matrix FactorizedEmBackend::Gram() const { return FactorizedGram(*fm_, *agg_); }

std::vector<double> FactorizedEmBackend::XtV(const std::vector<double>& v) const {
  return FactorizedVecLeftMultiply(*fm_, v);
}

std::vector<double> FactorizedEmBackend::XTimes(const std::vector<double>& beta) const {
  return FactorizedVecRightMultiply(*fm_, beta);
}

void FactorizedEmBackend::ForEachCluster(
    const std::vector<double>& r,
    const std::function<void(int64_t, int64_t, const Matrix&, const std::vector<double>&)>&
        emit) const {
  ForEachClusterGram(*fm_, z_cols_, &r, [&](const ClusterData& data) {
    emit(data.cluster, data.size, *data.gram, *data.ztr);
  });
}

void FactorizedEmBackend::ZTimesB(const Matrix& b, std::vector<double>* out) const {
  ClusterRightMultiply(*fm_, z_cols_, b, out);
}

// ---------- Dense backend ----------

DenseEmBackend::DenseEmBackend(const Matrix* x, std::vector<int64_t> cluster_begin,
                               std::vector<int> z_cols)
    : x_(x), cluster_begin_(std::move(cluster_begin)), z_cols_(std::move(z_cols)) {
  REPTILE_CHECK(x != nullptr);
  REPTILE_CHECK_GE(cluster_begin_.size(), 2u);
  REPTILE_CHECK_EQ(cluster_begin_.front(), 0);
  REPTILE_CHECK_EQ(cluster_begin_.back(), static_cast<int64_t>(x->rows()));
  if (z_cols_.empty()) {
    for (size_t c = 0; c < x->cols(); ++c) z_cols_.push_back(static_cast<int>(c));
  }
}

Matrix DenseEmBackend::Gram() const { return x_->Transposed().Multiply(*x_); }

std::vector<double> DenseEmBackend::XtV(const std::vector<double>& v) const {
  REPTILE_CHECK_EQ(v.size(), x_->rows());
  std::vector<double> out(x_->cols(), 0.0);
  for (size_t r = 0; r < x_->rows(); ++r) {
    const double* row = x_->RowPtr(r);
    double vr = v[r];
    for (size_t c = 0; c < x_->cols(); ++c) out[c] += row[c] * vr;
  }
  return out;
}

std::vector<double> DenseEmBackend::XTimes(const std::vector<double>& beta) const {
  REPTILE_CHECK_EQ(beta.size(), x_->cols());
  std::vector<double> out(x_->rows(), 0.0);
  for (size_t r = 0; r < x_->rows(); ++r) {
    const double* row = x_->RowPtr(r);
    double acc = 0.0;
    for (size_t c = 0; c < x_->cols(); ++c) acc += row[c] * beta[c];
    out[r] = acc;
  }
  return out;
}

void DenseEmBackend::ForEachCluster(
    const std::vector<double>& r,
    const std::function<void(int64_t, int64_t, const Matrix&, const std::vector<double>&)>&
        emit) const {
  size_t q = z_cols_.size();
  Matrix ztz(q, q);
  std::vector<double> ztr(q, 0.0);
  for (int64_t g = 0; g + 1 < static_cast<int64_t>(cluster_begin_.size()); ++g) {
    int64_t begin = cluster_begin_[g];
    int64_t end = cluster_begin_[g + 1];
    std::fill(ztz.mutable_data().begin(), ztz.mutable_data().end(), 0.0);
    std::fill(ztr.begin(), ztr.end(), 0.0);
    for (int64_t row = begin; row < end; ++row) {
      const double* xr = x_->RowPtr(static_cast<size_t>(row));
      for (size_t i = 0; i < q; ++i) {
        double zi = xr[z_cols_[i]];
        ztr[i] += zi * r[static_cast<size_t>(row)];
        for (size_t j = i; j < q; ++j) {
          ztz(i, j) += zi * xr[z_cols_[j]];
        }
      }
    }
    for (size_t i = 0; i < q; ++i) {
      for (size_t j = 0; j < i; ++j) ztz(i, j) = ztz(j, i);
    }
    emit(g, end - begin, ztz, ztr);
  }
}

void DenseEmBackend::ZTimesB(const Matrix& b, std::vector<double>* out) const {
  REPTILE_CHECK_EQ(static_cast<int64_t>(out->size()), n());
  size_t q = z_cols_.size();
  for (int64_t g = 0; g + 1 < static_cast<int64_t>(cluster_begin_.size()); ++g) {
    const double* bg = b.RowPtr(static_cast<size_t>(g));
    for (int64_t row = cluster_begin_[g]; row < cluster_begin_[g + 1]; ++row) {
      const double* xr = x_->RowPtr(static_cast<size_t>(row));
      double acc = 0.0;
      for (size_t i = 0; i < q; ++i) acc += xr[z_cols_[i]] * bg[i];
      (*out)[static_cast<size_t>(row)] = acc;
    }
  }
}

// ---------- EM (Appendix D) ----------

MultiLevelModel TrainMultiLevel(const EmBackend* backend, const std::vector<double>& y,
                                const MultiLevelOptions& options) {
  REPTILE_CHECK(backend != nullptr);
  int64_t n = backend->n();
  REPTILE_CHECK_EQ(static_cast<int64_t>(y.size()), n);
  int m = backend->m();
  size_t q = backend->z_cols().size();
  int64_t num_clusters = backend->num_clusters();

  MultiLevelModel model;
  model.z_cols = backend->z_cols();

  // Precompute X^T X (and its inverse) and X^T y — both reused every
  // iteration (Appendix D "we can precompute X^T X and X_i^T X_i").
  Matrix gram = backend->Gram();
  Matrix gram_ridged = gram;
  for (int i = 0; i < m; ++i) gram_ridged(i, i) += options.ridge;
  Matrix gram_inv = InverseSymmetricRidge(gram_ridged);
  std::vector<double> xty = backend->XtV(y);

  // Initialise with OLS.
  model.beta = gram_inv.Multiply(Matrix::ColumnVector(xty)).Column(0);
  std::vector<double> fitted = backend->XTimes(model.beta);
  std::vector<double> r(y.size());
  double rss = 0.0;
  for (size_t i = 0; i < y.size(); ++i) {
    r[i] = y[i] - fitted[i];
    rss += r[i] * r[i];
  }
  model.sigma2 = std::max(options.min_sigma2, rss / static_cast<double>(std::max<int64_t>(n, 1)));
  model.sigma_b = Matrix::Identity(q).Scale(model.sigma2);
  model.b = Matrix(static_cast<size_t>(num_clusters), q);

  std::vector<double> zb(y.size(), 0.0);
  std::vector<double> prev_beta = model.beta;
  for (int iter = 0; iter < options.em_iters; ++iter) {
    model.iterations_run = iter + 1;
    // --- E-step (equations 8-11): per-cluster posterior of b_i. ---
    Matrix sigma_inv = InverseSymmetricRidge(model.sigma_b, 1e-8);
    Matrix sum_bbt(q, q);
    double trace_term = 0.0;
    backend->ForEachCluster(r, [&](int64_t g, int64_t size, const Matrix& ztz,
                                   const std::vector<double>& ztr) {
      (void)size;
      Matrix vi_inv = ztz.Scale(1.0 / model.sigma2).Add(sigma_inv);
      Matrix vi = InverseSymmetricRidge(vi_inv, 1e-10);
      // mu_i = V_i Z_i^T r_i / sigma2
      std::vector<double> mu(q, 0.0);
      for (size_t i = 0; i < q; ++i) {
        double acc = 0.0;
        for (size_t j = 0; j < q; ++j) acc += vi(i, j) * ztr[j];
        mu[i] = acc / model.sigma2;
      }
      double* bg = model.b.RowPtr(static_cast<size_t>(g));
      for (size_t i = 0; i < q; ++i) bg[i] = mu[i];
      // E[b b^T] = V_i + mu mu^T; accumulate Sigma and the sigma2 trace term
      // Tr(Z_i^T Z_i E[b b^T]).
      for (size_t i = 0; i < q; ++i) {
        for (size_t j = 0; j < q; ++j) {
          double ebbt = vi(i, j) + mu[i] * mu[j];
          sum_bbt(i, j) += ebbt;
          trace_term += ztz(i, j) * ebbt;
        }
      }
    });

    // --- M-step (equations 12-14). ---
    backend->ZTimesB(model.b, &zb);
    std::vector<double> xtzb = backend->XtV(zb);
    std::vector<double> rhs(static_cast<size_t>(m));
    for (int c = 0; c < m; ++c) rhs[static_cast<size_t>(c)] = xty[static_cast<size_t>(c)] - xtzb[static_cast<size_t>(c)];
    model.beta = gram_inv.Multiply(Matrix::ColumnVector(rhs)).Column(0);

    model.sigma_b = sum_bbt.Scale(1.0 / static_cast<double>(std::max<int64_t>(num_clusters, 1)));

    fitted = backend->XTimes(model.beta);
    rss = 0.0;
    double rzb = 0.0;
    for (size_t i = 0; i < y.size(); ++i) {
      r[i] = y[i] - fitted[i];
      rss += r[i] * r[i];
      rzb += r[i] * zb[i];
    }
    model.sigma2 = (rss + trace_term - 2.0 * rzb) / static_cast<double>(std::max<int64_t>(n, 1));
    if (!(model.sigma2 > options.min_sigma2)) model.sigma2 = options.min_sigma2;

    // Early stop (ModelSpec::EmTolerance): the fixed effects have converged
    // within tolerance, so further iterations cannot change the repair
    // meaningfully. Checked after the full M-step so the model state is
    // always a complete iteration's.
    if (options.tolerance > 0.0) {
      double max_delta = 0.0;
      for (size_t i = 0; i < model.beta.size(); ++i) {
        double delta = std::abs(model.beta[i] - prev_beta[i]);
        if (delta > max_delta) max_delta = delta;
      }
      if (max_delta <= options.tolerance) break;
    }
    prev_beta = model.beta;
  }

  // Final fitted values: X beta + Z b.
  backend->ZTimesB(model.b, &zb);
  model.fitted.resize(y.size());
  for (size_t i = 0; i < y.size(); ++i) model.fitted[i] = fitted[i] + zb[i];
  return model;
}

}  // namespace reptile
