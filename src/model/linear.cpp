#include "model/linear.h"

#include "common/check.h"
#include "fmatrix/gram.h"
#include "fmatrix/left_mult.h"
#include "fmatrix/right_mult.h"
#include "linalg/solve.h"

namespace reptile {
namespace {

std::vector<double> SolveNormalEquations(Matrix gram, const std::vector<double>& xty,
                                         double ridge) {
  for (size_t i = 0; i < gram.rows(); ++i) gram(i, i) += ridge;
  Matrix inv = InverseSymmetricRidge(gram);
  Matrix beta = inv.Multiply(Matrix::ColumnVector(xty));
  return beta.Column(0);
}

}  // namespace

LinearModel TrainLinearDense(const Matrix& x, const std::vector<double>& y, double ridge) {
  REPTILE_CHECK_EQ(x.rows(), y.size());
  Matrix gram = x.Transposed().Multiply(x);
  std::vector<double> xty(x.cols(), 0.0);
  for (size_t r = 0; r < x.rows(); ++r) {
    const double* row = x.RowPtr(r);
    for (size_t c = 0; c < x.cols(); ++c) xty[c] += row[c] * y[r];
  }
  LinearModel model;
  model.beta = SolveNormalEquations(std::move(gram), xty, ridge);
  model.n = static_cast<int64_t>(x.rows());
  double rss = 0.0;
  for (size_t r = 0; r < x.rows(); ++r) {
    double pred = 0.0;
    const double* row = x.RowPtr(r);
    for (size_t c = 0; c < x.cols(); ++c) pred += row[c] * model.beta[c];
    double d = y[r] - pred;
    rss += d * d;
  }
  model.sigma2 = x.rows() > 0 ? rss / static_cast<double>(x.rows()) : 0.0;
  return model;
}

LinearModel TrainLinearFactorized(const FactorizedMatrix& fm, const DecomposedAggregates& agg,
                                  const std::vector<double>& y, double ridge) {
  REPTILE_CHECK_EQ(static_cast<int64_t>(y.size()), fm.num_rows());
  Matrix gram = FactorizedGram(fm, agg);
  std::vector<double> xty = FactorizedVecLeftMultiply(fm, y);
  LinearModel model;
  model.beta = SolveNormalEquations(std::move(gram), xty, ridge);
  model.n = fm.num_rows();
  std::vector<double> fitted = FactorizedVecRightMultiply(fm, model.beta);
  double rss = 0.0;
  for (size_t r = 0; r < y.size(); ++r) {
    double d = y[r] - fitted[r];
    rss += d * d;
  }
  model.sigma2 = y.empty() ? 0.0 : rss / static_cast<double>(y.size());
  return model;
}

double PredictLinear(const LinearModel& model, const std::vector<double>& features) {
  REPTILE_CHECK_EQ(features.size(), model.beta.size());
  double pred = 0.0;
  for (size_t c = 0; c < features.size(); ++c) pred += features[c] * model.beta[c];
  return pred;
}

}  // namespace reptile
