// Event-driven HTTP/1.1 front end: one epoll reactor thread owns every
// connection (see net/connection.h), complete parsed requests are handed to
// a compute thread pool, and responses hop back to the loop via Post().
// Drop-in alternative to the thread-per-connection server
// (server/http_server.h): same handler signature, same framing code
// (net/http_codec.h), byte-identical bodies — tests/net_test.cpp runs the
// two differentially.
//
// What the reactor buys over thread-per-connection:
//  * An idle or slow client costs a few KB of connection state, not a
//    blocked pool thread — thousands of keep-alive connections are fine
//    with a fixed thread count (1 loop thread + num_threads workers).
//  * Backpressure is explicit: per-connection write queues are bounded by a
//    high-water mark; streamed responses pause instead of ballooning, and
//    clients that stop reading are disconnected (slow_client_disconnects).
//  * Admission control: past `max_connections`, new connections get an
//    immediate 503 and close (overload_rejections) instead of queuing
//    invisibly in a pool.
//
// Observability counters are exported via StatsJson() — the serving binary
// wires them into /healthz.

#ifndef REPTILE_NET_REACTOR_SERVER_H_
#define REPTILE_NET_REACTOR_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "api/status.h"
#include "net/event_loop.h"
#include "net/http_message.h"

namespace reptile {

class Connection;
class ThreadPool;  // parallel/thread_pool.h

struct ReactorServerOptions {
  std::string bind_address = "127.0.0.1";
  int port = 0;         // 0 = ephemeral; the bound port is port()
  int num_threads = 4;  // handler (compute) workers when the server owns its pool
  size_t max_header_bytes = 64 * 1024;
  size_t max_body_bytes = 8 * 1024 * 1024;
  // Cap for request bodies consumed through `stream_factory` sinks (they
  // never buffer, so this can be far above max_body_bytes).
  size_t max_stream_body_bytes = size_t{1} << 30;
  // Seconds a connection may sit idle between requests (also the deadline
  // for receiving a complete request head — the slow-loris bound). 0 = off.
  int idle_timeout_seconds = 30;
  // After this many responses on one connection the server answers with
  // "Connection: close" and closes — same knob as
  // HttpServerOptions::max_requests_per_connection. 0 = unlimited.
  int64_t max_requests_per_connection = 0;
  // A connection whose write queue makes no progress for this long is
  // disconnected as a slow client. 0 = off.
  double write_stall_seconds = 10.0;
  // Per-connection write-queue high-water mark: streamed responses stop
  // pulling pieces above it until the queue drains below again.
  size_t write_high_water_bytes = size_t{1} << 20;
  // Open-connection cap; 0 = unlimited. Beyond it new connections receive
  // an immediate 503 and are closed.
  int64_t max_connections = 0;
  // Admission rate limit in requests/second over dispatched API requests
  // (streamed uploads and the /healthz + /metricsz probes are exempt).
  // Refusals get the shared 429 RATE_LIMITED envelope with Retry-After and
  // keep the connection open. Same knob as HttpServerOptions::rate_limit_rps.
  double rate_limit_rps = 0.0;
  // Bucket depth for the limiter; <= 0 defaults to max(rate_limit_rps, 1).
  double rate_limit_burst = 0.0;
  // Shed a request that waited longer than this in the handler-pool queue:
  // it gets the shared 503 OVERLOADED envelope instead of compute that
  // would finish too late to matter. Per-request — the connection survives.
  // 0 = never shed.
  int queue_deadline_ms = 0;
  // Deadline-check granularity (bounds how late idle/stall deadlines fire).
  int tick_interval_ms = 100;
  // Optional hook consulted once a request head is parsed: return a sink to
  // stream the body instead of buffering it (see net/http_message.h). Sinks
  // run on the loop thread; keep Append() cheap.
  HttpStreamFactory stream_factory;
  // Optional externally owned pool for handler tasks. Handlers must never
  // submit compute work back to this pool (results can't complete behind
  // blocked handler tasks); nullptr = the server creates its own pool.
  ThreadPool* handler_pool = nullptr;
};

class ReactorServer {
 public:
  ReactorServer(ReactorServerOptions options, HttpHandler handler);
  ~ReactorServer();  // calls Stop()

  ReactorServer(const ReactorServer&) = delete;
  ReactorServer& operator=(const ReactorServer&) = delete;

  /// Binds, listens, and starts the loop thread. Call once.
  Status Start();

  /// Stops accepting, waits for in-flight handlers, flushes pending
  /// responses (bounded), closes every connection, and joins the loop.
  /// Idempotent; safe from any thread except the loop or a handler.
  void Stop();

  /// The bound port (resolves 0 to the ephemeral port). Valid after Start().
  int port() const { return port_; }

  // -- Counters (all monotonic except open_connections / queued_bytes) --
  int64_t connections_accepted() const { return connections_accepted_.load(); }
  int64_t open_connections() const { return open_connections_.load(); }
  int64_t queued_bytes() const { return queued_bytes_.load(); }
  int64_t backpressure_trips() const { return backpressure_trips_.load(); }
  int64_t slow_client_disconnects() const { return slow_client_disconnects_.load(); }
  int64_t overload_rejections() const { return overload_rejections_.load(); }
  int64_t requests_dispatched() const { return requests_dispatched_.load(); }
  int64_t requests_rate_limited() const { return requests_rate_limited_.load(); }
  int64_t requests_shed() const { return requests_shed_.load(); }

  /// The counters as a JSON object (for /healthz's "transport" section).
  std::string StatsJson() const;

 private:
  friend class Connection;

  void OnAcceptReady();
  void DispatchHandler(uint64_t connection_id, HttpRequest request);
  /// Marks the connection closed in the map and schedules its destruction
  /// after the current callback unwinds.
  void OnConnectionClosed(uint64_t connection_id);
  void OnTick();
  bool stopping() const { return stopping_.load(std::memory_order_acquire); }

  ReactorServerOptions options_;
  HttpHandler handler_;
  std::unique_ptr<class TokenBucket> limiter_;  // null when rate_limit_rps <= 0
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;

  EventLoop loop_;
  std::thread loop_thread_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::mutex stop_mu_;  // serializes Stop() callers

  // Loop-thread state.
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections_;
  uint64_t next_connection_id_ = 1;
  std::chrono::steady_clock::time_point last_tick_{};
  bool listen_backoff_ = false;  // accept() hit EMFILE; re-arm on next tick

  // Handler-in-flight accounting for Stop(): decremented on the loop thread
  // after the result lands (or is dropped for a dead connection).
  std::mutex handlers_mu_;
  std::condition_variable handlers_done_;
  int64_t handlers_in_flight_ = 0;

  std::atomic<int64_t> connections_accepted_{0};
  std::atomic<int64_t> open_connections_{0};
  std::atomic<int64_t> queued_bytes_{0};
  std::atomic<int64_t> backpressure_trips_{0};
  std::atomic<int64_t> slow_client_disconnects_{0};
  std::atomic<int64_t> overload_rejections_{0};
  std::atomic<int64_t> requests_dispatched_{0};
  std::atomic<int64_t> requests_rate_limited_{0};
  std::atomic<int64_t> requests_shed_{0};
};

}  // namespace reptile

#endif  // REPTILE_NET_REACTOR_SERVER_H_
