#include "net/connection.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "net/reactor_server.h"

namespace reptile {

namespace {
// Same lingering-close bounds the thread-per-connection server uses.
constexpr size_t kMaxDrainBytes = 16 * 1024 * 1024;
constexpr std::chrono::seconds kDrainDeadline{5};
// Per-EPOLLIN fairness cap: after this many recv() calls yield the loop so
// one fast sender cannot starve every other connection (level-triggered
// epoll re-reports the remainder immediately).
constexpr int kMaxReadsPerEvent = 16;
}  // namespace

Connection::Connection(ReactorServer* server, int fd, uint64_t id)
    : server_(server),
      fd_(fd),
      id_(id),
      parser_(server->options_.max_header_bytes) {
  const auto now = std::chrono::steady_clock::now();
  last_read_progress_ = now;
  last_write_progress_ = now;
  header_start_ = now;
  epoll_interest_ = EPOLLIN;
}

Connection::~Connection() {
  // Close() already released the fd for the normal paths; this covers
  // connections torn down by ReactorServer shutdown after the loop exited.
  if (fd_ >= 0) ::close(fd_);
}

void Connection::OnIoEvent(uint32_t events) {
  if (state_ == State::kClosed) return;
  if (events & (EPOLLERR | EPOLLHUP)) {
    Close();
    return;
  }
  if (events & EPOLLOUT) {
    FlushWrites();
    if (state_ == State::kClosed) return;
  }
  if (events & EPOLLIN) HandleReadable();
}

void Connection::HandleReadable() {
  const auto now = std::chrono::steady_clock::now();
  char buffer[16 * 1024];

  if (state_ == State::kDraining) {
    for (int i = 0; i < kMaxReadsPerEvent; ++i) {
      ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        Close();
        return;
      }
      if (n == 0) {
        // Peer finished sending. Our error response may still be queued:
        // close only once it has been flushed.
        drain_eof_ = true;
        if (write_queue_.empty()) Close();
        return;
      }
      drained_bytes_ += static_cast<size_t>(n);
      if (drained_bytes_ > kMaxDrainBytes) {
        Close();
        return;
      }
    }
    return;
  }

  if (state_ != State::kReadHead && state_ != State::kReadBody) return;

  for (int i = 0; i < kMaxReadsPerEvent; ++i) {
    ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      Close();
      return;
    }
    if (n == 0) {
      // Orderly EOF — between requests or mid-request, the threaded server
      // closes silently in both cases; match it.
      Close();
      return;
    }
    if (state_ == State::kReadHead && !reading_request_) {
      reading_request_ = true;
      header_start_ = now;
    }
    last_read_progress_ = now;
    parser_.Feed(std::string_view(buffer, static_cast<size_t>(n)));
    AdvanceParser();
    if (state_ != State::kReadHead && state_ != State::kReadBody) return;
  }
}

void Connection::AdvanceParser() {
  for (;;) {
    switch (parser_.Step()) {
      case HttpRequestParser::Phase::kHead:
      case HttpRequestParser::Phase::kBody:
        if (state_ == State::kReadHead &&
            parser_.phase() != HttpRequestParser::Phase::kHead) {
          state_ = State::kReadBody;
        }
        return;  // need more bytes
      case HttpRequestParser::Phase::kHeadDone: {
        http_version_ = parser_.request().http_version;
        keep_alive_ = RequestKeepsAlive(parser_.request());
        if (server_->stopping()) keep_alive_ = false;
        // This request's response will be the connection's Nth: at the limit
        // it carries "Connection: close" and FinishResponse() closes.
        ++requests_started_;
        if (server_->options_.max_requests_per_connection > 0 &&
            requests_started_ >= server_->options_.max_requests_per_connection) {
          keep_alive_ = false;
        }
        bool streamed = false;
        if (server_->options_.stream_factory) {
          if (std::unique_ptr<HttpBodySink> sink =
                  server_->options_.stream_factory(parser_.request())) {
            sink_ = std::move(sink);
            streamed_upload_ = true;
            // The stream position is unrecoverable if the sink aborts
            // mid-body, so streamed uploads always close afterwards — the
            // same policy as the threaded front end.
            keep_alive_ = false;
            parser_.BeginStreamedBody(sink_.get(),
                                      server_->options_.max_stream_body_bytes);
            streamed = true;
          }
        }
        if (!streamed) parser_.BeginBufferedBody(server_->options_.max_body_bytes);
        continue;
      }
      case HttpRequestParser::Phase::kComplete:
        if (streamed_upload_) {
          HttpResponse response = sink_->Finish(/*complete=*/true);
          sink_.reset();
          streamed_upload_ = false;
          state_ = State::kWriting;
          SetReadInterest(false);
          QueueResponse(std::move(response));
        } else if (server_->stopping()) {
          Close();  // don't start new work during shutdown
        } else {
          DispatchToHandler();
        }
        return;
      case HttpRequestParser::Phase::kSinkAborted: {
        HttpResponse response = sink_->Finish(/*complete=*/false);
        sink_.reset();
        streamed_upload_ = false;
        EnterDraining(std::move(response));
        return;
      }
      case HttpRequestParser::Phase::kError:
        // An oversized streamed upload lands here before any byte reached
        // the sink; it is dropped unfinished, like a vanished peer.
        sink_.reset();
        streamed_upload_ = false;
        EnterDraining(parser_.error_response());
        return;
    }
  }
}

void Connection::DispatchToHandler() {
  state_ = State::kHandling;
  SetReadInterest(false);
  server_->requests_dispatched_.fetch_add(1);
  server_->DispatchHandler(id_, std::move(parser_.request()));
}

void Connection::OnHandlerResult(HttpResponse response, bool force_close) {
  if (state_ != State::kHandling) return;  // connection died while computing
  if (force_close || server_->stopping()) keep_alive_ = false;
  state_ = State::kWriting;
  QueueResponse(std::move(response));
}

void Connection::QueueResponse(HttpResponse response) {
  const bool chunked =
      static_cast<bool>(response.body_stream) && http_version_ == "HTTP/1.1";
  if (response.body_stream && !chunked) {
    // HTTP/1.0 peer: no chunked framing — accumulate the stream into an
    // identity body (same bytes, different framing).
    std::string piece;
    while (response.body_stream(&piece)) {
      response.body += piece;
      piece.clear();
    }
    response.body_stream = nullptr;
  }
  Enqueue(SerializeResponseHead(response, keep_alive_, chunked));
  if (chunked) {
    body_stream_ = std::move(response.body_stream);
    PumpStream();
  } else if (!response.body.empty()) {
    Enqueue(std::move(response.body));
  }
  FlushWrites();
}

void Connection::EnterDraining(HttpResponse response) {
  keep_alive_ = false;
  state_ = State::kDraining;
  drained_bytes_ = 0;
  drain_deadline_ = std::chrono::steady_clock::now() + kDrainDeadline;
  drain_write_done_ = false;
  drain_eof_ = false;
  Enqueue(SerializeResponseHead(response, /*keep_alive=*/false, /*chunked=*/false));
  if (!response.body.empty()) Enqueue(std::move(response.body));
  SetReadInterest(true);  // keep consuming what the peer already sent
  FlushWrites();
}

void Connection::PumpStream() {
  while (body_stream_) {
    if (queued_bytes_ >= server_->options_.write_high_water_bytes) {
      if (!backpressure_episode_) {
        backpressure_episode_ = true;
        server_->backpressure_trips_.fetch_add(1);
      }
      return;  // resume pulling once the queue drains
    }
    std::string piece;
    if (!body_stream_(&piece)) {
      body_stream_ = nullptr;
      Enqueue(kHttpLastChunk);
      return;
    }
    std::string wire;
    AppendHttpChunk(&wire, piece);
    if (!wire.empty()) Enqueue(std::move(wire));
  }
}

void Connection::FlushWrites() {
  if (state_ == State::kClosed) return;
  const auto now = std::chrono::steady_clock::now();
  for (;;) {
    if (write_queue_.empty()) {
      backpressure_episode_ = false;
      if (body_stream_) {
        PumpStream();
        if (write_queue_.empty()) return;  // provider stalled the queue shut
        continue;
      }
      SetWriteInterest(false);
      if (state_ == State::kWriting) {
        FinishResponse();
      } else if (state_ == State::kDraining && !drain_write_done_) {
        drain_write_done_ = true;
        ::shutdown(fd_, SHUT_WR);  // our FIN tells the peer the response is whole
        if (drain_eof_) Close();
      }
      return;
    }
    const std::string& front = write_queue_.front();
    ssize_t n = ::send(fd_, front.data() + front_offset_,
                       front.size() - front_offset_, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        SetWriteInterest(true);
        return;
      }
      Close();  // EPIPE / ECONNRESET: peer is gone
      return;
    }
    front_offset_ += static_cast<size_t>(n);
    queued_bytes_ -= static_cast<size_t>(n);
    server_->queued_bytes_.fetch_sub(n);
    last_write_progress_ = now;
    if (front_offset_ == front.size()) {
      write_queue_.pop_front();
      front_offset_ = 0;
    }
    if (body_stream_ && queued_bytes_ < server_->options_.write_high_water_bytes) {
      PumpStream();
    }
  }
}

void Connection::Enqueue(std::string data) {
  if (data.empty()) return;
  queued_bytes_ += data.size();
  server_->queued_bytes_.fetch_add(data.size());
  write_queue_.push_back(std::move(data));
}

void Connection::FinishResponse() {
  if (!keep_alive_ || server_->stopping()) {
    Close();
    return;
  }
  ResetForNextRequest();
}

void Connection::ResetForNextRequest() {
  parser_.ResetForNextRequest();
  state_ = State::kReadHead;
  http_version_.clear();
  const auto now = std::chrono::steady_clock::now();
  last_read_progress_ = now;
  header_start_ = now;
  reading_request_ = parser_.has_partial_input();
  SetReadInterest(true);
  // A pipelined next request may already be buffered — drive it now rather
  // than waiting for more bytes that may never come.
  if (reading_request_) AdvanceParser();
}

void Connection::OnTick(std::chrono::steady_clock::time_point now) {
  switch (state_) {
    case State::kReadHead:
    case State::kReadBody: {
      const int idle = server_->options_.idle_timeout_seconds;
      if (idle > 0 && now - last_read_progress_ >= std::chrono::seconds(idle)) {
        if (state_ == State::kReadHead && reading_request_) {
          // Slow-loris: a partial head past the deadline gets the 408 the
          // threaded server sends; an idle keep-alive closes silently.
          EnterDraining(HttpFramingError(408, "timed out reading the request"));
        } else {
          Close();
        }
      }
      break;
    }
    case State::kHandling:
      break;  // compute may legitimately take long; no deadline
    case State::kWriting:
    case State::kDraining: {
      const double stall = server_->options_.write_stall_seconds;
      if (stall > 0 && !write_queue_.empty() &&
          now - last_write_progress_ >=
              std::chrono::duration<double>(stall)) {
        server_->slow_client_disconnects_.fetch_add(1);
        Close();
        break;
      }
      if (state_ == State::kDraining && now >= drain_deadline_) Close();
      break;
    }
    case State::kClosed:
      break;
  }
}

void Connection::OnServerStopping() {
  switch (state_) {
    case State::kReadHead:
    case State::kReadBody:
      Close();  // no in-flight response to preserve
      break;
    case State::kHandling:
    case State::kWriting:
    case State::kDraining:
      keep_alive_ = false;  // finish the in-flight response, then close
      break;
    case State::kClosed:
      break;
  }
}

void Connection::Close() {
  if (state_ == State::kClosed) return;
  state_ = State::kClosed;
  server_->queued_bytes_.fetch_sub(static_cast<int64_t>(queued_bytes_));
  queued_bytes_ = 0;
  write_queue_.clear();
  body_stream_ = nullptr;
  sink_.reset();
  server_->loop_.Remove(fd_);
  ::close(fd_);
  fd_ = -1;
  server_->OnConnectionClosed(id_);
}

void Connection::SetReadInterest(bool readable) {
  if (read_enabled_ == readable) return;
  read_enabled_ = readable;
  UpdateEpollInterest();
}

void Connection::SetWriteInterest(bool writable) {
  if (write_enabled_ == writable) return;
  write_enabled_ = writable;
  UpdateEpollInterest();
}

void Connection::UpdateEpollInterest() {
  if (state_ == State::kClosed) return;
  uint32_t mask = 0;
  if (read_enabled_) mask |= EPOLLIN;
  if (write_enabled_) mask |= EPOLLOUT;
  if (mask == epoll_interest_) return;
  epoll_interest_ = mask;
  server_->loop_.Modify(fd_, mask);
}

}  // namespace reptile
