#include "net/http_codec.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"
#include "common/json_util.h"
#include "net/net_util.h"

namespace reptile {

using net_internal::Lowercase;
using net_internal::Trim;

const std::string* HttpRequest::FindHeader(const std::string& lowercase_name) const {
  for (const auto& [name, value] : headers) {
    if (name == lowercase_name) return &value;
  }
  return nullptr;
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 201:
      return "Created";
    case 400:
      return "Bad Request";
    case 401:
      return "Unauthorized";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 409:
      return "Conflict";
    case 413:
      return "Payload Too Large";
    case 429:
      return "Too Many Requests";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    case 504:
      return "Gateway Timeout";
    default:
      return "Unknown";
  }
}

HttpResponse HttpFramingError(int status, const std::string& message) {
  return HttpResponse::Json(
      status, "{\"error\":{\"code\":\"" + std::string(HttpReasonPhrase(status)) +
                  "\",\"http\":" + std::to_string(status) +
                  ",\"message\":" + JsonQuote(message) + "}}");
}

bool ParseHttpRequestHead(const std::string& head, HttpRequest* request,
                          HttpResponse* error) {
  size_t line_end = head.find("\r\n");
  REPTILE_CHECK(line_end != std::string::npos);  // head always ends in CRLFCRLF
  const std::string request_line = head.substr(0, line_end);
  size_t method_end = request_line.find(' ');
  size_t target_end =
      method_end == std::string::npos ? std::string::npos : request_line.find(' ', method_end + 1);
  if (method_end == std::string::npos || target_end == std::string::npos ||
      request_line.find(' ', target_end + 1) != std::string::npos) {
    *error = HttpFramingError(400, "malformed request line");
    return false;
  }
  request->method = request_line.substr(0, method_end);
  request->target = request_line.substr(method_end + 1, target_end - method_end - 1);
  request->http_version = request_line.substr(target_end + 1);
  if (request->method.empty() || request->target.empty() ||
      (request->http_version != "HTTP/1.1" && request->http_version != "HTTP/1.0")) {
    *error = HttpFramingError(400, "malformed request line");
    return false;
  }
  size_t query_pos = request->target.find('?');
  request->path = request->target.substr(0, query_pos);
  request->query =
      query_pos == std::string::npos ? std::string() : request->target.substr(query_pos + 1);

  size_t pos = line_end + 2;
  while (pos + 2 <= head.size()) {
    size_t end = head.find("\r\n", pos);
    REPTILE_CHECK(end != std::string::npos);
    if (end == pos) break;  // blank line: end of headers
    std::string line = head.substr(pos, end - pos);
    // RFC 9112 §5: obsolete line folding (a field line starting with
    // whitespace) and whitespace between the field name and the colon MUST
    // be rejected — a lenient reading here while a front proxy reads
    // strictly is a request-smuggling desync (e.g. "Content-Length : 4").
    if (line[0] == ' ' || line[0] == '\t') {
      *error = HttpFramingError(400, "obsolete header line folding is not supported");
      return false;
    }
    size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) {
      *error = HttpFramingError(400, "malformed header line");
      return false;
    }
    std::string name = line.substr(0, colon);
    if (name.find_first_of(" \t") != std::string::npos) {
      *error = HttpFramingError(400, "whitespace in a header field name");
      return false;
    }
    request->headers.emplace_back(Lowercase(std::move(name)), Trim(line.substr(colon + 1)));
    pos = end + 2;
  }
  return true;
}

bool ValidateRequestFraming(const HttpRequest& request, size_t* content_length,
                            HttpResponse* error) {
  if (request.FindHeader("transfer-encoding") != nullptr) {
    *error = HttpFramingError(501, "transfer-encoding is not supported");
    return false;
  }
  // Exactly one Content-Length may appear: duplicates (even identical ones)
  // are the classic request-smuggling desync vector when a proxy in front
  // picks a different one than we do (RFC 9112 §6.3).
  int content_length_headers = 0;
  for (const auto& [name, value] : request.headers) {
    if (name == "content-length") ++content_length_headers;
  }
  if (content_length_headers > 1) {
    *error = HttpFramingError(400, "multiple Content-Length headers");
    return false;
  }
  *content_length = 0;
  if (const std::string* header = request.FindHeader("content-length")) {
    // Digits only: strtoull would silently wrap "-1" to a huge unsigned
    // value, turning an invalid header into a bogus 413.
    if (header->empty() ||
        header->find_first_not_of("0123456789") != std::string::npos) {
      *error = HttpFramingError(400, "malformed Content-Length");
      return false;
    }
    errno = 0;
    unsigned long long parsed = std::strtoull(header->c_str(), nullptr, 10);
    if (errno != 0) {  // ERANGE: larger than any plausible body
      *error = HttpFramingError(400, "malformed Content-Length");
      return false;
    }
    *content_length = static_cast<size_t>(parsed);
  }
  return true;
}

HttpResponse BodyTooLargeError(size_t content_length, size_t max_body_bytes) {
  return HttpFramingError(413, "request body of " + std::to_string(content_length) +
                                   " bytes exceeds the " +
                                   std::to_string(max_body_bytes) + "-byte limit");
}

HttpResponse RateLimitedError(double retry_after_seconds) {
  // Integral ceiling, floored at 1: Retry-After is delta-seconds (RFC 9110
  // §10.2.3) and "0" would invite an immediate retry storm.
  long long retry_after = static_cast<long long>(retry_after_seconds);
  if (static_cast<double>(retry_after) < retry_after_seconds) ++retry_after;
  if (retry_after < 1) retry_after = 1;
  HttpResponse response = HttpResponse::Json(
      429, "{\"error\":{\"code\":\"RATE_LIMITED\",\"http\":429,\"message\":"
           "\"admission rate limit exceeded; retry after " +
               std::to_string(retry_after) + "s\"}}");
  response.extra_headers.emplace_back("Retry-After", std::to_string(retry_after));
  return response;
}

HttpResponse QueueDeadlineError(double waited_ms, int deadline_ms) {
  return HttpResponse::Json(
      503, "{\"error\":{\"code\":\"OVERLOADED\",\"http\":503,\"message\":"
           "\"request shed: queued " +
               std::to_string(static_cast<long long>(waited_ms)) +
               "ms for a compute worker, past the " + std::to_string(deadline_ms) +
               "ms deadline\"}}");
}

std::string SerializeResponseHead(const HttpResponse& response, bool keep_alive,
                                  bool chunked) {
  std::string out;
  out.reserve(256);
  out += "HTTP/1.1 " + std::to_string(response.status) + " " +
         HttpReasonPhrase(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  if (chunked) {
    out += "Transfer-Encoding: chunked\r\n";
  } else {
    out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  }
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  for (const auto& [name, value] : response.extra_headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "\r\n";
  return out;
}

void AppendHttpChunk(std::string* out, std::string_view piece) {
  if (piece.empty()) return;  // a zero-length chunk would end the body
  char size_line[32];
  std::snprintf(size_line, sizeof(size_line), "%zx\r\n", piece.size());
  *out += size_line;
  out->append(piece.data(), piece.size());
  *out += "\r\n";
}

bool RequestKeepsAlive(const HttpRequest& request) {
  bool keep_alive = request.http_version == "HTTP/1.1";
  if (const std::string* connection = request.FindHeader("connection")) {
    std::string value = Lowercase(*connection);
    if (value == "close") keep_alive = false;
    if (value == "keep-alive") keep_alive = true;
  }
  return keep_alive;
}

HttpRequestParser::HttpRequestParser(size_t max_header_bytes)
    : max_header_bytes_(max_header_bytes) {}

void HttpRequestParser::Feed(std::string_view data) {
  buffer_.append(data.data(), data.size());
}

HttpRequestParser::Phase HttpRequestParser::Step() {
  switch (phase_) {
    case Phase::kHead: {
      // Same scan the blocking reader uses: resume 3 bytes before the new
      // data so a CRLFCRLF split across reads is still found, and apply the
      // header cap both to an oversized terminated head and to an
      // unterminated one that already exceeds the cap.
      size_t pos = buffer_.find("\r\n\r\n", scanned_ >= 3 ? scanned_ - 3 : 0);
      if (pos == std::string::npos) {
        if (buffer_.size() > max_header_bytes_) {
          error_ = HttpFramingError(
              431, "header section exceeds " + std::to_string(max_header_bytes_) + " bytes");
          phase_ = Phase::kError;
          return phase_;
        }
        scanned_ = buffer_.size();
        return phase_;  // need more bytes
      }
      if (pos + 4 > max_header_bytes_) {
        error_ = HttpFramingError(
            431, "header section exceeds " + std::to_string(max_header_bytes_) + " bytes");
        phase_ = Phase::kError;
        return phase_;
      }
      std::string head = buffer_.substr(0, pos + 4);
      buffer_.erase(0, pos + 4);
      scanned_ = 0;
      if (!ParseHttpRequestHead(head, &request_, &error_)) {
        phase_ = Phase::kError;
        return phase_;
      }
      if (!ValidateRequestFraming(request_, &content_length_, &error_)) {
        phase_ = Phase::kError;
        return phase_;
      }
      phase_ = Phase::kHeadDone;
      return phase_;
    }
    case Phase::kHeadDone:
      REPTILE_CHECK(body_mode_chosen_)
          << "Step() in kHeadDone before BeginBufferedBody/BeginStreamedBody";
      phase_ = Phase::kBody;
      [[fallthrough]];
    case Phase::kBody: {
      size_t remaining = content_length_ - body_consumed_;
      size_t take = buffer_.size() < remaining ? buffer_.size() : remaining;
      if (take > 0) {
        if (sink_ != nullptr) {
          bool accepted = sink_->Append(std::string_view(buffer_.data(), take));
          buffer_.erase(0, take);
          body_consumed_ += take;
          if (!accepted) {
            phase_ = Phase::kSinkAborted;
            return phase_;
          }
        } else {
          request_.body.append(buffer_, 0, take);
          buffer_.erase(0, take);
          body_consumed_ += take;
        }
      }
      if (body_consumed_ == content_length_) phase_ = Phase::kComplete;
      return phase_;
    }
    case Phase::kComplete:
    case Phase::kSinkAborted:
    case Phase::kError:
      return phase_;
  }
  return phase_;
}

void HttpRequestParser::BeginBufferedBody(size_t max_body_bytes) {
  REPTILE_CHECK(phase_ == Phase::kHeadDone);
  REPTILE_CHECK(!body_mode_chosen_);
  body_mode_chosen_ = true;
  body_cap_ = max_body_bytes;
  sink_ = nullptr;
  if (content_length_ > max_body_bytes) {
    error_ = BodyTooLargeError(content_length_, max_body_bytes);
    phase_ = Phase::kError;
    return;
  }
  request_.body.reserve(content_length_);
}

void HttpRequestParser::BeginStreamedBody(HttpBodySink* sink, size_t max_body_bytes) {
  REPTILE_CHECK(phase_ == Phase::kHeadDone);
  REPTILE_CHECK(!body_mode_chosen_);
  REPTILE_CHECK(sink != nullptr);
  body_mode_chosen_ = true;
  body_cap_ = max_body_bytes;
  sink_ = sink;
  if (content_length_ > max_body_bytes) {
    // Reject up front, before a single body byte is read — the point of the
    // streamed path is that an oversized upload never gets buffered.
    error_ = BodyTooLargeError(content_length_, max_body_bytes);
    phase_ = Phase::kError;
  }
}

void HttpRequestParser::ResetForNextRequest() {
  phase_ = Phase::kHead;
  scanned_ = 0;
  request_ = HttpRequest();
  content_length_ = 0;
  body_consumed_ = 0;
  body_cap_ = 0;
  sink_ = nullptr;
  body_mode_chosen_ = false;
  error_ = HttpResponse();
}

}  // namespace reptile
