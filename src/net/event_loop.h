// A minimal single-threaded epoll reactor. One thread calls Run() and owns
// every registered fd callback; other threads talk to the loop only through
// Post(), which enqueues a closure and wakes the loop via an eventfd. This
// keeps all connection state single-threaded — no per-connection locks —
// while compute results from worker pools hop back in via Post().
//
// Level-triggered by design: callbacks may leave bytes unread (e.g. while a
// request's handler is in flight with EPOLLIN masked off) and epoll will
// re-report them once interest is re-enabled. A periodic tick callback
// (driven by the epoll_wait timeout) gives connections a clock for idle /
// stall deadlines without per-connection timerfds.

#ifndef REPTILE_NET_EVENT_LOOP_H_
#define REPTILE_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/status.h"

namespace reptile {

class EventLoop {
 public:
  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates the epoll instance and wake eventfd. Call once, before Run().
  Status Init();

  /// Called on the loop thread with the ready event mask (EPOLLIN etc.).
  using IoCallback = std::function<void(uint32_t events)>;

  /// Registers `fd` with the given interest mask. Loop thread only (or
  /// before Run() starts).
  Status Add(int fd, uint32_t events, IoCallback callback);

  /// Changes the interest mask of a registered fd. Loop thread only.
  void Modify(int fd, uint32_t events);

  /// Unregisters `fd`. The caller still owns (and closes) the fd. Safe to
  /// call from a callback currently running for that fd: pending events for
  /// it in the current batch are skipped. Loop thread only.
  void Remove(int fd);

  /// Enqueues `fn` to run on the loop thread and wakes it. Thread-safe;
  /// callable before Run() and after Stop() (the closure then runs during
  /// the final drain or not at all once the loop has exited).
  void Post(std::function<void()> fn);

  /// Installs the periodic tick. `interval_ms` bounds how late a tick can
  /// fire (it is also the epoll_wait timeout). Call before Run().
  void SetTickHandler(std::function<void()> tick, int interval_ms);

  /// Runs until Stop(). Dispatches io callbacks, posted closures, and ticks.
  void Run();

  /// Asks Run() to return after the current iteration. Thread-safe.
  void Stop();

  /// True on the thread currently inside Run().
  bool InLoopThread() const { return std::this_thread::get_id() == loop_thread_; }

 private:
  void DrainPosted();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stop_{false};

  std::mutex post_mu_;
  std::vector<std::function<void()>> posted_;

  // Loop-thread state. Callbacks are looked up per event at dispatch time so
  // a Remove() from an earlier callback in the same batch is honored.
  std::unordered_map<int, IoCallback> callbacks_;
  std::function<void()> tick_;
  int tick_interval_ms_ = 500;
  std::thread::id loop_thread_;
};

}  // namespace reptile

#endif  // REPTILE_NET_EVENT_LOOP_H_
