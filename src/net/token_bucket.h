// Token-bucket admission rate limiter shared by both HTTP front ends
// (server/http_server.h and net/reactor_server.h): a bucket of `burst`
// tokens refilled at `rate_per_second`, one token per admitted request.
// Rejections report how long until a token will exist, which the shared
// RateLimitedError (net/http_codec.h) turns into a Retry-After header.
//
// The clocked core (TryAcquireAt) is pure in (state, now) so tests drive it
// with a manual clock; TryAcquire samples steady_clock. Thread-safe: the
// thread-per-connection server acquires from many workers at once.

#ifndef REPTILE_NET_TOKEN_BUCKET_H_
#define REPTILE_NET_TOKEN_BUCKET_H_

#include <chrono>
#include <mutex>

namespace reptile {

class TokenBucket {
 public:
  /// `rate_per_second` tokens accrue continuously up to a cap of `burst`
  /// (<= 0 defaults the cap to max(rate, 1) — one second of headroom). The
  /// bucket starts full, so a cold server admits an initial burst.
  TokenBucket(double rate_per_second, double burst)
      : rate_(rate_per_second),
        burst_(burst > 0.0 ? burst : (rate_per_second > 1.0 ? rate_per_second : 1.0)),
        tokens_(burst_) {}

  /// Consumes one token if available. On refusal, `*retry_after_seconds` is
  /// the time until a full token will have accrued (0 written on success).
  bool TryAcquire(double* retry_after_seconds) {
    return TryAcquireAt(
        std::chrono::duration<double>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count(),
        retry_after_seconds);
  }

  /// The clocked core: `now_seconds` must be non-decreasing across calls
  /// (a stale timestamp is clamped, never refunds tokens).
  bool TryAcquireAt(double now_seconds, double* retry_after_seconds) {
    std::lock_guard<std::mutex> lock(mu_);
    if (have_last_) {
      double elapsed = now_seconds - last_seconds_;
      if (elapsed > 0.0) {
        tokens_ += elapsed * rate_;
        if (tokens_ > burst_) tokens_ = burst_;
        last_seconds_ = now_seconds;
      }
    } else {
      have_last_ = true;
      last_seconds_ = now_seconds;
    }
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
      *retry_after_seconds = 0.0;
      return true;
    }
    *retry_after_seconds = rate_ > 0.0 ? (1.0 - tokens_) / rate_ : 1.0;
    return false;
  }

  double rate() const { return rate_; }
  double burst() const { return burst_; }

 private:
  const double rate_;
  const double burst_;
  std::mutex mu_;
  double tokens_;
  double last_seconds_ = 0.0;
  bool have_last_ = false;
};

}  // namespace reptile

#endif  // REPTILE_NET_TOKEN_BUCKET_H_
