// One reactor-owned HTTP connection: a small state machine driven entirely
// on the event-loop thread. The cost of a slow or idle client is this
// object plus its parser buffer — a few KB — never a blocked thread.
//
// Lifecycle:
//
//   kReadHead ── head parsed ──> kReadBody ── complete ──> kHandling
//       │                            │                        │ handler runs on
//       │ (framing error)            │ (sink aborted)         │ the compute pool;
//       v                            v                        │ result Post()ed back
//   kDraining <──────────────────────┘                        v
//       │                                                  kWriting ──> close, or
//       └──> close                                            └──> back to kReadHead
//                                                                  (keep-alive)
//
// While a handler is in flight the connection's read interest is masked
// off, so a client pipelining requests cannot get two handlers running on
// one connection — the same one-request-at-a-time semantics the
// thread-per-connection server has by construction.
//
// Writes are queued and flushed as EPOLLOUT allows. The queue is bounded by
// a high-water mark: streamed responses stop pulling pieces until the queue
// drains (backpressure), and a connection making no write progress for
// `write_stall_seconds` is disconnected as a slow client.

#ifndef REPTILE_NET_CONNECTION_H_
#define REPTILE_NET_CONNECTION_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "net/http_codec.h"
#include "net/http_message.h"

namespace reptile {

class ReactorServer;

class Connection {
 public:
  Connection(ReactorServer* server, int fd, uint64_t id);
  ~Connection();  // closes the fd if still open

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  uint64_t id() const { return id_; }
  bool closed() const { return state_ == State::kClosed; }

  /// Ready-event dispatch from the loop.
  void OnIoEvent(uint32_t events);

  /// Periodic deadline check (idle, header read, write stall, drain bound).
  void OnTick(std::chrono::steady_clock::time_point now);

  /// Handler result, re-entering on the loop thread via Post().
  /// `force_close` closes after the response regardless of keep-alive (the
  /// handler threw).
  void OnHandlerResult(HttpResponse response, bool force_close);

  /// Server is stopping: close immediately unless a response is being
  /// written (it finishes with Connection: close, then closes).
  void OnServerStopping();

  /// Force-close regardless of state (Stop() deadline expired).
  void Close();

 private:
  enum class State { kReadHead, kReadBody, kHandling, kWriting, kDraining, kClosed };

  void HandleReadable();
  void AdvanceParser();
  void DispatchToHandler();
  /// Queues `response` (head + body or chunked stream) and starts flushing.
  void QueueResponse(HttpResponse response);
  /// Queues an error response, then lingers: drain what the peer has in
  /// flight (bounded) so our response isn't destroyed by an RST.
  void EnterDraining(HttpResponse response);
  void PumpStream();
  void FlushWrites();
  void Enqueue(std::string data);
  void FinishResponse();  // write queue fully flushed
  void ResetForNextRequest();
  void SetReadInterest(bool readable);
  void SetWriteInterest(bool writable);
  void UpdateEpollInterest();

  ReactorServer* server_;
  int fd_;
  uint64_t id_;
  State state_ = State::kReadHead;

  HttpRequestParser parser_;
  std::unique_ptr<HttpBodySink> sink_;  // streamed-upload sink, if any
  bool streamed_upload_ = false;

  // Per-exchange framing decisions, captured when the head is parsed.
  bool keep_alive_ = false;
  std::string http_version_;
  int64_t requests_started_ = 0;  // for max_requests_per_connection

  // Write side: queued wire bytes; front_offset_ indexes into the front
  // element. body_stream_ holds an unfinished streamed response.
  std::deque<std::string> write_queue_;
  size_t front_offset_ = 0;
  size_t queued_bytes_ = 0;
  std::function<bool(std::string*)> body_stream_;
  bool backpressure_episode_ = false;  // count one trip per congested episode

  // Deadlines (steady clock). header_start_ is set when the first byte of a
  // new request arrives; last_read_/last_write_progress_ advance on bytes
  // actually moved.
  std::chrono::steady_clock::time_point last_read_progress_;
  std::chrono::steady_clock::time_point last_write_progress_;
  std::chrono::steady_clock::time_point header_start_;
  bool reading_request_ = false;  // partial request bytes seen (408 vs silent close)
  bool read_enabled_ = true;
  bool write_enabled_ = false;

  // Draining-state bookkeeping (lingering close).
  size_t drained_bytes_ = 0;
  std::chrono::steady_clock::time_point drain_deadline_;
  bool drain_write_done_ = false;
  bool drain_eof_ = false;

  uint32_t epoll_interest_ = 0;
};

}  // namespace reptile

#endif  // REPTILE_NET_CONNECTION_H_
