#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/check.h"

namespace reptile {

EventLoop::EventLoop() = default;

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status EventLoop::Init() {
  REPTILE_CHECK(epoll_fd_ < 0) << "EventLoop::Init called twice";
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::IoError(std::string("epoll_create1(): ") + std::strerror(errno));
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    Status status = Status::IoError(std::string("eventfd(): ") + std::strerror(errno));
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return status;
  }
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &event) != 0) {
    return Status::IoError(std::string("epoll_ctl(ADD wake): ") + std::strerror(errno));
  }
  return Status::Ok();
}

Status EventLoop::Add(int fd, uint32_t events, IoCallback callback) {
  epoll_event event{};
  event.events = events;
  event.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
    return Status::IoError(std::string("epoll_ctl(ADD): ") + std::strerror(errno));
  }
  callbacks_[fd] = std::move(callback);
  return Status::Ok();
}

void EventLoop::Modify(int fd, uint32_t events) {
  epoll_event event{};
  event.events = events;
  event.data.fd = fd;
  // EBADF/ENOENT here would mean a use-after-Remove bug; surface loudly.
  REPTILE_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event) == 0)
      << "epoll_ctl(MOD " << fd << "): " << std::strerror(errno);
}

void EventLoop::Remove(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  callbacks_.erase(fd);
}

void EventLoop::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    posted_.push_back(std::move(fn));
  }
  uint64_t one = 1;
  // A full eventfd counter (EAGAIN) still wakes the loop; nothing to do.
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::SetTickHandler(std::function<void()> tick, int interval_ms) {
  tick_ = std::move(tick);
  tick_interval_ms_ = interval_ms < 1 ? 1 : interval_ms;
}

void EventLoop::DrainPosted() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
}

void EventLoop::Run() {
  loop_thread_ = std::this_thread::get_id();
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stop_.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents,
                         tick_ ? tick_interval_ms_ : 500);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd itself is broken; nothing sane to do
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      // Look up at dispatch time: an earlier callback in this batch may have
      // Remove()d this fd (e.g. it closed a peer connection).
      auto it = callbacks_.find(fd);
      if (it == callbacks_.end()) continue;
      it->second(events[i].events);
    }
    DrainPosted();
    if (tick_) tick_();
  }
  DrainPosted();  // closures posted while stopping still run once
  loop_thread_ = std::thread::id();
}

void EventLoop::Stop() {
  stop_.store(true, std::memory_order_release);
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

}  // namespace reptile
