// Transport-agnostic HTTP message types shared by every front end: the
// thread-per-connection server (server/http_server.h), the epoll reactor
// (net/reactor_server.h), and the in-tree client. The routing layer
// (server/service.h) speaks only these types, so a handler cannot tell — and
// must not care — which front end parsed its request.
//
// Bodies travel two ways:
//  * Buffered (the default): HttpRequest::body / HttpResponse::body hold the
//    complete bytes.
//  * Streamed: a response may carry a pull provider (`body_stream`) that the
//    front end drains chunk by chunk (Transfer-Encoding: chunked on the
//    wire for HTTP/1.1; concatenated into an identity body for HTTP/1.0
//    clients — the reassembled bytes are identical either way), and a
//    request may be fed incrementally into an HttpBodySink so a multi-GB
//    upload never materializes in one string.

#ifndef REPTILE_NET_HTTP_MESSAGE_H_
#define REPTILE_NET_HTTP_MESSAGE_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace reptile {

/// One parsed request. Header names are lowercased at parse time (HTTP
/// header names are case-insensitive); values keep their bytes.
struct HttpRequest {
  std::string method;        // e.g. "GET", "POST" (any token accepted)
  std::string target;        // request-target as received ("/v1/view?x=1")
  std::string path;          // target up to '?'
  std::string query;         // after '?', possibly empty
  std::string http_version;  // "HTTP/1.1" or "HTTP/1.0"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;          // empty while a sink consumes the body instead

  /// First header with the given (lowercase) name, or nullptr.
  const std::string* FindHeader(const std::string& lowercase_name) const;
};

/// What a handler returns; the front end adds Content-Length / Connection /
/// Transfer-Encoding framing headers itself.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  std::vector<std::pair<std::string, std::string>> extra_headers;

  // Optional streamed body: when set, `body` must be empty and the front end
  // pulls pieces until the provider returns false (chunked on the wire for
  // HTTP/1.1). The provider is called from transport threads, one call at a
  // time, never concurrently; it must tolerate being dropped without being
  // drained (client vanished mid-response). The concatenation of every piece
  // is the logical body — byte-identical to what a buffered response would
  // have carried.
  std::function<bool(std::string* piece)> body_stream;

  static HttpResponse Json(int status, std::string body) {
    HttpResponse response;
    response.status = status;
    response.body = std::move(body);
    return response;
  }
};

/// Incremental consumer for a streamed request body (the dataset-upload
/// path). The front end feeds body bytes as they arrive and calls Finish()
/// exactly once when the declared Content-Length has been consumed — or
/// after Append returned false (the sink aborted: oversized, parse failure,
/// unauthorized), in which case the remaining body is discarded, Finish's
/// response is written, and the connection closes. If the peer vanishes
/// mid-body the sink is simply destroyed without Finish.
class HttpBodySink {
 public:
  virtual ~HttpBodySink() = default;

  /// Consume the next chunk. Return false to abort the upload: the front end
  /// stops feeding, asks Finish() for the (error) response, and closes.
  virtual bool Append(std::string_view chunk) = 0;

  /// The response to send. `complete` is true when every declared body byte
  /// was fed, false when the upload was aborted by Append.
  virtual HttpResponse Finish(bool complete) = 0;
};

/// Asks the routing layer whether a just-parsed request head should have its
/// body streamed: return a sink to stream, nullptr to buffer the body into
/// HttpRequest::body as usual. `head.body` is empty at this point.
using HttpStreamFactory =
    std::function<std::unique_ptr<HttpBodySink>(const HttpRequest& head)>;

/// The reason phrase for a status code ("OK", "Not Found", ...).
const char* HttpReasonPhrase(int status);

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

}  // namespace reptile

#endif  // REPTILE_NET_HTTP_MESSAGE_H_
