// Internal socket/string helpers shared by every HTTP front end and the
// in-tree client, so fixes to send/header handling cannot silently diverge
// between them. Not part of the installed surface.

#ifndef REPTILE_NET_NET_UTIL_H_
#define REPTILE_NET_NET_UTIL_H_

#include <sys/socket.h>
#include <sys/types.h>

#include <cctype>
#include <cerrno>
#include <string>

namespace reptile {
namespace net_internal {

inline std::string Lowercase(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

inline std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t");
  if (begin == std::string::npos) return std::string();
  size_t end = s.find_last_not_of(" \t");
  return s.substr(begin, end - begin + 1);
}

/// Writes all of `data`; returns false when the peer is gone. MSG_NOSIGNAL
/// turns SIGPIPE into an EPIPE error the caller can handle.
inline bool WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n;
    do {
      n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace net_internal
}  // namespace reptile

#endif  // REPTILE_NET_NET_UTIL_H_
