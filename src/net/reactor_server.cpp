#include "net/reactor_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/check.h"
#include "net/connection.h"
#include "net/http_codec.h"
#include "net/token_bucket.h"
#include "parallel/thread_pool.h"

namespace reptile {

ReactorServer::ReactorServer(ReactorServerOptions options, HttpHandler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {
  REPTILE_CHECK(handler_ != nullptr);
  if (options_.rate_limit_rps > 0.0) {
    limiter_ = std::make_unique<TokenBucket>(options_.rate_limit_rps,
                                             options_.rate_limit_burst);
  }
  if (options_.handler_pool != nullptr) {
    pool_ = options_.handler_pool;
  } else {
    int threads = options_.num_threads < 1 ? 1 : options_.num_threads;
    owned_pool_ = std::make_unique<ThreadPool>(threads);
    pool_ = owned_pool_.get();
  }
}

ReactorServer::~ReactorServer() { Stop(); }

Status ReactorServer::Start() {
  REPTILE_CHECK(!started_.load()) << "ReactorServer::Start called twice";
  Status status = loop_.Init();
  if (!status.ok()) return status;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket(): ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address '" + options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    status = Status::IoError("bind(" + options_.bind_address + ":" +
                             std::to_string(options_.port) + "): " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 128) != 0) {
    status = Status::IoError(std::string("listen(): ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    status = Status::IoError(std::string("getsockname(): ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  port_ = static_cast<int>(ntohs(bound.sin_port));

  loop_.SetTickHandler([this] { OnTick(); }, options_.tick_interval_ms);
  status = loop_.Add(listen_fd_, EPOLLIN, [this](uint32_t) { OnAcceptReady(); });
  if (!status.ok()) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }

  started_.store(true);
  loop_thread_ = std::thread([this] { loop_.Run(); });
  return Status::Ok();
}

void ReactorServer::Stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mu_);  // serialize concurrent Stop()s
  if (!started_.load() || stopping_.load()) return;
  stopping_.store(true, std::memory_order_release);

  // 1. Stop accepting.
  loop_.Post([this] {
    if (listen_fd_ >= 0) {
      loop_.Remove(listen_fd_);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  });

  // 2. Let in-flight handlers finish and their responses land on the loop
  //    (stopping_ downgrades them to Connection: close).
  {
    std::unique_lock<std::mutex> lock(handlers_mu_);
    handlers_done_.wait(lock, [this] { return handlers_in_flight_ == 0; });
  }

  // 3. Close idle connections now; writing connections get a grace period
  //    to flush their last response, then are force-closed.
  loop_.Post([this] {
    for (auto& [id, connection] : connections_) {
      if (!connection->closed()) connection->OnServerStopping();
    }
  });
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (open_connections_.load() > 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  if (open_connections_.load() > 0) {
    loop_.Post([this] {
      for (auto& [id, connection] : connections_) {
        if (!connection->closed()) connection->Close();
      }
    });
    const auto force_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(2);
    while (open_connections_.load() > 0 &&
           std::chrono::steady_clock::now() < force_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  // 4. Stop the loop and join; after this no callback can run, so the
  //    remaining maps can be torn down from this thread.
  loop_.Stop();
  if (loop_thread_.joinable()) loop_thread_.join();
  connections_.clear();
  owned_pool_.reset();  // joins handler workers (all tasks completed in 2.)
  // started_ stays true: a stopped server cannot be restarted.
}

void ReactorServer::OnAcceptReady() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS || errno == ENOMEM) {
        // Out of descriptors/memory. The listen fd stays readable, so
        // returning would spin the loop; mute it until the next tick gives
        // handlers a chance to release resources.
        listen_backoff_ = true;
        loop_.Modify(listen_fd_, 0);
        return;
      }
      // Anything else (ECONNABORTED, EPROTO, ...) concerns only the one
      // aborted connection — the listener is fine, keep accepting.
      continue;
    }
    connections_accepted_.fetch_add(1);
    if (stopping()) {
      ::close(fd);
      continue;
    }
    if (options_.max_connections > 0 &&
        open_connections_.load() >= options_.max_connections) {
      // Admission control: refuse loudly instead of queueing invisibly. The
      // response is a handful of bytes into an empty socket buffer — a
      // blocking-free best effort.
      overload_rejections_.fetch_add(1);
      HttpResponse busy = HttpFramingError(503, "server is at its connection limit");
      std::string wire = SerializeResponseHead(busy, /*keep_alive=*/false,
                                               /*chunked=*/false);
      wire += busy.body;
      (void)::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    uint64_t id = next_connection_id_++;
    auto connection = std::make_unique<Connection>(this, fd, id);
    Connection* raw = connection.get();
    connections_.emplace(id, std::move(connection));
    open_connections_.fetch_add(1);
    Status status = loop_.Add(fd, EPOLLIN, [raw](uint32_t events) { raw->OnIoEvent(events); });
    if (!status.ok()) {
      raw->Close();  // undoes the bookkeeping above
    }
  }
}

void ReactorServer::DispatchHandler(uint64_t connection_id, HttpRequest request) {
  if (limiter_ != nullptr && request.path != "/healthz" && request.path != "/metricsz") {
    double retry_after = 0.0;
    if (!limiter_->TryAcquire(&retry_after)) {
      // Refuse without touching the pool. The result hops through Post like
      // any handler result: we are inside a Connection callback here, and
      // OnHandlerResult must not re-enter the connection mid-frame.
      requests_rate_limited_.fetch_add(1);
      loop_.Post([this, connection_id,
                  response = RateLimitedError(retry_after)]() mutable {
        auto it = connections_.find(connection_id);
        if (it != connections_.end() && !it->second->closed()) {
          it->second->OnHandlerResult(std::move(response), /*force_close=*/false);
        }
      });
      return;
    }
  }
  {
    std::lock_guard<std::mutex> lock(handlers_mu_);
    ++handlers_in_flight_;
  }
  const auto dispatched_at = std::chrono::steady_clock::now();
  pool_->Submit([this, connection_id, dispatched_at,
                 request = std::move(request)]() mutable {
    HttpResponse response;
    bool force_close = false;
    const double waited_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - dispatched_at)
                                 .count();
    if (options_.queue_deadline_ms > 0 && !stopping() &&
        waited_ms > options_.queue_deadline_ms) {
      // Shed: with every worker busy, this request aged out in the pool
      // queue. Per-request — keep-alive survives and the client retries.
      requests_shed_.fetch_add(1);
      response = QueueDeadlineError(waited_ms, options_.queue_deadline_ms);
    } else {
      try {
        response = handler_(request);
      } catch (const std::exception& e) {
        response = HttpFramingError(500, std::string("unhandled exception: ") + e.what());
        force_close = true;
      } catch (...) {
        response = HttpFramingError(500, "unhandled exception");
        force_close = true;
      }
    }
    loop_.Post([this, connection_id, response = std::move(response), force_close]() mutable {
      auto it = connections_.find(connection_id);
      if (it != connections_.end() && !it->second->closed()) {
        it->second->OnHandlerResult(std::move(response), force_close);
      }
      std::lock_guard<std::mutex> lock(handlers_mu_);
      if (--handlers_in_flight_ == 0) handlers_done_.notify_all();
    });
  });
}

void ReactorServer::OnConnectionClosed(uint64_t connection_id) {
  open_connections_.fetch_sub(1);
  // The caller may be a Connection member function several frames up;
  // destroy the object only after the current callback unwinds.
  loop_.Post([this, connection_id] { connections_.erase(connection_id); });
}

void ReactorServer::OnTick() {
  const auto now = std::chrono::steady_clock::now();
  if (now - last_tick_ < std::chrono::milliseconds(options_.tick_interval_ms)) return;
  last_tick_ = now;
  if (listen_backoff_ && listen_fd_ >= 0) {
    listen_backoff_ = false;
    loop_.Modify(listen_fd_, EPOLLIN);
  }
  for (auto& [id, connection] : connections_) {
    if (!connection->closed()) connection->OnTick(now);
  }
}

std::string ReactorServer::StatsJson() const {
  std::string out = "{\"open_connections\":";
  out += std::to_string(open_connections_.load());
  out += ",\"connections_accepted\":";
  out += std::to_string(connections_accepted_.load());
  out += ",\"requests_dispatched\":";
  out += std::to_string(requests_dispatched_.load());
  out += ",\"queued_bytes\":";
  out += std::to_string(queued_bytes_.load());
  out += ",\"backpressure_trips\":";
  out += std::to_string(backpressure_trips_.load());
  out += ",\"slow_client_disconnects\":";
  out += std::to_string(slow_client_disconnects_.load());
  out += ",\"overload_rejections\":";
  out += std::to_string(overload_rejections_.load());
  out += ",\"requests_rate_limited\":";
  out += std::to_string(requests_rate_limited_.load());
  out += ",\"requests_shed\":";
  out += std::to_string(requests_shed_.load());
  out += "}";
  return out;
}

}  // namespace reptile
