// Shared HTTP/1.1 framing: request-head parsing, framing validation,
// response-head serialization, and chunked transfer encoding. Both front
// ends — the thread-per-connection server and the epoll reactor — call
// these exact functions, so a framing rule (smuggling hardening, size caps,
// reason phrases) cannot drift between them; the loopback differential
// suite in tests/net_test.cpp then proves the composed behavior equal.
//
// The blocking server drives the free functions directly; the reactor
// drives the same functions through HttpRequestParser, an incremental
// state machine fed whatever bytes epoll delivers.

#ifndef REPTILE_NET_HTTP_CODEC_H_
#define REPTILE_NET_HTTP_CODEC_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "net/http_message.h"

namespace reptile {

/// The standard error envelope for transport-level failures, matching the
/// routing layer's shape: {"error":{"code":...,"http":N,"message":...}}.
HttpResponse HttpFramingError(int status, const std::string& message);

/// Parses the head (request line + headers, `head` ends with CRLFCRLF).
/// Strict by design: exactly three request-line tokens, HTTP/1.0|1.1 only,
/// obsolete line folding and whitespace-in-field-name rejected (RFC 9112 §5
/// — lenient parsing behind a strict proxy is a request-smuggling desync).
/// On failure fills `error` with the response to send before closing.
bool ParseHttpRequestHead(const std::string& head, HttpRequest* request,
                          HttpResponse* error);

/// Framing checks that need the parsed head: Transfer-Encoding on a request
/// is refused (501), duplicate Content-Length headers are refused even when
/// identical (400, RFC 9112 §6.3), and Content-Length must be digits only —
/// strtoull would silently wrap "-1" to a huge unsigned value. Body-size
/// caps are NOT applied here; they depend on how the body will be consumed
/// (buffered vs streamed into a sink).
bool ValidateRequestFraming(const HttpRequest& request, size_t* content_length,
                            HttpResponse* error);

/// The 413 for a declared body over the cap, shared so both front ends emit
/// identical bytes.
HttpResponse BodyTooLargeError(size_t content_length, size_t max_body_bytes);

/// The 429 for a request refused by admission rate limiting (code
/// RATE_LIMITED), carrying a Retry-After header of ceil(retry_after_seconds)
/// (at least 1). Shared so both front ends emit identical bytes.
HttpResponse RateLimitedError(double retry_after_seconds);

/// The 503 for a request shed because it sat in the compute-pool queue past
/// the server's --queue-deadline-ms (code OVERLOADED). `waited_ms` is how
/// long it actually queued.
HttpResponse QueueDeadlineError(double waited_ms, int deadline_ms);

/// Serializes the status line and framing headers (terminating blank line
/// included, body not included). `chunked` selects "Transfer-Encoding:
/// chunked" over "Content-Length: <body.size()>"; only valid for HTTP/1.1
/// responses.
std::string SerializeResponseHead(const HttpResponse& response, bool keep_alive,
                                  bool chunked);

/// Appends one chunked-transfer-coding chunk (hex size, CRLF, data, CRLF).
/// Empty pieces are skipped entirely — an empty chunk would terminate the
/// body early.
void AppendHttpChunk(std::string* out, std::string_view piece);

/// The terminal zero-length chunk ending a chunked body.
inline constexpr char kHttpLastChunk[] = "0\r\n\r\n";

/// Computes whether the connection stays open after this exchange:
/// HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close, an explicit
/// Connection header overrides either way.
bool RequestKeepsAlive(const HttpRequest& request);

/// Incremental request parser for event-driven front ends. Feed it whatever
/// bytes arrive; it pauses at two decision points:
///
///   kHeadDone  — head parsed and framing validated. The caller inspects
///                request()/content_length() and picks a body mode with
///                BeginBufferedBody() or BeginStreamedBody(), then calls
///                Step() again.
///   kComplete  — a full request is ready (buffered body in request().body,
///                or every body byte fed to the sink). After the response,
///                ResetForNextRequest() re-arms, keeping pipelined leftover
///                bytes.
///
/// kError means error_response() must be written and the connection closed;
/// kSinkAborted means the sink refused further bytes — the caller stops
/// feeding, drains briefly, writes sink->Finish(false), and closes.
///
/// The head scan, size-cap rules, and error bytes are identical to the
/// blocking server's: both paths call the same free functions above.
class HttpRequestParser {
 public:
  explicit HttpRequestParser(size_t max_header_bytes);

  enum class Phase { kHead, kHeadDone, kBody, kComplete, kSinkAborted, kError };

  /// Appends raw bytes from the socket. Call Step() afterwards.
  void Feed(std::string_view data);

  /// Advances as far as the buffered bytes allow and returns the phase.
  /// kHead / kBody mean "need more bytes"; the pausing phases are described
  /// above. Calling Step() again in a pausing phase without the required
  /// caller action is an error (checked).
  Phase Step();

  /// Buffer the body into request().body, refusing declared lengths over
  /// `max_body_bytes` (moves to kError with the shared 413). Only valid in
  /// kHeadDone.
  void BeginBufferedBody(size_t max_body_bytes);

  /// Stream the body into `sink` (not owned; must outlive the parser or be
  /// detached via ResetForNextRequest). Declared lengths over
  /// `max_body_bytes` move to kError with the shared 413 before any byte is
  /// fed. Only valid in kHeadDone.
  void BeginStreamedBody(HttpBodySink* sink, size_t max_body_bytes);

  Phase phase() const { return phase_; }
  HttpRequest& request() { return request_; }
  size_t content_length() const { return content_length_; }
  HttpBodySink* sink() const { return sink_; }
  const HttpResponse& error_response() const { return error_; }

  /// True when any bytes of a next request have arrived — decides whether an
  /// idle timeout is a silent close or a 408.
  bool has_partial_input() const { return !buffer_.empty() || phase_ != Phase::kHead; }

  /// Re-arms for the next pipelined request, keeping unconsumed bytes.
  void ResetForNextRequest();

 private:
  size_t max_header_bytes_;
  Phase phase_ = Phase::kHead;
  std::string buffer_;
  size_t scanned_ = 0;  // first index of buffer_ not yet scanned for CRLFCRLF
  HttpRequest request_;
  size_t content_length_ = 0;
  size_t body_consumed_ = 0;
  size_t body_cap_ = 0;
  HttpBodySink* sink_ = nullptr;
  bool body_mode_chosen_ = false;
  HttpResponse error_;
};

}  // namespace reptile

#endif  // REPTILE_NET_HTTP_CODEC_H_
