// Distributive aggregate algebra (paper Section 3.1 and Appendix A).
//
// Reptile supports complaints over distributive sets of aggregation
// functions: given a partition of R into subsets, there is a merge function G
// recombining per-subset results into the global result. Two equivalent
// representations are provided:
//
//  * Moments — count / sum / sum-of-squares sketches, closed under addition;
//    every supported statistic (COUNT, SUM, MEAN, STD, VAR) derives from them.
//  * AggTriple + MergeTriples — the paper's Appendix A formulation, merging
//    (mean, count, std) triples directly with the G_mean / G_count / G_std
//    formulas. Tests verify both representations agree.

#ifndef REPTILE_AGG_AGGREGATES_H_
#define REPTILE_AGG_AGGREGATES_H_

#include <optional>
#include <string>
#include <vector>

namespace reptile {

/// Aggregate statistics Reptile can compute, complain about, and repair.
enum class AggFn {
  kCount,
  kSum,
  kMean,
  kStd,  // sample standard deviation (n-1 denominator)
  kVar,  // sample variance
};

/// Human-readable name ("COUNT", "MEAN", ...).
std::string AggFnName(AggFn fn);

/// Parses an aggregate name, case-insensitively ("count", "MEAN", ...);
/// std::nullopt when the name matches no statistic. Inverse of AggFnName.
std::optional<AggFn> ParseAggFn(const std::string& name);

/// Distributive moment sketch: closed under Add / Subtract, so a group can be
/// removed from or re-inserted into a parent aggregate in O(1) — the
/// `G(V' \ {t} ∪ {frepair(t)})` recombination of Problem 1.
struct Moments {
  double count = 0.0;
  double sum = 0.0;
  double sumsq = 0.0;

  void Observe(double value) {
    count += 1.0;
    sum += value;
    sumsq += value * value;
  }

  void Add(const Moments& other) {
    count += other.count;
    sum += other.sum;
    sumsq += other.sumsq;
  }

  void Subtract(const Moments& other) {
    count -= other.count;
    sum -= other.sum;
    sumsq -= other.sumsq;
  }

  double Mean() const { return count > 0.0 ? sum / count : 0.0; }

  /// Sample variance (n-1 denominator); 0 when count < 2.
  double SampleVar() const;

  /// Sample standard deviation; 0 when count < 2.
  double SampleStd() const;

  /// Value of the requested statistic.
  double Value(AggFn fn) const;

  /// Builds a sketch equivalent to `count` observations with the given mean
  /// and sample standard deviation (inverse of Mean()/SampleStd()).
  static Moments FromStats(double count, double mean, double std);
};

/// The Appendix A representation: per-subset (mean, count, std).
struct AggTriple {
  double mean = 0.0;
  double count = 0.0;
  double std = 0.0;
};

/// Merges per-subset triples with the Appendix A formulas
/// (G_mean, G_count, G_std). Subsets with count 0 are ignored.
AggTriple MergeTriples(const std::vector<AggTriple>& parts);

}  // namespace reptile

#endif  // REPTILE_AGG_AGGREGATES_H_
