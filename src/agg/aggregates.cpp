#include "agg/aggregates.h"

#include <cctype>
#include <cmath>

#include "common/check.h"

namespace reptile {

std::string AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCount:
      return "COUNT";
    case AggFn::kSum:
      return "SUM";
    case AggFn::kMean:
      return "MEAN";
    case AggFn::kStd:
      return "STD";
    case AggFn::kVar:
      return "VAR";
  }
  return "UNKNOWN";
}

std::optional<AggFn> ParseAggFn(const std::string& name) {
  std::string upper;
  upper.reserve(name.size());
  for (char c : name) upper.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  if (upper == "COUNT") return AggFn::kCount;
  if (upper == "SUM") return AggFn::kSum;
  if (upper == "MEAN" || upper == "AVG") return AggFn::kMean;
  if (upper == "STD" || upper == "STDDEV") return AggFn::kStd;
  if (upper == "VAR" || upper == "VARIANCE") return AggFn::kVar;
  return std::nullopt;
}

double Moments::SampleVar() const {
  if (count < 2.0) return 0.0;
  double mean = Mean();
  // sum of squared deviations = sumsq - n * mean^2; clamp tiny negatives from
  // floating-point cancellation.
  double ss = sumsq - count * mean * mean;
  if (ss < 0.0) ss = 0.0;
  return ss / (count - 1.0);
}

double Moments::SampleStd() const { return std::sqrt(SampleVar()); }

double Moments::Value(AggFn fn) const {
  switch (fn) {
    case AggFn::kCount:
      return count;
    case AggFn::kSum:
      return sum;
    case AggFn::kMean:
      return Mean();
    case AggFn::kStd:
      return SampleStd();
    case AggFn::kVar:
      return SampleVar();
  }
  return 0.0;
}

Moments Moments::FromStats(double count, double mean, double std) {
  Moments m;
  m.count = count;
  m.sum = mean * count;
  // sumsq = (n-1) * s^2 + n * mean^2 inverts SampleVar().
  double var_part = count > 1.0 ? (count - 1.0) * std * std : 0.0;
  m.sumsq = var_part + count * mean * mean;
  return m;
}

AggTriple MergeTriples(const std::vector<AggTriple>& parts) {
  // Appendix A:
  //   G_count = sum_j c_j
  //   G_mean  = sum_j c_j m_j / G_count
  //   G_std   = sqrt( (sum_j (c_j - 1) s_j^2 + sum_j c_j (G_mean - m_j)^2)
  //                   / (G_count - 1) )
  AggTriple out;
  double weighted_sum = 0.0;
  for (const AggTriple& p : parts) {
    if (p.count <= 0.0) continue;
    out.count += p.count;
    weighted_sum += p.count * p.mean;
  }
  if (out.count <= 0.0) return out;
  out.mean = weighted_sum / out.count;
  if (out.count <= 1.0) return out;
  double ss = 0.0;
  for (const AggTriple& p : parts) {
    if (p.count <= 0.0) continue;
    if (p.count > 1.0) ss += (p.count - 1.0) * p.std * p.std;
    double d = out.mean - p.mean;
    ss += p.count * d * d;
  }
  if (ss < 0.0) ss = 0.0;
  out.std = std::sqrt(ss / (out.count - 1.0));
  return out;
}

}  // namespace reptile
