// Incremental dataset versions: the append builder (the tentpole of the
// version subsystem).
//
// POST /v1/datasets/{name}/rows lands here: a CSV batch with the parent's
// exact column set becomes a NEW immutable PreparedDataset — version K+1 of
// the chain — that structurally shares everything the delta did not touch:
//
//  * Columns and value-dict prefixes: the child table re-encodes the delta
//    through the parent's dictionaries (Table::AppendRows), so existing
//    values keep their codes and new values take the next codes in
//    first-appearance order — exactly the assignment a from-scratch load of
//    the concatenated CSV would produce. Appending parent rows first keeps
//    float summation order identical too, which is what makes every
//    recommend/view/commit response over "name@vK" byte-identical to a cold
//    rebuild (the differential suite's contract).
//  * F-tree subtrees and (hierarchy, depth) aggregates: a cache entry at
//    (h, d) depends ONLY on the set of distinct root-to-leaf path prefixes
//    of length d, so an append leaves (h, d) CLEAN iff no delta row
//    introduces a new depth-d prefix. A delta row whose path matches the
//    parent's full-depth f-tree for m levels dirties exactly depths m+1..D
//    (its prefixes of length <= m already exist; deeper ones are new). The
//    per-hierarchy first dirty depth is the minimum over delta rows, and
//    the child's AggregateEpochs keeps clean depths at the parent's epoch —
//    same cache key, same entry, zero rebuild — while dirty depths move to
//    the child's version id: invalidation without flushing anything the
//    parent's pinned sessions still read.
//
// Fitted models always depend on every row's y-moments, so no model survives
// a real append; the win there is the version-qualified cache key
// (Engine::FitCacheKey's "|v:" component): the parent's fitted models stay
// resident and parent-pinned sessions keep hitting them warm.

#ifndef REPTILE_VERSION_APPEND_H_
#define REPTILE_VERSION_APPEND_H_

#include <cstdint>
#include <string>
#include <vector>

#include "api/registry.h"
#include "api/status.h"

namespace reptile {

/// What an append built, and how much of the parent it reused.
struct AppendResult {
  DatasetHandle child;           // version parent->version() + 1
  size_t appended_rows = 0;      // delta rows
  size_t total_rows = 0;         // child table rows
  int64_t invalidated_entries = 0;  // (hierarchy, depth) keys dirtied
  int64_t shared_entries = 0;       // (hierarchy, depth) keys kept at the parent epoch
  /// Per hierarchy: the first dirtied depth (max_depth + 1 = fully clean).
  std::vector<int> dirty_from;
};

/// Builds version parent->version() + 1 from `csv_text` (header + data rows,
/// same separator conventions as dataset upload). The header must carry
/// EXACTLY the parent's columns (any order): a missing or unknown column is
/// InvalidArgument naming the column — appends cannot change the schema or
/// hierarchy shape. An append with zero data rows is InvalidArgument too (a
/// version must change the dataset). `origin` labels parse errors ("inline
/// csv", "csv body"). Does NOT touch any registry — the caller owns chain
/// membership (DatasetRegistry::AppendVersion).
Result<AppendResult> AppendRowsCsv(const DatasetHandle& parent, const std::string& csv_text,
                                   const std::string& origin = "inline csv");

}  // namespace reptile

#endif  // REPTILE_VERSION_APPEND_H_
