#include "version/version.h"

namespace reptile {

bool ParseVersionedName(const std::string& name, std::string* base, int64_t* version) {
  size_t at = name.rfind("@v");
  if (at == std::string::npos || at == 0) return false;
  size_t digits_begin = at + 2;
  size_t digits = name.size() - digits_begin;
  if (digits == 0 || digits > 18) return false;  // 18 digits always fits int64_t
  int64_t value = 0;
  for (size_t i = digits_begin; i < name.size(); ++i) {
    char c = name[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  if (value < 1) return false;
  *base = name.substr(0, at);
  *version = value;
  return true;
}

std::string FormatVersionedName(const std::string& base, int64_t version) {
  return base + "@v" + std::to_string(version);
}

}  // namespace reptile
