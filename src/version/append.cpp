#include "version/append.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <utility>

#include "data/csv.h"
#include "data/dataset.h"
#include "data/table.h"
#include "factor/agg_cache.h"
#include "factor/decomposed.h"
#include "factor/ftree.h"

namespace reptile {
namespace {

// Mirrors the CSV parser's line handling (data/csv.cpp): first line up to
// '\n', trailing '\r' stripped, UTF-8 BOM stripped, split on `separator`.
std::vector<std::string> HeaderFields(const std::string& csv_text, char separator) {
  std::string line = csv_text.substr(0, csv_text.find('\n'));
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line.rfind("\xEF\xBB\xBF", 0) == 0) line.erase(0, 3);
  std::vector<std::string> fields;
  std::string field;
  std::istringstream stream(line);
  while (std::getline(stream, field, separator)) fields.push_back(field);
  if (!line.empty() && line.back() == separator) fields.emplace_back();
  return fields;
}

// The schema gate (column-level 400s): the append header must be exactly the
// parent's column set. The CSV parser silently IGNORES header fields outside
// its spec, so the unknown-column check has to happen here, before parsing.
Status ValidateAppendHeader(const Table& parent, const std::string& csv_text,
                            char separator) {
  std::vector<std::string> fields = HeaderFields(csv_text, separator);
  for (int c = 0; c < parent.num_columns(); ++c) {
    if (std::find(fields.begin(), fields.end(), parent.column_name(c)) == fields.end()) {
      return Status::InvalidArgument("appended rows are missing column '" +
                                     parent.column_name(c) +
                                     "' (appends cannot change the dataset schema)");
    }
  }
  for (const std::string& field : fields) {
    if (!parent.FindColumn(field).has_value()) {
      return Status::InvalidArgument("appended rows carry unknown column '" + field +
                                     "' (appends cannot change the dataset schema)");
    }
  }
  return Status::Ok();
}

// Full-depth parent f-tree for `hierarchy`, through the shared cache at the
// parent's epoch: a cold lookup builds the entry once (tree + locals, the
// same shape DrillDownState::Build produces) and leaves it resident, where
// the parent's own sessions can hit it afterwards.
HierarchyAggregatesPtr ParentFullDepthEntry(const PreparedDataset& parent, int hierarchy) {
  int depth = parent.data().hierarchy(hierarchy).depth();
  int64_t epoch = parent.epochs().at(hierarchy, depth);
  if (HierarchyAggregatesPtr entry = parent.cache().Find(epoch, hierarchy, depth)) {
    return entry;
  }
  std::vector<int> columns = parent.data().HierarchyColumns(hierarchy, depth);
  HierarchyAggregates built;
  built.tree = std::make_unique<FTree>(FTree::FromTable(parent.table(), columns));
  built.locals = std::make_unique<LocalAggregates>(built.tree.get());
  return parent.cache().Insert(epoch, hierarchy, depth, std::move(built));
}

}  // namespace

Result<AppendResult> AppendRowsCsv(const DatasetHandle& parent, const std::string& csv_text,
                                   const std::string& origin) {
  if (parent == nullptr) {
    return Status::InvalidArgument("append needs a live parent dataset version");
  }
  const Dataset& parent_data = parent->data();
  const Table& parent_table = parent->table();
  const char separator = ',';  // dataset upload's convention

  REPTILE_RETURN_IF_ERROR(ValidateAppendHeader(parent_table, csv_text, separator));

  // Parse the delta with the parent-derived spec; header order may differ,
  // AppendRows matches by name.
  CsvSpec spec;
  spec.separator = separator;
  for (int c = 0; c < parent_table.num_columns(); ++c) {
    if (parent_table.is_dimension(c)) {
      spec.dimension_columns.push_back(parent_table.column_name(c));
    } else {
      spec.measure_columns.push_back(parent_table.column_name(c));
    }
  }
  CsvStreamParser parser(spec, origin);
  parser.Feed(csv_text);
  Result<Table> delta = parser.Finish();
  if (!delta.ok()) return delta.status();
  if (delta->num_rows() == 0) {
    return Status::InvalidArgument("append contains no data rows (" + origin +
                                   " has only a header)");
  }

  // Child table: parent rows first, delta re-encoded through the parent's
  // dictionaries — identical codes AND identical float summation order to a
  // from-scratch load of the concatenated CSV.
  Table child_table = parent_table;
  REPTILE_RETURN_IF_ERROR(child_table.AppendRows(*delta));

  // Dirty analysis: walk each delta row down the parent's full-depth f-tree.
  // A row matching m levels dirties depths m+1..D; clean depths keep the
  // parent's epoch so parent and child address the same cache entries.
  const int64_t child_version = parent->version() + 1;
  AppendResult result;
  result.appended_rows = delta->num_rows();
  result.total_rows = child_table.num_rows();
  AggregateEpochs epochs = parent->epochs();
  result.dirty_from.resize(static_cast<size_t>(parent_data.num_hierarchies()));
  for (int h = 0; h < parent_data.num_hierarchies(); ++h) {
    const int depth = parent_data.hierarchy(h).depth();
    HierarchyAggregatesPtr full = ParentFullDepthEntry(*parent, h);
    std::vector<int> columns = parent_data.HierarchyColumns(h, depth);
    std::vector<int32_t> path(static_cast<size_t>(depth));
    int dirty_from = depth + 1;
    for (size_t row = parent_table.num_rows();
         row < child_table.num_rows() && dirty_from > 1; ++row) {
      for (int l = 0; l < depth; ++l) {
        path[static_cast<size_t>(l)] = child_table.dim_codes(columns[static_cast<size_t>(l)])[row];
      }
      int matched = full->tree->MatchedPrefixDepth(path.data(), depth);
      dirty_from = std::min(dirty_from, matched + 1);
    }
    result.dirty_from[static_cast<size_t>(h)] = dirty_from;
    for (int d = dirty_from; d <= depth; ++d) {
      epochs.dirtied[static_cast<size_t>(h)][static_cast<size_t>(d - 1)] = child_version;
      ++result.invalidated_entries;
    }
    result.shared_entries += dirty_from - 1;
  }

  std::vector<HierarchySchema> hierarchies;
  hierarchies.reserve(static_cast<size_t>(parent_data.num_hierarchies()));
  for (int h = 0; h < parent_data.num_hierarchies(); ++h) {
    hierarchies.push_back(parent_data.hierarchy(h));
  }
  Result<Dataset> child_data = Dataset::Make(std::move(child_table), std::move(hierarchies));
  if (!child_data.ok()) return child_data.status();

  Result<DatasetHandle> child = PreparedDataset::PrepareVersion(
      parent, std::move(child_data).value(), child_version, std::move(epochs));
  if (!child.ok()) return child.status();
  result.child = std::move(child).value();
  return result;
}

}  // namespace reptile
