// Dataset version naming: "name@vK".
//
// A version chain (api/registry.h) registers one BASE name; individual live
// versions are addressed by suffixing "@v" plus the 1-based version id —
// "sales@v3". The plain base name always means the chain head. Parsing is a
// pure string operation with no registry knowledge, so the registry, the
// HTTP service, and the workload oracle all agree on the spelling; the
// registry still tries an exact-name lookup FIRST, so a dataset whose real
// name happens to contain "@v" keeps working.

#ifndef REPTILE_VERSION_VERSION_H_
#define REPTILE_VERSION_VERSION_H_

#include <cstdint>
#include <string>

namespace reptile {

/// True when `name` has the form "<base>@v<digits>" with a non-empty base
/// and a version in [1, 10^18); fills `base` and `version`. The LAST "@v"
/// wins, so "a@v2@v3" parses as base "a@v2", version 3.
bool ParseVersionedName(const std::string& name, std::string* base, int64_t* version);

/// "<base>@v<version>".
std::string FormatVersionedName(const std::string& base, int64_t version);

}  // namespace reptile

#endif  // REPTILE_VERSION_VERSION_H_
