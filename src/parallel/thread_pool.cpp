#include "parallel/thread_pool.h"

#include <utility>

namespace reptile {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();  // drain: every submitted task runs before the workers join
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

int64_t ThreadPool::PendingTasks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

int ThreadPool::DefaultThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // ParallelFor wraps tasks in try/catch; they never throw here
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

ThreadPool* SharedThreadPool() {
  // Magic-static: thread-safe lazy init. Leaked by design (see header).
  static ThreadPool* const pool = new ThreadPool(ThreadPool::DefaultThreads());
  return pool;
}

void ParallelFor(ThreadPool* pool, int64_t n, const std::function<void(int64_t)>& fn) {
  if (n <= 0) return;
  if (pool == nullptr || pool->num_threads() <= 1 || n == 1) {
    for (int64_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Completion latch local to this call, so concurrent ParallelFor calls on
  // one pool (the engine never issues them, but tests may) don't interfere.
  std::mutex mu;
  std::condition_variable done;
  int64_t remaining = n;
  int64_t first_error_index = n;  // lowest task index that threw
  std::exception_ptr error;

  for (int64_t i = 0; i < n; ++i) {
    pool->Submit([&, i] {
      std::exception_ptr caught;
      try {
        fn(i);
      } catch (...) {
        caught = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mu);
      if (caught != nullptr && i < first_error_index) {
        first_error_index = i;
        error = caught;
      }
      if (--remaining == 0) done.notify_all();
    });
  }

  std::unique_lock<std::mutex> lock(mu);
  done.wait(lock, [&] { return remaining == 0; });
  if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace reptile
