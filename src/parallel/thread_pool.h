// Fixed-size worker pool and data-parallel helpers for the engine's batched
// execution (paper Section 5.1.2: the per-plan model fits and per-complaint
// rankings of one Reptile invocation are independent).
//
// Design notes:
//  * No work stealing, no task dependencies — the engine's stages are flat
//    fan-outs with a join at the end, so a single FIFO queue suffices and
//    keeps task start order deterministic (completion order is not).
//  * ParallelFor/ParallelMap write results by index: output order never
//    depends on scheduling, which is what makes the parallel engine paths
//    element-wise identical to the sequential ones.
//  * A pool of size 1 — or a null pool — runs everything inline on the
//    calling thread: the sequential path is literally the same code.
//  * Exceptions thrown by tasks are captured and the one with the lowest
//    task index is rethrown on the calling thread after the join —
//    deterministic regardless of scheduling. (This repo's own invariants use
//    REPTILE_CHECK, which aborts the process from whatever thread it fires
//    on, worker or caller, without reaching this path; the rethrow exists
//    for exception-throwing task code such as tests or embedding clients.)

#ifndef REPTILE_PARALLEL_THREAD_POOL_H_
#define REPTILE_PARALLEL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace reptile {

/// Fixed-size thread pool with a FIFO task queue. Destruction drains the
/// queue: every task submitted before the destructor runs is executed before
/// the workers join.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Tasks must not submit to the pool they run on while a
  /// ParallelFor join is pending on all of them (the engine's stages never
  /// do); they may freely submit to other pools.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void Wait();

  /// Tasks queued or currently running — the pool-depth gauge /metricsz
  /// exports. A snapshot: the value may be stale by the time it returns.
  int64_t PendingTasks() const;

  /// std::thread::hardware_concurrency() with a fallback of 1 when the
  /// runtime cannot report it.
  static int DefaultThreads();

 private:
  void WorkerLoop();

  mutable std::mutex mu_;  // mutable: PendingTasks() is a const observer
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int64_t in_flight_ = 0;  // queued + currently running tasks
  bool shutting_down_ = false;
};

/// The process-wide shared compute pool: lazily created on first use,
/// DefaultThreads() wide, and intentionally never destroyed (leaked so no
/// static-destruction-order hazard exists for late users). Many concurrent
/// Engines — and anything else fanning out compute — share these workers
/// instead of each spawning hardware_concurrency threads, so one busy server
/// process cannot oversubscribe the machine. Concurrent ParallelFor calls on
/// it are safe (each call carries its own completion latch).
///
/// Only submit short-lived compute tasks: a task that blocks indefinitely
/// (e.g. socket reads — see server/http_server.h, which owns a separate
/// connection pool for exactly this reason) would starve every other client
/// of the shared workers. Components that need a specific width or isolation
/// opt out by constructing their own ThreadPool.
ThreadPool* SharedThreadPool();

/// Runs fn(i) for every i in [0, n), fanning out across `pool` (nullptr or a
/// one-thread pool = inline sequential execution). Blocks until every index
/// has run. If any invocation throws, the exception of the lowest failing
/// index is rethrown here after all tasks finish — deterministic regardless
/// of scheduling.
void ParallelFor(ThreadPool* pool, int64_t n, const std::function<void(int64_t)>& fn);

/// ParallelFor that materialises fn's results in index order.
template <typename R>
std::vector<R> ParallelMap(ThreadPool* pool, int64_t n,
                           const std::function<R(int64_t)>& fn) {
  std::vector<R> out(static_cast<size_t>(n));
  ParallelFor(pool, n, [&](int64_t i) { out[static_cast<size_t>(i)] = fn(i); });
  return out;
}

}  // namespace reptile

#endif  // REPTILE_PARALLEL_THREAD_POOL_H_
