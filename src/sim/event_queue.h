// Discrete-event core of the workload simulator: a virtual-clock event
// queue with deterministic ordering. Events fire in (time_ns, seq) order —
// `seq` is the insertion serial, so two events scheduled for the same
// virtual instant pop in the order they were pushed, on every platform and
// every run. std::priority_queue alone cannot promise that (equal keys pop
// in heap order, which depends on interleaving), and the whole point of the
// simulator is that a seed determines the schedule byte-for-byte
// (sim/workload.h hashes the popped sequence into a digest that tests and
// scripts/check.sh compare across runs and thread counts).
//
// Virtual time is int64 nanoseconds from scenario start: integral so
// equality is exact (tie-breaking on doubles would hinge on rounding), wide
// enough for ~292 years of schedule.

#ifndef REPTILE_SIM_EVENT_QUEUE_H_
#define REPTILE_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "common/check.h"

namespace reptile {

/// A min-queue of (time_ns, payload) events with insertion-order
/// tie-breaking. Single-threaded by design — schedules are *built* serially
/// (that is what makes them reproducible) and only *replayed* concurrently.
template <typename Payload>
class SimEventQueue {
 public:
  struct Event {
    int64_t time_ns = 0;
    uint64_t seq = 0;  // insertion serial; breaks time ties deterministically
    Payload payload;
  };

  /// Schedules `payload` at virtual instant `time_ns` (>= 0).
  void Push(int64_t time_ns, Payload payload) {
    REPTILE_CHECK(time_ns >= 0) << "event scheduled before virtual time zero";
    heap_.push(Event{time_ns, next_seq_++, std::move(payload)});
  }

  /// Removes and returns the earliest event; ties pop in push order.
  Event Pop() {
    REPTILE_CHECK(!heap_.empty()) << "Pop on an empty event queue";
    // top() is const&; moving out of a priority_queue needs the const_cast
    // idiom — safe because pop() follows immediately.
    Event event = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    return event;
  }

  const Event& Peek() const {
    REPTILE_CHECK(!heap_.empty()) << "Peek on an empty event queue";
    return heap_.top();
  }

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time_ns != b.time_ns) return a.time_ns > b.time_ns;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace reptile

#endif  // REPTILE_SIM_EVENT_QUEUE_H_
