#include "sim/workload.h"

#include <memory>
#include <utility>

#include "common/check.h"
#include "common/hashing.h"
#include "sim/event_queue.h"

namespace reptile {

ScenarioSpec SteadyScenario() {
  ScenarioSpec spec;
  spec.name = "steady";
  spec.arrivals = ScenarioSpec::Arrivals::kPoisson;
  spec.poisson_rate_per_second = 6.0;
  spec.arrival_window_seconds = 2.0;
  spec.session.min_ops = 2;
  spec.session.max_ops = 5;
  spec.session.mean_think_seconds = 0.15;
  spec.session.max_commits = 1;
  return spec;
}

ScenarioSpec BurstScenario() {
  ScenarioSpec spec;
  spec.name = "burst";
  spec.arrivals = ScenarioSpec::Arrivals::kMmpp;
  spec.mmpp.calm_rate_per_second = 5.0;
  spec.mmpp.burst_rate_per_second = 400.0;
  spec.mmpp.mean_calm_seconds = 0.5;
  spec.mmpp.mean_burst_seconds = 0.6;
  spec.arrival_window_seconds = 2.0;
  spec.max_sessions = 600;  // bound the worst-case burst draw
  // Stateless storms: no commits, no think time to speak of — the point is
  // to slam the admission layer, not to model a considerate analyst.
  spec.session.min_ops = 1;
  spec.session.max_ops = 3;
  spec.session.mean_think_seconds = 0.002;
  spec.session.max_commits = 0;
  // A deliberately heavy panel (~30k rows vs the steady default's ~2k):
  // per-request service time has to be able to outrun --queue-deadline-ms,
  // or the shed path could never engage no matter how hard arrivals burst.
  spec.panel.villages_per_district = 24;
  spec.panel.rows_per_group = 16;
  return spec;
}

ScenarioSpec ChurnScenario() {
  ScenarioSpec spec;
  spec.name = "churn";
  spec.arrivals = ScenarioSpec::Arrivals::kPoisson;
  spec.poisson_rate_per_second = 4.0;
  spec.arrival_window_seconds = 2.0;
  spec.session.min_ops = 2;
  spec.session.max_ops = 4;
  spec.session.mean_think_seconds = 0.15;
  spec.session.max_commits = 1;
  // Every analyst pins version 1 explicitly: the run proves appends move the
  // head without moving anyone's session. The feeder itself probes each new
  // head with its own short-lived sessions.
  spec.session.dataset_ref = "@DS@@v1";
  spec.feeder_appends = 2;
  return spec;
}

std::vector<ScheduledOp> BuildSchedule(const ScenarioSpec& spec, uint64_t seed) {
  REPTILE_CHECK(spec.arrival_window_seconds > 0.0)
      << "scenario wants a positive arrival window";
  Rng root(seed);
  std::unique_ptr<ArrivalProcess> arrivals;
  if (spec.arrivals == ScenarioSpec::Arrivals::kPoisson) {
    arrivals = std::make_unique<PoissonArrivals>(spec.poisson_rate_per_second,
                                                 root.Stream(1));
  } else {
    arrivals = std::make_unique<MmppArrivals>(spec.mmpp, root.Stream(2),
                                              root.Stream(1));
  }

  const int64_t window_ns =
      static_cast<int64_t>(spec.arrival_window_seconds * 1e9);
  SimEventQueue<SimOp> queue;
  int session_index = 0;
  if (spec.feeder_appends > 0) {
    // Session 0 is the deterministic append feeder; it draws no Rng streams,
    // so analyst chains (index >= 1) keep their usual sub-streams and adding
    // the feeder never re-times anyone.
    FeederParams feeder;
    feeder.appends = spec.feeder_appends;
    feeder.window_ns = window_ns;
    feeder.top_k = spec.session.top_k;
    SessionChain chain = BuildFeederChain(feeder);
    for (size_t i = 0; i < chain.ops.size(); ++i) {
      queue.Push(chain.offsets_ns[i], std::move(chain.ops[i]));
    }
    session_index = 1;
  }
  for (;;) {
    if (spec.max_sessions > 0 && session_index >= spec.max_sessions) break;
    int64_t arrival_ns = arrivals->NextNs();
    if (arrival_ns > window_ns) break;
    SessionChain chain = BuildSessionChain(root, session_index, spec.session);
    for (size_t i = 0; i < chain.ops.size(); ++i) {
      queue.Push(arrival_ns + chain.offsets_ns[i], std::move(chain.ops[i]));
    }
    ++session_index;
  }

  std::vector<ScheduledOp> schedule;
  schedule.reserve(queue.size());
  while (!queue.empty()) {
    auto event = queue.Pop();
    schedule.push_back(ScheduledOp{event.time_ns, event.seq, std::move(event.payload)});
  }
  return schedule;
}

std::string DumpSchedule(const ScenarioSpec& spec, uint64_t seed,
                         const std::vector<ScheduledOp>& schedule) {
  int sessions = 0;
  for (const ScheduledOp& item : schedule) {
    if (item.op.session_index + 1 > sessions) sessions = item.op.session_index + 1;
  }
  std::string out = "# reptile workload schedule\n";
  out += "# scenario=" + spec.name + " seed=" + std::to_string(seed) +
         " ops=" + std::to_string(schedule.size()) +
         " sessions=" + std::to_string(sessions) + "\n";
  out += "# time_ns\tseq\tsession\tkind\tmethod\tpath\tbody\n";
  for (const ScheduledOp& item : schedule) {
    out += std::to_string(item.time_ns);
    out += '\t';
    out += std::to_string(item.seq);
    out += '\t';
    out += std::to_string(item.op.session_index);
    out += '\t';
    out += SimOpKindName(item.op.kind);
    out += '\t';
    out += item.op.method;
    out += '\t';
    out += item.op.path;
    out += '\t';
    out += item.op.body;  // single-line JSON; never contains a tab or newline
    out += '\n';
  }
  return out;
}

std::string ScheduleDigest(const ScenarioSpec& spec, uint64_t seed,
                           const std::vector<ScheduledOp>& schedule) {
  Fnv1aHasher hasher;
  hasher.MixString(DumpSchedule(spec, seed, schedule));
  return hasher.Hex();
}

}  // namespace reptile
