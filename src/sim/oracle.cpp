#include "sim/oracle.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "api/response.h"
#include "common/check.h"
#include "common/json_util.h"

namespace reptile {
namespace {

// The wire zero_timings transform, replicated from the serving tier: only
// the candidates' timing fields vary run to run in a single-complaint
// response; everything else is deterministic.
void ZeroCandidateTimings(ExploreResponse* response) {
  for (HierarchyResponse& candidate : response->candidates) {
    candidate.train_seconds = 0.0;
    candidate.total_seconds = 0.0;
  }
}

}  // namespace

std::string RenderTableCsv(const Table& table) {
  std::string out;
  for (int c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out += ',';
    out += table.column_name(c);
  }
  out += '\n';
  char buffer[64];
  for (size_t row = 0; row < table.num_rows(); ++row) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out += ',';
      if (table.is_dimension(c)) {
        out += table.dict(c).name(table.dim_codes(c)[row]);
      } else {
        // %.17g round-trips every finite double exactly through strtod.
        std::snprintf(buffer, sizeof(buffer), "%.17g", table.measure(c)[row]);
        out += buffer;
      }
    }
    out += '\n';
  }
  return out;
}

WorkloadOracle::WorkloadOracle(SimDatasetSpec spec) : spec_(std::move(spec)) {
  Dataset dataset = MakeSeverityPanel(spec_.panel);
  std::string csv = RenderTableCsv(dataset.table());
  size_t rows = dataset.table().num_rows();

  upload_body_ = "{\"name\":" + JsonQuote(spec_.name) + ",\"csv\":" + JsonQuote(csv) +
                 ",\"dimensions\":[\"district\",\"village\",\"year\"]"
                 ",\"measures\":[\"severity\"]"
                 ",\"hierarchies\":["
                 "{\"name\":\"geo\",\"attributes\":[\"district\",\"village\"]},"
                 "{\"name\":\"time\",\"attributes\":[\"year\"]}]"
                 ",\"commits\":[\"time\"]}";
  upload_response_ = "{\"dataset\":" + JsonQuote(spec_.name) +
                     ",\"rows\":" + std::to_string(rows) +
                     ",\"session\":" + JsonQuote("default:" + spec_.name) + "}";

  Result<DatasetHandle> handle = PreparedDataset::Prepare(std::move(dataset));
  REPTILE_CHECK(handle.ok()) << "oracle dataset failed to prepare: "
                             << handle.status().ToString();
  handle_ = std::move(handle).value();
}

std::string WorkloadOracle::delete_response() const {
  return "{\"deleted\":" + JsonQuote(spec_.name) + "}";
}

std::string WorkloadOracle::SnapshotJson(int session_index) const {
  auto it = sessions_.find(session_index);
  REPTILE_CHECK(it != sessions_.end());
  std::map<std::string, int> committed = it->second.CommittedDepths();
  std::string out =
      "{\"session\":\"@SID@\",\"dataset\":" + JsonQuote(spec_.name) +
      ",\"default\":false,\"committed\":{";
  bool first = true;
  for (const auto& [name, depth] : committed) {
    if (!first) out += ',';
    first = false;
    out += JsonQuote(name) + ":" + std::to_string(depth);
  }
  out += "}}";
  return out;
}

std::vector<ExpectedResponse> WorkloadOracle::ExpectedResponses(
    const std::vector<ScheduledOp>& schedule) {
  std::vector<ExpectedResponse> expected;
  expected.reserve(schedule.size());
  for (const ScheduledOp& item : schedule) {
    const SimOp& op = item.op;
    ExpectedResponse out;
    switch (op.kind) {
      case SimOpKind::kSessionCreate: {
        ExploreRequest options;
        // Mirror the wire body: top_k is the one session option the
        // generator sets (sim/session_model.cpp).
        size_t pos = op.body.find("\"top_k\":");
        REPTILE_CHECK(pos != std::string::npos);
        options.TopK(std::atoi(op.body.c_str() + pos + 8));
        Result<Session> session = Session::Open(handle_, options);
        REPTILE_CHECK(session.ok())
            << "oracle session open failed: " << session.status().ToString();
        Status restored = session->RestoreCommitted({{"time", 1}});
        REPTILE_CHECK(restored.ok())
            << "oracle restore failed: " << restored.ToString();
        sessions_.erase(op.session_index);
        sessions_.emplace(op.session_index, std::move(session).value());
        out.status = 201;
        out.body = SnapshotJson(op.session_index);
        break;
      }
      case SimOpKind::kRecommend: {
        auto it = sessions_.find(op.session_index);
        REPTILE_CHECK(it != sessions_.end());
        Result<ExploreResponse> response = it->second.Recommend(op.complaint);
        REPTILE_CHECK(response.ok()) << "oracle recommend failed ("
                                     << op.complaint.Describe()
                                     << "): " << response.status().ToString();
        ZeroCandidateTimings(&*response);
        out.status = 200;
        out.body = response->ToJson();
        break;
      }
      case SimOpKind::kView: {
        auto it = sessions_.find(op.session_index);
        REPTILE_CHECK(it != sessions_.end());
        Result<ViewResponse> response = it->second.View(op.view);
        REPTILE_CHECK(response.ok())
            << "oracle view failed: " << response.status().ToString();
        out.status = 200;
        out.body = response->ToJson();
        break;
      }
      case SimOpKind::kCommit: {
        auto it = sessions_.find(op.session_index);
        REPTILE_CHECK(it != sessions_.end());
        Status committed = it->second.Commit(op.hierarchy);
        REPTILE_CHECK(committed.ok())
            << "oracle commit failed: " << committed.ToString();
        Result<int> depth = it->second.DrillDepth(op.hierarchy);
        Result<bool> can_drill = it->second.CanDrill(op.hierarchy);
        out.status = 200;
        out.body = "{\"hierarchy\":" + JsonQuote(op.hierarchy) +
                   ",\"depth\":" + std::to_string(depth.ok() ? *depth : -1) +
                   ",\"can_drill\":" +
                   ((can_drill.ok() && *can_drill) ? "true" : "false") + "}";
        break;
      }
      case SimOpKind::kSessionGet: {
        out.status = 200;
        out.body = SnapshotJson(op.session_index);
        break;
      }
      case SimOpKind::kSessionDelete: {
        out.status = 200;
        out.body = "{\"deleted\":\"@SID@\"}";
        sessions_.erase(op.session_index);
        break;
      }
    }
    expected.push_back(std::move(out));
  }
  return expected;
}

}  // namespace reptile
