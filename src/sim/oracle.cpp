#include "sim/oracle.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "api/response.h"
#include "common/check.h"
#include "common/json_util.h"
#include "data/csv.h"

namespace reptile {
namespace {

// The wire zero_timings transform, replicated from the serving tier: only
// the candidates' timing fields vary run to run in a single-complaint
// response; everything else is deterministic.
void ZeroCandidateTimings(ExploreResponse* response) {
  for (HierarchyResponse& candidate : response->candidates) {
    candidate.train_seconds = 0.0;
    candidate.total_seconds = 0.0;
  }
}

// Cold-builds a severity-panel replica from `csv` — the oracle's answer to
// an append is a from-scratch prepare of the concatenated CSV, never an
// incremental build, so any byte the server's structural sharing changed
// would surface as a mismatch.
DatasetHandle BuildReplicaFromCsv(const std::string& csv) {
  CsvSpec spec;
  spec.dimension_columns = {"district", "village", "year"};
  spec.measure_columns = {"severity"};
  CsvStreamParser parser(spec, "oracle replica csv");
  REPTILE_CHECK(parser.Feed(csv));
  Result<Table> table = parser.Finish();
  REPTILE_CHECK(table.ok()) << table.status().ToString();
  Result<Dataset> dataset = Dataset::Make(
      std::move(table).value(),
      {{"geo", {"district", "village"}}, {"time", {"year"}}});
  REPTILE_CHECK(dataset.ok()) << dataset.status().ToString();
  Result<DatasetHandle> handle = PreparedDataset::Prepare(std::move(dataset).value());
  REPTILE_CHECK(handle.ok()) << handle.status().ToString();
  return std::move(handle).value();
}

}  // namespace

std::string RenderTableCsv(const Table& table) {
  std::string out;
  for (int c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out += ',';
    out += table.column_name(c);
  }
  out += '\n';
  char buffer[64];
  for (size_t row = 0; row < table.num_rows(); ++row) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out += ',';
      if (table.is_dimension(c)) {
        out += table.dict(c).name(table.dim_codes(c)[row]);
      } else {
        // %.17g round-trips every finite double exactly through strtod.
        std::snprintf(buffer, sizeof(buffer), "%.17g", table.measure(c)[row]);
        out += buffer;
      }
    }
    out += '\n';
  }
  return out;
}

WorkloadOracle::WorkloadOracle(SimDatasetSpec spec) : spec_(std::move(spec)) {
  Dataset dataset = MakeSeverityPanel(spec_.panel);
  csv_ = RenderTableCsv(dataset.table());
  const std::string& csv = csv_;
  size_t rows = dataset.table().num_rows();

  upload_body_ = "{\"name\":" + JsonQuote(spec_.name) + ",\"csv\":" + JsonQuote(csv) +
                 ",\"dimensions\":[\"district\",\"village\",\"year\"]"
                 ",\"measures\":[\"severity\"]"
                 ",\"hierarchies\":["
                 "{\"name\":\"geo\",\"attributes\":[\"district\",\"village\"]},"
                 "{\"name\":\"time\",\"attributes\":[\"year\"]}]"
                 ",\"commits\":[\"time\"]}";
  upload_response_ = "{\"dataset\":" + JsonQuote(spec_.name) +
                     ",\"rows\":" + std::to_string(rows) +
                     ",\"session\":" + JsonQuote("default:" + spec_.name) + "}";

  Result<DatasetHandle> handle = PreparedDataset::Prepare(std::move(dataset));
  REPTILE_CHECK(handle.ok()) << "oracle dataset failed to prepare: "
                             << handle.status().ToString();
  version_handles_[1] = std::move(handle).value();
}

std::string WorkloadOracle::delete_response() const {
  return "{\"deleted\":" + JsonQuote(spec_.name) + "}";
}

std::string WorkloadOracle::SnapshotJson(int session_index) const {
  auto it = sessions_.find(session_index);
  REPTILE_CHECK(it != sessions_.end());
  std::map<std::string, int> committed = it->second.session.CommittedDepths();
  std::string out =
      "{\"session\":\"@SID@\",\"dataset\":" + JsonQuote(spec_.name) +
      ",\"dataset_version\":" + std::to_string(it->second.dataset_version) +
      ",\"default\":false,\"committed\":{";
  bool first = true;
  for (const auto& [name, depth] : committed) {
    if (!first) out += ',';
    first = false;
    out += JsonQuote(name) + ":" + std::to_string(depth);
  }
  out += "}}";
  return out;
}

std::vector<ExpectedResponse> WorkloadOracle::ExpectedResponses(
    const std::vector<ScheduledOp>& schedule) {
  std::vector<ExpectedResponse> expected;
  expected.reserve(schedule.size());
  for (const ScheduledOp& item : schedule) {
    const SimOp& op = item.op;
    ExpectedResponse out;
    switch (op.kind) {
      case SimOpKind::kSessionCreate: {
        ExploreRequest options;
        // Mirror the wire body: top_k is the one session option the
        // generator sets (sim/session_model.cpp).
        size_t pos = op.body.find("\"top_k\":");
        REPTILE_CHECK(pos != std::string::npos);
        options.TopK(std::atoi(op.body.c_str() + pos + 8));
        // A pinned create opens the pinned version's replica; a plain one
        // opens whatever the head is at this point of the replay.
        const int64_t pin = op.pin_version > 0 ? op.pin_version : head_version_;
        auto handle_it = version_handles_.find(pin);
        REPTILE_CHECK(handle_it != version_handles_.end())
            << "oracle has no replica for version " << pin;
        Result<Session> session = Session::Open(handle_it->second, options);
        REPTILE_CHECK(session.ok())
            << "oracle session open failed: " << session.status().ToString();
        Status restored = session->RestoreCommitted({{"time", 1}});
        REPTILE_CHECK(restored.ok())
            << "oracle restore failed: " << restored.ToString();
        sessions_.erase(op.session_index);
        sessions_.emplace(op.session_index,
                          OracleSession{std::move(session).value(), pin});
        out.status = 201;
        out.body = SnapshotJson(op.session_index);
        break;
      }
      case SimOpKind::kRecommend: {
        auto it = sessions_.find(op.session_index);
        REPTILE_CHECK(it != sessions_.end());
        Result<ExploreResponse> response = it->second.session.Recommend(op.complaint);
        REPTILE_CHECK(response.ok()) << "oracle recommend failed ("
                                     << op.complaint.Describe()
                                     << "): " << response.status().ToString();
        ZeroCandidateTimings(&*response);
        out.status = 200;
        out.body = response->ToJson();
        break;
      }
      case SimOpKind::kView: {
        auto it = sessions_.find(op.session_index);
        REPTILE_CHECK(it != sessions_.end());
        Result<ViewResponse> response = it->second.session.View(op.view);
        REPTILE_CHECK(response.ok())
            << "oracle view failed: " << response.status().ToString();
        out.status = 200;
        out.body = response->ToJson();
        break;
      }
      case SimOpKind::kCommit: {
        auto it = sessions_.find(op.session_index);
        REPTILE_CHECK(it != sessions_.end());
        Status committed = it->second.session.Commit(op.hierarchy);
        REPTILE_CHECK(committed.ok())
            << "oracle commit failed: " << committed.ToString();
        Result<int> depth = it->second.session.DrillDepth(op.hierarchy);
        Result<bool> can_drill = it->second.session.CanDrill(op.hierarchy);
        out.status = 200;
        out.body = "{\"hierarchy\":" + JsonQuote(op.hierarchy) +
                   ",\"depth\":" + std::to_string(depth.ok() ? *depth : -1) +
                   ",\"can_drill\":" +
                   ((can_drill.ok() && *can_drill) ? "true" : "false") + "}";
        break;
      }
      case SimOpKind::kSessionGet: {
        out.status = 200;
        out.body = SnapshotJson(op.session_index);
        break;
      }
      case SimOpKind::kSessionDelete: {
        out.status = 200;
        out.body = "{\"deleted\":\"@SID@\"}";
        sessions_.erase(op.session_index);
        break;
      }
      case SimOpKind::kAppend: {
        size_t header_end = op.append_csv.find('\n');
        REPTILE_CHECK(header_end != std::string::npos)
            << "append op wants header + data rows";
        const size_t prev_rows = version_handles_.at(head_version_)->table().num_rows();
        csv_ += op.append_csv.substr(header_end + 1);
        ++head_version_;
        version_handles_[head_version_] = BuildReplicaFromCsv(csv_);
        const size_t total_rows = version_handles_.at(head_version_)->table().num_rows();
        out.status = 201;
        out.body = "{\"dataset\":" + JsonQuote(spec_.name) +
                   ",\"dataset_version\":" + std::to_string(head_version_) +
                   ",\"rows\":" + std::to_string(total_rows) +
                   ",\"appended\":" + std::to_string(total_rows - prev_rows) +
                   ",\"session\":" + JsonQuote("default:" + spec_.name) + "}";
        break;
      }
    }
    expected.push_back(std::move(out));
  }
  return expected;
}

}  // namespace reptile
