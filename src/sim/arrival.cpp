#include "sim/arrival.h"

#include <cmath>

#include "common/check.h"

namespace reptile {
namespace {

// Converts a (positive, finite) gap in seconds to nanoseconds, never
// rounding to zero: virtual arrivals must be strictly increasing so the
// (time, seq) order is unambiguous even at absurd rates.
int64_t GapToNs(double gap_seconds) {
  double ns = gap_seconds * 1e9;
  if (ns < 1.0) return 1;
  if (ns > 9e18) return static_cast<int64_t>(9e18);
  return static_cast<int64_t>(ns);
}

}  // namespace

PoissonArrivals::PoissonArrivals(double rate_per_second, Rng rng)
    : mean_gap_seconds_(1.0 / rate_per_second), rng_(rng) {
  REPTILE_CHECK(rate_per_second > 0.0)
      << "Poisson arrivals want a positive rate, got " << rate_per_second;
}

int64_t PoissonArrivals::NextNs() {
  now_ns_ += GapToNs(rng_.Exponential(mean_gap_seconds_));
  return now_ns_;
}

MmppArrivals::MmppArrivals(Params params, Rng state_rng, Rng arrival_rng)
    : params_(params), state_rng_(state_rng), arrival_rng_(arrival_rng) {
  REPTILE_CHECK(params_.calm_rate_per_second > 0.0 &&
                params_.burst_rate_per_second > 0.0)
      << "MMPP wants positive rates";
  REPTILE_CHECK(params_.mean_calm_seconds > 0.0 && params_.mean_burst_seconds > 0.0)
      << "MMPP wants positive mean sojourns";
}

void MmppArrivals::AdvanceStateUntil(int64_t deadline_ns) {
  if (!state_initialized_) {
    state_initialized_ = true;
    state_ends_ns_ = GapToNs(state_rng_.Exponential(params_.mean_calm_seconds));
  }
  while (state_ends_ns_ <= deadline_ns) {
    in_burst_ = !in_burst_;
    double mean =
        in_burst_ ? params_.mean_burst_seconds : params_.mean_calm_seconds;
    state_ends_ns_ += GapToNs(state_rng_.Exponential(mean));
  }
}

int64_t MmppArrivals::NextNs() {
  // Thinning-free simulation: draw a candidate gap at the current state's
  // rate; if the state would flip before the candidate arrives, advance the
  // clock to the flip and redraw at the new rate. The memorylessness of the
  // exponential makes the redraw exact, and because state flips come from
  // their own stream, the flip schedule is identical across scenarios that
  // differ only in rates drawn between flips.
  for (;;) {
    AdvanceStateUntil(now_ns_);
    double rate = in_burst_ ? params_.burst_rate_per_second
                            : params_.calm_rate_per_second;
    int64_t gap_ns = GapToNs(arrival_rng_.Exponential(1.0 / rate));
    int64_t candidate_ns = now_ns_ + gap_ns;
    if (candidate_ns <= state_ends_ns_) {
      now_ns_ = candidate_ns;
      return now_ns_;
    }
    now_ns_ = state_ends_ns_;  // flip boundary: redraw in the next state
  }
}

}  // namespace reptile
