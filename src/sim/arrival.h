// Arrival processes for the workload simulator: when do new analyst
// sessions start? Two models, both driven by common/rng.h sub-streams so a
// root seed fully determines every arrival instant:
//
//  * PoissonArrivals — memoryless arrivals at a constant rate; exponential
//    inter-arrival gaps. The steady-state scenario.
//  * MmppArrivals — a 2-state Markov-modulated Poisson process alternating
//    between a calm rate and a burst rate, with exponentially distributed
//    sojourns in each state. The overload scenario: bursts pile arrivals
//    onto the server faster than it drains them, which is what provokes the
//    admission-control 429s/503s the load generator asserts on.
//
// Stream discipline (borrowed from discrete-event simulators like OMNeT++):
// each stochastic purpose owns its own Rng sub-stream. MMPP draws state
// sojourns and arrival gaps from *different* streams, so reconfiguring the
// burst rate never perturbs when the state flips — scenarios stay
// comparable across parameter sweeps.

#ifndef REPTILE_SIM_ARRIVAL_H_
#define REPTILE_SIM_ARRIVAL_H_

#include <cstdint>

#include "common/rng.h"

namespace reptile {

/// Interface: a monotone sequence of arrival instants in virtual
/// nanoseconds. Next() consumes the process (deterministically).
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// The next arrival instant, strictly after all previous ones.
  virtual int64_t NextNs() = 0;
};

/// Homogeneous Poisson process: exponential gaps with mean 1/rate.
class PoissonArrivals : public ArrivalProcess {
 public:
  /// `rate_per_second` > 0; `rng` should be a dedicated sub-stream.
  PoissonArrivals(double rate_per_second, Rng rng);

  int64_t NextNs() override;

 private:
  double mean_gap_seconds_;
  Rng rng_;
  int64_t now_ns_ = 0;
};

/// 2-state Markov-modulated Poisson process: arrivals at `calm_rate` or
/// `burst_rate` depending on a hidden state with exponential sojourn times.
/// Starts in the calm state at virtual time zero.
class MmppArrivals : public ArrivalProcess {
 public:
  struct Params {
    double calm_rate_per_second = 10.0;
    double burst_rate_per_second = 200.0;
    double mean_calm_seconds = 2.0;   // expected sojourn in the calm state
    double mean_burst_seconds = 0.5;  // expected sojourn in the burst state
  };

  /// `state_rng` drives the state flips, `arrival_rng` the gaps — separate
  /// streams so one knob never re-times the other process (see header note).
  MmppArrivals(Params params, Rng state_rng, Rng arrival_rng);

  int64_t NextNs() override;

  /// Whether the process is currently in the burst state (after the last
  /// returned arrival) — exposed for tests.
  bool in_burst() const { return in_burst_; }

 private:
  void AdvanceStateUntil(int64_t deadline_ns);

  Params params_;
  Rng state_rng_;
  Rng arrival_rng_;
  int64_t now_ns_ = 0;
  int64_t state_ends_ns_ = 0;
  bool in_burst_ = false;
  bool state_initialized_ = false;
};

}  // namespace reptile

#endif  // REPTILE_SIM_ARRIVAL_H_
