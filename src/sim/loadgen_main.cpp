// reptile_loadgen — deterministic open-loop workload driver for
// reptile_serve (either front end).
//
//   reptile_loadgen --port 8080                        # steady + burst
//   reptile_loadgen --port 8080 --scenario steady
//   reptile_loadgen --scenario burst --seed 7 --dump-schedule /tmp/sched
//
// The generator builds a virtual-time schedule (sim/workload.h) that is a
// pure function of (scenario, seed), precomputes every expected response
// byte (sim/oracle.h), then replays the schedule open-loop against a live
// server (sim/open_loop_runner.h): requests fire at their scheduled
// instants whether or not earlier ones completed, and latency is measured
// from the scheduled instant, so an overloaded server shows up in the
// percentiles instead of slowing the generator down.
//
// Flags:
//   --port N            server port (required unless --dump-schedule)
//   --host H            server host (default 127.0.0.1)
//   --scenario S        steady | burst | churn | both (default both; churn —
//                       appends mid-run with analysts pinned to @v1 — is
//                       opt-in only)
//   --seed N            schedule seed (default 42); same seed, same bytes
//   --duration-s S      override the scenario's arrival window (default 0 =
//                       scenario default)
//   --workers N         max concurrent in-flight requests (default 8)
//   --timeout-ms N      per-socket-op client deadline (default 5000)
//   --keep-alive        one persistent connection per worker instead of one
//                       connection per request (fine against --reactor;
//                       against the thread-per-connection front end keep
//                       workers < --http-threads or idle connections starve
//                       the pool)
//   --out PATH          report file (default BENCH_workload.json)
//   --dump-schedule P   write the schedule text to P (single scenario) or
//                       P.<scenario> (both) and exit without needing a
//                       server — scripts/check.sh diffs two dumps to prove
//                       seed determinism
//   --expect-overload   assert the admission layer pushed back: requires
//                       429s AND 503 sheds > 0, and tolerates failures /
//                       timeouts (use with the burst scenario against a
//                       server running --rate-limit-rps/--queue-deadline-ms)
//
// Exit status: 0 when every selected scenario validated (and, with
// --expect-overload, pushback was observed); 1 otherwise. Steady runs
// against an unthrottled server must end with failures=0 mismatches=0 —
// scripts/check.sh greps the report for exactly that.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "sim/open_loop_runner.h"
#include "sim/oracle.h"
#include "sim/workload.h"

namespace reptile {
namespace {

struct Args {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string scenario = "both";
  uint64_t seed = 42;
  double duration_s = 0.0;
  int workers = 8;
  int timeout_ms = 5000;
  bool keep_alive = false;
  std::string out = "BENCH_workload.json";
  std::string dump_schedule;
  bool expect_overload = false;
};

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port N [--host H] [--scenario steady|burst|churn|both] "
               "[--seed N] [--duration-s S] [--workers N] [--timeout-ms N] "
               "[--keep-alive] [--out PATH] [--dump-schedule PATH] "
               "[--expect-overload]\n",
               argv0);
  std::exit(2);
}

Args ParseArgs(int argc, char** argv) {
  Args args;
  auto value_of = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "flag %s needs a value\n", argv[i]);
      Usage(argv[0]);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag == "--port") {
      args.port = std::atoi(value_of(i).c_str());
    } else if (flag == "--host") {
      args.host = value_of(i);
    } else if (flag == "--scenario") {
      args.scenario = value_of(i);
      if (args.scenario != "steady" && args.scenario != "burst" &&
          args.scenario != "churn" && args.scenario != "both") {
        std::fprintf(stderr,
                     "--scenario wants steady|burst|churn|both, got '%s'\n",
                     args.scenario.c_str());
        Usage(argv[0]);
      }
    } else if (flag == "--seed") {
      args.seed = std::strtoull(value_of(i).c_str(), nullptr, 10);
    } else if (flag == "--duration-s") {
      args.duration_s = std::atof(value_of(i).c_str());
    } else if (flag == "--workers") {
      args.workers = std::atoi(value_of(i).c_str());
    } else if (flag == "--timeout-ms") {
      args.timeout_ms = std::atoi(value_of(i).c_str());
    } else if (flag == "--keep-alive") {
      args.keep_alive = true;
    } else if (flag == "--out") {
      args.out = value_of(i);
    } else if (flag == "--dump-schedule") {
      args.dump_schedule = value_of(i);
    } else if (flag == "--expect-overload") {
      args.expect_overload = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      Usage(argv[0]);
    }
  }
  if (args.dump_schedule.empty() && args.port <= 0) {
    std::fprintf(stderr, "--port is required (got %d)\n", args.port);
    Usage(argv[0]);
  }
  return args;
}

std::vector<ScenarioSpec> SelectScenarios(const Args& args) {
  std::vector<ScenarioSpec> specs;
  if (args.scenario == "steady" || args.scenario == "both") {
    specs.push_back(SteadyScenario());
  }
  if (args.scenario == "burst" || args.scenario == "both") {
    specs.push_back(BurstScenario());
  }
  // churn is opt-in only ("both" predates it, and its steady+burst contract
  // is what check.sh's existing stages assert): analysts pinned to @v1 while
  // a feeder appends v2 and v3 mid-run, every byte still oracle-validated.
  if (args.scenario == "churn") {
    specs.push_back(ChurnScenario());
  }
  for (ScenarioSpec& spec : specs) {
    if (args.duration_s > 0.0) spec.arrival_window_seconds = args.duration_s;
  }
  return specs;
}

bool WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  out.flush();
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

int Main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  std::vector<ScenarioSpec> specs = SelectScenarios(args);

  // Dump mode needs no server: emit the deterministic schedule text and
  // stop. check.sh runs this twice and byte-diffs the outputs.
  if (!args.dump_schedule.empty()) {
    for (const ScenarioSpec& spec : specs) {
      std::vector<ScheduledOp> schedule = BuildSchedule(spec, args.seed);
      std::string path = specs.size() == 1 ? args.dump_schedule
                                           : args.dump_schedule + "." + spec.name;
      if (!WriteFile(path, DumpSchedule(spec, args.seed, schedule))) return 1;
      std::printf("wrote %s (%zu ops, digest %s)\n", path.c_str(), schedule.size(),
                  ScheduleDigest(spec, args.seed, schedule).c_str());
    }
    return 0;
  }

  RunnerOptions runner;
  runner.host = args.host;
  runner.port = args.port;
  runner.workers = args.workers;
  runner.timeout_ms = args.timeout_ms;
  runner.keep_alive = args.keep_alive;

  bool failed = false;
  int64_t total_429 = 0, total_shed = 0;
  std::string report_json = "{\"bench\":\"workload\",\"seed\":" +
                            std::to_string(args.seed) + ",\"scenarios\":[";
  for (size_t i = 0; i < specs.size(); ++i) {
    const ScenarioSpec& spec = specs[i];
    std::vector<ScheduledOp> schedule = BuildSchedule(spec, args.seed);
    // Per-scenario dataset names so back-to-back scenarios never collide in
    // the server's registry.
    SimDatasetSpec dataset;
    dataset.name = "sim_" + spec.name;
    dataset.panel = spec.panel;
    WorkloadOracle oracle(dataset);
    std::vector<ExpectedResponse> expected = oracle.ExpectedResponses(schedule);

    std::printf("scenario %s: %zu ops, digest %s\n", spec.name.c_str(),
                schedule.size(), ScheduleDigest(spec, args.seed, schedule).c_str());
    std::fflush(stdout);
    ScenarioReport report = RunOpenLoop(runner, oracle, schedule, expected);
    report.scenario = spec.name;
    report.seed = args.seed;
    report.schedule_digest = ScheduleDigest(spec, args.seed, schedule);

    std::printf("%s\n", report.ToJson().c_str());
    std::fflush(stdout);
    if (i > 0) report_json += ',';
    report_json += report.ToJson();
    total_429 += report.rate_limited_429;
    total_shed += report.shed_503;

    if (report.mismatches > 0) {
      std::fprintf(stderr, "scenario %s: %lld responses mismatched the oracle\n",
                   spec.name.c_str(), static_cast<long long>(report.mismatches));
      failed = true;
    }
    if (!args.expect_overload &&
        (report.failures > 0 || report.timeouts > 0 || report.skipped > 0)) {
      std::fprintf(stderr,
                   "scenario %s: failures=%lld timeouts=%lld skipped=%lld "
                   "(expected clean completion)\n",
                   spec.name.c_str(), static_cast<long long>(report.failures),
                   static_cast<long long>(report.timeouts),
                   static_cast<long long>(report.skipped));
      failed = true;
    }
  }
  report_json += "]}";

  if (args.expect_overload && (total_429 == 0 || total_shed == 0)) {
    std::fprintf(stderr,
                 "--expect-overload: wanted both pushback paths but saw "
                 "429s=%lld sheds=%lld\n",
                 static_cast<long long>(total_429),
                 static_cast<long long>(total_shed));
    failed = true;
  }

  if (!WriteFile(args.out, report_json + "\n")) return 1;
  std::printf("wrote %s\n", args.out.c_str());
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace reptile

int main(int argc, char** argv) { return reptile::Main(argc, argv); }
