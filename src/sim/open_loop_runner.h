// Open-loop replay of a workload schedule (sim/workload.h) against a live
// reptile_serve: every operation becomes ELIGIBLE at its scheduled virtual
// instant whether or not earlier responses have arrived, and its latency is
// measured from that instant — so a server that falls behind accumulates
// client-side queueing in its percentiles instead of silently slowing the
// generator down (the closed-loop coordinated-omission trap).
//
// Ordering: operations of ONE simulated session execute in schedule order,
// one in flight at a time (a session's commit must land before its next
// recommend, and its create must reveal the session id). Across sessions
// everything is concurrent, bounded only by the worker count.
//
// Validation: each admitted response is compared byte-for-byte against the
// oracle's golden (sim/oracle.h). 429 / 503 / client-timeout outcomes are
// counted separately, never as mismatches; a session whose state-mutating
// op (create/commit) was refused stops being byte-validated — its server
// state has diverged from the oracle's replica — but keeps sending load.

#ifndef REPTILE_SIM_OPEN_LOOP_RUNNER_H_
#define REPTILE_SIM_OPEN_LOOP_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/oracle.h"
#include "sim/workload.h"

namespace reptile {

struct RunnerOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  int workers = 8;        // max concurrent in-flight requests (one client each)
  int timeout_ms = 5000;  // per-socket-op client deadline (HttpClient)
  // false (default): one connection per request. true: each worker keeps one
  // connection alive for the whole run — realistic for the reactor front
  // end, but the thread-per-connection front end pins a worker thread per
  // idle keep-alive connection, so more loadgen workers than server threads
  // would starve (and time out) instead of queueing.
  bool keep_alive = false;
};

/// Outcome counters and latency percentiles of one scenario replay.
struct ScenarioReport {
  std::string scenario;
  std::string schedule_digest;
  uint64_t seed = 0;
  int64_t scheduled_ops = 0;
  int64_t sent = 0;       // requests that went on the wire
  int64_t ok = 0;         // admitted, status matched, body matched (if checked)
  int64_t mismatches = 0; // admitted but wrong status or wrong bytes
  int64_t failures = 0;   // transport errors other than timeout
  int64_t rate_limited_429 = 0;
  int64_t shed_503 = 0;
  int64_t timeouts = 0;   // client deadline (kDeadlineExceeded)
  int64_t skipped = 0;    // chain ops never sent (their session create failed)
  double wall_seconds = 0.0;
  double rps = 0.0;       // sent / wall_seconds
  double p50_ms = 0.0, p90_ms = 0.0, p99_ms = 0.0, p999_ms = 0.0;

  /// One JSON object (for BENCH_workload.json).
  std::string ToJson() const;
};

/// Uploads the oracle's dataset, replays `schedule` open-loop, deletes the
/// dataset, and returns the report. `expected` must be index-aligned with
/// `schedule` (from WorkloadOracle::ExpectedResponses).
ScenarioReport RunOpenLoop(const RunnerOptions& options, const WorkloadOracle& oracle,
                           const std::vector<ScheduledOp>& schedule,
                           const std::vector<ExpectedResponse>& expected);

}  // namespace reptile

#endif  // REPTILE_SIM_OPEN_LOOP_RUNNER_H_
