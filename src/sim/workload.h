// Scenario assembly for the workload simulator: an arrival process
// (sim/arrival.h) spawns analyst sessions, each session expands to an op
// chain (sim/session_model.h), and every op lands in the discrete-event
// queue (sim/event_queue.h) to produce ONE globally ordered schedule — the
// exact sequence of (virtual instant, operation) pairs the open-loop runner
// (sim/open_loop_runner.h) will fire at the server.
//
// The schedule is a pure function of (ScenarioSpec, seed): BuildSchedule
// draws every stochastic choice from dedicated Rng sub-streams and orders
// ties deterministically, so DumpSchedule emits byte-identical text for the
// same seed on every run, platform, and replay thread count —
// tests/sim_test.cpp and scripts/check.sh assert exactly that, and
// ScheduleDigest condenses the property into one FNV-1a line for bench
// reports.

#ifndef REPTILE_SIM_WORKLOAD_H_
#define REPTILE_SIM_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "datagen/panel_gen.h"
#include "sim/arrival.h"
#include "sim/session_model.h"

namespace reptile {

/// One scheduled request: fire `op` at `time_ns` after scenario start.
struct ScheduledOp {
  int64_t time_ns = 0;
  uint64_t seq = 0;  // global order among equal instants
  SimOp op;
};

struct ScenarioSpec {
  std::string name = "steady";
  // Arrival process: kPoisson uses `poisson_rate_per_second`; kMmpp uses
  // `mmpp`.
  enum class Arrivals { kPoisson, kMmpp };
  Arrivals arrivals = Arrivals::kPoisson;
  double poisson_rate_per_second = 5.0;
  MmppArrivals::Params mmpp;
  // Sessions stop arriving after this much virtual time (their op chains
  // may run past it; the schedule ends when every chain does).
  double arrival_window_seconds = 2.0;
  int max_sessions = 0;  // hard cap on arrivals; 0 = window only
  SessionModelParams session;
  // When > 0, session index 0 becomes the append FEEDER (BuildFeederChain):
  // it pins v1 at t=0 and then creates this many new dataset versions spread
  // across the arrival window; analyst sessions start at index 1.
  int feeder_appends = 0;
  // Shape of the dataset the scenario uploads and runs against. Must cover
  // the values the session model draws (districts >= session.districts,
  // years >= session.years); extra villages/rows only raise per-request
  // cost, which the overload scenario exploits.
  PanelSpec panel;
};

/// The steady-state scenario: Poisson arrivals at a modest rate, think-y
/// sessions, one commit each — the server keeps up, every response is
/// byte-validated against the oracle, and the run's failure count must be 0.
ScenarioSpec SteadyScenario();

/// The overload scenario: MMPP arrivals whose burst state outruns the
/// server's admission settings, stateless sessions with near-zero think
/// time. Run against --rate-limit-rps / --queue-deadline-ms it must provoke
/// 429s and 503 sheds (scripts/check.sh asserts the counters moved).
ScenarioSpec BurstScenario();

/// The live-data scenario: a feeder (session 0) appends rows mid-run,
/// advancing the dataset through v1 -> v2 -> v3, while every analyst session
/// stays PINNED to "@DS@@v1" — their responses must remain byte-identical to
/// the oracle's v1 replica across the appends, and the feeder's probes of
/// each new head must match a cold rebuild of the concatenated CSV.
ScenarioSpec ChurnScenario();

/// Expands the scenario into the globally ordered schedule. Deterministic
/// in (spec, seed); `seed` feeds every sub-stream (arrivals draw streams
/// 1-2, session i draws streams 16+3i..18+3i).
std::vector<ScheduledOp> BuildSchedule(const ScenarioSpec& spec, uint64_t seed);

/// Renders the schedule as text: a header (scenario, seed, counts) plus one
/// tab-separated line per op — time_ns, seq, session index, op kind,
/// method, path, body. Byte-identical across runs for the same (spec,
/// seed); the determinism artifact tests and check.sh diff.
std::string DumpSchedule(const ScenarioSpec& spec, uint64_t seed,
                         const std::vector<ScheduledOp>& schedule);

/// 16-hex-digit FNV-1a digest of DumpSchedule's text.
std::string ScheduleDigest(const ScenarioSpec& spec, uint64_t seed,
                           const std::vector<ScheduledOp>& schedule);

}  // namespace reptile

#endif  // REPTILE_SIM_WORKLOAD_H_
