#include "sim/session_model.h"

#include <utility>

#include "common/check.h"
#include "common/json_util.h"
#include "version/version.h"

namespace reptile {
namespace {

// Stream layout: streams 0..15 are reserved (0 = raw seed, 1..2 = arrival
// processes — sim/workload.cpp), then three streams per session. Keeping
// the purposes apart means changing, say, the think-time distribution never
// re-times another session's operation mix.
constexpr uint64_t kSessionStreamBase = 16;
constexpr uint64_t kStreamsPerSession = 3;

Rng LengthStream(const Rng& root, int i) {
  return root.Stream(kSessionStreamBase + kStreamsPerSession * static_cast<uint64_t>(i));
}
Rng ThinkStream(const Rng& root, int i) {
  return root.Stream(kSessionStreamBase + kStreamsPerSession * static_cast<uint64_t>(i) + 1);
}
Rng MixStream(const Rng& root, int i) {
  return root.Stream(kSessionStreamBase + kStreamsPerSession * static_cast<uint64_t>(i) + 2);
}

std::string WhereJson(const std::vector<NamedPredicate>& where) {
  std::string out = "[";
  for (size_t i = 0; i < where.size(); ++i) {
    if (i > 0) out += ',';
    out += "{\"column\":" + JsonQuote(where[i].column) +
           ",\"value\":" + JsonQuote(where[i].value) + "}";
  }
  out += "]";
  return out;
}

// Draws a complaint over the severity panel. All choices come from `mix` so
// the complaint is deterministic in the session's mix stream position.
ComplaintSpec DrawComplaint(Rng& mix, const SessionModelParams& params) {
  ComplaintSpec spec;
  // count complaints carry no measure; the others aggregate severity.
  double which = mix.Uniform();
  if (which < 0.25) {
    spec.aggregate = "count";
  } else if (which < 0.65) {
    spec.aggregate = "mean";
    spec.measure = "severity";
  } else {
    spec.aggregate = "sum";
    spec.measure = "severity";
  }
  spec.direction = mix.Bernoulli(0.7) ? "too_high" : "too_low";
  // Scope: a year (valid because sessions restore committed {"time":1}),
  // a district, or the whole relation.
  double scope = mix.Uniform();
  if (scope < 0.5) {
    spec.Where("year", "y" + std::to_string(mix.UniformInt(0, params.years - 1)));
  } else if (scope < 0.8) {
    spec.Where("district", "d" + std::to_string(mix.UniformInt(0, params.districts - 1)));
  }
  return spec;
}

ViewRequest DrawView(Rng& mix, const SessionModelParams& params) {
  ViewRequest view;
  if (mix.Bernoulli(0.6)) {
    view.GroupBy("district");
  } else {
    view.GroupBy("year");
  }
  if (mix.Bernoulli(0.8)) view.Measure("severity");
  if (mix.Bernoulli(0.3)) {
    view.Where("year", "y" + std::to_string(mix.UniformInt(0, params.years - 1)));
  }
  return view;
}

std::string RenderComplaintJson(const ComplaintSpec& spec) {
  std::string out = "{\"aggregate\":" + JsonQuote(spec.aggregate);
  if (!spec.measure.empty()) out += ",\"measure\":" + JsonQuote(spec.measure);
  out += ",\"direction\":" + JsonQuote(spec.direction);
  if (!spec.where.empty()) out += ",\"where\":" + WhereJson(spec.where);
  out += "}";
  return out;
}

std::string RenderViewJson(const ViewRequest& view) {
  std::string out = "{\"session\":\"@SID@\",\"group_by\":[";
  for (size_t i = 0; i < view.group_by.size(); ++i) {
    if (i > 0) out += ',';
    out += JsonQuote(view.group_by[i]);
  }
  out += "]";
  if (!view.measure.empty()) out += ",\"measure\":" + JsonQuote(view.measure);
  if (!view.where.empty()) out += ",\"where\":" + WhereJson(view.where);
  out += "}";
  return out;
}

int64_t ThinkGapNs(Rng& think, double mean_seconds) {
  double gap = think.Exponential(mean_seconds);
  double ns = gap * 1e9;
  if (ns < 1.0) return 1;
  if (ns > 9e18) return static_cast<int64_t>(9e18);
  return static_cast<int64_t>(ns);
}

}  // namespace

const char* SimOpKindName(SimOpKind kind) {
  switch (kind) {
    case SimOpKind::kSessionCreate:
      return "session_create";
    case SimOpKind::kRecommend:
      return "recommend";
    case SimOpKind::kView:
      return "view";
    case SimOpKind::kCommit:
      return "commit";
    case SimOpKind::kSessionGet:
      return "session_get";
    case SimOpKind::kSessionDelete:
      return "session_delete";
    case SimOpKind::kAppend:
      return "append";
  }
  return "unknown";
}

SessionChain BuildSessionChain(const Rng& root, int session_index,
                               const SessionModelParams& params) {
  REPTILE_CHECK(params.min_ops >= 0 && params.max_ops >= params.min_ops)
      << "session chain wants 0 <= min_ops <= max_ops";
  Rng length = LengthStream(root, session_index);
  Rng think = ThinkStream(root, session_index);
  Rng mix = MixStream(root, session_index);

  SessionChain chain;
  int64_t offset_ns = 0;
  auto push = [&](SimOp op) {
    op.session_index = session_index;
    chain.ops.push_back(std::move(op));
    chain.offsets_ns.push_back(offset_ns);
  };

  SimOp create;
  create.kind = SimOpKind::kSessionCreate;
  create.method = "POST";
  create.path = "/v1/sessions";
  create.body = "{\"dataset\":" + JsonQuote(params.dataset_ref) +
                ",\"committed\":{\"time\":1},\"options\":{\"top_k\":" +
                std::to_string(params.top_k) + "}}";
  {
    // A pinned "@DS@@vK" reference tells the oracle which version replica to
    // open; a plain "@DS@" leaves pin_version 0 (head).
    std::string base;
    int64_t pinned = 0;
    if (ParseVersionedName(params.dataset_ref, &base, &pinned)) {
      create.pin_version = pinned;
    }
  }
  push(std::move(create));

  int num_ops = static_cast<int>(length.UniformInt(params.min_ops, params.max_ops));
  int commits_left = params.max_commits;
  double total_weight =
      params.recommend_weight + params.view_weight + params.commit_weight;
  REPTILE_CHECK(total_weight > 0.0) << "session mix wants a positive total weight";
  for (int i = 0; i < num_ops; ++i) {
    offset_ns += ThinkGapNs(think, params.mean_think_seconds);
    // One mix draw picks the kind; the commit cap is applied after the draw
    // (falling back to recommend) so the pick itself always costs exactly
    // one draw.
    double pick = mix.Uniform() * total_weight;
    SimOpKind kind;
    if (pick < params.recommend_weight) {
      kind = SimOpKind::kRecommend;
    } else if (pick < params.recommend_weight + params.view_weight) {
      kind = SimOpKind::kView;
    } else {
      kind = SimOpKind::kCommit;
    }
    if (kind == SimOpKind::kCommit && commits_left <= 0) kind = SimOpKind::kRecommend;

    SimOp op;
    op.kind = kind;
    op.method = "POST";
    switch (kind) {
      case SimOpKind::kRecommend:
        op.path = "/v1/recommend";
        op.complaint = DrawComplaint(mix, params);
        op.body = "{\"session\":\"@SID@\",\"complaint\":" +
                  RenderComplaintJson(op.complaint) +
                  ",\"options\":{\"zero_timings\":true}}";
        break;
      case SimOpKind::kView:
        op.path = "/v1/view";
        op.view = DrawView(mix, params);
        op.body = RenderViewJson(op.view);
        break;
      case SimOpKind::kCommit:
        --commits_left;
        op.path = "/v1/commit";
        op.hierarchy = "geo";
        op.body = "{\"session\":\"@SID@\",\"hierarchy\":\"geo\"}";
        break;
      default:
        REPTILE_CHECK(false) << "unreachable";
    }
    push(std::move(op));
  }

  offset_ns += ThinkGapNs(think, params.mean_think_seconds);
  SimOp snapshot;
  snapshot.kind = SimOpKind::kSessionGet;
  snapshot.method = "GET";
  snapshot.path = "/v1/sessions/@SID@";
  push(std::move(snapshot));

  offset_ns += ThinkGapNs(think, params.mean_think_seconds);
  SimOp finish;
  finish.kind = SimOpKind::kSessionDelete;
  finish.method = "DELETE";
  finish.path = "/v1/sessions/@SID@";
  push(std::move(finish));

  return chain;
}

SessionChain BuildFeederChain(const FeederParams& params) {
  REPTILE_CHECK(params.appends >= 1) << "the feeder exists to append";
  REPTILE_CHECK(params.window_ns > 0) << "feeder wants a positive window";

  SessionChain chain;
  // Offsets must stay strictly increasing even under a shrunken window
  // (tests override the span): the schedule sorts by time, and the runner
  // replays a session's ops in schedule order.
  int64_t floor_ns = 0;
  auto push = [&](SimOp op, int64_t at_ns) {
    if (at_ns < floor_ns) at_ns = floor_ns;
    floor_ns = at_ns + 1;
    op.session_index = 0;
    chain.ops.push_back(std::move(op));
    chain.offsets_ns.push_back(at_ns);
  };
  auto make_create = [&](int64_t pin) {
    SimOp create;
    create.kind = SimOpKind::kSessionCreate;
    create.method = "POST";
    create.path = "/v1/sessions";
    create.body = "{\"dataset\":" + JsonQuote("@DS@@v" + std::to_string(pin)) +
                  ",\"committed\":{\"time\":1},\"options\":{\"top_k\":" +
                  std::to_string(params.top_k) + "}}";
    create.pin_version = pin;
    return create;
  };

  // The guard: pins v1 from t=0. Its position at the head of session 0's
  // queue also guarantees it COMPLETES before the first append fires (the
  // runner serializes a session's ops), so v1 can never be collected while
  // analysts pinned to it are still arriving.
  push(make_create(1), 0);

  for (int k = 1; k <= params.appends; ++k) {
    const int64_t at_ns =
        params.window_ns * static_cast<int64_t>(k) / (params.appends + 1);
    // Delta rows reuse existing districts and years but introduce NEW
    // villages ("d0_a1" — the panel's own villages are "d0_v0".."): geo
    // dirties at depth 2 only and time stays fully clean, the exact shape
    // the structural-sharing accounting is designed for.
    SimOp append;
    append.kind = SimOpKind::kAppend;
    append.method = "POST";
    append.path = "/v1/datasets/@DS@/rows";
    append.append_csv = "district,village,year,severity\n"
                        "d0,d0_a" + std::to_string(k) + ",y0,1.25\n"
                        "d1,d1_a" + std::to_string(k) + ",y1,2.5\n";
    append.body = "{\"csv\":" + JsonQuote(append.append_csv) + "}";
    push(std::move(append), at_ns);

    // Touch the new head right away: open over the pinned new version,
    // recommend once (byte-validated), tear the session down. The fixed
    // complaint keeps the feeder Rng-free.
    push(make_create(k + 1), at_ns + 1000000);
    SimOp probe;
    probe.kind = SimOpKind::kRecommend;
    probe.method = "POST";
    probe.path = "/v1/recommend";
    probe.complaint.aggregate = "sum";
    probe.complaint.measure = "severity";
    probe.complaint.direction = "too_high";
    probe.body = "{\"session\":\"@SID@\",\"complaint\":" +
                 RenderComplaintJson(probe.complaint) +
                 ",\"options\":{\"zero_timings\":true}}";
    push(std::move(probe), at_ns + 2000000);
    SimOp finish;
    finish.kind = SimOpKind::kSessionDelete;
    finish.method = "DELETE";
    finish.path = "/v1/sessions/@SID@";
    push(std::move(finish), at_ns + 3000000);
  }
  return chain;
}

}  // namespace reptile
