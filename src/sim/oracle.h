// Golden-response oracle for the workload simulator: precomputes, for every
// scheduled operation, the exact bytes the server must return — so the
// open-loop runner (sim/open_loop_runner.h) validates responses
// byte-for-byte instead of spot-checking status codes.
//
// How byte-equality is possible: the simulated dataset is the datagen
// severity panel, uploaded as inline CSV rendered from the very Table the
// oracle holds (measures printed with %.17g round-trip exactly), so server
// and oracle operate on identical data with identical dictionary-code
// assignment (first-appearance order on both sides). Recommend requests
// carry {"zero_timings":true}, which zeroes every scheduling- and
// cache-state-dependent response field (see service.cpp's ZeroTimings);
// view, commit, and session-snapshot bodies are deterministic to begin
// with. The only unpredictable token is the server-assigned session id,
// which expected bodies carry as the @SID@ placeholder for the runner to
// substitute once the session-create response reveals it.

#ifndef REPTILE_SIM_ORACLE_H_
#define REPTILE_SIM_ORACLE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "api/registry.h"
#include "api/session.h"
#include "datagen/panel_gen.h"
#include "sim/workload.h"

namespace reptile {

/// The dataset one scenario runs against.
struct SimDatasetSpec {
  std::string name = "sim";
  PanelSpec panel;  // datagen severity panel shape
};

/// One op's golden: the HTTP status and body (with @SID@ unresolved) the
/// server must produce, plus whether the body is byte-validated at all.
struct ExpectedResponse {
  int status = 200;
  std::string body;          // may contain @SID@
  bool validate_body = true;
};

class WorkloadOracle {
 public:
  /// Builds the panel, prepares the shared local dataset, and renders the
  /// upload artifacts. Aborts (CHECK) only on internal inconsistency — the
  /// generator and panel are both in-tree, so failures are programmer error.
  explicit WorkloadOracle(SimDatasetSpec spec);

  const std::string& dataset_name() const { return spec_.name; }

  /// Body for POST /v1/datasets (inline CSV upload, hierarchies geo + time,
  /// "time" pre-committed) and the exact 201 body that must come back.
  const std::string& upload_body() const { return upload_body_; }
  const std::string& upload_response() const { return upload_response_; }

  /// Expected 200 body of DELETE /v1/datasets/{name}.
  std::string delete_response() const;

  /// Replays `schedule` against local Sessions (in schedule order — commits
  /// mutate per-session state) and returns one ExpectedResponse per op.
  std::vector<ExpectedResponse> ExpectedResponses(const std::vector<ScheduledOp>& schedule);

 private:
  /// One simulated session's local replica plus the dataset version it is
  /// pinned to (1 until a scenario appends; session-snapshot bodies echo it).
  struct OracleSession {
    Session session;
    int64_t dataset_version = 1;
  };

  std::string SnapshotJson(int session_index) const;

  SimDatasetSpec spec_;
  std::string upload_body_;
  std::string upload_response_;
  // Per-simulated-session local replicas, keyed by session index; their
  // committed depths mirror the server sessions op for op.
  std::map<int, OracleSession> sessions_;
  // Version replicas: version id -> prepared dataset. The oracle replays a
  // kAppend as a COLD build of the concatenated CSV (csv_ accumulates the
  // delta rows) — which is exactly what makes it an oracle for the server's
  // incremental path: if structural sharing ever changed a byte, the replica
  // and the server would disagree. The oracle never retires a version (it
  // has no byte budget), so pinned creates always find their replica.
  std::map<int64_t, DatasetHandle> version_handles_;
  int64_t head_version_ = 1;
  std::string csv_;  // CSV of the head version (upload + every delta so far)
};

/// Renders `table` as CSV text (header row, ',' separator) that parses back
/// to a bit-identical table: dimension values verbatim, measures with
/// %.17g. Exposed for tests.
std::string RenderTableCsv(const Table& table);

}  // namespace reptile

#endif  // REPTILE_SIM_ORACLE_H_
