// Session behavior model for the workload simulator: once an analyst
// arrives (sim/arrival.h), what do they do? Each simulated session is a
// finite chain of API operations against the serving tier
// (server/service.h) — open a session over the shared dataset, alternate
// recommend / view / commit work separated by think-time gaps, snapshot the
// session state, and delete the session on the way out.
//
// Every stochastic choice (chain length, think times, operation mix,
// complaint and view contents) draws from per-session Rng sub-streams, so
// the chain of session i is a pure function of (root seed, i) — adding a
// session or reordering generation never perturbs another session's ops.
//
// Ops carry BOTH the wire form (method/path/body with @SID@ / @DS@
// placeholders resolved at replay time) and the structured payload
// (ComplaintSpec / ViewRequest / hierarchy name), so the oracle
// (sim/oracle.h) can replay the same operation against a local Session and
// precompute the exact bytes the server must return.

#ifndef REPTILE_SIM_SESSION_MODEL_H_
#define REPTILE_SIM_SESSION_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "api/request.h"
#include "common/rng.h"

namespace reptile {

enum class SimOpKind {
  kSessionCreate,  // POST /v1/sessions
  kRecommend,      // POST /v1/recommend (zero_timings — byte-validatable)
  kView,           // POST /v1/view
  kCommit,         // POST /v1/commit
  kSessionGet,     // GET /v1/sessions/@SID@ (the snapshot read)
  kSessionDelete,  // DELETE /v1/sessions/@SID@
  kAppend,         // POST /v1/datasets/@DS@/rows (the churn feeder's writes)
};

const char* SimOpKindName(SimOpKind kind);

/// One scheduled operation. `body` may reference @DS@ (dataset name) and
/// @SID@ (the server-assigned session id, known only after the session's
/// kSessionCreate response arrives); the runner substitutes both.
struct SimOp {
  SimOpKind kind = SimOpKind::kRecommend;
  int session_index = 0;  // which simulated analyst this op belongs to
  std::string method;
  std::string path;  // may contain @SID@
  std::string body;  // may contain @SID@ / @DS@

  // Structured payload for the oracle (which field is meaningful depends on
  // kind; the wire body above is rendered from it).
  ComplaintSpec complaint;  // kRecommend
  ViewRequest view;         // kView
  std::string hierarchy;    // kCommit
  std::string append_csv;   // kAppend: the raw delta CSV the body carries quoted
  int64_t pin_version = 0;  // kSessionCreate: chain version the create pins; 0 = head
};

/// Shape of one simulated analyst session over the severity panel
/// (datagen/panel_gen.h: dimensions district/village/year, measure
/// severity, hierarchies geo = district > village and time = year).
struct SessionModelParams {
  int min_ops = 2;                // work ops per session (excluding create,
  int max_ops = 6;                // snapshot read, and delete), inclusive
  double mean_think_seconds = 0.2;  // exponential gap between a session's ops
  // Operation mix (relative weights; commit capped by max_commits).
  double recommend_weight = 0.6;
  double view_weight = 0.3;
  double commit_weight = 0.1;
  // Commits drill the "geo" hierarchy one level each. The panel's geo has
  // two levels, so at most 2 commits keep the session valid; the steady
  // scenario uses 1 (recommends always have a drillable hierarchy left) and
  // the overload scenario 0 (stateless inside the session).
  int max_commits = 1;
  int top_k = 5;  // session option, mirrored by the oracle
  // Dataset reference the session-create body names: "@DS@" opens the chain
  // head; a pinned alias like "@DS@@v1" pins every analyst to that version —
  // the churn scenario uses it to prove appends never move a live session.
  std::string dataset_ref = "@DS@";
  // Panel extents the generators draw values from (must match the
  // SimDatasetSpec actually uploaded — sim/oracle.h).
  int districts = 8;
  int years = 10;
};

/// One session's op chain with think-time offsets from the session's
/// arrival instant. ops[0] is always kSessionCreate at offset 0; the chain
/// ends with kSessionGet then kSessionDelete.
struct SessionChain {
  std::vector<SimOp> ops;
  std::vector<int64_t> offsets_ns;  // same length as ops, non-decreasing
};

/// Generates session `session_index`'s chain from its dedicated sub-streams
/// of `root`. Deterministic in (root seed, session_index, params).
SessionChain BuildSessionChain(const Rng& root, int session_index,
                               const SessionModelParams& params);

/// The churn scenario's single writer (always session index 0). Fully
/// deterministic — no Rng at all, so adding the feeder never re-seeds an
/// analyst's streams.
struct FeederParams {
  int appends = 2;             // versions created beyond v1
  int64_t window_ns = 2000000000;  // appends spread evenly across this span
  int top_k = 5;               // session option for the feeder's own sessions
};

/// Builds the feeder chain: a guard session pinned to "@DS@@v1" at offset 0
/// (it holds v1 live for the whole run so pinned analysts never race GC),
/// then per append k: POST the delta rows, open a session over the new head
/// "@DS@@v<k+1>", recommend once (zero_timings), and delete that session.
/// The guard is never explicitly deleted — dataset teardown sweeps it.
SessionChain BuildFeederChain(const FeederParams& params);

}  // namespace reptile

#endif  // REPTILE_SIM_SESSION_MODEL_H_
