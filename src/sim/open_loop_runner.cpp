#include "sim/open_loop_runner.h"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"
#include "server/http_client.h"

namespace reptile {
namespace {

using Clock = std::chrono::steady_clock;

// Replaces every occurrence of `token` in `text`.
std::string Substitute(std::string text, const std::string& token,
                       const std::string& value) {
  size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    text.replace(pos, token.size(), value);
    pos += value.size();
  }
  return text;
}

// Pulls the server-assigned id out of a session-create response
// ({"session":"s-N",...}); empty on malformed bodies.
std::string ExtractSessionId(const std::string& body) {
  constexpr const char kKey[] = "\"session\":\"";
  size_t pos = body.find(kKey);
  if (pos == std::string::npos) return std::string();
  pos += sizeof(kKey) - 1;
  size_t end = body.find('"', pos);
  if (end == std::string::npos) return std::string();
  return body.substr(pos, end - pos);
}

struct SessionState {
  std::deque<size_t> pending;  // schedule indices, in order
  std::string sid;
  bool busy = false;      // queued for or held by a worker
  bool skip = false;      // session create refused: drop the rest
  bool validate = true;   // false once server state diverged from the oracle
};

// Shared replay state: the dispatcher enqueues eligible ops per session,
// workers drain one session-op at a time.
struct Replay {
  std::mutex mu;
  std::condition_variable ready_cv;
  std::deque<int> ready;  // session indices with work and no op in flight
  std::map<int, SessionState> sessions;
  bool dispatch_done = false;
  int64_t outstanding = 0;  // enqueued but not finished

  // Counters (under mu).
  int64_t sent = 0, ok = 0, mismatches = 0, failures = 0;
  int64_t rate_limited = 0, shed = 0, timeouts = 0, skipped = 0;
  Clock::time_point last_completion;
  Histogram latency;
};

void FinishOp(Replay* replay, SessionState* state, int session_index) {
  state->pending.pop_front();
  if (!state->pending.empty()) {
    replay->ready.push_back(session_index);
    replay->ready_cv.notify_one();
  } else {
    state->busy = false;
  }
  --replay->outstanding;
  if (replay->outstanding == 0) replay->ready_cv.notify_all();
}

void WorkerLoop(const RunnerOptions& options, const WorkloadOracle& oracle,
                const std::vector<ScheduledOp>& schedule,
                const std::vector<ExpectedResponse>& expected,
                Clock::time_point start, Replay* replay) {
  HttpClient persistent(options.host, options.port);
  persistent.SetTimeoutMs(options.timeout_ms);
  std::unique_lock<std::mutex> lock(replay->mu);
  for (;;) {
    replay->ready_cv.wait(lock, [replay] {
      return !replay->ready.empty() ||
             (replay->dispatch_done && replay->outstanding == 0);
    });
    if (replay->ready.empty()) return;
    int session_index = replay->ready.front();
    replay->ready.pop_front();
    SessionState& state = replay->sessions[session_index];
    REPTILE_CHECK(!state.pending.empty());
    size_t index = state.pending.front();

    if (state.skip) {
      ++replay->skipped;
      FinishOp(replay, &state, session_index);
      continue;
    }

    const SimOp& op = schedule[index].op;
    std::string path = Substitute(
        Substitute(op.path, "@SID@", state.sid), "@DS@", oracle.dataset_name());
    std::string body = Substitute(
        Substitute(op.body, "@SID@", state.sid), "@DS@", oracle.dataset_name());
    lock.unlock();

    auto send = [&](HttpClient& client) -> Result<HttpClientResponse> {
      if (op.method == "GET") return client.Get(path);
      if (op.method == "DELETE") return client.Delete(path);
      return client.Post(path, body);
    };
    Result<HttpClientResponse> response =
        options.keep_alive ? send(persistent) : [&] {
          HttpClient one_shot(options.host, options.port);
          one_shot.SetTimeoutMs(options.timeout_ms);
          return send(one_shot);
        }();
    const Clock::time_point now = Clock::now();
    const double latency_seconds =
        std::chrono::duration<double>(
            now - (start + std::chrono::nanoseconds(schedule[index].time_ns)))
            .count();

    lock.lock();
    ++replay->sent;
    if (now > replay->last_completion) replay->last_completion = now;
    const bool mutates = op.kind == SimOpKind::kSessionCreate ||
                         op.kind == SimOpKind::kCommit ||
                         op.kind == SimOpKind::kSessionDelete ||
                         op.kind == SimOpKind::kAppend;
    if (!response.ok()) {
      if (response.status().code() == StatusCode::kDeadlineExceeded) {
        ++replay->timeouts;
      } else {
        ++replay->failures;
      }
      if (op.kind == SimOpKind::kSessionCreate) {
        state.skip = true;
      } else if (mutates) {
        // The op may or may not have applied server-side; either way the
        // oracle's replica can no longer be trusted for this session.
        state.validate = false;
      }
    } else if (response->status == 429 || response->status == 503) {
      replay->latency.Observe(latency_seconds);
      if (response->status == 429) {
        ++replay->rate_limited;
      } else {
        ++replay->shed;
      }
      // A refused op never applied: creates can't continue (no id), other
      // mutating refusals desync the oracle.
      if (op.kind == SimOpKind::kSessionCreate) {
        state.skip = true;
      } else if (mutates) {
        state.validate = false;
      }
    } else {
      replay->latency.Observe(latency_seconds);
      if (op.kind == SimOpKind::kSessionCreate) {
        state.sid = ExtractSessionId(response->body);
        if (state.sid.empty()) {
          ++replay->mismatches;
          state.skip = true;
          FinishOp(replay, &state, session_index);
          continue;
        }
      }
      const ExpectedResponse& golden = expected[index];
      bool matches = response->status == golden.status;
      if (matches && golden.validate_body && state.validate) {
        matches = response->body == Substitute(golden.body, "@SID@", state.sid);
      }
      if (matches) {
        ++replay->ok;
      } else {
        ++replay->mismatches;
      }
    }
    FinishOp(replay, &state, session_index);
  }
}

std::string JsonDouble(double value, const char* format) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), format, value);
  return buffer;
}

}  // namespace

std::string ScenarioReport::ToJson() const {
  std::string out = "{\"scenario\":\"" + scenario + "\"";
  out += ",\"seed\":" + std::to_string(seed);
  out += ",\"schedule_digest\":\"" + schedule_digest + "\"";
  out += ",\"scheduled_ops\":" + std::to_string(scheduled_ops);
  out += ",\"sent\":" + std::to_string(sent);
  out += ",\"ok\":" + std::to_string(ok);
  out += ",\"mismatches\":" + std::to_string(mismatches);
  out += ",\"failures\":" + std::to_string(failures);
  out += ",\"rate_limited_429\":" + std::to_string(rate_limited_429);
  out += ",\"shed_503\":" + std::to_string(shed_503);
  out += ",\"timeouts\":" + std::to_string(timeouts);
  out += ",\"skipped\":" + std::to_string(skipped);
  out += ",\"wall_seconds\":" + JsonDouble(wall_seconds, "%.3f");
  out += ",\"rps\":" + JsonDouble(rps, "%.1f");
  out += ",\"p50_ms\":" + JsonDouble(p50_ms, "%.3f");
  out += ",\"p90_ms\":" + JsonDouble(p90_ms, "%.3f");
  out += ",\"p99_ms\":" + JsonDouble(p99_ms, "%.3f");
  out += ",\"p999_ms\":" + JsonDouble(p999_ms, "%.3f");
  out += "}";
  return out;
}

ScenarioReport RunOpenLoop(const RunnerOptions& options, const WorkloadOracle& oracle,
                           const std::vector<ScheduledOp>& schedule,
                           const std::vector<ExpectedResponse>& expected) {
  REPTILE_CHECK(schedule.size() == expected.size())
      << "schedule and golden responses must be index-aligned";
  ScenarioReport report;
  report.scheduled_ops = static_cast<int64_t>(schedule.size());

  // Setup traffic (dataset upload) runs closed-loop on a short-lived client
  // — scoped so its connection never pins a server thread during the replay
  // — and is not part of the measured schedule.
  Result<HttpClientResponse> uploaded = [&] {
    HttpClient setup(options.host, options.port);
    setup.SetTimeoutMs(options.timeout_ms);
    return setup.Post("/v1/datasets", oracle.upload_body());
  }();
  if (!uploaded.ok() || uploaded->status != 201) {
    std::fprintf(stderr, "workload dataset upload failed: %s\n",
                 uploaded.ok() ? ("HTTP " + std::to_string(uploaded->status) + " " +
                                  uploaded->body)
                                     .c_str()
                               : uploaded.status().ToString().c_str());
    report.failures = report.scheduled_ops;
    return report;
  }
  if (uploaded->body != oracle.upload_response()) ++report.mismatches;

  Replay replay;
  {
    std::lock_guard<std::mutex> lock(replay.mu);
    for (const ScheduledOp& item : schedule) {
      replay.sessions[item.op.session_index];  // materialize states up front
    }
  }

  const Clock::time_point start = Clock::now();
  {
    std::lock_guard<std::mutex> lock(replay.mu);
    replay.last_completion = start;
  }
  int workers = options.workers < 1 ? 1 : options.workers;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      WorkerLoop(options, oracle, schedule, expected, start, &replay);
    });
  }

  // The open loop: each op becomes eligible at its scheduled instant, full
  // stop. If the server (or every worker) is busy, the op waits visibly in
  // its session's queue and the wait lands in its measured latency.
  for (size_t i = 0; i < schedule.size(); ++i) {
    std::this_thread::sleep_until(start +
                                  std::chrono::nanoseconds(schedule[i].time_ns));
    std::lock_guard<std::mutex> lock(replay.mu);
    SessionState& state = replay.sessions[schedule[i].op.session_index];
    state.pending.push_back(i);
    ++replay.outstanding;
    if (!state.busy) {
      state.busy = true;
      replay.ready.push_back(schedule[i].op.session_index);
      replay.ready_cv.notify_one();
    }
  }
  {
    std::lock_guard<std::mutex> lock(replay.mu);
    replay.dispatch_done = true;
    replay.ready_cv.notify_all();
  }
  for (std::thread& worker : pool) worker.join();

  Result<HttpClientResponse> deleted = [&] {
    HttpClient teardown(options.host, options.port);
    teardown.SetTimeoutMs(options.timeout_ms);
    return teardown.Delete("/v1/datasets/" + oracle.dataset_name());
  }();
  if (!deleted.ok() || deleted->status != 200 ||
      deleted->body != oracle.delete_response()) {
    ++report.failures;
  }

  report.sent = replay.sent;
  report.ok = replay.ok;
  report.mismatches += replay.mismatches;
  report.failures += replay.failures;
  report.rate_limited_429 = replay.rate_limited;
  report.shed_503 = replay.shed;
  report.timeouts = replay.timeouts;
  report.skipped = replay.skipped;
  report.wall_seconds =
      std::chrono::duration<double>(replay.last_completion - start).count();
  report.rps = report.wall_seconds > 0.0
                   ? static_cast<double>(report.sent) / report.wall_seconds
                   : 0.0;
  report.p50_ms = replay.latency.Quantile(0.50) * 1000.0;
  report.p90_ms = replay.latency.Quantile(0.90) * 1000.0;
  report.p99_ms = replay.latency.Quantile(0.99) * 1000.0;
  report.p999_ms = replay.latency.Quantile(0.999) * 1000.0;
  return report;
}

}  // namespace reptile
