// Dense row-major matrix substrate. This is the repository's stand-in for
// LAPACK: the naive ("Matlab-style") baselines materialize the full feature
// matrix and run these kernels, while Reptile's factorised operators produce
// the same outputs without materialization.

#ifndef REPTILE_LINALG_MATRIX_H_
#define REPTILE_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/check.h"

namespace reptile {

/// Dense row-major matrix of doubles.
///
/// Small by design: the model-training code only needs construction,
/// element access, multiplication, transpose and a handful of reductions.
/// Factorised code paths avoid this class entirely for anything
/// proportional to the number of rows of the feature matrix.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}

  /// Zero-initialized rows x cols matrix.
  Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Builds from nested initializer lists; all rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

  /// Column vector from `values`.
  static Matrix ColumnVector(const std::vector<double>& values);

  /// Row vector from `values`.
  static Matrix RowVector(const std::vector<double>& values);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  double& operator()(size_t r, size_t c) {
    REPTILE_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    REPTILE_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Raw row pointer (row-major layout).
  double* RowPtr(size_t r) { return data_.data() + r * cols_; }
  const double* RowPtr(size_t r) const { return data_.data() + r * cols_; }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& mutable_data() { return data_; }

  /// Matrix product this * other.
  Matrix Multiply(const Matrix& other) const;

  /// Transpose.
  Matrix Transposed() const;

  /// this + other (shapes must match).
  Matrix Add(const Matrix& other) const;

  /// this - other (shapes must match).
  Matrix Subtract(const Matrix& other) const;

  /// Element-wise scale.
  Matrix Scale(double factor) const;

  /// Sum of the main diagonal.
  double Trace() const;

  /// Frobenius norm of this - other.
  double FrobeniusDistance(const Matrix& other) const;

  /// Copies column c into a vector.
  std::vector<double> Column(size_t c) const;

  /// Copies row r into a vector.
  std::vector<double> Row(size_t r) const;

  /// True when shapes match and all entries are within `tol`.
  bool ApproxEquals(const Matrix& other, double tol) const;

  /// Human-readable rendering for debugging and test failure messages.
  std::string DebugString() const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Dot product of two equal-length vectors.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace reptile

#endif  // REPTILE_LINALG_MATRIX_H_
