#include "linalg/solve.h"

#include <cmath>

namespace reptile {
namespace {

// LU decomposition with partial pivoting, in place over a copy.
// Returns false when a pivot underflows (singular matrix).
bool LuDecompose(Matrix* a, std::vector<size_t>* perm, int* sign) {
  size_t n = a->rows();
  perm->resize(n);
  for (size_t i = 0; i < n; ++i) (*perm)[i] = i;
  *sign = 1;
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    double best = std::fabs((*a)(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      double v = std::fabs((*a)(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-300) return false;
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap((*a)(pivot, c), (*a)(col, c));
      std::swap((*perm)[pivot], (*perm)[col]);
      *sign = -*sign;
    }
    double inv_pivot = 1.0 / (*a)(col, col);
    for (size_t r = col + 1; r < n; ++r) {
      double factor = (*a)(r, col) * inv_pivot;
      (*a)(r, col) = factor;
      if (factor == 0.0) continue;
      for (size_t c = col + 1; c < n; ++c) {
        (*a)(r, c) -= factor * (*a)(col, c);
      }
    }
  }
  return true;
}

}  // namespace

std::optional<Matrix> SolveLinearSystem(const Matrix& a, const Matrix& b) {
  REPTILE_CHECK_EQ(a.rows(), a.cols());
  REPTILE_CHECK_EQ(a.rows(), b.rows());
  size_t n = a.rows();
  Matrix lu = a;
  std::vector<size_t> perm;
  int sign = 0;
  if (!LuDecompose(&lu, &perm, &sign)) return std::nullopt;

  Matrix x(n, b.cols());
  for (size_t col = 0; col < b.cols(); ++col) {
    // Forward substitution with the permuted right-hand side.
    std::vector<double> y(n);
    for (size_t i = 0; i < n; ++i) {
      double sum = b(perm[i], col);
      for (size_t j = 0; j < i; ++j) sum -= lu(i, j) * y[j];
      y[i] = sum;
    }
    // Back substitution.
    for (size_t ii = n; ii > 0; --ii) {
      size_t i = ii - 1;
      double sum = y[i];
      for (size_t j = i + 1; j < n; ++j) sum -= lu(i, j) * x(j, col);
      x(i, col) = sum / lu(i, i);
    }
  }
  return x;
}

std::optional<Matrix> Inverse(const Matrix& a) {
  return SolveLinearSystem(a, Matrix::Identity(a.rows()));
}

Matrix InverseSymmetricRidge(const Matrix& a, double initial_ridge) {
  REPTILE_CHECK_EQ(a.rows(), a.cols());
  std::optional<Matrix> inv = Inverse(a);
  double ridge = initial_ridge;
  Matrix regularized = a;
  while (!inv.has_value()) {
    for (size_t i = 0; i < a.rows(); ++i) regularized(i, i) = a(i, i) + ridge;
    inv = Inverse(regularized);
    ridge *= 10.0;
    REPTILE_CHECK_LT(ridge, 1e30) << "InverseSymmetricRidge: non-finite input?";
  }
  return *inv;
}

std::optional<Matrix> Cholesky(const Matrix& a) {
  REPTILE_CHECK_EQ(a.rows(), a.cols());
  size_t n = a.rows();
  Matrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 0.0) return std::nullopt;
        l(i, j) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  return l;
}

std::optional<double> LogDetSpd(const Matrix& a) {
  std::optional<Matrix> l = Cholesky(a);
  if (!l.has_value()) return std::nullopt;
  double log_det = 0.0;
  for (size_t i = 0; i < a.rows(); ++i) log_det += std::log((*l)(i, i));
  return 2.0 * log_det;
}

std::optional<double> LogAbsDet(const Matrix& a) {
  REPTILE_CHECK_EQ(a.rows(), a.cols());
  Matrix lu = a;
  std::vector<size_t> perm;
  int sign = 0;
  if (!LuDecompose(&lu, &perm, &sign)) return std::nullopt;
  double log_det = 0.0;
  for (size_t i = 0; i < a.rows(); ++i) log_det += std::log(std::fabs(lu(i, i)));
  return log_det;
}

}  // namespace reptile
