// Linear solvers used by model training: LU with partial pivoting for general
// systems, Cholesky for symmetric positive-definite systems, plus inverse and
// log-determinant helpers. Sizes are small (number of model features), so
// O(n^3) dense algorithms are appropriate.

#ifndef REPTILE_LINALG_SOLVE_H_
#define REPTILE_LINALG_SOLVE_H_

#include <optional>
#include <vector>

#include "linalg/matrix.h"

namespace reptile {

/// Solves A x = b by LU decomposition with partial pivoting.
/// Returns std::nullopt when A is (numerically) singular.
std::optional<Matrix> SolveLinearSystem(const Matrix& a, const Matrix& b);

/// Inverse via LU; std::nullopt when singular.
std::optional<Matrix> Inverse(const Matrix& a);

/// Inverse of a symmetric matrix with a ridge fallback: if inversion fails,
/// retries with successively larger diagonal regularization. Never fails for
/// finite input (the ridge eventually dominates).
Matrix InverseSymmetricRidge(const Matrix& a, double initial_ridge = 1e-10);

/// Cholesky factor L (lower-triangular, A = L L^T) of a symmetric
/// positive-definite matrix; std::nullopt when A is not PD.
std::optional<Matrix> Cholesky(const Matrix& a);

/// Log-determinant of a symmetric positive-definite matrix via Cholesky;
/// std::nullopt when A is not PD.
std::optional<double> LogDetSpd(const Matrix& a);

/// Log of |det(A)| via LU for a general square matrix; std::nullopt when
/// singular.
std::optional<double> LogAbsDet(const Matrix& a);

}  // namespace reptile

#endif  // REPTILE_LINALG_SOLVE_H_
