#include "linalg/matrix.h"

#include <cmath>
#include <sstream>

namespace reptile {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    REPTILE_CHECK_EQ(row.size(), cols_);
    for (double v : row) data_.push_back(v);
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::ColumnVector(const std::vector<double>& values) {
  Matrix m(values.size(), 1);
  for (size_t i = 0; i < values.size(); ++i) m(i, 0) = values[i];
  return m;
}

Matrix Matrix::RowVector(const std::vector<double>& values) {
  Matrix m(1, values.size());
  for (size_t i = 0; i < values.size(); ++i) m(0, i) = values[i];
  return m;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  REPTILE_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  // ikj loop order keeps the inner loop contiguous in both inputs.
  for (size_t i = 0; i < rows_; ++i) {
    const double* a_row = RowPtr(i);
    double* out_row = out.RowPtr(i);
    for (size_t k = 0; k < cols_; ++k) {
      double a = a_row[k];
      if (a == 0.0) continue;
      const double* b_row = other.RowPtr(k);
      for (size_t j = 0; j < other.cols_; ++j) {
        out_row[j] += a * b_row[j];
      }
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) {
      out(j, i) = (*this)(i, j);
    }
  }
  return out;
}

Matrix Matrix::Add(const Matrix& other) const {
  REPTILE_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Matrix Matrix::Subtract(const Matrix& other) const {
  REPTILE_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Matrix Matrix::Scale(double factor) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= factor;
  return out;
}

double Matrix::Trace() const {
  size_t n = rows_ < cols_ ? rows_ : cols_;
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) sum += (*this)(i, i);
  return sum;
}

double Matrix::FrobeniusDistance(const Matrix& other) const {
  REPTILE_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  double ss = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    double d = data_[i] - other.data_[i];
    ss += d * d;
  }
  return std::sqrt(ss);
}

std::vector<double> Matrix::Column(size_t c) const {
  REPTILE_CHECK_LT(c, cols_);
  std::vector<double> out(rows_);
  for (size_t i = 0; i < rows_; ++i) out[i] = (*this)(i, c);
  return out;
}

std::vector<double> Matrix::Row(size_t r) const {
  REPTILE_CHECK_LT(r, rows_);
  return std::vector<double>(RowPtr(r), RowPtr(r) + cols_);
}

bool Matrix::ApproxEquals(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

std::string Matrix::DebugString() const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << " [";
  for (size_t i = 0; i < rows_; ++i) {
    if (i > 0) os << "; ";
    for (size_t j = 0; j < cols_; ++j) {
      if (j > 0) os << ", ";
      os << (*this)(i, j);
    }
  }
  os << "]";
  return os.str();
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  REPTILE_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace reptile
