#include "obs/log.h"

#include <chrono>
#include <cinttypes>
#include <ctime>

#include "common/json_util.h"

namespace reptile {

std::optional<LogLevel> ParseLogLevel(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return std::nullopt;
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "info";
}

LogField LogField::Str(std::string_view key, std::string_view value) {
  return LogField{std::string(key), JsonQuote(value)};
}

LogField LogField::Num(std::string_view key, double value) {
  return LogField{std::string(key), JsonNumber(value)};
}

LogField LogField::Int(std::string_view key, int64_t value) {
  return LogField{std::string(key), std::to_string(value)};
}

LogField LogField::Bool(std::string_view key, bool value) {
  return LogField{std::string(key), value ? "true" : "false"};
}

LogField LogField::Raw(std::string_view key, std::string json) {
  return LogField{std::string(key), std::move(json)};
}

namespace {

// ISO-8601 UTC with milliseconds: 2026-08-08T12:34:56.789Z
std::string Timestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char buf[72];  // worst-case %04d on an int is 11 chars; keep snprintf happy
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, static_cast<int>(millis));
  return buf;
}

}  // namespace

Logger& Logger::Global() {
  static Logger* logger = new Logger();  // leaked: loggable code may run
  return *logger;                        // during static destruction
}

bool Logger::Configure(LogLevel level, const std::string& file_path) {
  std::FILE* next = nullptr;
  if (!file_path.empty()) {
    next = std::fopen(file_path.c_str(), "a");
    if (next == nullptr) return false;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (sink_ != nullptr) std::fclose(sink_);
    sink_ = next;
  }
  min_level_.store(static_cast<int>(level), std::memory_order_relaxed);
  return true;
}

void Logger::Log(LogLevel level, std::string_view event,
                 const std::vector<LogField>& fields) {
  if (!Enabled(level) || level == LogLevel::kOff) return;
  std::string line = "{\"ts\":" + JsonQuote(Timestamp());
  line += ",\"level\":";
  line += JsonQuote(LogLevelName(level));
  line += ",\"event\":";
  line += JsonQuote(event);
  for (const LogField& field : fields) {
    line += ',';
    line += JsonQuote(field.key);
    line += ':';
    line += field.json_value;
  }
  line += "}\n";
  std::lock_guard<std::mutex> lock(mu_);
  std::FILE* out = sink_ != nullptr ? sink_ : stderr;
  std::fwrite(line.data(), 1, line.size(), out);
  std::fflush(out);
}

}  // namespace reptile
