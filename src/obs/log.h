// Structured JSON-lines logging for the serving tier: one JSON object per
// line, machine-parseable, with a wall-clock timestamp, a level, an event
// name, and free-form key/value fields (the request's trace id rides as a
// field, joining log lines to Server-Timing headers and the debug ring).
//
//   {"ts":"2026-08-08T12:34:56.789Z","level":"info","event":"request",
//    "trace_id":"a1b2...","method":"POST","path":"/v1/recommend",
//    "status":200,"duration_ms":1.42}
//
// Design:
//  * One global Logger (per-process, like stderr itself). Configure() is
//    called once at startup from flags (--log-level / --log-file) and by
//    tests; it is NOT safe to race with concurrent Log() calls by design —
//    the hot path reads the level with one relaxed atomic load and must not
//    pay an acquire/lock for a startup-only knob.
//  * Lines are formatted off-lock, then written with a single fwrite under
//    a mutex — concurrent writers never interleave bytes within a line.
//  * Level filtering is the caller's fast path: Enabled(level) is one
//    atomic load, so disabled debug logging costs nothing measurable.
//  * Values are pre-rendered JSON fragments (LogField::Str/Num/Int/Bool)
//    so the logger itself needs no type dispatch and callers can log
//    already-serialized sub-objects when useful.

#ifndef REPTILE_OBS_LOG_H_
#define REPTILE_OBS_LOG_H_

#include <atomic>
#include <cstdio>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace reptile {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// "debug"/"info"/"warn"/"error"/"off" -> the level; nullopt otherwise.
std::optional<LogLevel> ParseLogLevel(const std::string& name);

/// The level's lowercase name ("info").
const char* LogLevelName(LogLevel level);

/// One key/value pair of a log line; `json_value` is a complete JSON value.
struct LogField {
  std::string key;
  std::string json_value;

  static LogField Str(std::string_view key, std::string_view value);
  static LogField Num(std::string_view key, double value);
  static LogField Int(std::string_view key, int64_t value);
  static LogField Bool(std::string_view key, bool value);
  /// `json` must already be valid JSON (object, array, number, ...).
  static LogField Raw(std::string_view key, std::string json);
};

class Logger {
 public:
  /// The process-wide logger. Defaults: level info, sink stderr.
  static Logger& Global();

  /// Points the logger at `file_path` (append mode; empty = stderr) and sets
  /// the minimum level. Returns false (keeping the previous sink) when the
  /// file cannot be opened. Not safe concurrently with Log() — startup/test
  /// use only (see the header comment).
  bool Configure(LogLevel level, const std::string& file_path);

  bool Enabled(LogLevel level) const {
    return static_cast<int>(level) >= min_level_.load(std::memory_order_relaxed);
  }

  /// Emits one line when `level` passes the filter. Thread-safe.
  void Log(LogLevel level, std::string_view event, const std::vector<LogField>& fields);

 private:
  Logger() = default;
  ~Logger() = default;

  std::atomic<int> min_level_{static_cast<int>(LogLevel::kInfo)};
  std::mutex mu_;            // serializes sink writes and swaps
  std::FILE* sink_ = nullptr;  // owned when != stderr; nullptr = stderr
};

/// Shorthand: Logger::Global().Log(...) guarded by Enabled().
inline void LogEvent(LogLevel level, std::string_view event,
                     const std::vector<LogField>& fields) {
  Logger& logger = Logger::Global();
  if (logger.Enabled(level)) logger.Log(level, event, fields);
}

}  // namespace reptile

#endif  // REPTILE_OBS_LOG_H_
