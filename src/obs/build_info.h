// Build identity for /healthz's "build" object: which source revision and
// compile configuration produced this binary. Without it a restarted or
// rolled-back replica is indistinguishable from a warm one at the health
// endpoint. Values are baked in at CMake configure time (git hash falls
// back to "nogit" outside a git checkout); only build_info.cpp sees the
// generated header, so nothing else depends on the generated include dir.

#ifndef REPTILE_OBS_BUILD_INFO_H_
#define REPTILE_OBS_BUILD_INFO_H_

#include <string>

namespace reptile {

struct BuildInfo {
  const char* git_hash;       // short hash, or "nogit"
  const char* compile_flags;  // build type / standard / sanitizer summary
};

const BuildInfo& GetBuildInfo();

/// {"git_hash":"...","compile_flags":"..."} — the /healthz "build" value.
std::string BuildInfoJson();

}  // namespace reptile

#endif  // REPTILE_OBS_BUILD_INFO_H_
