#include "obs/trace.h"

#include <atomic>
#include <cstdio>
#include <random>

namespace reptile {

void TraceContext::AddSpan(std::string name, double start_seconds,
                           double duration_seconds, std::string detail) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(TraceSpan{std::move(name), start_seconds, duration_seconds,
                             std::move(detail)});
}

std::vector<TraceSpan> TraceContext::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::string MintTraceId() {
  // 64 random bits fixed at process start XOR a counter: ids are unique
  // within the process and differ across restarts, without paying a
  // random_device read per request.
  static const uint64_t seed = [] {
    std::random_device rd;
    return (static_cast<uint64_t>(rd()) << 32) ^ rd();
  }();
  static std::atomic<uint64_t> next{1};
  const uint64_t id = seed ^ (next.fetch_add(1, std::memory_order_relaxed) *
                              UINT64_C(0x9e3779b97f4a7c15));
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(id));
  return buf;
}

bool ValidTraceId(const std::string& id) {
  if (id.empty() || id.size() > 64) return false;
  for (char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string ServerTimingHeader(const TraceContext& trace, double total_seconds) {
  const bool zero = trace.zero_durations();
  auto format_ms = [zero](double seconds) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", zero ? 0.0 : seconds * 1000.0);
    return std::string(buf);
  };
  std::string out;
  for (const TraceSpan& span : trace.Spans()) {
    out += span.name;
    if (!span.detail.empty()) {
      // Detail values are server-generated (no quotes/commas by contract);
      // quoted per the Server-Timing `desc` parameter grammar.
      out += ";desc=\"" + span.detail + "\"";
    }
    out += ";dur=" + format_ms(span.duration_seconds) + ", ";
  }
  out += "total;dur=" + format_ms(total_seconds);
  return out;
}

}  // namespace reptile
