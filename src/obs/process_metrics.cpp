// EnsureProcessMetrics(): the callback gauges that belong to the process,
// not to any one service instance. Lives in its own .cpp so obs/metrics.h
// stays free of the parallel/ dependency.

#include <mutex>

#include "obs/metrics.h"
#include "parallel/thread_pool.h"

namespace reptile {

void EnsureProcessMetrics() {
  static std::once_flag once;
  std::call_once(once, [] {
    MetricsRegistry::Global().RegisterCallbackGauge(
        "reptile_shared_pool_queue_depth",
        "Tasks queued or running on the process-wide shared compute pool.", {},
        [] { return SharedThreadPool()->PendingTasks(); });
  });
}

}  // namespace reptile
