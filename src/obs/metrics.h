// Process-wide metrics primitives for the serving tier (and anything else
// that wants counters): atomic Counter/Gauge, a fixed-bucket log-scaled
// latency Histogram with a lock-free hot path, and a MetricsRegistry that
// names them, renders Prometheus text exposition for GET /metricsz, and
// renders a JSON summary for /healthz.
//
// Design constraints this file answers:
//  * Recording must be cheap enough to sit on every request: Observe() and
//    Increment() are a handful of relaxed atomic RMWs — no locks, no
//    allocation. The registry mutex is only paid on the first Get* for a
//    series (callers cache the returned pointer) and at scrape time.
//  * Determinism for the differential tests: a histogram's count, per-bucket
//    counts, and sum are exact regardless of recording-thread interleaving —
//    bucketing is a pure function of the value and the sum accumulates in
//    integer nanoseconds (no floating-point reassociation), so N threads
//    recording a fixed multiset of values always produce the same snapshot
//    as a sequential replay (tests/obs_test.cpp asserts this under TSan).
//  * Multiple registries per process: ReptileService owns one per instance
//    (two services in one test binary must not fight over series), while
//    MetricsRegistry::Global() carries genuinely process-wide series (e.g.
//    the shared compute pool's queue depth).
//
// Registered objects live as long as their registry: Get* pointers are
// stable and never invalidated. Names follow Prometheus conventions
// (snake_case, base-unit suffixes, "_total" on counters); label values are
// escaped by the renderer.

#ifndef REPTILE_OBS_METRICS_H_
#define REPTILE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace reptile {

/// Monotonic counter. Thread-safe, lock-free.
class Counter {
 public:
  void Increment(int64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Settable point-in-time value. Thread-safe, lock-free.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket latency histogram over seconds: a 1-2-5 ladder from 1µs to
/// 100s (~3 buckets per decade) plus an overflow bucket, which brackets
/// every latency this system produces — sub-microsecond rounds to the first
/// bucket, anything beyond 100s is pathological and lands in overflow.
/// Buckets are NON-cumulative internally; the Prometheus renderer emits the
/// cumulative `le` form. The sum accumulates in integer nanoseconds so it is
/// exact and scheduling-independent (see the header comment).
class Histogram {
 public:
  static constexpr int kNumBounds = 25;           // finite upper bounds
  static constexpr int kNumBuckets = kNumBounds + 1;  // + overflow (+Inf)

  /// Finite bucket upper bounds in seconds, ascending.
  static const std::array<double, kNumBounds>& BucketBounds();
  /// The bounds as Prometheus `le` label values ("1e-06" ... "100"), index-
  /// aligned with BucketBounds(). Overflow renders as "+Inf".
  static const std::array<const char*, kNumBounds>& BucketLabels();
  /// The bucket `seconds` falls into: first i with seconds <= bound[i], or
  /// kNumBounds (overflow). Pure — the determinism anchor.
  static int BucketIndex(double seconds);

  void Observe(double seconds) {
    buckets_[static_cast<size_t>(BucketIndex(seconds))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_nanos_.fetch_add(static_cast<int64_t>(seconds * 1e9 + 0.5),
                         std::memory_order_relaxed);
  }

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum_seconds() const {
    return static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  }
  /// Observations in bucket `i` alone (NOT cumulative), i in [0, kNumBuckets).
  int64_t BucketCount(int i) const {
    return buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  /// Upper-bound estimate of the q-quantile (q in (0,1]): the upper bound of
  /// the bucket containing the target rank (the last finite bound when the
  /// rank sits in overflow). 0 when empty.
  double Quantile(double q) const;

 private:
  std::array<std::atomic<int64_t>, kNumBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_nanos_{0};
};

/// Label set for one series, rendered as {k="v",...} in registration order.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Names metrics and renders them. Get* is get-or-create: the same
/// (name, labels) always returns the same object, so two components
/// instrumenting the same series share it instead of colliding. A name is
/// bound to one type forever; requesting it as a different type aborts
/// (programming error, same contract as REPTILE_CHECK).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const std::string& help,
                      const MetricLabels& labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const MetricLabels& labels = {});
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          const MetricLabels& labels = {});

  /// A gauge whose value is sampled by calling `fn` at render time — for
  /// values that already live elsewhere (a queue depth, a cache size) and
  /// should not be mirrored on every change. `fn` must be thread-safe and is
  /// called under the registry mutex: keep it cheap and never let it call
  /// back into this registry.
  void RegisterCallbackGauge(const std::string& name, const std::string& help,
                             MetricLabels labels, std::function<int64_t()> fn);

  /// Prometheus text exposition (version 0.0.4): families sorted by name,
  /// series sorted by label string, histograms in cumulative `le` form.
  std::string RenderPrometheus() const;

  /// JSON object keyed by family name; each family is a list of
  /// {"labels":{...},"value":N} (counter/gauge) or {"labels":{...},
  /// "count":N,"sum_seconds":S,"p50":...,"p90":...,"p99":...} (histogram).
  /// Embedded in /healthz as "metrics".
  std::string RenderJson() const;

  /// The process-wide registry (leaked singleton, safe from any thread).
  static MetricsRegistry& Global();

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kCallback };

  struct Series {
    MetricLabels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<int64_t()> callback;
  };

  struct Family {
    std::string help;
    Kind kind;
    std::map<std::string, Series> series;  // by rendered label string
  };

  Family& FamilyFor(const std::string& name, const std::string& help, Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

/// Registers the process-wide callback gauges (currently the shared compute
/// pool's queue depth as `reptile_shared_pool_queue_depth`) on
/// MetricsRegistry::Global(). Idempotent and thread-safe; every /metricsz
/// handler calls it so the gauges exist in any serving configuration.
void EnsureProcessMetrics();

}  // namespace reptile

#endif  // REPTILE_OBS_METRICS_H_
