#include "obs/build_info.h"

#include "common/json_util.h"
#include "obs/version_info.h"  // generated; see CMakeLists.txt

namespace reptile {

const BuildInfo& GetBuildInfo() {
  static const BuildInfo info{REPTILE_BUILD_GIT_HASH, REPTILE_BUILD_COMPILE_FLAGS};
  return info;
}

std::string BuildInfoJson() {
  const BuildInfo& info = GetBuildInfo();
  return "{\"git_hash\":" + JsonQuote(info.git_hash) +
         ",\"compile_flags\":" + JsonQuote(info.compile_flags) + "}";
}

}  // namespace reptile
