#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"
#include "common/json_util.h"

namespace reptile {

namespace {

// The 1-2-5 ladder and its exact `le` spellings, index-aligned. Hardcoded
// (rather than snprintf'd at startup) so the Prometheus golden test pins the
// wire format byte-for-byte.
constexpr std::array<double, Histogram::kNumBounds> kBounds = {
    1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2,
    2e-2, 5e-2, 0.1,  0.2,  0.5,  1.0,  2.0,  5.0,  10.0, 20.0, 50.0, 100.0};

constexpr std::array<const char*, Histogram::kNumBounds> kBoundLabels = {
    "1e-06",  "2e-06",  "5e-06", "1e-05", "2e-05", "5e-05", "0.0001",
    "0.0002", "0.0005", "0.001", "0.002", "0.005", "0.01",  "0.02",
    "0.05",   "0.1",    "0.2",   "0.5",   "1",     "2",     "5",
    "10",     "20",     "50",    "100"};

std::string RenderLabelString(const MetricLabels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first;
    out += "=\"";
    out += JsonEscape(labels[i].second);  // same \\ \" \n escapes Prometheus wants
    out += '"';
  }
  out += '}';
  return out;
}

// `base{existing,le="X"}` — splices `le` into a possibly-empty label string.
std::string WithLeLabel(const std::string& label_string, const char* le) {
  if (label_string.empty()) return std::string("{le=\"") + le + "\"}";
  std::string out = label_string.substr(0, label_string.size() - 1);
  out += ",le=\"";
  out += le;
  out += "\"}";
  return out;
}

std::string FormatSeconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", seconds);
  return buf;
}

const char* KindName(int kind) {
  switch (kind) {
    case 0: return "counter";
    case 1: return "gauge";
    case 2: return "histogram";
    default: return "gauge";  // callback gauges render as gauges
  }
}

}  // namespace

const std::array<double, Histogram::kNumBounds>& Histogram::BucketBounds() {
  return kBounds;
}

const std::array<const char*, Histogram::kNumBounds>& Histogram::BucketLabels() {
  return kBoundLabels;
}

int Histogram::BucketIndex(double seconds) {
  const auto it = std::lower_bound(kBounds.begin(), kBounds.end(), seconds);
  return static_cast<int>(it - kBounds.begin());  // == kNumBounds -> overflow
}

double Histogram::Quantile(double q) const {
  // Snapshot bucket counts once; concurrent Observes may land between loads,
  // so derive the total from the snapshot rather than count_.
  std::array<int64_t, kNumBuckets> counts;
  int64_t total = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    counts[static_cast<size_t>(i)] = BucketCount(i);
    total += counts[static_cast<size_t>(i)];
  }
  if (total == 0) return 0.0;
  const int64_t rank = std::max<int64_t>(1, static_cast<int64_t>(q * static_cast<double>(total) + 0.5));
  int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += counts[static_cast<size_t>(i)];
    if (seen >= rank) {
      return kBounds[static_cast<size_t>(std::min(i, kNumBounds - 1))];
    }
  }
  return kBounds[kNumBounds - 1];
}

MetricsRegistry::Family& MetricsRegistry::FamilyFor(const std::string& name,
                                                    const std::string& help,
                                                    Kind kind) {
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.help = help;
    it->second.kind = kind;
  } else {
    REPTILE_CHECK(it->second.kind == kind)
        << "metric '" << name << "' registered twice with different types";
  }
  return it->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name, const std::string& help,
                                     const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = FamilyFor(name, help, Kind::kCounter);
  Series& series = family.series[RenderLabelString(labels)];
  if (!series.counter) {
    series.labels = labels;
    series.counter = std::make_unique<Counter>();
  }
  return series.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, const std::string& help,
                                 const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = FamilyFor(name, help, Kind::kGauge);
  Series& series = family.series[RenderLabelString(labels)];
  if (!series.gauge) {
    series.labels = labels;
    series.gauge = std::make_unique<Gauge>();
  }
  return series.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name, const std::string& help,
                                         const MetricLabels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = FamilyFor(name, help, Kind::kHistogram);
  Series& series = family.series[RenderLabelString(labels)];
  if (!series.histogram) {
    series.labels = labels;
    series.histogram = std::make_unique<Histogram>();
  }
  return series.histogram.get();
}

void MetricsRegistry::RegisterCallbackGauge(const std::string& name,
                                            const std::string& help, MetricLabels labels,
                                            std::function<int64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = FamilyFor(name, help, Kind::kCallback);
  Series& series = family.series[RenderLabelString(labels)];
  series.labels = std::move(labels);
  series.callback = std::move(fn);
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    out += "# HELP " + name + " " + family.help + "\n";
    out += "# TYPE " + name + " " + KindName(static_cast<int>(family.kind)) + "\n";
    for (const auto& [label_string, series] : family.series) {
      switch (family.kind) {
        case Kind::kCounter:
          out += name + label_string + " " + std::to_string(series.counter->value()) + "\n";
          break;
        case Kind::kGauge:
          out += name + label_string + " " + std::to_string(series.gauge->value()) + "\n";
          break;
        case Kind::kCallback:
          out += name + label_string + " " + std::to_string(series.callback()) + "\n";
          break;
        case Kind::kHistogram: {
          const Histogram& h = *series.histogram;
          int64_t cumulative = 0;
          for (int i = 0; i < Histogram::kNumBounds; ++i) {
            cumulative += h.BucketCount(i);
            out += name + "_bucket" + WithLeLabel(label_string, kBoundLabels[static_cast<size_t>(i)]) +
                   " " + std::to_string(cumulative) + "\n";
          }
          cumulative += h.BucketCount(Histogram::kNumBounds);
          out += name + "_bucket" + WithLeLabel(label_string, "+Inf") + " " +
                 std::to_string(cumulative) + "\n";
          out += name + "_sum" + label_string + " " + FormatSeconds(h.sum_seconds()) + "\n";
          out += name + "_count" + label_string + " " + std::to_string(cumulative) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{";
  bool first_family = true;
  for (const auto& [name, family] : families_) {
    if (!first_family) out += ',';
    first_family = false;
    out += JsonQuote(name) + ":[";
    bool first_series = true;
    for (const auto& [label_string, series] : family.series) {
      (void)label_string;
      if (!first_series) out += ',';
      first_series = false;
      out += "{\"labels\":{";
      for (size_t i = 0; i < series.labels.size(); ++i) {
        if (i > 0) out += ',';
        out += JsonQuote(series.labels[i].first) + ":" + JsonQuote(series.labels[i].second);
      }
      out += "},";
      switch (family.kind) {
        case Kind::kCounter:
          out += "\"value\":" + std::to_string(series.counter->value());
          break;
        case Kind::kGauge:
          out += "\"value\":" + std::to_string(series.gauge->value());
          break;
        case Kind::kCallback:
          out += "\"value\":" + std::to_string(series.callback());
          break;
        case Kind::kHistogram: {
          const Histogram& h = *series.histogram;
          out += "\"count\":" + std::to_string(h.count());
          out += ",\"sum_seconds\":" + JsonNumber(h.sum_seconds());
          out += ",\"p50\":" + JsonNumber(h.Quantile(0.50));
          out += ",\"p90\":" + JsonNumber(h.Quantile(0.90));
          out += ",\"p99\":" + JsonNumber(h.Quantile(0.99));
          break;
        }
      }
      out += '}';
    }
    out += ']';
  }
  out += '}';
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked: no
  return *registry;  // static-destruction-order hazard for late recorders
}

}  // namespace reptile
