#include "obs/request_ring.h"

#include <algorithm>

#include "common/json_util.h"

namespace reptile {

RequestRing::RequestRing(size_t capacity) : capacity_(std::max<size_t>(1, capacity)) {
  records_.reserve(capacity_);
}

void RequestRing::Add(RequestRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  record.sequence = next_sequence_++;
  if (records_.size() < capacity_) {
    records_.push_back(std::move(record));
  } else {
    records_[next_slot_] = std::move(record);
    next_slot_ = (next_slot_ + 1) % capacity_;
  }
}

std::vector<RequestRecord> RequestRing::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RequestRecord> out;
  out.reserve(records_.size());
  // Once full, next_slot_ points at the oldest record; before that, the
  // storage is already oldest-first.
  const size_t n = records_.size();
  const size_t start = (n == capacity_) ? next_slot_ : 0;
  for (size_t i = 0; i < n; ++i) out.push_back(records_[(start + i) % n]);
  return out;
}

std::string RequestRing::ToJson() const {
  std::vector<RequestRecord> records = Snapshot();
  std::string out = "{\"capacity\":" + std::to_string(capacity_) + ",\"requests\":[";
  for (size_t i = 0; i < records.size(); ++i) {
    const RequestRecord& r = records[i];
    if (i > 0) out += ',';
    out += "{\"seq\":" + std::to_string(r.sequence);
    out += ",\"trace_id\":" + JsonQuote(r.trace_id);
    out += ",\"method\":" + JsonQuote(r.method);
    out += ",\"path\":" + JsonQuote(r.path);
    out += ",\"status\":" + std::to_string(r.http_status);
    out += ",\"duration_ms\":" + JsonNumber(r.duration_seconds * 1000.0);
    out += ",\"spans\":[";
    for (size_t s = 0; s < r.spans.size(); ++s) {
      const TraceSpan& span = r.spans[s];
      if (s > 0) out += ',';
      out += "{\"name\":" + JsonQuote(span.name);
      out += ",\"start_ms\":" + JsonNumber(span.start_seconds * 1000.0);
      out += ",\"duration_ms\":" + JsonNumber(span.duration_seconds * 1000.0);
      if (!span.detail.empty()) out += ",\"detail\":" + JsonQuote(span.detail);
      out += '}';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace reptile
