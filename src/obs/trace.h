// Per-request tracing: a TraceContext carries one request's id and its
// completed stage spans (parse / validate / plan / fit / rank / serialize)
// from the HTTP layer down through Session::RecommendAll into
// Engine::RecommendBatch and back.
//
// Contract:
//  * The id is minted by the service (or adopted from the client's
//    X-Request-Id header after sanitizing) and echoed on every response, so
//    one string joins the client's log line, the Server-Timing header, the
//    debug request ring, and the server's structured log.
//  * Spans carry offsets from the context's construction on the monotonic
//    clock — never wall time — so they order and subtract correctly across
//    the layers that record them.
//  * AddSpan is thread-safe (mutex-guarded append); recording a span is NOT
//    on the per-row hot path — a request produces ~6 spans — so a mutex is
//    the right tool here, unlike obs/metrics.h's lock-free histograms.
//  * zero_durations mirrors the wire option `zero_timings`: rendered
//    durations (Server-Timing, the debug ring) become 0 so byte-identity
//    tests stay deterministic, while span *names* still prove the stages
//    ran. Span capture itself always records real durations; zeroing is a
//    render-time decision.
//
// A TraceContext is borrowed down the stack as a raw pointer (nullptr = not
// traced, all recording compiles down to a pointer test) and owned by the
// request handler frame — it never outlives the request.

#ifndef REPTILE_OBS_TRACE_H_
#define REPTILE_OBS_TRACE_H_

#include <chrono>
#include <mutex>
#include <string>
#include <vector>

namespace reptile {

/// One completed stage of one request.
struct TraceSpan {
  std::string name;             // "parse", "validate", "plan", "fit", "rank", ...
  double start_seconds = 0.0;   // offset from TraceContext construction
  double duration_seconds = 0.0;
  std::string detail;           // optional, e.g. "hits=3 misses=1"
};

class TraceContext {
 public:
  explicit TraceContext(std::string id)
      : id_(std::move(id)), epoch_(std::chrono::steady_clock::now()) {}

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  const std::string& id() const { return id_; }

  /// Seconds since this context was constructed (monotonic clock) — the
  /// start-offset stamp for a span about to begin.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Records a completed span. Thread-safe.
  void AddSpan(std::string name, double start_seconds, double duration_seconds,
               std::string detail = std::string());

  /// Spans recorded so far, in recording order.
  std::vector<TraceSpan> Spans() const;

  /// See the header comment: render-time duration zeroing for zero_timings.
  void set_zero_durations(bool zero) { zero_durations_ = zero; }
  bool zero_durations() const { return zero_durations_; }

 private:
  const std::string id_;
  const std::chrono::steady_clock::time_point epoch_;
  bool zero_durations_ = false;  // set once by the handler before rendering
  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
};

/// RAII span recorder: stamps the start offset at construction, records the
/// span into `trace` at destruction. A null trace makes every operation a
/// no-op — call sites stay unconditional.
class ScopedSpan {
 public:
  ScopedSpan(TraceContext* trace, const char* name)
      : trace_(trace), name_(name),
        start_(trace ? trace->ElapsedSeconds() : 0.0) {}
  ~ScopedSpan() {
    if (trace_ != nullptr) {
      trace_->AddSpan(name_, start_, trace_->ElapsedSeconds() - start_,
                      std::move(detail_));
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches free-form detail ("hits=3 misses=1") to the span-to-be.
  void SetDetail(std::string detail) { detail_ = std::move(detail); }

 private:
  TraceContext* trace_;
  const char* name_;
  double start_;
  std::string detail_;
};

/// A fresh 16-hex-digit request id: process-unique (atomic counter) and
/// unpredictable across restarts (seeded from std::random_device once).
std::string MintTraceId();

/// True when `id` is acceptable as a client-supplied X-Request-Id: 1-64
/// characters from [A-Za-z0-9._-]. Anything else is rejected (the id is
/// echoed into headers and logs, so CR/LF or quotes must never pass).
bool ValidTraceId(const std::string& id);

/// The trace rendered as a Server-Timing response-header value:
///   parse;dur=0.012, fit;desc="hits=3 misses=1";dur=1.201, total;dur=2.5
/// Durations are milliseconds (the Server-Timing unit). `total_seconds` is
/// the whole request; with trace.zero_durations() every dur renders as 0.
std::string ServerTimingHeader(const TraceContext& trace, double total_seconds);

}  // namespace reptile

#endif  // REPTILE_OBS_TRACE_H_
