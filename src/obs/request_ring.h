// A bounded in-memory ring of recent request trace records, served at
// GET /v1/debug/requests (opt-in, auth-gated — see server/service.h). The
// answer to "why was that request slow?" after the fact, without a log
// pipeline: the last N requests' ids, routes, statuses, durations, and
// stage spans, newest last.
//
// Fixed capacity, overwrite-oldest; Add() is a mutex-guarded move of one
// record (a handful of small strings), paid once per request after the
// response is built — never on a hot path. Durations stored here are
// already zeroed when the request asked for zero_timings (the service
// builds records through the trace's render-time zeroing), so debug output
// obeys the same determinism contract as response bodies.

#ifndef REPTILE_OBS_REQUEST_RING_H_
#define REPTILE_OBS_REQUEST_RING_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace reptile {

/// One finished request, as retained for debugging.
struct RequestRecord {
  int64_t sequence = 0;  // assigned by the ring: monotonic, 1-based
  std::string trace_id;
  std::string method;
  std::string path;
  int http_status = 0;
  double duration_seconds = 0.0;
  std::vector<TraceSpan> spans;
};

class RequestRing {
 public:
  /// Capacity is clamped to at least 1.
  explicit RequestRing(size_t capacity);

  RequestRing(const RequestRing&) = delete;
  RequestRing& operator=(const RequestRing&) = delete;

  /// Retains `record` (stamping its sequence), evicting the oldest record
  /// once the ring is full. Thread-safe.
  void Add(RequestRecord record);

  /// The retained records, oldest first. Thread-safe.
  std::vector<RequestRecord> Snapshot() const;

  /// Snapshot() as the /v1/debug/requests body:
  ///   {"capacity":N,"requests":[{"seq":..,"trace_id":..,"method":..,
  ///    "path":..,"status":..,"duration_ms":..,
  ///    "spans":[{"name":..,"start_ms":..,"duration_ms":..,"detail":..},..]},..]}
  std::string ToJson() const;

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<RequestRecord> records_;  // ring storage, size <= capacity_
  size_t next_slot_ = 0;                // insertion point once full
  int64_t next_sequence_ = 1;
};

}  // namespace reptile

#endif  // REPTILE_OBS_REQUEST_RING_H_
