#include "common/env.h"

#include <cstdlib>

namespace reptile {

int64_t EnvInt(const std::string& name, int64_t def) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || *value == '\0') return def;
  char* end = nullptr;
  long long parsed = std::strtoll(value, &end, 10);
  if (end == value) return def;
  return static_cast<int64_t>(parsed);
}

double EnvDouble(const std::string& name, double def) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || *value == '\0') return def;
  char* end = nullptr;
  double parsed = std::strtod(value, &end);
  if (end == value) return def;
  return parsed;
}

}  // namespace reptile
