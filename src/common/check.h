// Invariant-checking macros.
//
// The project follows the Google C++ style guide and does not use exceptions;
// programmer errors and violated invariants abort the process with a message.
// REPTILE_CHECK is always on; REPTILE_DCHECK compiles out in release builds.

#ifndef REPTILE_COMMON_CHECK_H_
#define REPTILE_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace reptile {
namespace internal {

// Accumulates a failure message and aborts when destroyed.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << ": CHECK failed: " << condition << " ";
  }

  [[noreturn]] ~CheckFailure() {
    std::fputs(stream_.str().c_str(), stderr);
    std::fputc('\n', stderr);
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace reptile

#define REPTILE_CHECK(condition)                                         \
  if (condition) {                                                       \
  } else                                                                 \
    ::reptile::internal::CheckFailure(__FILE__, __LINE__, #condition)

#define REPTILE_CHECK_EQ(a, b) REPTILE_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define REPTILE_CHECK_NE(a, b) REPTILE_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define REPTILE_CHECK_LT(a, b) REPTILE_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define REPTILE_CHECK_LE(a, b) REPTILE_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define REPTILE_CHECK_GT(a, b) REPTILE_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define REPTILE_CHECK_GE(a, b) REPTILE_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#ifdef NDEBUG
#define REPTILE_DCHECK(condition) \
  if (true) {                     \
  } else                          \
    ::reptile::internal::CheckFailure(__FILE__, __LINE__, #condition)
#else
#define REPTILE_DCHECK(condition) REPTILE_CHECK(condition)
#endif

#endif  // REPTILE_COMMON_CHECK_H_
