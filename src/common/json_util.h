// JSON string-escaping and number-formatting primitives shared by the api/
// response writers and the server/ parser+writer, so both sides of the wire
// agree on one convention (tests/json_test.cpp round-trips them).
//
// Lives in common/ because it is layer-neutral: api/ must not depend on
// server/ (the server sits *above* the facade), yet both need these.
// Header-only, dependency-free.

#ifndef REPTILE_COMMON_JSON_UTIL_H_
#define REPTILE_COMMON_JSON_UTIL_H_

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace reptile {

/// Escapes `raw` for embedding inside a JSON string literal (quotes not
/// included): ", \ and control characters below 0x20 are escaped; all other
/// bytes pass through untouched (UTF-8 stays UTF-8).
inline std::string JsonEscape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// `raw` as a complete JSON string literal, quotes included.
inline std::string JsonQuote(std::string_view raw) { return '"' + JsonEscape(raw) + '"'; }

/// A double rendered the way the ToJson writers render it: %.12g, with
/// non-finite values becoming "null" (JSON has no Infinity/NaN). %.12g
/// strings re-parse to a double that prints identically, so serialized
/// numbers are stable under parse -> write round trips.
inline std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";  // JSON has no Infinity/NaN
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

}  // namespace reptile

#endif  // REPTILE_COMMON_JSON_UTIL_H_
