#include "common/rng.h"

namespace reptile {

double Rng::Uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::Uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
}

double Rng::Normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

int64_t Rng::Poisson(double mean) {
  return std::poisson_distribution<int64_t>(mean)(engine_);
}

bool Rng::Bernoulli(double p) {
  return std::bernoulli_distribution(p)(engine_);
}

}  // namespace reptile
