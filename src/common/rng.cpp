#include "common/rng.h"

#include "common/check.h"

namespace reptile {
namespace {

// splitmix64 finalizer (Steele et al.) — decorrelates nearby inputs, so
// (seed, stream) and (seed, stream + 1) produce unrelated mt19937_64 states.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t Rng::MixSeed(uint64_t seed, uint64_t stream) {
  // Stream 0 keeps the raw seed so Rng(seed) draws exactly what it always
  // has (reproducibility of every pre-existing experiment).
  if (stream == 0) return seed;
  return SplitMix64(seed ^ SplitMix64(stream));
}

void Rng::AssertSingleThreadUse() {
#ifndef NDEBUG
  std::thread::id self = std::this_thread::get_id();
  if (bound_thread_ == std::thread::id()) {
    bound_thread_ = self;  // bind on first draw
    return;
  }
  REPTILE_CHECK(bound_thread_ == self)
      << "Rng instance drawn from two threads; derive a per-task sub-stream "
         "with Stream(stream_id) instead of sharing one instance";
#endif
}

double Rng::Uniform() {
  AssertSingleThreadUse();
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::Uniform(double lo, double hi) {
  AssertSingleThreadUse();
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  AssertSingleThreadUse();
  return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
}

double Rng::Normal(double mean, double stddev) {
  AssertSingleThreadUse();
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

int64_t Rng::Poisson(double mean) {
  AssertSingleThreadUse();
  return std::poisson_distribution<int64_t>(mean)(engine_);
}

double Rng::Exponential(double mean) {
  REPTILE_CHECK(mean > 0.0) << "Exponential wants a positive mean, got " << mean;
  AssertSingleThreadUse();
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

bool Rng::Bernoulli(double p) {
  AssertSingleThreadUse();
  return std::bernoulli_distribution(p)(engine_);
}

}  // namespace reptile
