// Order statistics and correlation utilities shared by the featurizer,
// the baselines, and the synthetic-data generators.
//
// InduceRankCorrelation implements the Iman-Conover (1982) distribution-free
// procedure the paper uses (Section 5.2.1) to generate auxiliary measures
// with a target rank correlation to a group statistic.

#ifndef REPTILE_COMMON_STATS_H_
#define REPTILE_COMMON_STATS_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace reptile {

/// Arithmetic mean; 0 for an empty vector.
double Mean(const std::vector<double>& values);

/// Sample standard deviation (n-1 denominator); 0 when fewer than 2 values.
double SampleStd(const std::vector<double>& values);

/// Population variance (n denominator); 0 for an empty vector.
double PopulationVariance(const std::vector<double>& values);

/// Median; 0 for an empty vector. Copies and partially sorts the input.
double Median(std::vector<double> values);

/// Pearson correlation of two equal-length vectors; 0 if degenerate.
double PearsonCorrelation(const std::vector<double>& a, const std::vector<double>& b);

/// Spearman rank correlation of two equal-length vectors; 0 if degenerate.
double SpearmanCorrelation(const std::vector<double>& a, const std::vector<double>& b);

/// Ranks of `values` (0 = smallest). Ties broken by index for determinism.
std::vector<size_t> Ranks(const std::vector<double>& values);

/// Returns a vector of `reference.size()` normal draws rearranged so that its
/// rank correlation with `reference` is approximately `rho` (Iman-Conover).
/// The marginal distribution of the result is N(mean, stddev).
std::vector<double> InduceRankCorrelation(const std::vector<double>& reference, double rho,
                                          double mean, double stddev, Rng* rng);

}  // namespace reptile

#endif  // REPTILE_COMMON_STATS_H_
