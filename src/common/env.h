// Environment-variable overrides for benchmark scale factors, so the
// experiment harness can be dialed up to the paper's full configuration or
// down for quick smoke runs without recompiling.

#ifndef REPTILE_COMMON_ENV_H_
#define REPTILE_COMMON_ENV_H_

#include <cstdint>
#include <string>

namespace reptile {

/// Integer environment variable with default; parse failures return `def`.
int64_t EnvInt(const std::string& name, int64_t def);

/// Double environment variable with default; parse failures return `def`.
double EnvDouble(const std::string& name, double def);

}  // namespace reptile

#endif  // REPTILE_COMMON_ENV_H_
