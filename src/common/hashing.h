// Hash helpers shared by group-by keys, multi-attribute feature maps,
// f-tree path lookup, and content-derived cache tokens.

#ifndef REPTILE_COMMON_HASHING_H_
#define REPTILE_COMMON_HASHING_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace reptile {

/// Streaming FNV-1a over arbitrary bytes, for content-derived tokens (e.g.
/// the engine's feature-registration cache partition). Not cryptographic —
/// collision resistance is "good enough for cache keys", nothing more.
/// Length-prefix variable-size inputs (MixString/MixBytes do) so
/// concatenation ambiguity cannot alias two different input sequences.
class Fnv1aHasher {
 public:
  void MixBytes(const void* data, size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) {
      hash_ ^= bytes[i];
      hash_ *= 1099511628211ull;
    }
  }
  void MixU64(uint64_t v) { MixBytes(&v, sizeof(v)); }
  void MixI64(int64_t v) { MixU64(static_cast<uint64_t>(v)); }
  void MixI32(int32_t v) { MixU64(static_cast<uint64_t>(static_cast<uint32_t>(v))); }
  void MixBool(bool v) { MixU64(v ? 1 : 0); }
  void MixDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    MixU64(bits);
  }
  void MixString(const std::string& s) {
    MixU64(s.size());
    MixBytes(s.data(), s.size());
  }

  uint64_t hash() const { return hash_; }

  /// 16 lowercase hex digits of the current state.
  std::string Hex() const {
    static const char* kDigits = "0123456789abcdef";
    std::string out(16, '0');
    uint64_t v = hash_;
    for (int i = 15; i >= 0; --i) {
      out[static_cast<size_t>(i)] = kDigits[v & 0xf];
      v >>= 4;
    }
    return out;
  }

 private:
  uint64_t hash_ = 1469598103934665603ull;
};

/// FNV-1a style hash over a tuple of int32 codes.
struct CodeTupleHash {
  size_t operator()(const std::vector<int32_t>& key) const {
    size_t h = 1469598103934665603ull;
    for (int32_t v : key) {
      h ^= static_cast<size_t>(static_cast<uint32_t>(v));
      h *= 1099511628211ull;
    }
    return h;
  }
};

}  // namespace reptile

#endif  // REPTILE_COMMON_HASHING_H_
