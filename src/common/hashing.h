// Hash helpers shared by group-by keys, multi-attribute feature maps, and
// f-tree path lookup.

#ifndef REPTILE_COMMON_HASHING_H_
#define REPTILE_COMMON_HASHING_H_

#include <cstdint>
#include <vector>

namespace reptile {

/// FNV-1a style hash over a tuple of int32 codes.
struct CodeTupleHash {
  size_t operator()(const std::vector<int32_t>& key) const {
    size_t h = 1469598103934665603ull;
    for (int32_t v : key) {
      h ^= static_cast<size_t>(static_cast<uint32_t>(v));
      h *= 1099511628211ull;
    }
    return h;
  }
};

}  // namespace reptile

#endif  // REPTILE_COMMON_HASHING_H_
