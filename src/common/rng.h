// Deterministic pseudo-random number generation for data generators and
// experiments. All generators in the repository draw from this class so that
// every experiment is reproducible from a single seed.

#ifndef REPTILE_COMMON_RNG_H_
#define REPTILE_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace reptile {

/// Seedable random number generator wrapping std::mt19937_64 with the
/// distributions the generators need.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Normal draw with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Poisson draw with the given mean.
  int64_t Poisson(double mean);

  /// Returns true with probability p.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (size_t i = values->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

  /// Underlying engine, for use with std:: distributions not wrapped here.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace reptile

#endif  // REPTILE_COMMON_RNG_H_
