// Deterministic pseudo-random number generation for data generators and
// experiments. All generators in the repository draw from this class so that
// every experiment is reproducible from a single seed.
//
// Threading model: one Rng instance is NOT thread-safe — the engine state
// behind Uniform()/Normal()/... mutates on every draw, and concurrent draws
// would both race and destroy reproducibility (draw order would depend on
// scheduling). Parallel code instead derives one sub-stream per task with
// Stream(stream_id): sub-streams are seeded from (root seed, stream id) so
// the draw sequence of every task is a pure function of the root seed and the
// task's id, independent of which thread runs it. Debug builds additionally
// assert that a single instance is only ever drawn from on one thread.

#ifndef REPTILE_COMMON_RNG_H_
#define REPTILE_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <thread>
#include <vector>

namespace reptile {

/// Seedable random number generator wrapping std::mt19937_64 with the
/// distributions the generators need.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : Rng(seed, /*stream=*/0) {}

  /// Sub-stream `stream` of `seed`: deterministic in (seed, stream) and
  /// decorrelated across streams (the engine is seeded with a splitmix64 mix
  /// of both, so stream 1 is unrelated to stream 0 drawn once).
  Rng(uint64_t seed, uint64_t stream)
      : engine_(MixSeed(seed, stream)), seed_(seed), stream_(stream) {}

  /// A fresh sub-stream of this generator's root seed, for handing to one
  /// parallel task each. Independent of this instance's draw position:
  /// Stream(k) yields the same sequence no matter how many draws happened.
  Rng Stream(uint64_t stream_id) const { return Rng(seed_, stream_id); }

  uint64_t seed() const { return seed_; }
  uint64_t stream() const { return stream_; }

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Normal draw with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Poisson draw with the given mean.
  int64_t Poisson(double mean);

  /// Exponential draw with the given mean (mean = 1/rate). The inter-arrival
  /// primitive of the workload simulator's Poisson and Markov-modulated
  /// arrival processes (src/sim/arrival.h).
  double Exponential(double mean);

  /// Returns true with probability p.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (size_t i = values->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

  /// Underlying engine, for use with std:: distributions not wrapped here.
  std::mt19937_64& engine() {
    AssertSingleThreadUse();
    return engine_;
  }

 private:
  static uint64_t MixSeed(uint64_t seed, uint64_t stream);

  // Debug guard against sharing one instance across threads (use Stream()
  // instead). Binds to the first drawing thread; compiled to nothing when
  // NDEBUG is set.
  void AssertSingleThreadUse();

  std::mt19937_64 engine_;
  uint64_t seed_;
  uint64_t stream_;
  // Always present so the class layout does not depend on NDEBUG (rng.h is
  // included by clients that may compile with different settings than the
  // library); only the *check* in AssertSingleThreadUse compiles out.
  std::thread::id bound_thread_{};  // default id = not bound yet
};

}  // namespace reptile

#endif  // REPTILE_COMMON_RNG_H_
