// Wall-clock timer used by the benchmark harness and the engine's
// per-invocation accounting.

#ifndef REPTILE_COMMON_TIMER_H_
#define REPTILE_COMMON_TIMER_H_

#include <chrono>

namespace reptile {

/// Simple monotonic wall-clock timer. Starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace reptile

#endif  // REPTILE_COMMON_TIMER_H_
