#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace reptile {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = std::accumulate(values.begin(), values.end(), 0.0);
  return sum / static_cast<double>(values.size());
}

double SampleStd(const std::vector<double>& values) {
  size_t n = values.size();
  if (n < 2) return 0.0;
  double mean = Mean(values);
  double ss = 0.0;
  for (double v : values) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / static_cast<double>(n - 1));
}

double PopulationVariance(const std::vector<double>& values) {
  size_t n = values.size();
  if (n == 0) return 0.0;
  double mean = Mean(values);
  double ss = 0.0;
  for (double v : values) ss += (v - mean) * (v - mean);
  return ss / static_cast<double>(n);
}

double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  double hi = values[mid];
  if (values.size() % 2 == 1) return hi;
  double lo = *std::max_element(values.begin(), values.begin() + mid);
  return 0.5 * (lo + hi);
}

double PearsonCorrelation(const std::vector<double>& a, const std::vector<double>& b) {
  REPTILE_CHECK_EQ(a.size(), b.size());
  size_t n = a.size();
  if (n < 2) return 0.0;
  double ma = Mean(a);
  double mb = Mean(b);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double da = a[i] - ma;
    double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

std::vector<size_t> Ranks(const std::vector<double>& values) {
  std::vector<size_t> order(values.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t i, size_t j) { return values[i] < values[j]; });
  std::vector<size_t> ranks(values.size());
  for (size_t r = 0; r < order.size(); ++r) ranks[order[r]] = r;
  return ranks;
}

double SpearmanCorrelation(const std::vector<double>& a, const std::vector<double>& b) {
  std::vector<size_t> ra = Ranks(a);
  std::vector<size_t> rb = Ranks(b);
  std::vector<double> da(ra.begin(), ra.end());
  std::vector<double> db(rb.begin(), rb.end());
  return PearsonCorrelation(da, db);
}

std::vector<double> InduceRankCorrelation(const std::vector<double>& reference, double rho,
                                          double mean, double stddev, Rng* rng) {
  REPTILE_CHECK(rng != nullptr);
  size_t n = reference.size();
  std::vector<double> draws(n);
  for (size_t i = 0; i < n; ++i) draws[i] = rng->Normal(mean, stddev);
  if (n < 2) return draws;

  // Iman-Conover: build a score vector whose ranks define the target ordering
  // (rho * standardized reference + sqrt(1 - rho^2) * independent noise), then
  // assign the sorted draws according to those ranks. The marginal of the
  // output stays exactly N(mean, stddev); only the ordering changes.
  double ref_mean = Mean(reference);
  double ref_std = SampleStd(reference);
  if (ref_std <= 0.0) ref_std = 1.0;
  double noise_scale = std::sqrt(std::max(0.0, 1.0 - rho * rho));
  std::vector<double> scores(n);
  for (size_t i = 0; i < n; ++i) {
    double z = (reference[i] - ref_mean) / ref_std;
    scores[i] = rho * z + noise_scale * rng->Normal(0.0, 1.0);
  }
  std::vector<size_t> score_ranks = Ranks(scores);
  std::vector<double> sorted = draws;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> result(n);
  for (size_t i = 0; i < n; ++i) result[i] = sorted[score_ranks[i]];
  return result;
}

}  // namespace reptile
