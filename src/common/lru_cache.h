// Byte-accounted LRU cache with shared_ptr-based safe reclamation — the one
// size-aware core both process-shared caches (factor/agg_cache.h,
// factor/model_cache.h) are built on.
//
// Contract:
//  * Values are held as shared_ptr<const Value>. Eviction drops only the
//    cache's reference: a caller still holding the pointer keeps using the
//    entry safely for as long as it likes ("in-flight holders survive
//    eviction"). This deliberately REPLACES the old aggregate-cache promise
//    that raw references stay valid forever — callers must hold owning
//    handles across any window where eviction could run.
//  * Insert() is insert-once: when two threads race to populate one key the
//    first insert wins and the loser receives (and should adopt) the
//    resident value, so deterministic builds stay canonical per key.
//  * budget_bytes() is a hard ceiling on the bytes the cache itself retains
//    (0 = unlimited). Inserting past it evicts least-recently-used entries
//    until the accounted bytes fit — including, when a single entry exceeds
//    the whole budget, the entry just inserted (the caller's shared_ptr
//    still owns it; the cache just refuses to retain it).
//  * Byte sizes are caller-supplied estimates (the cache cannot see into
//    Value); they only need to be consistent, not exact.
//  * Every method is thread-safe behind one mutex. Find() touches recency,
//    so there is no shared/exclusive split — lookups are cheap map walks and
//    the expensive work (builds, fits) always happens outside the cache.
//  * hits/misses/evictions are monotonic; entries/bytes are gauges.

#ifndef REPTILE_COMMON_LRU_CACHE_H_
#define REPTILE_COMMON_LRU_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace reptile {

template <typename Key, typename Value>
class LruByteCache {
 public:
  using ValuePtr = std::shared_ptr<const Value>;

  LruByteCache() = default;

  LruByteCache(const LruByteCache&) = delete;
  LruByteCache& operator=(const LruByteCache&) = delete;

  /// The resident value, touched most-recently-used; nullptr when absent.
  /// Counts one hit or miss.
  ValuePtr Find(const Key& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second.pos);
    return it->second.value;
  }

  /// Pure lookup: no recency touch, no counter — for introspection paths
  /// that must not perturb eviction order or hit rates.
  ValuePtr Peek(const Key& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : it->second.value;
  }

  /// Insert-once: returns the resident value for `key` — `value` when this
  /// call inserted it, the earlier value when another thread won the race
  /// (the caller should adopt the returned pointer either way). `bytes` is
  /// the entry's accounted size; inserting past the budget evicts from the
  /// LRU tail.
  ValuePtr Insert(const Key& key, ValuePtr value, size_t bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.pos);
      return it->second.value;
    }
    lru_.push_front(key);
    map_.emplace(key, Entry{value, bytes, lru_.begin()});
    bytes_ += bytes;
    EvictOverBudgetLocked();
    return value;
  }

  /// Drops the cache's reference to `key` (holders keep theirs). Returns
  /// whether the key was resident. Not counted as an eviction.
  bool Erase(const Key& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) return false;
    bytes_ -= it->second.bytes;
    lru_.erase(it->second.pos);
    map_.erase(it);
    return true;
  }

  /// Sets the byte budget (0 = unlimited) and immediately evicts down to it.
  void set_budget_bytes(size_t budget) {
    std::lock_guard<std::mutex> lock(mu_);
    budget_ = budget;
    EvictOverBudgetLocked();
  }

  size_t budget_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return budget_;
  }

  size_t bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_;
  }

  int64_t entries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int64_t>(map_.size());
  }

  int64_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }

  int64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }

  int64_t evictions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return evictions_;
  }

  /// Resident keys in map order (sorted for ordered Key types).
  std::vector<Key> Keys() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Key> keys;
    keys.reserve(map_.size());
    for (const auto& [key, entry] : map_) keys.push_back(key);
    return keys;
  }

  /// Resident (key, value) pairs in map order — the snapshot-save walk.
  std::vector<std::pair<Key, ValuePtr>> Items() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<Key, ValuePtr>> items;
    items.reserve(map_.size());
    for (const auto& [key, entry] : map_) items.emplace_back(key, entry.value);
    return items;
  }

 private:
  struct Entry {
    ValuePtr value;
    size_t bytes = 0;
    typename std::list<Key>::iterator pos;  // position in lru_
  };

  void EvictOverBudgetLocked() {
    if (budget_ == 0) return;
    while (bytes_ > budget_ && !lru_.empty()) {
      auto it = map_.find(lru_.back());
      bytes_ -= it->second.bytes;
      map_.erase(it);
      lru_.pop_back();
      ++evictions_;
    }
  }

  mutable std::mutex mu_;
  std::list<Key> lru_;  // front = most recently used
  std::map<Key, Entry> map_;
  size_t budget_ = 0;  // 0 = unlimited
  size_t bytes_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
};

}  // namespace reptile

#endif  // REPTILE_COMMON_LRU_CACHE_H_
