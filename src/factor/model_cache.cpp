#include "factor/model_cache.h"

#include <chrono>
#include <exception>
#include <mutex>

namespace reptile {

std::pair<FittedModelPtr, bool> SharedFittedModelCache::GetOrFit(
    const std::string& key, const std::function<FittedModel()>& fit) {
  std::shared_future<FittedModelPtr> future;
  bool fit_here = false;
  std::promise<FittedModelPtr> promise;
  {
    // Fast path: shared-lock find. The common warm-path case never takes the
    // exclusive lock.
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) future = it->second;
  }
  if (!future.valid()) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto [it, inserted] = entries_.try_emplace(key);
    if (inserted) {
      it->second = promise.get_future().share();
      fit_here = true;
    }
    future = it->second;
  }

  if (!fit_here) {
    FittedModelPtr model = future.get();  // blocks while another caller's fit runs
    hits_.fetch_add(1, std::memory_order_relaxed);  // after get(): failed fits are no hit
    return {std::move(model), false};
  }

  // This call won the insert race: train OUTSIDE the lock so a slow fit
  // never blocks unrelated lookups, then publish through the promise.
  misses_.fetch_add(1, std::memory_order_relaxed);
  fits_.fetch_add(1, std::memory_order_relaxed);
  try {
    FittedModelPtr model = std::make_shared<const FittedModel>(fit());
    promise.set_value(model);
    return {std::move(model), true};
  } catch (...) {
    // Erase BEFORE publishing the exception: once the key is gone, new
    // arrivals retry fresh — only callers already holding the future (true
    // waiters on this failed fit) observe the exception.
    {
      std::unique_lock<std::shared_mutex> lock(mu_);
      entries_.erase(key);
    }
    promise.set_exception(std::current_exception());
    throw;
  }
}

FittedModelPtr SharedFittedModelCache::Find(const std::string& key) const {
  std::shared_future<FittedModelPtr> future;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) return nullptr;
    future = it->second;
  }
  if (future.wait_for(std::chrono::seconds(0)) != std::future_status::ready) return nullptr;
  try {
    return future.get();
  } catch (...) {
    // A failed fit whose key GetOrFit has not erased yet: absent, not ready.
    return nullptr;
  }
}

std::vector<std::string> SharedFittedModelCache::Keys() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, future] : entries_) keys.push_back(key);
  return keys;
}

int64_t SharedFittedModelCache::entries() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return static_cast<int64_t>(entries_.size());
}

}  // namespace reptile
