#include "factor/model_cache.h"

#include <algorithm>
#include <exception>
#include <mutex>

namespace reptile {

size_t ApproxFittedModelBytes(const std::string& key, const FittedModel& model) {
  return sizeof(FittedModel) + model.fitted.capacity() * sizeof(double) +
         key.capacity() + 64;  // map/list node overhead
}

std::pair<FittedModelPtr, bool> SharedFittedModelCache::GetOrFit(
    const std::string& key, const std::function<FittedModel()>& fit) {
  std::shared_future<FittedModelPtr> future;
  bool fit_here = false;
  std::promise<FittedModelPtr> promise;
  {
    // Fast path: shared-lock find. The common warm-path case never takes the
    // exclusive lock. Find (not Peek) so a budgeted cache sees real recency.
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (FittedModelPtr model = completed_.Find(key)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return {std::move(model), false};
    }
    auto it = inflight_.find(key);
    if (it != inflight_.end()) future = it->second;
  }
  if (!future.valid()) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    // Re-check under the exclusive lock: another caller may have published
    // (or started) this key between our two lock acquisitions.
    if (FittedModelPtr model = completed_.Find(key)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return {std::move(model), false};
    }
    auto [it, inserted] = inflight_.try_emplace(key);
    if (inserted) {
      it->second = promise.get_future().share();
      fit_here = true;
    }
    future = it->second;
  }

  if (!fit_here) {
    FittedModelPtr model = future.get();  // blocks while another caller's fit runs
    hits_.fetch_add(1, std::memory_order_relaxed);  // after get(): failed fits are no hit
    return {std::move(model), false};
  }

  // This call won the insert race: train OUTSIDE the lock so a slow fit
  // never blocks unrelated lookups, then publish. completed_-insert and
  // inflight_-erase happen under one exclusive lock so no lookup can
  // observe the key in neither map.
  misses_.fetch_add(1, std::memory_order_relaxed);
  fits_.fetch_add(1, std::memory_order_relaxed);
  try {
    FittedModelPtr model = std::make_shared<const FittedModel>(fit());
    {
      std::unique_lock<std::shared_mutex> lock(mu_);
      completed_.Insert(key, model, ApproxFittedModelBytes(key, *model));
      inflight_.erase(key);
    }
    promise.set_value(model);
    return {std::move(model), true};
  } catch (...) {
    // Erase BEFORE publishing the exception: once the key is gone, new
    // arrivals retry fresh — only callers already holding the future (true
    // waiters on this failed fit) observe the exception.
    {
      std::unique_lock<std::shared_mutex> lock(mu_);
      inflight_.erase(key);
    }
    promise.set_exception(std::current_exception());
    throw;
  }
}

FittedModelPtr SharedFittedModelCache::Find(const std::string& key) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return completed_.Peek(key);
}

void SharedFittedModelCache::Put(const std::string& key, FittedModelPtr model) {
  if (model == nullptr) return;
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (inflight_.find(key) != inflight_.end()) return;  // a live fit wins
  size_t bytes = ApproxFittedModelBytes(key, *model);
  completed_.Insert(key, std::move(model), bytes);
}

std::vector<std::string> SharedFittedModelCache::Keys() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> keys = completed_.Keys();
  for (const auto& [key, future] : inflight_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

std::vector<std::pair<std::string, FittedModelPtr>>
SharedFittedModelCache::CompletedEntries() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return completed_.Items();
}

int64_t SharedFittedModelCache::entries() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return completed_.entries() + static_cast<int64_t>(inflight_.size());
}

}  // namespace reptile
