#include "factor/row_iterator.h"

#include "common/check.h"

namespace reptile {

RowIterator::RowIterator(const FactorizedMatrix& fm) : fm_(&fm) {
  int flat = 0;
  for (int k = 0; k < fm.num_trees(); ++k) {
    cursors_.emplace_back(&fm.tree(k), fm.tree(k).depth() - 1);
    attr_offset_.push_back(flat);
    flat += fm.tree(k).depth();
  }
}

bool RowIterator::Start(std::vector<AttrChange>* changed) {
  changed->clear();
  if (fm_->num_rows() == 0) return false;
  for (auto& cursor : cursors_) cursor.Reset();
  row_ = 0;
  for (int k = 0; k < fm_->num_trees(); ++k) AppendTreeChanges(k, 0, changed);
  return true;
}

bool RowIterator::Next(std::vector<AttrChange>* changed) {
  changed->clear();
  if (row_ + 1 >= fm_->num_rows()) {
    row_ = fm_->num_rows();
    return false;
  }
  ++row_;
  // Mixed-radix advance: bump the last tree; on wrap, carry into the
  // previous tree. A wrapped cursor resets to its first node, so all of its
  // levels are reported as changed.
  for (int k = fm_->num_trees() - 1; k >= 0; --k) {
    int top_changed = cursors_[k].Advance();
    if (top_changed >= 0) {
      AppendTreeChanges(k, top_changed, changed);
      return true;
    }
    AppendTreeChanges(k, 0, changed);  // wrapped back to the first node
  }
  REPTILE_CHECK(false) << "row count and cursor wrap disagree";
  return false;
}

void RowIterator::AppendTreeChanges(int tree, int from_level,
                                    std::vector<AttrChange>* changed) const {
  const FTree& t = fm_->tree(tree);
  const FTree::Cursor& cursor = cursors_[tree];
  for (int l = from_level; l < t.depth(); ++l) {
    changed->push_back(AttrChange{attr_offset_[tree] + l, t.level(l).value[cursor.node(l)]});
  }
}

int32_t RowIterator::code(int flat_attr) const {
  AttrId attr = fm_->FlatAttr(flat_attr);
  const FTree& t = fm_->tree(attr.hierarchy);
  return t.level(attr.level).value[cursors_[attr.hierarchy].node(attr.level)];
}

int64_t RowIterator::node(int flat_attr) const {
  AttrId attr = fm_->FlatAttr(flat_attr);
  return cursors_[attr.hierarchy].node(attr.level);
}

}  // namespace reptile
