#include "factor/ftree.h"

#include <algorithm>

#include "common/check.h"

namespace reptile {

FTree FTree::FromPaths(std::vector<std::vector<int32_t>> paths, int depth) {
  REPTILE_CHECK_GT(depth, 0);
  REPTILE_CHECK(!paths.empty()) << "FTree needs at least one path";
  for (const auto& p : paths) REPTILE_CHECK_EQ(static_cast<int>(p.size()), depth);
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());
  FTree tree;
  tree.BuildFromSortedPaths(paths, depth);
  return tree;
}

FTree FTree::FromTable(const Table& table, const std::vector<int>& columns,
                       const RowFilter& filter) {
  int depth = static_cast<int>(columns.size());
  REPTILE_CHECK_GT(depth, 0);
  std::vector<const std::vector<int32_t>*> codes;
  codes.reserve(columns.size());
  for (int c : columns) codes.push_back(&table.dim_codes(c));
  std::vector<std::vector<int32_t>> paths;
  paths.reserve(table.num_rows());
  std::vector<int32_t> path(columns.size());
  for (size_t row = 0; row < table.num_rows(); ++row) {
    if (!filter.empty() && !table.Matches(filter, row)) continue;
    for (size_t l = 0; l < codes.size(); ++l) path[l] = (*codes[l])[row];
    paths.push_back(path);
  }
  REPTILE_CHECK(!paths.empty()) << "no rows match the filter";
  return FromPaths(std::move(paths), depth);
}

FTree FTree::Singleton() {
  FTree tree;
  Level level;
  level.value = {0};
  level.parent = {-1};
  level.first_child = {0};
  level.num_children = {0};
  level.leaf_count = {1};
  tree.levels_.push_back(std::move(level));
  return tree;
}

Result<FTree> FTree::FromLevels(std::vector<Level> levels) {
  auto corrupt = [](const std::string& what) {
    return Status::ParseError("corrupt f-tree: " + what);
  };
  int depth = static_cast<int>(levels.size());
  if (depth < 1) return corrupt("no levels");
  for (int l = 0; l < depth; ++l) {
    if (levels[l].value.empty()) return corrupt("empty level");
    if (levels[l].parent.size() != levels[l].value.size()) {
      return corrupt("value/parent size mismatch");
    }
  }
  // Parents: -1 at the root level; otherwise nondecreasing in-range indices
  // into the previous level (children of one node are contiguous, in tree
  // order). Sibling values strictly increase (LeafIndex binary-searches).
  for (int64_t i = 0; i < levels[0].size(); ++i) {
    if (levels[0].parent[i] != -1) return corrupt("root-level node with a parent");
    if (i > 0 && levels[0].value[i] <= levels[0].value[i - 1]) {
      return corrupt("root-level values not strictly increasing");
    }
  }
  for (int l = 1; l < depth; ++l) {
    const Level& level = levels[l];
    const int64_t parent_count = levels[l - 1].size();
    for (int64_t i = 0; i < level.size(); ++i) {
      if (level.parent[i] < 0 || level.parent[i] >= parent_count) {
        return corrupt("parent index out of range");
      }
      if (i > 0) {
        if (level.parent[i] < level.parent[i - 1]) {
          return corrupt("children not contiguous in tree order");
        }
        if (level.parent[i] == level.parent[i - 1] &&
            level.value[i] <= level.value[i - 1]) {
          return corrupt("sibling values not strictly increasing");
        }
      }
    }
  }
  // Recompute the derived vectors exactly as BuildFromSortedPaths does.
  for (int l = 0; l < depth; ++l) {
    Level& level = levels[l];
    level.first_child.assign(level.size(), 0);
    level.num_children.assign(level.size(), 0);
    if (l + 1 < depth) {
      const Level& child = levels[l + 1];
      for (int64_t c = 0; c < child.size(); ++c) {
        int64_t parent = child.parent[c];
        if (level.num_children[parent] == 0) level.first_child[parent] = c;
        ++level.num_children[parent];
      }
      // Every path runs root to leaf: a childless inner node cannot exist.
      for (int64_t i = 0; i < level.size(); ++i) {
        if (level.num_children[i] == 0) return corrupt("inner node without children");
      }
    }
  }
  levels[depth - 1].leaf_count.assign(levels[depth - 1].size(), 1);
  for (int l = depth - 2; l >= 0; --l) {
    Level& level = levels[l];
    const Level& child = levels[l + 1];
    level.leaf_count.assign(level.size(), 0);
    for (int64_t c = 0; c < child.size(); ++c) {
      level.leaf_count[child.parent[c]] += child.leaf_count[c];
    }
  }
  FTree tree;
  tree.levels_ = std::move(levels);
  return tree;
}

size_t FTree::ApproxBytes() const {
  size_t total = sizeof(FTree);
  for (const Level& level : levels_) {
    total += sizeof(Level);
    total += level.value.capacity() * sizeof(int32_t);
    total += (level.parent.capacity() + level.first_child.capacity() +
              level.num_children.capacity() + level.leaf_count.capacity()) *
             sizeof(int64_t);
  }
  return total;
}

void FTree::BuildFromSortedPaths(const std::vector<std::vector<int32_t>>& paths, int depth) {
  levels_.assign(depth, Level());
  // Append one node per distinct path prefix, in tree (= sorted path) order.
  for (size_t p = 0; p < paths.size(); ++p) {
    int diverge = 0;
    if (p > 0) {
      while (diverge < depth && paths[p][diverge] == paths[p - 1][diverge]) ++diverge;
    } else {
      diverge = 0;
    }
    for (int l = (p == 0 ? 0 : diverge); l < depth; ++l) {
      Level& level = levels_[l];
      level.value.push_back(paths[p][l]);
      level.parent.push_back(l == 0 ? -1 : levels_[l - 1].size() - 1);
    }
  }
  // Child ranges from the parent arrays (children of a node are contiguous).
  for (int l = 0; l < depth; ++l) {
    Level& level = levels_[l];
    level.first_child.assign(level.size(), 0);
    level.num_children.assign(level.size(), 0);
    if (l + 1 < depth) {
      const Level& child = levels_[l + 1];
      for (int64_t c = 0; c < child.size(); ++c) {
        int64_t parent = child.parent[c];
        if (level.num_children[parent] == 0) level.first_child[parent] = c;
        ++level.num_children[parent];
      }
    }
  }
  // Subtree leaf counts, bottom-up. These are the local COUNT aggregates.
  levels_[depth - 1].leaf_count.assign(levels_[depth - 1].size(), 1);
  for (int l = depth - 2; l >= 0; --l) {
    Level& level = levels_[l];
    const Level& child = levels_[l + 1];
    level.leaf_count.assign(level.size(), 0);
    for (int64_t c = 0; c < child.size(); ++c) {
      level.leaf_count[child.parent[c]] += child.leaf_count[c];
    }
  }
}

int64_t FTree::AncestorAt(int level, int64_t node, int target_level) const {
  REPTILE_CHECK_LE(target_level, level);
  while (level > target_level) {
    node = levels_[level].parent[node];
    --level;
  }
  return node;
}

int64_t FTree::LeafIndex(const int32_t* path, int length) const {
  REPTILE_CHECK_EQ(length, depth());
  int64_t begin = 0;
  int64_t end = levels_[0].size();
  int64_t node = -1;
  for (int l = 0; l < depth(); ++l) {
    const Level& level = levels_[l];
    auto first = level.value.begin() + begin;
    auto last = level.value.begin() + end;
    auto it = std::lower_bound(first, last, path[l]);
    if (it == last || *it != path[l]) return -1;
    node = begin + (it - first);
    if (l + 1 < depth()) {
      begin = level.first_child[node];
      end = begin + level.num_children[node];
    }
  }
  return node;
}

int FTree::MatchedPrefixDepth(const int32_t* path, int length) const {
  REPTILE_CHECK_EQ(length, depth());
  int64_t begin = 0;
  int64_t end = levels_[0].size();
  for (int l = 0; l < depth(); ++l) {
    const Level& level = levels_[l];
    auto first = level.value.begin() + begin;
    auto last = level.value.begin() + end;
    auto it = std::lower_bound(first, last, path[l]);
    if (it == last || *it != path[l]) return l;
    int64_t node = begin + (it - first);
    if (l + 1 < depth()) {
      begin = level.first_child[node];
      end = begin + level.num_children[node];
    }
  }
  return depth();
}

std::vector<int32_t> FTree::LeafPath(int64_t leaf) const {
  std::vector<int32_t> path(depth());
  int64_t node = leaf;
  for (int l = depth() - 1; l >= 0; --l) {
    path[l] = levels_[l].value[node];
    node = levels_[l].parent[node];
  }
  return path;
}

FTree::Cursor::Cursor(const FTree* tree, int level) : tree_(tree), level_(level) {
  REPTILE_CHECK(level >= 0 && level < tree->depth());
  path_.assign(level + 1, 0);
}

int FTree::Cursor::Advance() {
  int64_t next = path_[level_] + 1;
  if (next >= tree_->num_nodes(level_)) {
    Reset();
    return -1;
  }
  path_[level_] = next;
  // Repair ancestors: nodes are in tree order, so walking up the parent
  // pointers terminates at the highest level that changed.
  int l = level_;
  int64_t node = next;
  while (l > 0) {
    int64_t parent = tree_->level(l).parent[node];
    if (parent == path_[l - 1]) break;
    path_[l - 1] = parent;
    node = parent;
    --l;
  }
  return l;
}

void FTree::Cursor::Reset() { std::fill(path_.begin(), path_.end(), 0); }

}  // namespace reptile
