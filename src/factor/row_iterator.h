// Row iterator over the factorised matrix (paper Appendix C.2, Algorithm 1).
//
// Iterates the rows of the virtual feature matrix in row order, reporting for
// each step only the attributes whose value changed relative to the previous
// row. Vertically adjacent rows overlap heavily (the basis of the right
// multiplication and per-cluster optimizations), so steps are amortised O(1).

#ifndef REPTILE_FACTOR_ROW_ITERATOR_H_
#define REPTILE_FACTOR_ROW_ITERATOR_H_

#include <cstdint>
#include <vector>

#include "factor/frep.h"
#include "factor/ftree.h"

namespace reptile {

/// One changed attribute in a row step.
struct AttrChange {
  int flat_attr;  // flattened attribute index in the FactorizedMatrix
  int32_t code;   // new value code
};

/// Forward iterator over matrix rows. Usage:
///
///   RowIterator it(fm);
///   for (bool ok = it.Start(&changed); ok; ok = it.Next(&changed)) { ... }
///
/// Start positions at row 0 and reports every attribute as changed; Next
/// advances and reports the (typically few) attributes that changed.
class RowIterator {
 public:
  explicit RowIterator(const FactorizedMatrix& fm);

  /// Positions at row 0 and fills `changed` with all attributes.
  /// Returns false when the matrix has no rows.
  bool Start(std::vector<AttrChange>* changed);

  /// Advances one row. Returns false at the end.
  bool Next(std::vector<AttrChange>* changed);

  int64_t row() const { return row_; }

  /// Current value code of a flattened attribute.
  int32_t code(int flat_attr) const;

  /// Current node index of a flattened attribute within its tree level.
  int64_t node(int flat_attr) const;

 private:
  const FactorizedMatrix* fm_;
  std::vector<FTree::Cursor> cursors_;  // one per tree, at the deepest level
  std::vector<int> attr_offset_;        // flat index of each tree's level 0
  int64_t row_ = -1;

  void AppendTreeChanges(int tree, int from_level, std::vector<AttrChange>* changed) const;
};

}  // namespace reptile

#endif  // REPTILE_FACTOR_ROW_ITERATOR_H_
