#include "factor/agg_cache.h"

#include <mutex>

namespace reptile {

const HierarchyAggregates* SharedAggregateCache::Find(int hierarchy, int depth) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(std::make_pair(hierarchy, depth));
  if (it == entries_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return &it->second;
}

const HierarchyAggregates& SharedAggregateCache::Insert(int hierarchy, int depth,
                                                        HierarchyAggregates built) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] = entries_.emplace(std::make_pair(hierarchy, depth), std::move(built));
  // When !inserted another session built and inserted the same key between
  // our Find() miss and now; both builds are deterministic functions of the
  // immutable table, so keeping theirs and dropping ours loses nothing.
  return it->second;
}

int64_t SharedAggregateCache::entries() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return static_cast<int64_t>(entries_.size());
}

std::vector<std::pair<int, int>> SharedAggregateCache::Keys() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::pair<int, int>> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) keys.push_back(key);
  return keys;
}

}  // namespace reptile
