#include "factor/agg_cache.h"

namespace reptile {

size_t ApproxHierarchyAggregatesBytes(const HierarchyAggregates& aggregates) {
  size_t total = sizeof(HierarchyAggregates) + 64;  // map/list node overhead
  if (aggregates.tree != nullptr) total += aggregates.tree->ApproxBytes();
  if (aggregates.locals != nullptr) total += aggregates.locals->ApproxBytes();
  return total;
}

HierarchyAggregatesPtr SharedAggregateCache::Find(int hierarchy, int depth) const {
  return cache_.Find(std::make_pair(hierarchy, depth));
}

HierarchyAggregatesPtr SharedAggregateCache::Insert(int hierarchy, int depth,
                                                    HierarchyAggregates built) {
  size_t bytes = ApproxHierarchyAggregatesBytes(built);
  auto entry = std::make_shared<const HierarchyAggregates>(std::move(built));
  return cache_.Insert(std::make_pair(hierarchy, depth), std::move(entry), bytes);
}

}  // namespace reptile
