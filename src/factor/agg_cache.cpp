#include "factor/agg_cache.h"

namespace reptile {

AggregateEpochs MakeUniformEpochs(const std::vector<int>& max_depths, int64_t epoch) {
  AggregateEpochs epochs;
  epochs.dirtied.reserve(max_depths.size());
  for (int depth : max_depths) {
    epochs.dirtied.emplace_back(static_cast<size_t>(depth), epoch);
  }
  return epochs;
}

size_t ApproxHierarchyAggregatesBytes(const HierarchyAggregates& aggregates) {
  size_t total = sizeof(HierarchyAggregates) + 64;  // map/list node overhead
  if (aggregates.tree != nullptr) total += aggregates.tree->ApproxBytes();
  if (aggregates.locals != nullptr) total += aggregates.locals->ApproxBytes();
  return total;
}

HierarchyAggregatesPtr SharedAggregateCache::Find(int64_t epoch, int hierarchy,
                                                  int depth) const {
  return cache_.Find(Key(epoch, hierarchy, depth));
}

HierarchyAggregatesPtr SharedAggregateCache::Insert(int64_t epoch, int hierarchy, int depth,
                                                    HierarchyAggregates built) {
  size_t bytes = ApproxHierarchyAggregatesBytes(built);
  auto entry = std::make_shared<const HierarchyAggregates>(std::move(built));
  return cache_.Insert(Key(epoch, hierarchy, depth), std::move(entry), bytes);
}

}  // namespace reptile
