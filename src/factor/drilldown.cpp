#include "factor/drilldown.h"

#include <algorithm>

#include "common/check.h"
#include "common/timer.h"
#include "parallel/thread_pool.h"

namespace reptile {

DrillDownState::DrillDownState(const Dataset* dataset, Mode mode,
                               SharedAggregateCache* shared_cache,
                               const AggregateEpochs* epochs)
    : dataset_(dataset), mode_(mode), shared_cache_(shared_cache), epochs_(epochs) {
  REPTILE_CHECK(dataset != nullptr);
  committed_depth_.assign(dataset->num_hierarchies(), 0);
  invocation_build_seconds_.assign(dataset->num_hierarchies(), 0.0);
}

int DrillDownState::max_depth(int hierarchy) const {
  return dataset_->hierarchy(hierarchy).depth();
}

bool DrillDownState::CanDrill(int hierarchy) const {
  return committed_depth_[hierarchy] < max_depth(hierarchy);
}

void DrillDownState::BeginInvocation() {
  std::fill(invocation_build_seconds_.begin(), invocation_build_seconds_.end(), 0.0);
  if (SharedCache() != nullptr) {
    // Shared mode: held_ is only the previous invocation's pin set. Release
    // it so LRU-evicted entries actually free; everything still resident in
    // the shared cache is re-pinned (a cheap Find) as it is touched.
    held_.clear();
    return;
  }
  switch (mode_) {
    case Mode::kStatic:
      held_.clear();
      break;
    case Mode::kDynamic: {
      // Keep only committed depths (hierarchy independence lets their global
      // aggregates be reused with O(1) scalar updates); candidate depths are
      // rebuilt on demand.
      for (auto it = held_.begin(); it != held_.end();) {
        auto [hierarchy, depth] = it->first;
        if (depth != committed_depth_[hierarchy]) {
          it = held_.erase(it);
        } else {
          ++it;
        }
      }
      break;
    }
    case Mode::kCacheDynamic:
      break;  // private kCacheDynamic keeps everything forever
  }
}

const HierarchyAggregates& DrillDownState::Pin(std::pair<int, int> key,
                                               HierarchyAggregatesPtr entry) {
  return *held_.insert_or_assign(key, std::move(entry)).first->second;
}

const HierarchyAggregates& DrillDownState::Get(int hierarchy, int depth) {
  REPTILE_CHECK(depth >= 1 && depth <= max_depth(hierarchy));
  auto key = std::make_pair(hierarchy, depth);
  auto it = held_.find(key);
  if (it != held_.end()) return *it->second;
  if (SharedAggregateCache* shared = SharedCache()) {
    if (HierarchyAggregatesPtr entry = shared->Find(EpochOf(hierarchy, depth), hierarchy, depth)) {
      return Pin(key, std::move(entry));
    }
    Timer timer;
    HierarchyAggregates built = Build(hierarchy, depth);
    invocation_build_seconds_[hierarchy] += timer.Seconds();
    ++total_builds_;  // this session did the work, even if it loses the insert race
    return Pin(key, shared->Insert(EpochOf(hierarchy, depth), hierarchy, depth,
                                   std::move(built)));
  }
  Timer timer;
  HierarchyAggregates built = Build(hierarchy, depth);
  invocation_build_seconds_[hierarchy] += timer.Seconds();
  ++total_builds_;
  return Pin(key, std::make_shared<const HierarchyAggregates>(std::move(built)));
}

std::map<std::pair<int, int>, double> DrillDownState::Prefetch(
    const std::vector<std::pair<int, int>>& keys, ThreadPool* pool) {
  SharedAggregateCache* shared = SharedCache();
  // Deduplicated keys missing from the pin set, in deterministic (sorted)
  // order so task indices are scheduling-independent. A shared-cache hit is
  // pinned right here — the pin, not the cache, is what guarantees the key
  // survives until the batch's Peek()s are done.
  std::vector<std::pair<int, int>> missing = keys;
  std::sort(missing.begin(), missing.end());
  missing.erase(std::unique(missing.begin(), missing.end()), missing.end());
  std::erase_if(missing, [&](const std::pair<int, int>& key) {
    REPTILE_CHECK(key.second >= 1 && key.second <= max_depth(key.first));
    if (held_.find(key) != held_.end()) return true;
    if (shared == nullptr) return false;
    if (HierarchyAggregatesPtr entry =
            shared->Find(EpochOf(key.first, key.second), key.first, key.second)) {
      Pin(key, std::move(entry));
      return true;
    }
    return false;
  });

  // Parallel region: builds only; no shared state is touched.
  struct BuiltEntry {
    HierarchyAggregates aggregates;
    double seconds = 0.0;
  };
  std::vector<BuiltEntry> built =
      ParallelMap<BuiltEntry>(pool, static_cast<int64_t>(missing.size()), [&](int64_t i) {
        Timer timer;
        BuiltEntry entry;
        entry.aggregates = Build(missing[static_cast<size_t>(i)].first,
                                 missing[static_cast<size_t>(i)].second);
        entry.seconds = timer.Seconds();
        return entry;
      });

  // Sequential epilogue: cache insertion, pinning, and the Figure 9
  // accounting. Another session may have inserted a key concurrently;
  // SharedAggregateCache::Insert keeps the first copy (we adopt it) and we
  // still charge ourselves for the build we did.
  std::map<std::pair<int, int>, double> build_seconds;
  for (size_t i = 0; i < missing.size(); ++i) {
    invocation_build_seconds_[missing[i].first] += built[i].seconds;
    ++total_builds_;
    if (shared != nullptr) {
      Pin(missing[i],
          shared->Insert(EpochOf(missing[i].first, missing[i].second), missing[i].first,
                         missing[i].second, std::move(built[i].aggregates)));
    } else {
      Pin(missing[i],
          std::make_shared<const HierarchyAggregates>(std::move(built[i].aggregates)));
    }
    build_seconds[missing[i]] = built[i].seconds;
  }
  return build_seconds;
}

const HierarchyAggregates& DrillDownState::Peek(int hierarchy, int depth) const {
  auto it = held_.find(std::make_pair(hierarchy, depth));
  REPTILE_CHECK(it != held_.end())
      << "drill-down aggregates (" << hierarchy << ", " << depth
      << ") read before being prefetched or built";
  return *it->second;
}

void DrillDownState::Commit(int hierarchy) {
  REPTILE_CHECK(CanDrill(hierarchy)) << "hierarchy " << hierarchy << " fully drilled";
  ++committed_depth_[hierarchy];
}

double DrillDownState::InvocationBuildSeconds(int hierarchy) const {
  return invocation_build_seconds_[hierarchy];
}

void DrillDownState::ResetStats() { total_builds_ = 0; }

HierarchyAggregates DrillDownState::Build(int hierarchy, int depth) {
  HierarchyAggregates out;
  std::vector<int> columns = dataset_->HierarchyColumns(hierarchy, depth);
  out.tree = std::make_unique<FTree>(FTree::FromTable(dataset_->table(), columns));
  out.locals = std::make_unique<LocalAggregates>(out.tree.get());
  return out;
}

}  // namespace reptile
