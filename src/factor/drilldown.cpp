#include "factor/drilldown.h"

#include <algorithm>

#include "common/check.h"
#include "common/timer.h"
#include "parallel/thread_pool.h"

namespace reptile {

DrillDownState::DrillDownState(const Dataset* dataset, Mode mode,
                               SharedAggregateCache* shared_cache)
    : dataset_(dataset), mode_(mode), shared_cache_(shared_cache) {
  REPTILE_CHECK(dataset != nullptr);
  committed_depth_.assign(dataset->num_hierarchies(), 0);
  invocation_build_seconds_.assign(dataset->num_hierarchies(), 0.0);
}

int DrillDownState::max_depth(int hierarchy) const {
  return dataset_->hierarchy(hierarchy).depth();
}

bool DrillDownState::CanDrill(int hierarchy) const {
  return committed_depth_[hierarchy] < max_depth(hierarchy);
}

void DrillDownState::BeginInvocation() {
  std::fill(invocation_build_seconds_.begin(), invocation_build_seconds_.end(), 0.0);
  switch (mode_) {
    case Mode::kStatic:
      cache_.clear();
      break;
    case Mode::kDynamic: {
      // Keep only committed depths (hierarchy independence lets their global
      // aggregates be reused with O(1) scalar updates); candidate depths are
      // rebuilt on demand.
      for (auto it = cache_.begin(); it != cache_.end();) {
        auto [hierarchy, depth] = it->first;
        if (depth != committed_depth_[hierarchy]) {
          it = cache_.erase(it);
        } else {
          ++it;
        }
      }
      break;
    }
    case Mode::kCacheDynamic:
      break;  // keep everything — matches the shared cache's append-only contract
  }
}

const HierarchyAggregates& DrillDownState::Get(int hierarchy, int depth) {
  REPTILE_CHECK(depth >= 1 && depth <= max_depth(hierarchy));
  if (SharedAggregateCache* shared = SharedCache()) {
    if (const HierarchyAggregates* entry = shared->Find(hierarchy, depth)) return *entry;
    Timer timer;
    HierarchyAggregates built = Build(hierarchy, depth);
    invocation_build_seconds_[hierarchy] += timer.Seconds();
    ++total_builds_;  // this session did the work, even if it loses the insert race
    return shared->Insert(hierarchy, depth, std::move(built));
  }
  auto key = std::make_pair(hierarchy, depth);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    Timer timer;
    HierarchyAggregates built = Build(hierarchy, depth);
    invocation_build_seconds_[hierarchy] += timer.Seconds();
    ++total_builds_;
    it = cache_.emplace(key, std::move(built)).first;
  }
  return it->second;
}

std::map<std::pair<int, int>, double> DrillDownState::Prefetch(
    const std::vector<std::pair<int, int>>& keys, ThreadPool* pool) {
  SharedAggregateCache* shared = SharedCache();
  // Deduplicated keys missing from the cache, in deterministic (sorted)
  // order so task indices are scheduling-independent.
  std::vector<std::pair<int, int>> missing = keys;
  std::sort(missing.begin(), missing.end());
  missing.erase(std::unique(missing.begin(), missing.end()), missing.end());
  std::erase_if(missing, [&](const std::pair<int, int>& key) {
    REPTILE_CHECK(key.second >= 1 && key.second <= max_depth(key.first));
    if (shared != nullptr) return shared->Find(key.first, key.second) != nullptr;
    return cache_.find(key) != cache_.end();
  });

  // Parallel region: builds only; no shared state is touched.
  struct BuiltEntry {
    HierarchyAggregates aggregates;
    double seconds = 0.0;
  };
  std::vector<BuiltEntry> built =
      ParallelMap<BuiltEntry>(pool, static_cast<int64_t>(missing.size()), [&](int64_t i) {
        Timer timer;
        BuiltEntry entry;
        entry.aggregates = Build(missing[static_cast<size_t>(i)].first,
                                 missing[static_cast<size_t>(i)].second);
        entry.seconds = timer.Seconds();
        return entry;
      });

  // Sequential epilogue: cache insertion and the Figure 9 accounting. Another
  // session may have inserted a key concurrently; SharedAggregateCache::Insert
  // keeps the first copy and we still charge ourselves for the build we did.
  std::map<std::pair<int, int>, double> build_seconds;
  for (size_t i = 0; i < missing.size(); ++i) {
    invocation_build_seconds_[missing[i].first] += built[i].seconds;
    ++total_builds_;
    if (shared != nullptr) {
      shared->Insert(missing[i].first, missing[i].second, std::move(built[i].aggregates));
    } else {
      cache_.emplace(missing[i], std::move(built[i].aggregates));
    }
    build_seconds[missing[i]] = built[i].seconds;
  }
  return build_seconds;
}

const HierarchyAggregates& DrillDownState::Peek(int hierarchy, int depth) const {
  if (const SharedAggregateCache* shared = SharedCache()) {
    const HierarchyAggregates* entry = shared->Find(hierarchy, depth);
    REPTILE_CHECK(entry != nullptr)
        << "drill-down aggregates (" << hierarchy << ", " << depth
        << ") read before being prefetched or built";
    return *entry;
  }
  auto it = cache_.find(std::make_pair(hierarchy, depth));
  REPTILE_CHECK(it != cache_.end())
      << "drill-down aggregates (" << hierarchy << ", " << depth
      << ") read before being prefetched or built";
  return it->second;
}

void DrillDownState::Commit(int hierarchy) {
  REPTILE_CHECK(CanDrill(hierarchy)) << "hierarchy " << hierarchy << " fully drilled";
  ++committed_depth_[hierarchy];
}

double DrillDownState::InvocationBuildSeconds(int hierarchy) const {
  return invocation_build_seconds_[hierarchy];
}

void DrillDownState::ResetStats() { total_builds_ = 0; }

HierarchyAggregates DrillDownState::Build(int hierarchy, int depth) {
  HierarchyAggregates out;
  std::vector<int> columns = dataset_->HierarchyColumns(hierarchy, depth);
  out.tree = std::make_unique<FTree>(FTree::FromTable(dataset_->table(), columns));
  out.locals = std::make_unique<LocalAggregates>(out.tree.get());
  return out;
}

}  // namespace reptile
