#include "factor/drilldown.h"

#include "common/check.h"
#include "common/timer.h"

namespace reptile {

DrillDownState::DrillDownState(const Dataset* dataset, Mode mode)
    : dataset_(dataset), mode_(mode) {
  REPTILE_CHECK(dataset != nullptr);
  committed_depth_.assign(dataset->num_hierarchies(), 0);
  invocation_build_seconds_.assign(dataset->num_hierarchies(), 0.0);
}

int DrillDownState::max_depth(int hierarchy) const {
  return dataset_->hierarchy(hierarchy).depth();
}

bool DrillDownState::CanDrill(int hierarchy) const {
  return committed_depth_[hierarchy] < max_depth(hierarchy);
}

void DrillDownState::BeginInvocation() {
  std::fill(invocation_build_seconds_.begin(), invocation_build_seconds_.end(), 0.0);
  switch (mode_) {
    case Mode::kStatic:
      cache_.clear();
      break;
    case Mode::kDynamic: {
      // Keep only committed depths (hierarchy independence lets their global
      // aggregates be reused with O(1) scalar updates); candidate depths are
      // rebuilt on demand.
      for (auto it = cache_.begin(); it != cache_.end();) {
        auto [hierarchy, depth] = it->first;
        if (depth != committed_depth_[hierarchy]) {
          it = cache_.erase(it);
        } else {
          ++it;
        }
      }
      break;
    }
    case Mode::kCacheDynamic:
      break;  // keep everything
  }
}

const HierarchyAggregates& DrillDownState::Get(int hierarchy, int depth) {
  REPTILE_CHECK(depth >= 1 && depth <= max_depth(hierarchy));
  auto key = std::make_pair(hierarchy, depth);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    Timer timer;
    HierarchyAggregates built = Build(hierarchy, depth);
    invocation_build_seconds_[hierarchy] += timer.Seconds();
    ++total_builds_;
    it = cache_.emplace(key, std::move(built)).first;
  }
  return it->second;
}

void DrillDownState::Commit(int hierarchy) {
  REPTILE_CHECK(CanDrill(hierarchy)) << "hierarchy " << hierarchy << " fully drilled";
  ++committed_depth_[hierarchy];
}

double DrillDownState::InvocationBuildSeconds(int hierarchy) const {
  return invocation_build_seconds_[hierarchy];
}

void DrillDownState::ResetStats() { total_builds_ = 0; }

HierarchyAggregates DrillDownState::Build(int hierarchy, int depth) {
  HierarchyAggregates out;
  std::vector<int> columns = dataset_->HierarchyColumns(hierarchy, depth);
  out.tree = std::make_unique<FTree>(FTree::FromTable(dataset_->table(), columns));
  out.locals = std::make_unique<LocalAggregates>(out.tree.get());
  return out;
}

}  // namespace reptile
