#include "factor/frep.h"

#include "common/check.h"

namespace reptile {

void FactorizedMatrix::AddTree(const FTree* tree) {
  REPTILE_CHECK(tree != nullptr);
  REPTILE_CHECK(columns_.empty()) << "add all trees before columns";
  trees_.push_back(tree);
  RecomputeLayout();
}

void FactorizedMatrix::RecomputeLayout() {
  attr_of_flat_.clear();
  attr_offset_.clear();
  prefix_leaves_.assign(trees_.size(), 1);
  suffix_leaves_.assign(trees_.size(), 1);
  num_rows_ = 1;
  for (size_t k = 0; k < trees_.size(); ++k) {
    attr_offset_.push_back(static_cast<int>(attr_of_flat_.size()));
    for (int l = 0; l < trees_[k]->depth(); ++l) {
      attr_of_flat_.push_back(AttrId{static_cast<int>(k), l});
    }
    num_rows_ *= trees_[k]->num_leaves();
    REPTILE_CHECK_LT(num_rows_, int64_t{1} << 62) << "matrix row count overflow";
  }
  for (size_t k = 1; k < trees_.size(); ++k) {
    prefix_leaves_[k] = prefix_leaves_[k - 1] * trees_[k - 1]->num_leaves();
  }
  for (size_t k = trees_.size(); k-- > 1;) {
    suffix_leaves_[k - 1] = suffix_leaves_[k] * trees_[k]->num_leaves();
  }
  columns_on_attr_.assign(attr_of_flat_.size(), {});
}

int FactorizedMatrix::AddColumn(FeatureColumn column) {
  int index = num_cols();
  if (column.is_multi) {
    REPTILE_CHECK(!column.attrs.empty());
    for (AttrId a : column.attrs) (void)FlatAttrIndex(a);  // validates
    multi_columns_.push_back(index);
  } else {
    columns_on_attr_[FlatAttrIndex(column.attr)].push_back(index);
  }
  columns_.push_back(std::move(column));
  return index;
}

bool FactorizedMatrix::AllSingleAttribute() const { return multi_columns_.empty(); }

int FactorizedMatrix::FlatAttrIndex(AttrId attr) const {
  REPTILE_CHECK(attr.hierarchy >= 0 && attr.hierarchy < num_trees());
  REPTILE_CHECK(attr.level >= 0 && attr.level < trees_[attr.hierarchy]->depth())
      << "bad attribute level " << attr.level;
  return attr_offset_[attr.hierarchy] + attr.level;
}

const std::vector<int>& FactorizedMatrix::ColumnsOnAttr(AttrId attr) const {
  return columns_on_attr_[FlatAttrIndex(attr)];
}

AttrId FactorizedMatrix::IntraAttr() const {
  REPTILE_CHECK(!trees_.empty());
  int last = num_trees() - 1;
  return AttrId{last, trees_[last]->depth() - 1};
}

int64_t FactorizedMatrix::num_clusters() const {
  const FTree& last = *trees_.back();
  int64_t parents = last.depth() >= 2 ? last.num_nodes(last.depth() - 2) : 1;
  return prefix_leaves_.back() * parents;
}

int64_t FactorizedMatrix::ClusterOfRow(int64_t row) const {
  const FTree& last = *trees_.back();
  int64_t last_leaf = row % last.num_leaves();
  int64_t prefix_combo = row / last.num_leaves();
  int64_t parents = last.depth() >= 2 ? last.num_nodes(last.depth() - 2) : 1;
  int64_t parent =
      last.depth() >= 2 ? last.level(last.depth() - 1).parent[last_leaf] : int64_t{0};
  return prefix_combo * parents + parent;
}

void FactorizedMatrix::DecodeRowToLeaves(int64_t row, std::vector<int64_t>* leaves) const {
  REPTILE_CHECK(row >= 0 && row < num_rows_);
  leaves->resize(trees_.size());
  for (size_t k = 0; k < trees_.size(); ++k) {
    (*leaves)[k] = (row / suffix_leaves_[k]) % trees_[k]->num_leaves();
  }
}

int64_t FactorizedMatrix::RowOfLeaves(const std::vector<int64_t>& leaves) const {
  REPTILE_CHECK_EQ(leaves.size(), trees_.size());
  int64_t row = 0;
  for (size_t k = 0; k < trees_.size(); ++k) {
    REPTILE_CHECK(leaves[k] >= 0 && leaves[k] < trees_[k]->num_leaves());
    row += leaves[k] * suffix_leaves_[k];
  }
  return row;
}

void FactorizedMatrix::DecodeRowToCodes(int64_t row, std::vector<int32_t>* codes) const {
  codes->resize(attr_of_flat_.size());
  int flat = 0;
  for (size_t k = 0; k < trees_.size(); ++k) {
    int64_t leaf = (row / suffix_leaves_[k]) % trees_[k]->num_leaves();
    const FTree& tree = *trees_[k];
    int64_t node = leaf;
    for (int l = tree.depth() - 1; l >= 0; --l) {
      (*codes)[flat + l] = tree.level(l).value[node];
      node = tree.level(l).parent[node];
    }
    flat += tree.depth();
  }
}

double FactorizedMatrix::ColumnValue(int c, const std::vector<int32_t>& codes) const {
  const FeatureColumn& column = columns_[c];
  if (!column.is_multi) {
    return column.ValueForCode(codes[FlatAttrIndex(column.attr)]);
  }
  std::vector<int32_t> key(column.attrs.size());
  for (size_t i = 0; i < column.attrs.size(); ++i) {
    key[i] = codes[FlatAttrIndex(column.attrs[i])];
  }
  return column.ValueForTuple(key);
}

void FactorizedMatrix::FeatureRow(int64_t row, std::vector<double>* out) const {
  std::vector<int32_t> codes;
  DecodeRowToCodes(row, &codes);
  out->resize(columns_.size());
  for (int c = 0; c < num_cols(); ++c) (*out)[c] = ColumnValue(c, codes);
}

std::vector<int64_t> MapTableRowsToMatrixRows(const FactorizedMatrix& fm, const Table& table,
                                              const std::vector<std::vector<int>>& tree_columns,
                                              const RowFilter& filter) {
  REPTILE_CHECK_EQ(static_cast<int>(tree_columns.size()), fm.num_trees());
  for (int k = 0; k < fm.num_trees(); ++k) {
    if (!tree_columns[k].empty()) {
      REPTILE_CHECK_EQ(static_cast<int>(tree_columns[k].size()), fm.tree(k).depth());
    }
  }
  std::vector<int64_t> result;
  result.reserve(table.num_rows());
  std::vector<int64_t> leaves(fm.num_trees(), 0);
  std::vector<int32_t> path;
  for (size_t row = 0; row < table.num_rows(); ++row) {
    if (!filter.empty() && !table.Matches(filter, row)) {
      continue;
    }
    bool found = true;
    for (int k = 0; k < fm.num_trees(); ++k) {
      if (tree_columns[k].empty()) {
        leaves[k] = 0;  // intercept tree
        continue;
      }
      path.resize(tree_columns[k].size());
      for (size_t l = 0; l < tree_columns[k].size(); ++l) {
        path[l] = table.dim_codes(tree_columns[k][l])[row];
      }
      int64_t leaf = fm.tree(k).LeafIndex(path.data(), static_cast<int>(path.size()));
      if (leaf < 0) {
        found = false;
        break;
      }
      leaves[k] = leaf;
    }
    result.push_back(found ? fm.RowOfLeaves(leaves) : -1);
  }
  return result;
}

std::vector<Moments> BuildGroupMoments(const FactorizedMatrix& fm, const Table& table,
                                       const std::vector<std::vector<int>>& tree_columns,
                                       int measure_column, const RowFilter& filter) {
  std::vector<Moments> moments(static_cast<size_t>(fm.num_rows()));
  const std::vector<double>* measures =
      measure_column >= 0 ? &table.measure(measure_column) : nullptr;
  std::vector<int64_t> leaves(fm.num_trees(), 0);
  std::vector<int32_t> path;
  for (size_t row = 0; row < table.num_rows(); ++row) {
    if (!filter.empty() && !table.Matches(filter, row)) continue;
    bool found = true;
    for (int k = 0; k < fm.num_trees(); ++k) {
      if (tree_columns[k].empty()) {
        leaves[k] = 0;
        continue;
      }
      path.resize(tree_columns[k].size());
      for (size_t l = 0; l < tree_columns[k].size(); ++l) {
        path[l] = table.dim_codes(tree_columns[k][l])[row];
      }
      int64_t leaf = fm.tree(k).LeafIndex(path.data(), static_cast<int>(path.size()));
      if (leaf < 0) {
        found = false;
        break;
      }
      leaves[k] = leaf;
    }
    if (!found) continue;
    double value = measures != nullptr ? (*measures)[row] : 0.0;
    moments[static_cast<size_t>(fm.RowOfLeaves(leaves))].Observe(value);
  }
  return moments;
}

}  // namespace reptile
