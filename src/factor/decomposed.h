// Decomposed count aggregates TOTAL / COUNT / COF (paper Section 4.2.1) and
// the multi-query plan that computes them with shared work (Section 4.3,
// Appendix I, Algorithm 10).
//
// Aggregates are stored per hierarchy ("local"): COUNT of a node is its
// subtree leaf count, TOTAL of a level is the hierarchy's leaf count, and COF
// between two levels of the same hierarchy is the ancestor mapping. Global
// values over the full attribute order are local values times the leaf-count
// products of the other hierarchies — the scalars Algorithm 11 updates in
// O(1) after a drill-down. COF between attributes of different hierarchies is
// never materialised (the cartesian-product optimization of Section 4.2.2).

#ifndef REPTILE_FACTOR_DECOMPOSED_H_
#define REPTILE_FACTOR_DECOMPOSED_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "data/hierarchy.h"
#include "factor/frep.h"
#include "factor/ftree.h"

namespace reptile {

/// Within-hierarchy decomposed aggregates for one FTree.
///
/// COUNT_{A_l}[node]  == tree->level(l).leaf_count[node]      (local form)
/// TOTAL_{A_l}        == tree->num_leaves()                   (local form)
/// COF_{A_a, A_b}     == pairs (Ancestor(a, node_b), node_b) with count
///                       leaf_count[node_b]                   (local form)
///
/// The ancestor tables are materialised here in topological order, reusing
/// each (a, b-1) table to build (a, b) — the work-sharing of Algorithm 10.
class LocalAggregates {
 public:
  LocalAggregates() : tree_(nullptr) {}

  /// Computes all levels' aggregates for `tree` with the shared plan.
  explicit LocalAggregates(const FTree* tree);

  const FTree& tree() const { return *tree_; }
  int64_t total() const { return tree_->num_leaves(); }

  /// Ancestor node at level `a` of `node` at level `b` (a < b), via the
  /// materialised COF table (O(1), no parent-chain walk).
  int64_t Ancestor(int a, int b, int64_t node_at_b) const;

  /// The full ancestor table for a (a, b) level pair.
  const std::vector<int64_t>& AncestorTable(int a, int b) const;

  /// Number of materialised COF tables (= depth*(depth-1)/2) — the quantity
  /// that grows quadratically with drill-down depth (Section 5.1.3).
  int64_t num_cof_tables() const;

  /// Accounted heap size of the ancestor tables, for byte-budgeted caches.
  size_t ApproxBytes() const {
    size_t total = sizeof(LocalAggregates);
    for (const auto& per_a : ancestor_) {
      total += sizeof(per_a);
      for (const auto& table : per_a) {
        total += sizeof(table) + table.capacity() * sizeof(int64_t);
      }
    }
    return total;
  }

 private:
  const FTree* tree_;
  // ancestor_[a][b - a - 1][node_at_b]
  std::vector<std::vector<std::vector<int64_t>>> ancestor_;
};

/// Global view of the decomposed aggregates for a FactorizedMatrix: combines
/// each tree's local aggregates with the cross-hierarchy scalars.
class DecomposedAggregates {
 public:
  /// `locals[k]` must describe fm.tree(k). Locals are borrowed.
  DecomposedAggregates(const FactorizedMatrix* fm, std::vector<const LocalAggregates*> locals);

  /// Total row count n of the virtual matrix.
  int64_t n() const { return fm_->num_rows(); }

  /// TOTAL_A: number of distinct suffix combinations from A onward
  /// (Figure 4) = leaves(tree of A) * suffix leaf product.
  int64_t Total(AttrId attr) const;

  /// COUNT_A[node]: suffix combinations per node of A = subtree leaf count *
  /// suffix leaf product.
  int64_t Count(AttrId attr, int64_t node) const;

  /// Multiplicity of each distinct suffix combination: n / TOTAL_A — how many
  /// times the block of attribute A repeats in the matrix (the
  /// "duplicated twice" factor of Figure 5).
  int64_t PrefixMultiplicity(AttrId attr) const;

  const LocalAggregates& local(int tree) const { return *locals_[tree]; }
  const FactorizedMatrix& fm() const { return *fm_; }

 private:
  const FactorizedMatrix* fm_;
  std::vector<const LocalAggregates*> locals_;
};

}  // namespace reptile

#endif  // REPTILE_FACTOR_DECOMPOSED_H_
