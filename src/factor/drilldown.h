// Drill-down state management (paper Section 4.4, Appendix J, Algorithm 11).
//
// Each Reptile invocation evaluates every hierarchy as a drill-down
// candidate, which needs that hierarchy's f-tree and local decomposed
// aggregates one level deeper, plus every other hierarchy's aggregates at
// their committed depth. Because global aggregates are local aggregates times
// cross-hierarchy leaf products (scalars), the non-drilled hierarchies update
// in O(1); the only real work is (re)building per-hierarchy trees and local
// aggregate tables. This class implements the paper's three policies:
//
//   kStatic       — recompute everything touched, every invocation.
//   kDynamic      — keep committed-depth aggregates across invocations
//                   (hierarchy independence); recompute candidate depths.
//   kCacheDynamic — additionally cache candidate-depth aggregates from
//                   previous invocations (Section 4.4: hierarchies evaluated
//                   but not picked are free next time).

#ifndef REPTILE_FACTOR_DRILLDOWN_H_
#define REPTILE_FACTOR_DRILLDOWN_H_

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "factor/decomposed.h"
#include "factor/ftree.h"

namespace reptile {

class ThreadPool;  // parallel/thread_pool.h

/// A hierarchy's f-tree and local aggregates at one depth.
struct HierarchyAggregates {
  std::unique_ptr<FTree> tree;
  std::unique_ptr<LocalAggregates> locals;
};

/// Per-session drill-down cache.
class DrillDownState {
 public:
  enum class Mode { kStatic, kDynamic, kCacheDynamic };

  DrillDownState(const Dataset* dataset, Mode mode);

  /// Committed drill depth of a hierarchy (0 = not drilled yet).
  int depth(int hierarchy) const { return committed_depth_[hierarchy]; }

  /// Maximum depth (number of attributes) of a hierarchy.
  int max_depth(int hierarchy) const;

  /// True when the hierarchy has at least one undrilled attribute left.
  bool CanDrill(int hierarchy) const;

  /// Marks the start of a Reptile invocation, applying the eviction policy.
  void BeginInvocation();

  /// Trees + local aggregates for `hierarchy` at `depth` levels (1-based
  /// count of attributes), building them if the policy requires.
  const HierarchyAggregates& Get(int hierarchy, int depth);

  /// Builds every (hierarchy, depth) entry of `keys` missing from the cache,
  /// fanning the builds out across `pool` (nullptr = build inline). The
  /// builds themselves run concurrently; all cache bookkeeping happens on
  /// the calling thread, so after Prefetch returns, Get() for these keys is
  /// a pure read and safe to call from many threads at once. Returns the
  /// build seconds per key actually built (cache hits are absent).
  std::map<std::pair<int, int>, double> Prefetch(
      const std::vector<std::pair<int, int>>& keys, ThreadPool* pool);

  /// Pure read of a cached entry (aborts when absent). Unlike Get() this is
  /// const and never builds, so — after a Prefetch covering the key — it is
  /// safe to call concurrently from many worker threads.
  const HierarchyAggregates& Peek(int hierarchy, int depth) const;

  /// Commits a drill-down on `hierarchy` (advances its depth by one).
  void Commit(int hierarchy);

  /// Seconds spent building aggregates for `hierarchy` since the last
  /// BeginInvocation — the per-area quantity of Figure 9.
  double InvocationBuildSeconds(int hierarchy) const;

  /// Number of aggregate builds since construction or ResetStats.
  int64_t total_builds() const { return total_builds_; }
  void ResetStats();

 private:
  const Dataset* dataset_;
  Mode mode_;
  std::vector<int> committed_depth_;
  std::map<std::pair<int, int>, HierarchyAggregates> cache_;  // (hierarchy, depth)
  std::vector<double> invocation_build_seconds_;
  int64_t total_builds_ = 0;

  HierarchyAggregates Build(int hierarchy, int depth);
};

}  // namespace reptile

#endif  // REPTILE_FACTOR_DRILLDOWN_H_
