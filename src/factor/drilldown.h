// Drill-down state management (paper Section 4.4, Appendix J, Algorithm 11).
//
// Each Reptile invocation evaluates every hierarchy as a drill-down
// candidate, which needs that hierarchy's f-tree and local decomposed
// aggregates one level deeper, plus every other hierarchy's aggregates at
// their committed depth. Because global aggregates are local aggregates times
// cross-hierarchy leaf products (scalars), the non-drilled hierarchies update
// in O(1); the only real work is (re)building per-hierarchy trees and local
// aggregate tables. This class implements the paper's three policies:
//
//   kStatic       — recompute everything touched, every invocation.
//   kDynamic      — keep committed-depth aggregates across invocations
//                   (hierarchy independence); recompute candidate depths.
//   kCacheDynamic — additionally cache candidate-depth aggregates from
//                   previous invocations (Section 4.4: hierarchies evaluated
//                   but not picked are free next time).
//
// Since the dataset/session split, DrillDownState is only the CHEAP per-user
// half of the drill-down machinery: the committed-depth vector, the eviction
// policy, and build accounting. The EXPENSIVE half — the (hierarchy, depth)
// aggregate entries themselves — can live in a process-shared
// SharedAggregateCache (factor/agg_cache.h) hanging off a PreparedDataset,
// so N sessions over one dataset build each entry once between them.
// Drilling copies nothing ("copy-on-drill"): Commit() bumps this session's
// depth integer while the aggregates stay shared. A session is handed the
// shared cache at construction; it is used under the default kCacheDynamic
// policy (which never evicts, matching the shared cache's append-only
// contract), while kStatic/kDynamic sessions — whose eviction is the whole
// point of those benchmarking policies — keep a private cache.

#ifndef REPTILE_FACTOR_DRILLDOWN_H_
#define REPTILE_FACTOR_DRILLDOWN_H_

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "factor/agg_cache.h"

namespace reptile {

class ThreadPool;  // parallel/thread_pool.h

/// Per-session drill-down state: committed depths plus either a borrowed
/// shared aggregate cache or a private one.
class DrillDownState {
 public:
  enum class Mode { kStatic, kDynamic, kCacheDynamic };

  /// `shared_cache` may be nullptr (fully private state, the pre-registry
  /// behavior). A non-null shared cache is borrowed — the caller (Engine via
  /// its DatasetHandle) must keep it alive — and is only consulted under
  /// kCacheDynamic; the evicting policies stay private by design.
  DrillDownState(const Dataset* dataset, Mode mode,
                 SharedAggregateCache* shared_cache = nullptr);

  /// Committed drill depth of a hierarchy (0 = not drilled yet).
  int depth(int hierarchy) const { return committed_depth_[hierarchy]; }

  /// Maximum depth (number of attributes) of a hierarchy.
  int max_depth(int hierarchy) const;

  /// True when the hierarchy has at least one undrilled attribute left.
  bool CanDrill(int hierarchy) const;

  /// Marks the start of a Reptile invocation, applying the eviction policy.
  void BeginInvocation();

  /// Trees + local aggregates for `hierarchy` at `depth` levels (1-based
  /// count of attributes), building them if the policy requires.
  const HierarchyAggregates& Get(int hierarchy, int depth);

  /// Builds every (hierarchy, depth) entry of `keys` missing from the cache,
  /// fanning the builds out across `pool` (nullptr = build inline). The
  /// builds themselves run concurrently; all cache bookkeeping happens on
  /// the calling thread (shared-cache inserts take its internal lock), so
  /// after Prefetch returns, Get() for these keys is a pure read and safe to
  /// call from many threads at once. Returns the build seconds per key
  /// actually built (cache hits are absent).
  std::map<std::pair<int, int>, double> Prefetch(
      const std::vector<std::pair<int, int>>& keys, ThreadPool* pool);

  /// Pure read of a cached entry (aborts when absent). Unlike Get() this is
  /// const and never builds, so — after a Prefetch covering the key — it is
  /// safe to call concurrently from many worker threads.
  const HierarchyAggregates& Peek(int hierarchy, int depth) const;

  /// Commits a drill-down on `hierarchy` (advances its depth by one).
  void Commit(int hierarchy);

  /// Seconds spent building aggregates for `hierarchy` since the last
  /// BeginInvocation — the per-area quantity of Figure 9.
  double InvocationBuildSeconds(int hierarchy) const;

  /// Number of aggregate builds THIS session performed since construction or
  /// ResetStats. A session warmed by the shared cache performs zero builds —
  /// the cross-session sharing assertion of the registry tests.
  int64_t total_builds() const { return total_builds_; }
  void ResetStats();

  /// The shared cache consulted by this state, or nullptr when private.
  const SharedAggregateCache* shared_cache() const { return SharedCache(); }

 private:
  /// The shared cache, or nullptr when this state runs on its private map
  /// (no cache handed in, or an evicting policy).
  SharedAggregateCache* SharedCache() const {
    return mode_ == Mode::kCacheDynamic ? shared_cache_ : nullptr;
  }

  const Dataset* dataset_;
  Mode mode_;
  SharedAggregateCache* shared_cache_;  // borrowed; may be nullptr
  std::vector<int> committed_depth_;
  std::map<std::pair<int, int>, HierarchyAggregates> cache_;  // private fallback
  std::vector<double> invocation_build_seconds_;
  int64_t total_builds_ = 0;

  HierarchyAggregates Build(int hierarchy, int depth);
};

}  // namespace reptile

#endif  // REPTILE_FACTOR_DRILLDOWN_H_
