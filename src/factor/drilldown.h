// Drill-down state management (paper Section 4.4, Appendix J, Algorithm 11).
//
// Each Reptile invocation evaluates every hierarchy as a drill-down
// candidate, which needs that hierarchy's f-tree and local decomposed
// aggregates one level deeper, plus every other hierarchy's aggregates at
// their committed depth. Because global aggregates are local aggregates times
// cross-hierarchy leaf products (scalars), the non-drilled hierarchies update
// in O(1); the only real work is (re)building per-hierarchy trees and local
// aggregate tables. This class implements the paper's three policies:
//
//   kStatic       — recompute everything touched, every invocation.
//   kDynamic      — keep committed-depth aggregates across invocations
//                   (hierarchy independence); recompute candidate depths.
//   kCacheDynamic — additionally cache candidate-depth aggregates from
//                   previous invocations (Section 4.4: hierarchies evaluated
//                   but not picked are free next time).
//
// Since the dataset/session split, DrillDownState is only the CHEAP per-user
// half of the drill-down machinery: the committed-depth vector, the eviction
// policy, and build accounting. The EXPENSIVE half — the (hierarchy, depth)
// aggregate entries themselves — can live in a process-shared
// SharedAggregateCache (factor/agg_cache.h) hanging off a PreparedDataset,
// so N sessions over one dataset build each entry once between them.
// Drilling copies nothing ("copy-on-drill"): Commit() bumps this session's
// depth integer while the aggregates stay shared.
//
// Pinning (the owning-handle side of the LRU-cache refactor): every entry
// this state hands out is held in `held_` as a
// shared_ptr<const HierarchyAggregates>. In private modes held_ IS the
// session cache; with a shared cache it is the per-invocation PIN SET — the
// entries Get/Prefetch touched since the last BeginInvocation. The shared
// cache may evict any entry at any time under a byte budget, but a pinned
// entry stays alive until the next BeginInvocation, so the references (and
// the engine's raw per-plan pointers derived from them) stay valid for
// exactly one batch. BeginInvocation drops the pins, letting evicted
// entries actually free.

#ifndef REPTILE_FACTOR_DRILLDOWN_H_
#define REPTILE_FACTOR_DRILLDOWN_H_

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "data/dataset.h"
#include "factor/agg_cache.h"

namespace reptile {

class ThreadPool;  // parallel/thread_pool.h

/// Per-session drill-down state: committed depths plus either a borrowed
/// shared aggregate cache or a private one.
class DrillDownState {
 public:
  enum class Mode { kStatic, kDynamic, kCacheDynamic };

  /// `shared_cache` may be nullptr (fully private state, the pre-registry
  /// behavior). A non-null shared cache is borrowed — the caller (Engine via
  /// its DatasetHandle) must keep it alive — and is only consulted under
  /// kCacheDynamic; the evicting policies stay private by design. `epochs`
  /// (also borrowed, may be nullptr = every epoch 1) selects which dataset
  /// version's entries this state reads in the shared cache: clean
  /// (hierarchy, depth) keys coincide with the parent version's, dirty ones
  /// carry this version's id (see AggregateEpochs).
  DrillDownState(const Dataset* dataset, Mode mode,
                 SharedAggregateCache* shared_cache = nullptr,
                 const AggregateEpochs* epochs = nullptr);

  /// Committed drill depth of a hierarchy (0 = not drilled yet).
  int depth(int hierarchy) const { return committed_depth_[hierarchy]; }

  /// Maximum depth (number of attributes) of a hierarchy.
  int max_depth(int hierarchy) const;

  /// True when the hierarchy has at least one undrilled attribute left.
  bool CanDrill(int hierarchy) const;

  /// Marks the start of a Reptile invocation, applying the eviction policy —
  /// and, in shared-cache mode, releasing the previous invocation's pins.
  void BeginInvocation();

  /// Trees + local aggregates for `hierarchy` at `depth` levels (1-based
  /// count of attributes), building them if the policy requires. The
  /// returned reference is pinned in this state until the next
  /// BeginInvocation (private modes: until the policy evicts it).
  const HierarchyAggregates& Get(int hierarchy, int depth);

  /// Builds every (hierarchy, depth) entry of `keys` missing from the cache,
  /// fanning the builds out across `pool` (nullptr = build inline), and pins
  /// every key — shared-cache hits included — for the invocation. The
  /// builds themselves run concurrently; all cache bookkeeping happens on
  /// the calling thread, so after Prefetch returns, Peek() for these keys is
  /// a pure read and safe to call from many threads at once. Returns the
  /// build seconds per key actually built (cache hits are absent).
  std::map<std::pair<int, int>, double> Prefetch(
      const std::vector<std::pair<int, int>>& keys, ThreadPool* pool);

  /// Pure read of a pinned entry (aborts when absent — i.e. when neither
  /// Get nor Prefetch touched the key since the last BeginInvocation).
  /// Const, lock-free, never builds and never touches the shared cache, so
  /// it is safe to call concurrently from many worker threads.
  const HierarchyAggregates& Peek(int hierarchy, int depth) const;

  /// Commits a drill-down on `hierarchy` (advances its depth by one).
  void Commit(int hierarchy);

  /// Seconds spent building aggregates for `hierarchy` since the last
  /// BeginInvocation — the per-area quantity of Figure 9.
  double InvocationBuildSeconds(int hierarchy) const;

  /// Number of aggregate builds THIS session performed since construction or
  /// ResetStats. A session warmed by the shared cache performs zero builds —
  /// the cross-session sharing assertion of the registry tests.
  int64_t total_builds() const { return total_builds_; }
  void ResetStats();

  /// The shared cache consulted by this state, or nullptr when private.
  const SharedAggregateCache* shared_cache() const { return SharedCache(); }

 private:
  /// The shared cache, or nullptr when this state runs on its private map
  /// (no cache handed in, or an evicting policy).
  SharedAggregateCache* SharedCache() const {
    return mode_ == Mode::kCacheDynamic ? shared_cache_ : nullptr;
  }

  /// Pins `entry` under `key` and returns the resident reference.
  const HierarchyAggregates& Pin(std::pair<int, int> key, HierarchyAggregatesPtr entry);

  /// The epoch the shared cache is keyed with for (hierarchy, depth).
  int64_t EpochOf(int hierarchy, int depth) const {
    return epochs_ == nullptr ? 1 : epochs_->at(hierarchy, depth);
  }

  const Dataset* dataset_;
  Mode mode_;
  SharedAggregateCache* shared_cache_;  // borrowed; may be nullptr
  const AggregateEpochs* epochs_;       // borrowed; may be nullptr (all 1s)
  std::vector<int> committed_depth_;
  // Private modes: the session cache. Shared mode: the per-invocation pin
  // set keeping shared entries alive across LRU eviction (see file comment).
  std::map<std::pair<int, int>, HierarchyAggregatesPtr> held_;
  std::vector<double> invocation_build_seconds_;
  int64_t total_builds_ = 0;

  HierarchyAggregates Build(int hierarchy, int depth);
};

}  // namespace reptile

#endif  // REPTILE_FACTOR_DRILLDOWN_H_
