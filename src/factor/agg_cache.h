// Process-shared drill-down aggregate cache (the cross-session half of the
// dataset/session split).
//
// The expensive immutable state of a Reptile deployment — f-trees and local
// decomposed aggregates per (hierarchy, depth) — depends only on the base
// table and the hierarchy schema, never on who is asking: hierarchy
// independence (paper Section 4.4) makes a hierarchy's aggregates at depth d
// identical for every analyst, whatever the *other* hierarchies' committed
// depths are. One SharedAggregateCache therefore hangs off each
// PreparedDataset (api/registry.h) and is read by every session opened over
// it; a session drilling somewhere new pays the build once and all later
// sessions — including sessions at entirely different drill states — hit.
//
// Keying by (hierarchy, depth) rather than by the committed-depth vector is
// deliberate: it is strictly finer-grained sharing. Two sessions whose drill
// states differ still share every per-hierarchy entry they have in common.
//
// Concurrency contract:
//  * Find() is a shared_lock read; entries are immutable once inserted and
//    NEVER evicted, so returned references stay valid for the cache's
//    lifetime (std::map nodes are address-stable).
//  * Insert() is insert-once under the exclusive lock: when two sessions
//    race to build the same key, the first insert wins and the loser's
//    (bit-identical — builds are deterministic functions of the immutable
//    table) copy is dropped. Builds happen OUTSIDE the lock so a slow build
//    never blocks readers.
//  * hits()/misses()/entries() are monotonic counters for tests, benchmarks
//    and capacity monitoring.

#ifndef REPTILE_FACTOR_AGG_CACHE_H_
#define REPTILE_FACTOR_AGG_CACHE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <utility>
#include <vector>

#include "factor/decomposed.h"
#include "factor/ftree.h"

namespace reptile {

/// A hierarchy's f-tree and local aggregates at one depth (moved here from
/// factor/drilldown.h so both the shared cache and the per-session state can
/// speak it).
struct HierarchyAggregates {
  std::unique_ptr<FTree> tree;
  std::unique_ptr<LocalAggregates> locals;
};

class SharedAggregateCache {
 public:
  SharedAggregateCache() = default;

  SharedAggregateCache(const SharedAggregateCache&) = delete;
  SharedAggregateCache& operator=(const SharedAggregateCache&) = delete;

  /// Shared-lock lookup. The returned pointer (when non-null) stays valid for
  /// the cache's lifetime — entries are never evicted or mutated. Counts one
  /// hit or miss.
  const HierarchyAggregates* Find(int hierarchy, int depth) const;

  /// Insert-once under the exclusive lock: returns the cached entry, which is
  /// `built` when this call inserted it, or the previously inserted
  /// (deterministically identical) entry when another session won the race —
  /// `built` is then discarded. Never replaces an existing entry.
  const HierarchyAggregates& Insert(int hierarchy, int depth, HierarchyAggregates built);

  /// Entries currently cached.
  int64_t entries() const;

  /// Monotonic Find() outcomes since construction.
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }

  /// Keys currently cached, sorted — for introspection and tests.
  std::vector<std::pair<int, int>> Keys() const;

 private:
  mutable std::shared_mutex mu_;
  std::map<std::pair<int, int>, HierarchyAggregates> entries_;  // (hierarchy, depth)
  mutable std::atomic<int64_t> hits_{0};
  mutable std::atomic<int64_t> misses_{0};
};

}  // namespace reptile

#endif  // REPTILE_FACTOR_AGG_CACHE_H_
