// Process-shared drill-down aggregate cache (the cross-session half of the
// dataset/session split).
//
// The expensive immutable state of a Reptile deployment — f-trees and local
// decomposed aggregates per (hierarchy, depth) — depends only on the base
// table and the hierarchy schema, never on who is asking: hierarchy
// independence (paper Section 4.4) makes a hierarchy's aggregates at depth d
// identical for every analyst, whatever the *other* hierarchies' committed
// depths are. One SharedAggregateCache therefore hangs off each
// PreparedDataset (api/registry.h) and is read by every session opened over
// it; a session drilling somewhere new pays the build once and all later
// sessions — including sessions at entirely different drill states — hit.
//
// Keying by (hierarchy, depth) rather than by the committed-depth vector is
// deliberate: it is strictly finer-grained sharing. Two sessions whose drill
// states differ still share every per-hierarchy entry they have in common.
//
// Concurrency and reclamation contract (changed from the append-only era):
//  * Entries are immutable once inserted and handed out as
//    shared_ptr<const HierarchyAggregates>. The cache is LRU-by-bytes
//    (common/lru_cache.h): under a budget, cold entries are EVICTED, so the
//    old "references stay valid for the cache's lifetime" promise is gone.
//    Callers must hold the shared_ptr across every window they dereference
//    the entry — DrillDownState pins entries per invocation so the engine's
//    raw per-plan pointers stay valid for exactly one batch.
//  * Insert() is insert-once: when two sessions race to build the same key,
//    the first insert wins and the loser adopts the resident
//    (bit-identical — builds are deterministic functions of the immutable
//    table) entry. Builds happen OUTSIDE the cache so a slow build never
//    blocks readers.
//  * hits()/misses()/evictions() are monotonic counters; entries()/bytes()
//    are gauges — all surfaced per dataset through /healthz.

#ifndef REPTILE_FACTOR_AGG_CACHE_H_
#define REPTILE_FACTOR_AGG_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/lru_cache.h"
#include "factor/decomposed.h"
#include "factor/ftree.h"

namespace reptile {

/// A hierarchy's f-tree and local aggregates at one depth (moved here from
/// factor/drilldown.h so both the shared cache and the per-session state can
/// speak it).
struct HierarchyAggregates {
  std::unique_ptr<FTree> tree;
  std::unique_ptr<LocalAggregates> locals;
};

using HierarchyAggregatesPtr = std::shared_ptr<const HierarchyAggregates>;

/// Accounted size of one cache entry (tree + ancestor tables + overhead).
size_t ApproxHierarchyAggregatesBytes(const HierarchyAggregates& aggregates);

class SharedAggregateCache {
 public:
  SharedAggregateCache() = default;

  SharedAggregateCache(const SharedAggregateCache&) = delete;
  SharedAggregateCache& operator=(const SharedAggregateCache&) = delete;

  /// The resident entry (touched most-recently-used), or nullptr. The
  /// returned shared_ptr keeps the entry alive across eviction. Counts one
  /// hit or miss.
  HierarchyAggregatesPtr Find(int hierarchy, int depth) const;

  /// Insert-once: returns the resident entry — the one just built when this
  /// call inserted it, or the previously inserted (deterministically
  /// identical) entry when another session won the race. May evict
  /// least-recently-used entries when a byte budget is set.
  HierarchyAggregatesPtr Insert(int hierarchy, int depth, HierarchyAggregates built);

  /// LRU byte budget; 0 (the default) = unlimited. Shrinking evicts
  /// immediately.
  void set_budget_bytes(size_t budget) { cache_.set_budget_bytes(budget); }
  size_t budget_bytes() const { return cache_.budget_bytes(); }

  /// Gauges and monotonic counters.
  int64_t entries() const { return cache_.entries(); }
  size_t bytes() const { return cache_.bytes(); }
  int64_t hits() const { return cache_.hits(); }
  int64_t misses() const { return cache_.misses(); }
  int64_t evictions() const { return cache_.evictions(); }

  /// Keys currently cached, sorted — for introspection, tests, snapshots.
  std::vector<std::pair<int, int>> Keys() const { return cache_.Keys(); }

  /// Resident entries, sorted by key — the snapshot-save walk.
  std::vector<std::pair<std::pair<int, int>, HierarchyAggregatesPtr>> Items() const {
    return cache_.Items();
  }

 private:
  // mutable: Find() is logically const but touches LRU recency.
  mutable LruByteCache<std::pair<int, int>, HierarchyAggregates> cache_;
};

}  // namespace reptile

#endif  // REPTILE_FACTOR_AGG_CACHE_H_
