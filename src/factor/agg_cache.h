// Process-shared drill-down aggregate cache (the cross-session half of the
// dataset/session split).
//
// The expensive immutable state of a Reptile deployment — f-trees and local
// decomposed aggregates per (hierarchy, depth) — depends only on the base
// table and the hierarchy schema, never on who is asking: hierarchy
// independence (paper Section 4.4) makes a hierarchy's aggregates at depth d
// identical for every analyst, whatever the *other* hierarchies' committed
// depths are. One SharedAggregateCache therefore hangs off each
// PreparedDataset (api/registry.h) and is read by every session opened over
// it; a session drilling somewhere new pays the build once and all later
// sessions — including sessions at entirely different drill states — hit.
//
// Keying by (hierarchy, depth) rather than by the committed-depth vector is
// deliberate: it is strictly finer-grained sharing. Two sessions whose drill
// states differ still share every per-hierarchy entry they have in common.
//
// Concurrency and reclamation contract (changed from the append-only era):
//  * Entries are immutable once inserted and handed out as
//    shared_ptr<const HierarchyAggregates>. The cache is LRU-by-bytes
//    (common/lru_cache.h): under a budget, cold entries are EVICTED, so the
//    old "references stay valid for the cache's lifetime" promise is gone.
//    Callers must hold the shared_ptr across every window they dereference
//    the entry — DrillDownState pins entries per invocation so the engine's
//    raw per-plan pointers stay valid for exactly one batch.
//  * Insert() is insert-once: when two sessions race to build the same key,
//    the first insert wins and the loser adopts the resident
//    (bit-identical — builds are deterministic functions of the immutable
//    table) entry. Builds happen OUTSIDE the cache so a slow build never
//    blocks readers.
//  * hits()/misses()/evictions() are monotonic counters; entries()/bytes()
//    are gauges — all surfaced per dataset through /healthz.

#ifndef REPTILE_FACTOR_AGG_CACHE_H_
#define REPTILE_FACTOR_AGG_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <tuple>
#include <utility>
#include <vector>

#include "common/lru_cache.h"
#include "factor/decomposed.h"
#include "factor/ftree.h"

namespace reptile {

/// Per-dataset-version dirty-epoch table for the shared aggregate cache:
/// dirtied[h][d-1] is the dataset version that last changed hierarchy h's
/// distinct depth-d path prefixes. An incremental append keeps a clean
/// (h, d)'s epoch equal to the parent version's, so parent and child address
/// the very same cache entry (structural sharing through key identity); a
/// dirtied (h, d) gets the child version as its epoch, which invalidates the
/// stale entry for the child without flushing anything the parent's pinned
/// sessions still read. A freshly prepared (v1) dataset is all-1s.
struct AggregateEpochs {
  std::vector<std::vector<int64_t>> dirtied;  // [hierarchy][depth-1]

  int64_t at(int hierarchy, int depth) const {
    return dirtied[static_cast<size_t>(hierarchy)][static_cast<size_t>(depth - 1)];
  }
};

/// Uniform epoch table (`epoch` at every (h, d)): `max_depths[h]` is
/// hierarchy h's attribute count.
AggregateEpochs MakeUniformEpochs(const std::vector<int>& max_depths, int64_t epoch);

/// A hierarchy's f-tree and local aggregates at one depth (moved here from
/// factor/drilldown.h so both the shared cache and the per-session state can
/// speak it).
struct HierarchyAggregates {
  std::unique_ptr<FTree> tree;
  std::unique_ptr<LocalAggregates> locals;
};

using HierarchyAggregatesPtr = std::shared_ptr<const HierarchyAggregates>;

/// Accounted size of one cache entry (tree + ancestor tables + overhead).
size_t ApproxHierarchyAggregatesBytes(const HierarchyAggregates& aggregates);

class SharedAggregateCache {
 public:
  /// Cache key: (dirty epoch, hierarchy, depth). The epoch component is the
  /// dataset version that last dirtied the (hierarchy, depth) — see
  /// AggregateEpochs. Version chains share one cache object, so clean
  /// entries collide (shared) across versions and dirty ones diverge
  /// (invalidated) with no explicit flush.
  using Key = std::tuple<int64_t, int, int>;

  SharedAggregateCache() = default;

  SharedAggregateCache(const SharedAggregateCache&) = delete;
  SharedAggregateCache& operator=(const SharedAggregateCache&) = delete;

  /// The resident entry (touched most-recently-used), or nullptr. The
  /// returned shared_ptr keeps the entry alive across eviction. Counts one
  /// hit or miss.
  HierarchyAggregatesPtr Find(int64_t epoch, int hierarchy, int depth) const;

  /// Insert-once: returns the resident entry — the one just built when this
  /// call inserted it, or the previously inserted (deterministically
  /// identical) entry when another session won the race. May evict
  /// least-recently-used entries when a byte budget is set.
  HierarchyAggregatesPtr Insert(int64_t epoch, int hierarchy, int depth,
                                HierarchyAggregates built);

  /// Epoch-1 conveniences: the whole cache when only one (v1) version ever
  /// exists — unversioned tests and tools.
  HierarchyAggregatesPtr Find(int hierarchy, int depth) const {
    return Find(1, hierarchy, depth);
  }
  HierarchyAggregatesPtr Insert(int hierarchy, int depth, HierarchyAggregates built) {
    return Insert(1, hierarchy, depth, std::move(built));
  }

  /// LRU byte budget; 0 (the default) = unlimited. Shrinking evicts
  /// immediately.
  void set_budget_bytes(size_t budget) { cache_.set_budget_bytes(budget); }
  size_t budget_bytes() const { return cache_.budget_bytes(); }

  /// Gauges and monotonic counters.
  int64_t entries() const { return cache_.entries(); }
  size_t bytes() const { return cache_.bytes(); }
  int64_t hits() const { return cache_.hits(); }
  int64_t misses() const { return cache_.misses(); }
  int64_t evictions() const { return cache_.evictions(); }

  /// Keys currently cached, sorted — for introspection, tests, snapshots.
  std::vector<Key> Keys() const { return cache_.Keys(); }

  /// Resident entries, sorted by key — the snapshot-save walk.
  std::vector<std::pair<Key, HierarchyAggregatesPtr>> Items() const {
    return cache_.Items();
  }

 private:
  // mutable: Find() is logically const but touches LRU recency.
  mutable LruByteCache<Key, HierarchyAggregates> cache_;
};

}  // namespace reptile

#endif  // REPTILE_FACTOR_AGG_CACHE_H_
