#include "factor/decomposed.h"

#include "common/check.h"

namespace reptile {

LocalAggregates::LocalAggregates(const FTree* tree) : tree_(tree) {
  REPTILE_CHECK(tree != nullptr);
  int depth = tree->depth();
  ancestor_.resize(depth);
  // Topological order (Algorithm 10): for each anchor level a, the (a, a+1)
  // table is the parent array; each deeper table composes the previous table
  // with one parent step, so every table costs O(nodes at b) instead of
  // O(nodes at b * (b - a)).
  for (int a = 0; a < depth; ++a) {
    for (int b = a + 1; b < depth; ++b) {
      const std::vector<int64_t>& parents = tree->level(b).parent;
      std::vector<int64_t> table(parents.size());
      if (b == a + 1) {
        table = parents;
      } else {
        const std::vector<int64_t>& prev = ancestor_[a][b - a - 2];
        for (size_t node = 0; node < parents.size(); ++node) {
          table[node] = prev[parents[node]];
        }
      }
      ancestor_[a].push_back(std::move(table));
    }
  }
}

int64_t LocalAggregates::Ancestor(int a, int b, int64_t node_at_b) const {
  return AncestorTable(a, b)[node_at_b];
}

const std::vector<int64_t>& LocalAggregates::AncestorTable(int a, int b) const {
  REPTILE_CHECK(a >= 0 && a < b && b < tree_->depth());
  return ancestor_[a][b - a - 1];
}

int64_t LocalAggregates::num_cof_tables() const {
  int64_t d = tree_->depth();
  return d * (d - 1) / 2;
}

DecomposedAggregates::DecomposedAggregates(const FactorizedMatrix* fm,
                                           std::vector<const LocalAggregates*> locals)
    : fm_(fm), locals_(std::move(locals)) {
  REPTILE_CHECK_EQ(static_cast<int>(locals_.size()), fm_->num_trees());
  for (int k = 0; k < fm_->num_trees(); ++k) {
    REPTILE_CHECK(&locals_[k]->tree() == &fm_->tree(k)) << "local aggregates / tree mismatch";
  }
}

int64_t DecomposedAggregates::Total(AttrId attr) const {
  return fm_->tree(attr.hierarchy).num_leaves() * fm_->SuffixLeaves(attr.hierarchy);
}

int64_t DecomposedAggregates::Count(AttrId attr, int64_t node) const {
  const FTree& tree = fm_->tree(attr.hierarchy);
  return tree.level(attr.level).leaf_count[node] * fm_->SuffixLeaves(attr.hierarchy);
}

int64_t DecomposedAggregates::PrefixMultiplicity(AttrId attr) const {
  return fm_->PrefixLeaves(attr.hierarchy);
}

}  // namespace reptile
