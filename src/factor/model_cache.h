// Process-shared fitted-model cache: the training half of what
// SharedAggregateCache (factor/agg_cache.h) does for aggregates.
//
// Reptile's interactive loop is dominated by multi-level model training
// (paper Section 5.1), yet a fitted model is a pure function of immutable
// inputs: the base table, the hierarchy extension being evaluated, every
// hierarchy's committed depth (they shape the feature matrix), the measure
// and primitive statistic, the session's feature registrations, and the
// canonicalized ModelSpec. One SharedFittedModelCache therefore hangs off
// each PreparedDataset (api/registry.h) beside the aggregate cache; the
// engine keys it by exactly those inputs (Engine::RecommendBatch), so a warm
// session — same dataset, same committed depths, same spec — performs ZERO
// fits, and N sessions racing on one key perform exactly one between them.
//
// Concurrency contract (single-flight, stricter than the aggregate cache):
//  * GetOrFit(key, fit) runs `fit` at most once per key PROCESS-WIDE. The
//    first caller fits outside the cache lock; concurrent callers for the
//    same key block on a shared_future until the winner publishes. The
//    aggregate cache lets a losing racer build a duplicate and drop it —
//    acceptable for cheap tree builds, wasteful for EM training, hence the
//    latch here ("one fit per key across all concurrent sessions").
//  * Returned models are shared_ptr<const ...>: immutable, never evicted,
//    safe to read from any thread for as long as the caller holds the ptr.
//  * If `fit` throws, the key is erased so a later call can retry; waiters
//    blocked on the in-flight entry observe the exception.
//  * hits()/misses()/fits()/entries() are monotonic counters for /healthz,
//    tests and benchmarks. A call that waited on another caller's in-flight
//    fit counts as a hit: it performed no training.

#ifndef REPTILE_FACTOR_MODEL_CACHE_H_
#define REPTILE_FACTOR_MODEL_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

namespace reptile {

/// One trained primitive model: fitted values per feature-matrix row, plus
/// what the fit cost when it actually ran (a cache hit charges 0 — the work
/// already happened in some earlier call).
struct FittedModel {
  std::vector<double> fitted;
  double fit_seconds = 0.0;
  // EM iterations the training loop actually executed (0 for linear fits,
  // which have no EM loop). Stored with the model so a cache hit echoes the
  // same realized count as the call that trained it — warm and cold bodies
  // stay byte-identical.
  int em_iterations_run = 0;
};

using FittedModelPtr = std::shared_ptr<const FittedModel>;

class SharedFittedModelCache {
 public:
  SharedFittedModelCache() = default;

  SharedFittedModelCache(const SharedFittedModelCache&) = delete;
  SharedFittedModelCache& operator=(const SharedFittedModelCache&) = delete;

  /// Returns the cached model for `key`, fitting it via `fit` when absent.
  /// Single-flight: exactly one caller per key ever runs `fit`; the rest
  /// wait for (or find) its result. The bool is true iff THIS call performed
  /// the fit — callers use it to attribute train_seconds and fit counters.
  std::pair<FittedModelPtr, bool> GetOrFit(const std::string& key,
                                           const std::function<FittedModel()>& fit);

  /// Pure lookup for introspection/tests: the completed model, or nullptr
  /// when the key is absent or still fitting. Does not touch the counters.
  FittedModelPtr Find(const std::string& key) const;

  /// Keys currently cached (in-flight included), sorted.
  std::vector<std::string> Keys() const;

  int64_t entries() const;

  /// Monotonic GetOrFit outcomes: calls served a model without training
  /// (completed entry or another caller's successful in-flight fit — a
  /// waiter that observes a failed fit's exception counts nowhere) / calls
  /// that found nothing / fit executions started (misses() == fits()).
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  int64_t fits() const { return fits_.load(std::memory_order_relaxed); }

 private:
  mutable std::shared_mutex mu_;
  // shared_future: each waiter copies the future out under the lock and
  // blocks on its own copy, which the standard blesses for cross-thread use.
  std::map<std::string, std::shared_future<FittedModelPtr>> entries_;
  mutable std::atomic<int64_t> hits_{0};
  mutable std::atomic<int64_t> misses_{0};
  mutable std::atomic<int64_t> fits_{0};
};

}  // namespace reptile

#endif  // REPTILE_FACTOR_MODEL_CACHE_H_
