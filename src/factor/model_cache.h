// Process-shared fitted-model cache: the training half of what
// SharedAggregateCache (factor/agg_cache.h) does for aggregates.
//
// Reptile's interactive loop is dominated by multi-level model training
// (paper Section 5.1), yet a fitted model is a pure function of immutable
// inputs: the base table, the hierarchy extension being evaluated, every
// hierarchy's committed depth (they shape the feature matrix), the measure
// and primitive statistic, the session's feature registrations, and the
// canonicalized ModelSpec. One SharedFittedModelCache therefore hangs off
// each PreparedDataset (api/registry.h) beside the aggregate cache; the
// engine keys it by exactly those inputs (Engine::RecommendBatch), so a warm
// session — same dataset, same committed depths, same spec — performs ZERO
// fits, and N sessions racing on one key perform exactly one between them.
//
// Storage is split in two under one lock:
//  * completed_ — an LruByteCache of finished models. Under a byte budget the
//    least-recently-used models are evicted; eviction only drops the cache's
//    reference, so models held by in-flight requests stay valid. An evicted
//    key simply refits on next demand.
//  * inflight_  — the single-flight latch: one shared_future per key whose
//    fit is currently running. Publication (insert into completed_, erase
//    from inflight_) is atomic with respect to lookups, which check both
//    maps under the same lock — so no two callers can ever both miss.
//
// Concurrency contract (single-flight, stricter than the aggregate cache):
//  * GetOrFit(key, fit) runs `fit` at most once per RESIDENT key
//    process-wide. The first caller fits outside the cache lock; concurrent
//    callers for the same key block on a shared_future until the winner
//    publishes. The aggregate cache lets a losing racer build a duplicate
//    and drop it — acceptable for cheap tree builds, wasteful for EM
//    training, hence the latch here.
//  * Returned models are shared_ptr<const ...>: immutable and safe to read
//    from any thread for as long as the caller holds the ptr — including
//    after the cache evicts the key.
//  * If `fit` throws, the key is erased so a later call can retry; waiters
//    blocked on the in-flight entry observe the exception.
//  * hits()/misses()/fits()/entries() are monotonic counters for /healthz,
//    tests and benchmarks. A call that waited on another caller's in-flight
//    fit counts as a hit: it performed no training.

#ifndef REPTILE_FACTOR_MODEL_CACHE_H_
#define REPTILE_FACTOR_MODEL_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/lru_cache.h"

namespace reptile {

/// One trained primitive model: fitted values per feature-matrix row, plus
/// what the fit cost when it actually ran (a cache hit charges 0 — the work
/// already happened in some earlier call).
struct FittedModel {
  std::vector<double> fitted;
  double fit_seconds = 0.0;
  // EM iterations the training loop actually executed (0 for linear fits,
  // which have no EM loop). Stored with the model so a cache hit echoes the
  // same realized count as the call that trained it — warm and cold bodies
  // stay byte-identical.
  int em_iterations_run = 0;
};

using FittedModelPtr = std::shared_ptr<const FittedModel>;

/// Accounted heap size of one cache entry (model plus its key string), for
/// the byte budget.
size_t ApproxFittedModelBytes(const std::string& key, const FittedModel& model);

class SharedFittedModelCache {
 public:
  SharedFittedModelCache() = default;

  SharedFittedModelCache(const SharedFittedModelCache&) = delete;
  SharedFittedModelCache& operator=(const SharedFittedModelCache&) = delete;

  /// Returns the cached model for `key`, fitting it via `fit` when absent.
  /// Single-flight: exactly one caller per resident key ever runs `fit`; the
  /// rest wait for (or find) its result. The bool is true iff THIS call
  /// performed the fit — callers use it to attribute train_seconds and fit
  /// counters.
  std::pair<FittedModelPtr, bool> GetOrFit(const std::string& key,
                                           const std::function<FittedModel()>& fit);

  /// Pure lookup for introspection/tests: the completed model, or nullptr
  /// when the key is absent or still fitting. Touches neither the counters
  /// nor LRU recency.
  FittedModelPtr Find(const std::string& key) const;

  /// Inserts an already-fitted model (snapshot warm start). Insert-once: a
  /// resident or in-flight key is left alone. Counts as neither hit, miss
  /// nor fit — the training happened in some earlier process.
  void Put(const std::string& key, FittedModelPtr model);

  /// Keys currently cached (in-flight included), sorted.
  std::vector<std::string> Keys() const;

  /// Completed (key, model) pairs for snapshot writing, sorted by key.
  /// In-flight fits are not included.
  std::vector<std::pair<std::string, FittedModelPtr>> CompletedEntries() const;

  int64_t entries() const;

  /// Byte budget over the completed store (0 = unlimited; see
  /// common/lru_cache.h). In-flight fits are not byte-accounted — they
  /// become accountable when they complete.
  void set_budget_bytes(size_t budget) { completed_.set_budget_bytes(budget); }
  size_t budget_bytes() const { return completed_.budget_bytes(); }
  size_t bytes() const { return completed_.bytes(); }
  int64_t evictions() const { return completed_.evictions(); }

  /// Monotonic GetOrFit outcomes: calls served a model without training
  /// (completed entry or another caller's successful in-flight fit — a
  /// waiter that observes a failed fit's exception counts nowhere) / calls
  /// that found nothing / fit executions started (misses() == fits()).
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  int64_t fits() const { return fits_.load(std::memory_order_relaxed); }

 private:
  // mu_ makes (completed_, inflight_) a single atomic unit: lookups read
  // both under a shared lock, publication mutates both under an exclusive
  // lock. completed_ has its own internal mutex (always acquired after mu_),
  // which lets counter accessors like bytes() skip mu_ entirely.
  mutable std::shared_mutex mu_;
  mutable LruByteCache<std::string, FittedModel> completed_;
  // shared_future: each waiter copies the future out under the lock and
  // blocks on its own copy, which the standard blesses for cross-thread use.
  std::map<std::string, std::shared_future<FittedModelPtr>> inflight_;
  mutable std::atomic<int64_t> hits_{0};
  mutable std::atomic<int64_t> misses_{0};
  mutable std::atomic<int64_t> fits_{0};
};

}  // namespace reptile

#endif  // REPTILE_FACTOR_MODEL_CACHE_H_
