// Factorised feature matrix (paper Section 3.4).
//
// The (virtual) feature matrix X has one row per combination of leaf paths
// across the hierarchy f-trees — the cross product that materialised
// approaches pay for explicitly — and one column per registered feature.
// Columns are per-attribute value maps (code -> double), so X is fully
// described by the trees plus O(#values) state; the intercept is a column
// over the singleton tree. Multi-attribute features (Appendix H) are
// supported through tuple maps and force the hybrid (row-enumeration) path
// in the operators.
//
// The attribute order is: trees in hierarchy order (the drill-down hierarchy
// last, per Section 3.4), levels least-to-most specific within each tree.
// Clusters of the multi-level model are combinations of every attribute but
// the last (the drilled attribute), which makes them contiguous row ranges.

#ifndef REPTILE_FACTOR_FREP_H_
#define REPTILE_FACTOR_FREP_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "agg/aggregates.h"
#include "common/hashing.h"
#include "data/hierarchy.h"
#include "data/table.h"
#include "factor/ftree.h"

namespace reptile {

/// One column of the factorised feature matrix.
struct FeatureColumn {
  std::string name;

  // Single-attribute column: value of the column at a row is
  // value_map[code of `attr` at that row]. Codes outside the map read 0.
  AttrId attr;
  std::vector<double> value_map;

  // Multi-attribute column (Appendix H): keyed by the tuple of codes of
  // `attrs` (in attribute order); missing tuples read `missing_value`.
  bool is_multi = false;
  std::vector<AttrId> attrs;
  std::unordered_map<std::vector<int32_t>, double, CodeTupleHash> multi_map;
  double missing_value = 0.0;

  double ValueForCode(int32_t code) const {
    size_t idx = static_cast<size_t>(code);
    return idx < value_map.size() ? value_map[idx] : 0.0;
  }

  double ValueForTuple(const std::vector<int32_t>& codes) const {
    auto it = multi_map.find(codes);
    return it == multi_map.end() ? missing_value : it->second;
  }
};

/// The factorised matrix: borrowed trees (owned by the engine's caches or the
/// caller) plus feature columns.
class FactorizedMatrix {
 public:
  /// Appends a tree; trees must be added in attribute order (drilled last).
  void AddTree(const FTree* tree);

  /// Appends a column; returns its index. Single-attribute columns must
  /// reference an existing (tree, level).
  int AddColumn(FeatureColumn column);

  int num_trees() const { return static_cast<int>(trees_.size()); }
  const FTree& tree(int k) const { return *trees_[k]; }

  int num_cols() const { return static_cast<int>(columns_.size()); }
  const FeatureColumn& column(int c) const { return columns_[c]; }

  /// Rows of the virtual matrix = product of per-tree leaf counts.
  int64_t num_rows() const { return num_rows_; }

  /// Product of leaf counts of trees before / after tree k.
  int64_t PrefixLeaves(int k) const { return prefix_leaves_[k]; }
  int64_t SuffixLeaves(int k) const { return suffix_leaves_[k]; }

  /// True when every column is single-attribute (pure factorised operators
  /// apply; otherwise operators fall back to row enumeration for the
  /// multi-attribute columns).
  bool AllSingleAttribute() const;

  /// Total number of attributes across trees and the flattened index of an
  /// attribute. Flattened order == attribute order.
  int num_attrs() const { return static_cast<int>(attr_of_flat_.size()); }
  int FlatAttrIndex(AttrId attr) const;
  AttrId FlatAttr(int flat) const { return attr_of_flat_[flat]; }

  /// Indices of single-attribute columns on the given attribute.
  const std::vector<int>& ColumnsOnAttr(AttrId attr) const;
  /// Indices of multi-attribute columns.
  const std::vector<int>& MultiColumns() const { return multi_columns_; }

  // ---- Cluster structure (multi-level model) ----

  /// The intra-cluster attribute = deepest level of the last tree.
  AttrId IntraAttr() const;

  /// Number of clusters = combinations of all attributes but the intra one.
  int64_t num_clusters() const;

  /// Cluster of a row; clusters are contiguous and numbered in row order.
  int64_t ClusterOfRow(int64_t row) const;

  // ---- Row decoding ----

  /// Per-tree leaf indices of a row.
  void DecodeRowToLeaves(int64_t row, std::vector<int64_t>* leaves) const;

  /// Row index of a per-tree leaf tuple.
  int64_t RowOfLeaves(const std::vector<int64_t>& leaves) const;

  /// Value codes of every attribute (flattened order) at a row.
  void DecodeRowToCodes(int64_t row, std::vector<int32_t>* codes) const;

  /// Value of column `c` given the flattened code vector of a row.
  double ColumnValue(int c, const std::vector<int32_t>& codes) const;

  /// Materialises one row of features (length num_cols()).
  void FeatureRow(int64_t row, std::vector<double>* out) const;

 private:
  std::vector<const FTree*> trees_;
  std::vector<FeatureColumn> columns_;
  std::vector<AttrId> attr_of_flat_;
  std::vector<int> attr_offset_;  // per tree: flat index of its level 0
  std::vector<int64_t> prefix_leaves_;
  std::vector<int64_t> suffix_leaves_;
  std::vector<std::vector<int>> columns_on_attr_;  // by flat attr index
  std::vector<int> multi_columns_;
  int64_t num_rows_ = 1;

  void RecomputeLayout();
};

/// Maps each row of `table` matching `filter` to its row index in `fm`.
/// `tree_columns[k]` lists the table columns backing tree k's levels (empty
/// for the intercept tree). Rows whose path is absent from a tree map to -1
/// (possible only when the trees were built from different data).
std::vector<int64_t> MapTableRowsToMatrixRows(const FactorizedMatrix& fm, const Table& table,
                                              const std::vector<std::vector<int>>& tree_columns,
                                              const RowFilter& filter = RowFilter());

/// Aggregates `measure_column` of `table` into one Moments sketch per matrix
/// row (the y vector over all parallel groups; empty groups keep zero
/// moments, the paper's worst case). Pass measure_column = -1 for counts.
std::vector<Moments> BuildGroupMoments(const FactorizedMatrix& fm, const Table& table,
                                       const std::vector<std::vector<int>>& tree_columns,
                                       int measure_column,
                                       const RowFilter& filter = RowFilter());

}  // namespace reptile

#endif  // REPTILE_FACTOR_FREP_H_
