// Per-hierarchy f-tree (paper Sections 2.2, 3.4 and Appendix C).
//
// An FTree is the factorised representation of one hierarchy at a given
// drill-down depth: level l holds the distinct attribute paths of length l+1,
// as a tree whose node identity is the path (robust to dirty functional
// dependencies). Nodes within a level are stored in tree order — the order
// rows of the (virtual) attribute matrix enumerate them — with subtree leaf
// counts, which are exactly the paper's local COUNT aggregates. The
// cross-product of several FTrees (plus per-value feature maps) is the
// factorised feature matrix; see factor/frep.h.

#ifndef REPTILE_FACTOR_FTREE_H_
#define REPTILE_FACTOR_FTREE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "api/status.h"
#include "data/table.h"

namespace reptile {

/// Immutable per-hierarchy path tree.
class FTree {
 public:
  /// One level of the tree; all vectors are indexed by node position in tree
  /// order.
  struct Level {
    std::vector<int32_t> value;        // attribute value code of the node
    std::vector<int64_t> parent;       // node index in the previous level (-1 at level 0)
    std::vector<int64_t> first_child;  // index of first child in the next level
    std::vector<int64_t> num_children; // 0 at the deepest level
    std::vector<int64_t> leaf_count;   // leaves in the node's subtree

    int64_t size() const { return static_cast<int64_t>(value.size()); }
  };

  /// Builds from explicit root-to-leaf paths (each of length `depth`).
  /// Paths are deduplicated and sorted; duplicates collapse to one leaf.
  static FTree FromPaths(std::vector<std::vector<int32_t>> paths, int depth);

  /// Builds from the distinct value combinations of `columns` (least specific
  /// first) over the rows of `table` matching `filter`.
  static FTree FromTable(const Table& table, const std::vector<int>& columns,
                         const RowFilter& filter = RowFilter());

  /// The intercept tree: a single level with a single node (value 0). Its
  /// cross product with any f-representation is the identity, which lets the
  /// intercept column reuse every factorised operator unchanged.
  static FTree Singleton();

  /// Rebuilds a tree from per-level `value` and `parent` vectors (the
  /// snapshot wire form; the derived vectors are recomputed, and anything
  /// already in them is ignored). Validates every structural invariant the
  /// builders guarantee — tree order, sorted sibling values, full-depth
  /// paths — and returns kParseError instead of undefined behavior when a
  /// persisted tree is corrupt.
  static Result<FTree> FromLevels(std::vector<Level> levels);

  int depth() const { return static_cast<int>(levels_.size()); }

  /// Accounted heap size of the level vectors, for byte-budgeted caches.
  size_t ApproxBytes() const;

  const Level& level(int l) const { return levels_[l]; }
  int64_t num_nodes(int l) const { return levels_[l].size(); }
  int64_t num_leaves() const { return levels_.empty() ? 1 : levels_.back().size(); }

  /// Node index at `target_level` on the path from the root to `node` at
  /// `level` (target_level <= level).
  int64_t AncestorAt(int level, int64_t node, int target_level) const;

  /// Leaf index of the given root-to-leaf path of codes, or -1 when absent.
  int64_t LeafIndex(const int32_t* path, int length) const;

  /// Longest prefix of `path` (length <= depth()) present in this tree, as a
  /// count of matched levels: depth() when the whole path is a known leaf, 0
  /// when even path[0] is absent. The incremental-append planner uses this to
  /// find the shallowest level a delta row dirties — a row matched to m
  /// levels introduces new distinct prefixes of every length > m.
  int MatchedPrefixDepth(const int32_t* path, int length) const;

  /// Value codes along the path from the root to leaf `leaf`.
  std::vector<int32_t> LeafPath(int64_t leaf) const;

  /// Iterates nodes of one level in tree order while tracking the ancestor
  /// path. Used by the row iterator and the cluster iterator.
  class Cursor {
   public:
    /// A cursor over nodes of `level`; positioned at the first node.
    Cursor(const FTree* tree, int level);

    /// Node index at `l` (l <= level) on the current path.
    int64_t node(int l) const { return path_[l]; }

    int64_t position() const { return path_[level_]; }
    bool AtEnd() const { return path_[level_] >= tree_->num_nodes(level_); }

    /// Moves to the next node in tree order. Returns the highest (closest to
    /// the root) level whose node changed, or -1 when the cursor is
    /// exhausted. After exhaustion the cursor wraps back to the first node,
    /// which suits mixed-radix iteration across trees.
    int Advance();

    /// Resets to the first node.
    void Reset();

   private:
    const FTree* tree_;
    int level_;
    std::vector<int64_t> path_;  // node index per level 0..level_
    bool wrapped_ = false;
  };

 private:
  std::vector<Level> levels_;

  void BuildFromSortedPaths(const std::vector<std::vector<int32_t>>& paths, int depth);
};

}  // namespace reptile

#endif  // REPTILE_FACTOR_FTREE_H_
