#include "server/service.h"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <initializer_list>
#include <string_view>
#include <utility>

#include "api/dataset_snapshot.h"
#include "data/csv.h"
#include "obs/build_info.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/request_ring.h"
#include "obs/trace.h"
#include "server/json.h"
#include "version/append.h"
#include "version/version.h"

namespace reptile {
namespace {

// ---- Strict JSON -> request mapping helpers --------------------------------
// Every helper reports failures as kInvalidArgument naming the offending
// field ("complaints[2].where[0].column must be a string, got number"), which
// the error path renders as HTTP 400.

Status WrongType(const std::string& context, const char* expected, const JsonValue& actual) {
  return Status::InvalidArgument(context + " must be " + expected + ", got " +
                                 actual.KindName());
}

/// Rejects unknown object keys so typos ("topk") fail loudly instead of
/// being silently ignored.
Status CheckKnownKeys(const JsonValue& object, const std::string& context,
                      std::initializer_list<std::string_view> allowed) {
  for (const auto& [key, value] : object.object_items()) {
    bool known = false;
    for (std::string_view name : allowed) {
      if (key == name) known = true;
    }
    if (!known) {
      std::string expected;
      for (std::string_view name : allowed) {
        if (!expected.empty()) expected += ", ";
        expected += name;
      }
      return Status::InvalidArgument("unknown field \"" + key + "\" in " + context +
                                     " (expected one of: " + expected + ")");
    }
  }
  return Status::Ok();
}

Result<std::string> StringField(const JsonValue& object, const std::string& context,
                                const std::string& key, bool required,
                                std::string default_value = std::string()) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr) {
    if (required) {
      return Status::InvalidArgument(context + " is missing required field \"" + key + "\"");
    }
    return default_value;
  }
  if (!value->is_string()) return WrongType(context + "." + key, "a string", *value);
  return value->string_value();
}

Result<int> IntField(const JsonValue& object, const std::string& context,
                     const std::string& key, int default_value) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr) return default_value;
  if (!value->IsInteger()) return WrongType(context + "." + key, "an integer", *value);
  int64_t n = value->IntValue();
  if (n < -2147483648LL || n > 2147483647LL) {
    return Status::InvalidArgument(context + "." + key + " is out of range");
  }
  return static_cast<int>(n);
}

Result<bool> BoolField(const JsonValue& object, const std::string& context,
                       const std::string& key, bool default_value) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr) return default_value;
  if (!value->is_bool()) return WrongType(context + "." + key, "a boolean", *value);
  return value->bool_value();
}

Result<std::vector<std::string>> StringListField(const JsonValue& object,
                                                 const std::string& context,
                                                 const std::string& key, bool required) {
  std::vector<std::string> out;
  const JsonValue* value = object.Find(key);
  if (value == nullptr) {
    if (required) {
      return Status::InvalidArgument(context + " is missing required field \"" + key + "\"");
    }
    return out;
  }
  if (!value->is_array()) return WrongType(context + "." + key, "an array", *value);
  const std::vector<JsonValue>& items = value->array_items();
  for (size_t i = 0; i < items.size(); ++i) {
    if (!items[i].is_string()) {
      return WrongType(context + "." + key + "[" + std::to_string(i) + "]", "a string",
                       items[i]);
    }
    out.push_back(items[i].string_value());
  }
  return out;
}

Result<std::vector<NamedPredicate>> ParseWhere(const JsonValue& object,
                                               const std::string& context) {
  std::vector<NamedPredicate> where;
  const JsonValue* value = object.Find("where");
  if (value == nullptr) return where;
  if (!value->is_array()) return WrongType(context + ".where", "an array", *value);
  const std::vector<JsonValue>& items = value->array_items();
  for (size_t i = 0; i < items.size(); ++i) {
    std::string item_context = context + ".where[" + std::to_string(i) + "]";
    if (!items[i].is_object()) return WrongType(item_context, "an object", items[i]);
    REPTILE_RETURN_IF_ERROR(CheckKnownKeys(items[i], item_context, {"column", "value"}));
    Result<std::string> column = StringField(items[i], item_context, "column", true);
    if (!column.ok()) return column.status();
    Result<std::string> pred_value = StringField(items[i], item_context, "value", true);
    if (!pred_value.ok()) return pred_value.status();
    where.push_back(NamedPredicate{std::move(*column), std::move(*pred_value)});
  }
  return where;
}

Result<ComplaintSpec> ParseComplaintSpec(const JsonValue& value, const std::string& context) {
  if (!value.is_object()) return WrongType(context, "an object", value);
  REPTILE_RETURN_IF_ERROR(CheckKnownKeys(
      value, context, {"aggregate", "measure", "direction", "target", "where"}));
  ComplaintSpec spec;
  Result<std::string> aggregate = StringField(value, context, "aggregate", true);
  if (!aggregate.ok()) return aggregate.status();
  spec.aggregate = std::move(*aggregate);
  Result<std::string> measure = StringField(value, context, "measure", false);
  if (!measure.ok()) return measure.status();
  spec.measure = std::move(*measure);
  Result<std::string> direction = StringField(value, context, "direction", false, "too_high");
  if (!direction.ok()) return direction.status();
  spec.direction = std::move(*direction);
  if (const JsonValue* target = value.Find("target")) {
    if (!target->is_number()) return WrongType(context + ".target", "a number", *target);
    spec.target = target->number_value();
  }
  Result<std::vector<NamedPredicate>> where = ParseWhere(value, context);
  if (!where.ok()) return where.status();
  spec.where = std::move(*where);
  return spec;
}

/// A {"hierarchy name": depth} object (session restore).
Result<std::map<std::string, int>> ParseCommittedMap(const JsonValue& body,
                                                     const std::string& context) {
  std::map<std::string, int> committed;
  const JsonValue* value = body.Find("committed");
  if (value == nullptr) return committed;
  if (!value->is_object()) return WrongType(context + ".committed", "an object", *value);
  for (const auto& [name, depth] : value->object_items()) {
    // Same validation and messages as IntField, on the value already in hand
    // (an IntField call would linearly re-find each key).
    if (!depth.IsInteger()) {
      return WrongType(context + ".committed." + name, "an integer", depth);
    }
    int64_t n = depth.IntValue();
    if (n < -2147483648LL || n > 2147483647LL) {
      return Status::InvalidArgument(context + ".committed." + name + " is out of range");
    }
    committed[name] = static_cast<int>(n);
  }
  return committed;
}

/// A JSON `options.model` object mapped to a complete ModelSpec: omitted
/// fields take the ModelSpec defaults (NOT the session's values — a per-call
/// model replaces the session's configuration wholesale; see
/// BatchOptions::model). Range validation happens in the plan stage
/// (Session::RecommendAll -> Engine::ValidateModelSpec); here only names,
/// types and unknown fields are policed.
Result<ModelSpec> ParseModelSpec(const JsonValue& value, const std::string& context) {
  if (!value.is_object()) return WrongType(context, "an object", value);
  REPTILE_RETURN_IF_ERROR(CheckKnownKeys(value, context,
                                         {"kind", "backend", "random_effects", "em_iterations",
                                          "em_tolerance", "fit_cache", "extra_repair_stats"}));
  ModelSpec spec;
  Result<std::string> kind =
      StringField(value, context, "kind", false, ModelSpec::KindName(spec.kind));
  if (!kind.ok()) return kind.status();
  std::optional<ModelSpec::Kind> parsed_kind = ModelSpec::ParseKind(*kind);
  if (!parsed_kind.has_value()) {
    return Status::InvalidArgument("unknown " + context + ".kind \"" + *kind +
                                   "\" (expected one of: multilevel, linear)");
  }
  spec.kind = *parsed_kind;

  Result<std::string> backend =
      StringField(value, context, "backend", false, ModelSpec::BackendName(spec.backend));
  if (!backend.ok()) return backend.status();
  std::optional<ModelSpec::Backend> parsed_backend = ModelSpec::ParseBackend(*backend);
  if (!parsed_backend.has_value()) {
    return Status::InvalidArgument("unknown " + context + ".backend \"" + *backend +
                                   "\" (expected one of: auto, factorized, dense)");
  }
  spec.backend = *parsed_backend;

  // Omitted = RandomPolicy::kDefault: inherit the session's policy instead
  // of forcing one — the lone ModelSpec field with an inheriting default.
  if (const JsonValue* policy = value.Find("random_effects")) {
    if (!policy->is_string()) {
      return WrongType(context + ".random_effects", "a string", *policy);
    }
    std::optional<ModelSpec::RandomPolicy> parsed_policy =
        ModelSpec::ParseRandomPolicy(policy->string_value());
    if (!parsed_policy.has_value()) {
      return Status::InvalidArgument("unknown " + context + ".random_effects \"" +
                                     policy->string_value() +
                                     "\" (expected one of: intercepts, all)");
    }
    spec.random_effects = *parsed_policy;
  }

  Result<int> em_iterations = IntField(value, context, "em_iterations", spec.em_iterations);
  if (!em_iterations.ok()) return em_iterations.status();
  spec.em_iterations = *em_iterations;

  if (const JsonValue* tolerance = value.Find("em_tolerance")) {
    if (!tolerance->is_number()) {
      return WrongType(context + ".em_tolerance", "a number", *tolerance);
    }
    spec.em_tolerance = tolerance->number_value();
  }

  Result<bool> fit_cache = BoolField(value, context, "fit_cache", spec.fit_cache);
  if (!fit_cache.ok()) return fit_cache.status();
  spec.fit_cache = *fit_cache;

  if (const JsonValue* extras = value.Find("extra_repair_stats")) {
    if (!extras->is_array()) {
      return WrongType(context + ".extra_repair_stats", "an array", *extras);
    }
    const std::vector<JsonValue>& items = extras->array_items();
    for (size_t i = 0; i < items.size(); ++i) {
      std::string item_context = context + ".extra_repair_stats[" + std::to_string(i) + "]";
      if (!items[i].is_string()) return WrongType(item_context, "a string", items[i]);
      std::optional<AggFn> fn = ParseAggFn(items[i].string_value());
      if (!fn.has_value()) {
        return Status::InvalidArgument("unknown extra repair statistic \"" +
                                       items[i].string_value() + "\" in " + item_context +
                                       " (expected one of count, sum, mean, std, var)");
      }
      spec.extra_repair_stats.push_back(*fn);
    }
  }
  return spec;
}

/// The wire-level per-call options: the api BatchOptions plus the one
/// serving-only knob (zero_timings).
struct WireOptions {
  BatchOptions batch;
  bool zero_timings = false;
};

Result<WireOptions> ParseOptions(const JsonValue& body) {
  WireOptions options;
  const JsonValue* value = body.Find("options");
  if (value == nullptr) return options;
  const std::string context = "options";
  if (!value->is_object()) return WrongType(context, "an object", *value);
  REPTILE_RETURN_IF_ERROR(CheckKnownKeys(
      *value, context, {"threads", "top_k", "model", "extra_repair_stats", "zero_timings"}));
  if (value->Find("model") != nullptr && value->Find("extra_repair_stats") != nullptr) {
    return Status::InvalidArgument(
        "options has both \"model\" and the deprecated \"extra_repair_stats\"; a model "
        "object carries its own extra_repair_stats — set them there");
  }
  if (const JsonValue* model = value->Find("model")) {
    Result<ModelSpec> spec = ParseModelSpec(*model, context + ".model");
    if (!spec.ok()) return spec.status();
    options.batch.model = std::move(*spec);
  }
  Result<int> threads = IntField(*value, context, "threads", 0);
  if (!threads.ok()) return threads.status();
  options.batch.num_threads = *threads;
  Result<int> top_k = IntField(*value, context, "top_k", 0);
  if (!top_k.ok()) return top_k.status();
  options.batch.top_k = *top_k;
  if (const JsonValue* extras = value->Find("extra_repair_stats")) {
    if (!extras->is_array()) {
      return WrongType(context + ".extra_repair_stats", "an array", *extras);
    }
    options.batch.extra_repair_stats.emplace();  // engaged; empty = toggle off
    const std::vector<JsonValue>& items = extras->array_items();
    for (size_t i = 0; i < items.size(); ++i) {
      if (!items[i].is_string()) {
        return WrongType(context + ".extra_repair_stats[" + std::to_string(i) + "]",
                         "a string", items[i]);
      }
      options.batch.extra_repair_stats->push_back(items[i].string_value());
    }
  }
  Result<bool> zero_timings = BoolField(*value, context, "zero_timings", false);
  if (!zero_timings.ok()) return zero_timings.status();
  options.zero_timings = *zero_timings;
  return options;
}

// zero_timings zeroes every scheduling- AND cache-state-dependent field —
// timings plus the fit counters (a warm call trains 0 models where a cold
// one trained N) — so cold and cache-warm responses to one request are
// byte-identical.
void ZeroTimings(ExploreResponse* response) {
  for (HierarchyResponse& candidate : response->candidates) {
    candidate.train_seconds = 0.0;
    candidate.total_seconds = 0.0;
  }
}

void ZeroTimings(BatchExploreResponse* batch) {
  batch->train_seconds = 0.0;
  batch->wall_seconds = 0.0;
  batch->models_trained = 0;
  batch->fit_cache_hits = 0;
  for (ExploreResponse& response : batch->responses) ZeroTimings(&response);
}

HttpResponse MethodNotAllowed(const std::string& allow) {
  HttpResponse response = HttpResponse::Json(
      405,
      "{\"error\":{\"code\":\"METHOD_NOT_ALLOWED\",\"http\":405,\"message\":"
      "\"this route only accepts " +
          allow + "\"}}");
  response.extra_headers.emplace_back("Allow", allow);
  return response;
}

// ---- Auth + streaming-upload helpers ---------------------------------------

/// The 401 envelope. Not routed through ErrorResponse: StatusCode has no
/// unauthenticated member (nothing inside the engine fails that way), and
/// growing the enum for a transport-only concern would force every switch
/// over it to handle a code the core never produces.
HttpResponse UnauthorizedResponse() {
  HttpResponse response = HttpResponse::Json(
      401,
      "{\"error\":{\"code\":\"UNAUTHENTICATED\",\"http\":401,\"message\":"
      "\"this route requires a bearer token (Authorization: Bearer <token>)\"}}");
  response.extra_headers.emplace_back("WWW-Authenticate", "Bearer");
  return response;
}

/// True when `path` is "/v1/datasets/{name}<suffix>" with a non-empty name;
/// fills `name` on a match. A plain suffix check suffices for the two
/// dataset sub-routes.
bool ParseDatasetSubroute(const std::string& path, std::string_view suffix,
                          std::string* name) {
  constexpr std::string_view kPrefix = "/v1/datasets/";
  if (path.size() <= kPrefix.size() + suffix.size()) return false;
  if (std::string_view(path).substr(0, kPrefix.size()) != kPrefix) return false;
  if (std::string_view(path).substr(path.size() - suffix.size()) != suffix) return false;
  *name = path.substr(kPrefix.size(), path.size() - kPrefix.size() - suffix.size());
  return !name->empty();
}

bool ParseSnapshotRoute(const std::string& path, std::string* name) {
  return ParseDatasetSubroute(path, "/snapshot", name);
}

bool ParseRowsRoute(const std::string& path, std::string* name) {
  return ParseDatasetSubroute(path, "/rows", name);
}

/// True for routes that change server state: dataset create/delete/snapshot,
/// row appends, session create/delete, commit. Reads and /healthz stay
/// token-free so probes and dashboards need no credentials. Snapshot writes
/// count as mutating — they create server-side files.
bool IsMutatingRoute(const std::string& method, const std::string& path) {
  if (method == "POST") {
    if (path == "/v1/datasets" || path == "/v1/sessions" || path == "/v1/commit") {
      return true;
    }
    std::string name;
    return ParseSnapshotRoute(path, &name) || ParseRowsRoute(path, &name);
  }
  if (method == "DELETE") {
    return path.rfind("/v1/datasets/", 0) == 0 || path.rfind("/v1/sessions/", 0) == 0;
  }
  return false;
}

/// True when the Authorization header is the Bearer scheme carrying exactly
/// `token` (scheme case-insensitive per RFC 7235; token bytes exact).
bool BearerTokenMatches(const HttpRequest& request, const std::string& token) {
  const std::string* value = request.FindHeader("authorization");
  if (value == nullptr) return false;
  constexpr std::string_view kScheme = "bearer ";
  if (value->size() != kScheme.size() + token.size()) return false;
  for (size_t i = 0; i < kScheme.size(); ++i) {
    char c = (*value)[i];
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c + ('a' - 'A'));
    if (c != kScheme[i]) return false;
  }
  return value->compare(kScheme.size(), std::string::npos, token) == 0;
}

/// Percent-decodes a query-string component ('+' is a space). Malformed
/// escapes pass through verbatim — the metadata validation downstream gives
/// a more useful error than a generic decode failure would.
std::string PercentDecode(std::string_view in) {
  auto hex = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::string out;
  out.reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    if (in[i] == '+') {
      out += ' ';
    } else if (in[i] == '%' && i + 2 < in.size() && hex(in[i + 1]) >= 0 &&
               hex(in[i + 2]) >= 0) {
      out += static_cast<char>(hex(in[i + 1]) * 16 + hex(in[i + 2]));
      i += 2;
    } else {
      out += in[i];
    }
  }
  return out;
}

/// Splits "a=1&b=two" into decoded (key, value) pairs, preserving order and
/// duplicates (the "hierarchy" key repeats by design).
std::vector<std::pair<std::string, std::string>> ParseQuery(std::string_view query) {
  std::vector<std::pair<std::string, std::string>> params;
  size_t begin = 0;
  while (begin < query.size()) {
    size_t end = query.find('&', begin);
    if (end == std::string_view::npos) end = query.size();
    std::string_view item = query.substr(begin, end - begin);
    if (!item.empty()) {
      size_t eq = item.find('=');
      if (eq == std::string_view::npos) {
        params.emplace_back(PercentDecode(item), std::string());
      } else {
        params.emplace_back(PercentDecode(item.substr(0, eq)),
                            PercentDecode(item.substr(eq + 1)));
      }
    }
    begin = end + 1;
  }
  return params;
}

/// "a,b,c" -> {a, b, c}; empty segments and an empty input yield nothing.
std::vector<std::string> SplitCommaList(const std::string& value) {
  std::vector<std::string> items;
  size_t begin = 0;
  while (begin <= value.size()) {
    size_t end = value.find(',', begin);
    if (end == std::string::npos) end = value.size();
    if (end > begin) items.push_back(value.substr(begin, end - begin));
    begin = end + 1;
  }
  return items;
}

/// Sink returned by StartStreamingBody when the request is rejected before
/// any body byte is read (bad metadata, missing token): refuses the first
/// chunk so the front end discards the upload and writes the stored error.
class RejectingSink final : public HttpBodySink {
 public:
  explicit RejectingSink(HttpResponse response) : response_(std::move(response)) {}
  bool Append(std::string_view) override { return false; }
  HttpResponse Finish(bool) override { return std::move(response_); }

 private:
  HttpResponse response_;
};

}  // namespace

/// Streamed POST /v1/datasets body consumer: every chunk goes straight into
/// CsvStreamParser, so the upload is never materialized as one string;
/// Finish() builds the Dataset and registers it exactly as the buffered JSON
/// path does, returning the same 201 body shape.
class DatasetUploadSink final : public HttpBodySink {
 public:
  DatasetUploadSink(ReptileService* service, std::string name, CsvSpec spec,
                    std::vector<HierarchySchema> hierarchies,
                    std::vector<std::string> commits)
      : service_(service),
        name_(std::move(name)),
        parser_(std::move(spec), "uploaded csv"),
        hierarchies_(std::move(hierarchies)),
        commits_(std::move(commits)) {}

  bool Append(std::string_view chunk) override { return parser_.Feed(chunk); }

  HttpResponse Finish(bool complete) override {
    if (!parser_.status().ok()) {
      return ReptileService::ErrorResponse(parser_.status());
    }
    if (!complete) {
      return ReptileService::ErrorResponse(Status::InvalidArgument(
          "the connection closed before the declared csv body was received"));
    }
    Result<Table> table = parser_.Finish();
    if (!table.ok()) return ReptileService::ErrorResponse(table.status());
    size_t rows = table->num_rows();
    Result<Dataset> dataset =
        Dataset::Make(std::move(table).value(), std::move(hierarchies_));
    if (!dataset.ok()) return ReptileService::ErrorResponse(dataset.status());
    Status added = service_->AddDataset(name_, std::move(dataset).value(), commits_);
    if (!added.ok()) return ReptileService::ErrorResponse(added);
    std::string body =
        "{\"dataset\":" + JsonQuote(name_) + ",\"rows\":" + std::to_string(rows) +
        ",\"session\":" + JsonQuote(ReptileService::DefaultSessionId(name_)) + "}";
    return HttpResponse::Json(201, std::move(body));
  }

 private:
  ReptileService* service_;
  std::string name_;
  CsvStreamParser parser_;
  std::vector<HierarchySchema> hierarchies_;
  std::vector<std::string> commits_;
};

/// Streamed POST /v1/datasets/{name}/rows body consumer. Unlike the upload
/// sink, the chunks are accumulated: the append path validates the header
/// and runs the dirty-subtree analysis against the parent over the complete
/// delta, and append deltas are small next to the datasets they extend.
/// Finish() runs the same AppendToDataset core as the JSON form.
class DatasetAppendSink final : public HttpBodySink {
 public:
  DatasetAppendSink(ReptileService* service, std::string name)
      : service_(service), name_(std::move(name)) {}

  bool Append(std::string_view chunk) override {
    body_.append(chunk.data(), chunk.size());
    return true;
  }

  HttpResponse Finish(bool complete) override {
    if (!complete) {
      return ReptileService::ErrorResponse(Status::InvalidArgument(
          "the connection closed before the declared csv body was received"));
    }
    Result<std::string> response = service_->AppendToDataset(name_, body_, "csv body");
    if (!response.ok()) return ReptileService::ErrorResponse(response.status());
    return HttpResponse::Json(201, std::move(response).value());
  }

 private:
  ReptileService* service_;
  std::string name_;
  std::string body_;
};

ReptileService::ReptileService(ServiceOptions options)
    : ReptileService(std::make_shared<DatasetRegistry>(), std::move(options)) {}

ReptileService::ReptileService(std::shared_ptr<DatasetRegistry> registry,
                               ServiceOptions options)
    : options_(std::move(options)),
      registry_(std::move(registry)),
      start_time_(std::chrono::steady_clock::now()),
      metrics_(std::make_unique<MetricsRegistry>()) {
  // Pre-create every per-request series so Handle() only dereferences cached
  // pointers — the registry mutex is never taken on the request path.
  request_latency_ = metrics_->GetHistogram(
      "reptile_http_request_duration_seconds",
      "End-to-end latency of one request through ReptileService::Handle");
  for (int code_class : {2, 3, 4, 5}) {
    requests_by_class_[code_class] = metrics_->GetCounter(
        "reptile_http_requests_total", "Requests handled, by status code class",
        {{"code", std::to_string(code_class) + "xx"}});
  }
  for (const char* stage : {"parse", "validate", "plan", "fit", "rank", "serialize"}) {
    stage_latency_[stage] = metrics_->GetHistogram(
        "reptile_request_stage_duration_seconds",
        "Latency of one stage of the recommend pipeline", {{"stage", stage}});
  }
  if (options_.debug_request_ring > 0) {
    request_ring_ = std::make_unique<RequestRing>(options_.debug_request_ring);
  }
}

ReptileService::~ReptileService() = default;

int64_t ReptileService::NowNs() const {
  std::chrono::steady_clock::time_point now =
      options_.clock != nullptr ? options_.clock() : std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(now.time_since_epoch())
      .count();
}

void ReptileService::EvictIdleSessions() {
  if (options_.session_ttl_seconds <= 0) return;
  const int64_t ttl_ns = static_cast<int64_t>(options_.session_ttl_seconds) * 1000000000LL;
  const int64_t now = NowNs();
  // Throttle: expiry has ttl-granularity anyway, so sweeping more than a few
  // times per TTL buys nothing — without this, every lookup on a busy server
  // would pay an O(sessions) scan.
  int64_t last_sweep = last_sweep_ns_.load(std::memory_order_relaxed);
  if (now - last_sweep < ttl_ns / 8 ||
      !last_sweep_ns_.compare_exchange_strong(last_sweep, now,
                                              std::memory_order_relaxed)) {
    return;
  }
  {
    // Cheap shared-lock scan first: the common case is nothing to evict, and
    // lookups should not pay for an exclusive lock then.
    std::shared_lock<std::shared_mutex> lock(mu_);
    bool any_expired = false;
    for (const auto& [id, entry] : sessions_) {
      if (!entry->is_default &&
          now - entry->last_used_ns.load(std::memory_order_relaxed) > ttl_ns) {
        any_expired = true;
        break;
      }
    }
    if (!any_expired) return;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    SessionEntry& entry = *it->second;
    if (!entry.is_default &&
        now - entry.last_used_ns.load(std::memory_order_relaxed) > ttl_ns) {
      // An in-flight request holds its own shared_ptr; the entry dies when
      // the last holder drops it.
      sessions_evicted_.fetch_add(1);
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

Status ReptileService::AddDataset(std::string name, Dataset dataset,
                                  const std::vector<std::string>& commits) {
  Result<DatasetHandle> handle = PreparedDataset::Prepare(std::move(dataset));
  if (!handle.ok()) return handle.status();
  return InstallPrepared(name, std::move(handle).value(), commits);
}

Status ReptileService::AddPreparedDataset(const std::string& name, DatasetHandle handle,
                                          const std::vector<std::string>& commits) {
  if (handle == nullptr) return Status::InvalidArgument("null dataset handle");
  return InstallPrepared(name, std::move(handle), commits);
}

Status ReptileService::InstallPrepared(const std::string& name, DatasetHandle handle,
                                       const std::vector<std::string>& commits) {
  // Validate EVERYTHING — default session, commits — before the dataset
  // becomes visible anywhere. Publishing first and rolling back on failure
  // would let a concurrent client bind a session to a dataset whose
  // registration is about to be undone.
  if (options_.cache_budget_bytes > 0) {
    handle->SetCacheBudgetBytes(options_.cache_budget_bytes);
  }
  Result<Session> session = Session::Open(handle, options_.session_defaults);
  if (!session.ok()) return session.status();
  for (const std::string& hierarchy : commits) {
    REPTILE_RETURN_IF_ERROR(session->Commit(hierarchy));
  }
  // One critical section for the registry entry AND the default session:
  // no observer may see the dataset listed but its alias 404ing (or stale).
  // The registry's lock nests inside mu_ here; registry methods never wait
  // on mu_, so the order cannot cycle.
  std::string id = DefaultSessionId(name);
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (options_.max_datasets > 0 && registry_->size() >= options_.max_datasets &&
      !registry_->Contains(name)) {
    return Status::FailedPrecondition(
        "dataset limit reached (" + std::to_string(options_.max_datasets) +
        "); delete datasets or raise --max-datasets");
  }
  Result<DatasetHandle> registered = registry_->AddPrepared(name, std::move(handle));
  if (!registered.ok()) return registered.status();
  // Assign (not emplace): when a name is re-registered after RemoveDataset
  // raced with direct registry() use, a stale default session must be
  // replaced, never silently kept serving the old dataset.
  sessions_[id] = std::make_shared<SessionEntry>(id, name, (*registered)->version(),
                                                 /*is_default=*/true,
                                                 std::move(session).value(), NowNs());
  return Status::Ok();
}

Status ReptileService::RemoveDataset(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  REPTILE_RETURN_IF_ERROR(registry_->Remove(name));
  // Drop every session over the dataset — the default (otherwise it would
  // serve the alias forever, pinning the dataset: undeletable and
  // TTL-exempt) and per-client sessions (their ids would dangle). In-flight
  // requests hold their own EntryPtr and DatasetHandle, so they finish.
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (it->second->dataset == name) {
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::Ok();
}

std::string ReptileService::DefaultSessionId(const std::string& dataset) {
  return "default:" + dataset;
}

Result<ReptileService::EntryPtr> ReptileService::CreateSessionEntry(
    const std::string& dataset, const std::map<std::string, int>& committed,
    const ExploreRequest* options) {
  EvictIdleSessions();
  Result<DatasetHandle> handle = registry_->Find(dataset);
  if (!handle.ok()) return handle.status();
  Result<Session> session =
      Session::Open(*handle, options != nullptr ? *options : options_.session_defaults);
  if (!session.ok()) return session.status();
  Status restored = session->RestoreCommitted(committed);
  if (!restored.ok()) return restored;
  // The entry stores the chain's BASE name (a "@vK" pin stripped): the
  // RemoveDataset sweep matches sessions by chain name, and a session pinned
  // to any version must die with its chain. The pin itself survives in the
  // handle — and in dataset_version below.
  std::string base = dataset;
  if (!registry_->Contains(dataset)) {
    std::string parsed_base;
    int64_t pinned = 0;
    if (ParseVersionedName(dataset, &parsed_base, &pinned) &&
        registry_->Contains(parsed_base)) {
      base = parsed_base;
    }
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Re-check under the lock, by HANDLE IDENTITY not name: RemoveDataset
  // sweeps sessions_ while holding mu_, so a dataset deleted (or deleted and
  // re-registered under the same name with different data) between the Find
  // above and here must not gain a session the sweep never saw — it would
  // serve the old dataset while the listing describes the new one.
  Result<DatasetHandle> current = registry_->Find(dataset);
  if (!current.ok() || current->get() != handle->get()) {
    return Status::NotFound("no dataset named '" + dataset + "' is loaded on this server");
  }
  if (options_.max_sessions > 0) {
    int64_t client_sessions = 0;
    for (const auto& [existing_id, entry] : sessions_) {
      if (!entry->is_default) ++client_sessions;
    }
    if (client_sessions >= options_.max_sessions) {
      return Status::FailedPrecondition(
          "session limit reached (" + std::to_string(options_.max_sessions) +
          "); delete idle sessions or raise --max-sessions");
    }
  }
  std::string id = "s-" + std::to_string(next_session_++);
  EntryPtr entry = std::make_shared<SessionEntry>(id, std::move(base), (*handle)->version(),
                                                  /*is_default=*/false,
                                                  std::move(session).value(), NowNs());
  sessions_.emplace(std::move(id), entry);
  return entry;
}

Result<std::string> ReptileService::CreateSession(const std::string& dataset,
                                                  const std::map<std::string, int>& committed,
                                                  const ExploreRequest* options) {
  Result<EntryPtr> entry = CreateSessionEntry(dataset, committed, options);
  if (!entry.ok()) return entry.status();
  return (*entry)->id;
}

Status ReptileService::DeleteSession(const std::string& id) {
  EvictIdleSessions();
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("no session with id '" + id + "'");
  }
  if (it->second->is_default) {
    return Status::InvalidArgument("session '" + id +
                                   "' is the dataset's default session and cannot be deleted");
  }
  sessions_.erase(it);
  return Status::Ok();
}

int ReptileService::HttpStatusFor(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kFailedPrecondition:
      return 409;
    case StatusCode::kIoError:
    case StatusCode::kInternal:
      return 500;
    case StatusCode::kDeadlineExceeded:
      return 504;
  }
  return 500;
}

HttpResponse ReptileService::ErrorResponse(const Status& status) {
  int http = HttpStatusFor(status.code());
  std::string body = "{\"error\":{\"code\":\"" + std::string(StatusCodeName(status.code())) +
                     "\",\"http\":" + std::to_string(http) +
                     ",\"message\":" + JsonQuote(status.message()) + "}}";
  return HttpResponse::Json(http, std::move(body));
}

std::vector<std::string> ReptileService::dataset_names() const { return registry_->names(); }

std::vector<std::string> ReptileService::session_ids() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(sessions_.size());
  for (const auto& [id, entry] : sessions_) ids.push_back(id);
  return ids;
}

Result<ReptileService::EntryPtr> ReptileService::FindSession(const std::string& id) {
  EvictIdleSessions();
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("no session with id '" + id + "'");
  }
  it->second->last_used_ns.store(NowNs(), std::memory_order_relaxed);
  return it->second;
}

Result<ReptileService::EntryPtr> ReptileService::FindDefaultSession(
    const std::string& dataset) {
  EvictIdleSessions();
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = sessions_.find(DefaultSessionId(dataset));
  if (it == sessions_.end() || !it->second->is_default || it->second->dataset != dataset) {
    return Status::NotFound("no dataset named '" + dataset + "' is loaded on this server");
  }
  it->second->last_used_ns.store(NowNs(), std::memory_order_relaxed);
  return it->second;
}

Result<ReptileService::EntryPtr> ReptileService::ResolveTarget(const JsonValue& body) {
  const JsonValue* session = body.Find("session");
  const JsonValue* dataset = body.Find("dataset");
  if (session != nullptr && dataset != nullptr) {
    return Status::InvalidArgument(
        "request body must address exactly one of \"session\" or \"dataset\", not both");
  }
  if (session == nullptr && dataset == nullptr) {
    return Status::InvalidArgument(
        "request body is missing required field \"session\" (or the deprecated "
        "\"dataset\")");
  }
  if (session != nullptr) {
    if (!session->is_string()) return WrongType("session", "a string", *session);
    return FindSession(session->string_value());
  }
  if (!dataset->is_string()) return WrongType("dataset", "a string", *dataset);
  return FindDefaultSession(dataset->string_value());
}

std::string ReptileService::SessionSnapshotJson(SessionEntry& entry) {
  std::map<std::string, int> committed;
  {
    std::lock_guard<std::mutex> lock(entry.mu);
    committed = entry.session.CommittedDepths();
  }
  std::string out = "{\"session\":" + JsonQuote(entry.id) +
                    ",\"dataset\":" + JsonQuote(entry.dataset) +
                    ",\"dataset_version\":" + std::to_string(entry.dataset_version) +
                    ",\"default\":" + (entry.is_default ? "true" : "false") +
                    ",\"committed\":{";
  bool first = true;
  for (const auto& [name, depth] : committed) {
    if (!first) out += ',';
    first = false;
    out += JsonQuote(name) + ":" + std::to_string(depth);
  }
  out += "}}";
  return out;
}

bool ReptileService::CheckAuth(const HttpRequest& request) const {
  if (options_.auth_token.empty()) return true;
  if (!IsMutatingRoute(request.method, request.path)) return true;
  return BearerTokenMatches(request, options_.auth_token);
}

std::unique_ptr<HttpBodySink> ReptileService::StartStreamingBody(const HttpRequest& head) {
  if (head.method != "POST") return nullptr;
  std::string append_name;
  const bool is_upload = head.path == "/v1/datasets";
  const bool is_append = !is_upload && ParseRowsRoute(head.path, &append_name);
  if (!is_upload && !is_append) return nullptr;
  const std::string* content_type = head.FindHeader("content-type");
  if (content_type == nullptr) return nullptr;
  constexpr std::string_view kCsv = "text/csv";
  std::string_view ct(*content_type);
  if (ct.size() < kCsv.size()) return nullptr;
  for (size_t i = 0; i < kCsv.size(); ++i) {
    char c = ct[i];
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c + ('a' - 'A'));
    if (c != kCsv[i]) return nullptr;
  }
  if (ct.size() > kCsv.size() && ct[kCsv.size()] != ';' && ct[kCsv.size()] != ' ' &&
      ct[kCsv.size()] != '\t') {
    return nullptr;  // some other text/csv* type; buffer it normally
  }

  // From here on the request IS a streamed upload: failures must be reported
  // through a sink (there is no buffered handler to fall back to), and the
  // sink rejects the body so the server never reads an upload it won't use.
  if (!CheckAuth(head)) {
    return std::make_unique<RejectingSink>(UnauthorizedResponse());
  }
  auto reject = [](Status status) {
    return std::make_unique<RejectingSink>(ErrorResponse(status));
  };

  if (is_append) {
    // No query parameters: the dataset already defines the schema and the
    // separator, so anything here is caller confusion worth rejecting.
    if (!head.query.empty()) {
      return reject(Status::InvalidArgument(
          "a streamed append takes no query parameters (the dataset already defines "
          "its columns and separator)"));
    }
    return std::make_unique<DatasetAppendSink>(this, std::move(append_name));
  }

  std::string name;
  std::string separator = ",";
  CsvSpec spec;
  std::vector<HierarchySchema> hierarchies;
  std::vector<std::string> commits;
  bool saw_name = false;
  bool saw_dimensions = false;
  for (const auto& [key, value] : ParseQuery(head.query)) {
    if (key == "name") {
      name = value;
      saw_name = true;
    } else if (key == "dimensions") {
      spec.dimension_columns = SplitCommaList(value);
      saw_dimensions = true;
    } else if (key == "measures") {
      spec.measure_columns = SplitCommaList(value);
    } else if (key == "separator") {
      separator = value;
    } else if (key == "commits") {
      commits = SplitCommaList(value);
    } else if (key == "hierarchy") {
      size_t colon = value.find(':');
      HierarchySchema schema;
      if (colon != std::string::npos) {
        schema.name = value.substr(0, colon);
        schema.attributes = SplitCommaList(value.substr(colon + 1));
      }
      if (schema.name.empty() || schema.attributes.empty()) {
        return reject(Status::InvalidArgument(
            "query parameter \"hierarchy\" must look like name:attr1,attr2, got \"" +
            value + "\""));
      }
      hierarchies.push_back(std::move(schema));
    } else {
      return reject(Status::InvalidArgument(
          "unknown query parameter \"" + key +
          "\" for a streamed dataset upload (expected one of: name, dimensions, "
          "measures, hierarchy, commits, separator)"));
    }
  }
  if (!saw_name || name.empty()) {
    return reject(Status::InvalidArgument(
        "a streamed dataset upload needs a non-empty \"name\" query parameter"));
  }
  if (!saw_dimensions || spec.dimension_columns.empty()) {
    return reject(Status::InvalidArgument(
        "a streamed dataset upload needs a \"dimensions\" query parameter "
        "(comma-separated column names)"));
  }
  if (separator.size() != 1) {
    return reject(Status::InvalidArgument(
        "separator must be a single character, got \"" + separator + "\""));
  }
  spec.separator = separator[0];
  return std::make_unique<DatasetUploadSink>(this, std::move(name), std::move(spec),
                                             std::move(hierarchies), std::move(commits));
}

HttpResponse ReptileService::Handle(const HttpRequest& request) {
  // Mint the trace id — or adopt the client's, when it survives sanitizing —
  // before any routing, so even auth failures and 404s carry X-Request-Id.
  std::string trace_id;
  const std::string* supplied = request.FindHeader("x-request-id");
  if (supplied != nullptr && ValidTraceId(*supplied)) {
    trace_id = *supplied;
  } else {
    trace_id = MintTraceId();
  }
  TraceContext trace(std::move(trace_id));

  HttpResponse response = HandleInternal(request, &trace);
  const double total_seconds = trace.ElapsedSeconds();

  // Metrics first (always real durations — zero_timings governs rendered
  // output, never measurement): overall latency, the status-class counter,
  // and the per-stage histograms fed from this request's spans.
  request_latency_->Observe(total_seconds);
  auto code_it = requests_by_class_.find(response.status / 100);
  if (code_it != requests_by_class_.end()) code_it->second->Increment();
  std::vector<TraceSpan> spans = trace.Spans();
  for (const TraceSpan& span : spans) {
    auto stage_it = stage_latency_.find(span.name);
    if (stage_it != stage_latency_.end()) stage_it->second->Observe(span.duration_seconds);
  }

  // Stamp the response. Extra headers never participate in the differential
  // byte-identity tests (those compare status + body only), and with
  // zero_durations every Server-Timing dur renders as 0.
  response.extra_headers.emplace_back("X-Request-Id", trace.id());
  response.extra_headers.emplace_back("Server-Timing",
                                      ServerTimingHeader(trace, total_seconds));

  if (request_ring_ != nullptr) {
    RequestRecord record;
    record.trace_id = trace.id();
    record.method = request.method;
    record.path = request.path;
    record.http_status = response.status;
    record.duration_seconds = total_seconds;
    record.spans = spans;
    if (trace.zero_durations()) {
      // The debug ring obeys the same determinism contract as response
      // bodies: offsets and durations go to 0, span names stay.
      record.duration_seconds = 0.0;
      for (TraceSpan& span : record.spans) {
        span.start_seconds = 0.0;
        span.duration_seconds = 0.0;
      }
    }
    request_ring_->Add(std::move(record));
  }

  const double duration_ms = total_seconds * 1e3;
  const bool slow =
      options_.slow_request_ms > 0.0 && duration_ms >= options_.slow_request_ms;
  const LogLevel level = slow ? LogLevel::kWarn : LogLevel::kDebug;
  Logger& logger = Logger::Global();
  if (logger.Enabled(level)) {
    std::vector<LogField> fields;
    fields.push_back(LogField::Str("trace_id", trace.id()));
    fields.push_back(LogField::Str("method", request.method));
    fields.push_back(LogField::Str("path", request.path));
    fields.push_back(LogField::Int("status", response.status));
    fields.push_back(LogField::Num("duration_ms", duration_ms));
    if (slow && !spans.empty()) {
      std::string spans_json = "[";
      for (size_t i = 0; i < spans.size(); ++i) {
        if (i > 0) spans_json += ',';
        spans_json += "{\"name\":" + JsonQuote(spans[i].name) +
                      ",\"ms\":" + JsonNumber(spans[i].duration_seconds * 1e3) + "}";
      }
      spans_json += "]";
      fields.push_back(LogField::Raw("spans", std::move(spans_json)));
    }
    logger.Log(level, slow ? "slow_request" : "request", fields);
  }
  return response;
}

HttpResponse ReptileService::HandleInternal(const HttpRequest& request,
                                            TraceContext* trace) {
  if (!CheckAuth(request)) return UnauthorizedResponse();
  const std::string& path = request.path;
  if (path == "/healthz") {
    if (request.method != "GET") return MethodNotAllowed("GET");
    return HandleHealthz();
  }
  if (path == "/metricsz") {
    if (request.method != "GET") return MethodNotAllowed("GET");
    return HandleMetricsz();
  }
  if (path == "/v1/debug/requests") {
    // 404 when the ring is off: introspection is opt-in, and an exposed
    // server without the flag should look like it has no such route at all.
    if (request_ring_ == nullptr) {
      return ErrorResponse(Status::NotFound("no route matches " + path));
    }
    if (request.method != "GET") return MethodNotAllowed("GET");
    // Read-only, but operational data (request paths, client-chosen ids):
    // bearer-gated whenever auth is configured, unlike /healthz.
    if (!options_.auth_token.empty() &&
        !BearerTokenMatches(request, options_.auth_token)) {
      return UnauthorizedResponse();
    }
    return HandleDebugRequests();
  }
  if (path == "/v1/datasets") {
    if (request.method == "GET") return HandleDatasetList();
    if (request.method == "POST") return HandleDatasetCreate(request.body);
    return MethodNotAllowed("GET, POST");
  }
  if (path == "/v1/sessions") {
    if (request.method == "GET") return HandleSessionList();
    if (request.method == "POST") return HandleSessionCreate(request.body);
    return MethodNotAllowed("GET, POST");
  }
  constexpr std::string_view kDatasetPrefix = "/v1/datasets/";
  if (path.size() > kDatasetPrefix.size() &&
      std::string_view(path).substr(0, kDatasetPrefix.size()) == kDatasetPrefix) {
    std::string snapshot_name;
    if (ParseSnapshotRoute(path, &snapshot_name)) {
      if (request.method == "POST") return HandleDatasetSnapshot(snapshot_name, request.body);
      return MethodNotAllowed("POST");
    }
    std::string rows_name;
    if (ParseRowsRoute(path, &rows_name)) {
      if (request.method == "POST") return HandleDatasetAppend(rows_name, request.body);
      return MethodNotAllowed("POST");
    }
    std::string name = path.substr(kDatasetPrefix.size());
    if (request.method == "DELETE") return HandleDatasetDelete(name);
    return MethodNotAllowed("DELETE");
  }
  constexpr std::string_view kSessionPrefix = "/v1/sessions/";
  if (path.size() > kSessionPrefix.size() &&
      std::string_view(path).substr(0, kSessionPrefix.size()) == kSessionPrefix) {
    std::string id = path.substr(kSessionPrefix.size());
    if (request.method == "GET") return HandleSessionGet(id);
    if (request.method == "DELETE") return HandleSessionDelete(id);
    return MethodNotAllowed("GET, DELETE");
  }
  if (path == "/v1/recommend" || path == "/v1/recommend_batch") {
    if (request.method != "POST") return MethodNotAllowed("POST");
    return HandleRecommend(request.body, /*batch=*/path == "/v1/recommend_batch", trace);
  }
  if (path == "/v1/view") {
    if (request.method != "POST") return MethodNotAllowed("POST");
    return HandleView(request.body);
  }
  if (path == "/v1/commit") {
    if (request.method != "POST") return MethodNotAllowed("POST");
    return HandleCommit(request.body);
  }
  if (options_.enable_debug_status_route && path == "/v1/_debug/status") {
    if (request.method != "POST") return MethodNotAllowed("POST");
    return HandleDebugStatus(request.body);
  }
  return ErrorResponse(Status::NotFound("no route matches " + path));
}

// Warm-path observability: both shared caches' counters, summed over every
// registered dataset. A healthy warm deployment shows model-cache hits
// climbing while fits stay flat — zero-fit sessions without a debugger.
// Gauge semantics: deleting a dataset drops its (monotonic) contribution
// from these sums, so they can step backwards across DELETE /v1/datasets.
struct ReptileService::CacheTotals {
  int64_t agg_entries = 0, agg_hits = 0, agg_misses = 0;
  int64_t agg_bytes = 0, agg_evictions = 0;
  int64_t model_entries = 0, model_hits = 0, model_misses = 0, model_fits = 0;
  int64_t model_bytes = 0, model_evictions = 0;
};

ReptileService::CacheTotals ReptileService::CollectCacheTotals() const {
  CacheTotals t;
  for (const std::string& name : registry_->names()) {
    Result<DatasetHandle> handle = registry_->Find(name);
    if (!handle.ok()) continue;  // removed between names() and Find()
    t.agg_entries += (*handle)->cache_entries();
    t.agg_hits += (*handle)->cache_hits();
    t.agg_misses += (*handle)->cache_misses();
    t.agg_bytes += static_cast<int64_t>((*handle)->cache_bytes());
    t.agg_evictions += (*handle)->cache_evictions();
    t.model_entries += (*handle)->model_cache_entries();
    t.model_hits += (*handle)->model_cache_hits();
    t.model_misses += (*handle)->model_cache_misses();
    t.model_fits += (*handle)->model_cache_fits();
    t.model_bytes += static_cast<int64_t>((*handle)->model_cache_bytes());
    t.model_evictions += (*handle)->model_cache_evictions();
  }
  return t;
}

HttpResponse ReptileService::HandleHealthz() {
  size_t sessions;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    sessions = sessions_.size();
  }
  CacheTotals t = CollectCacheTotals();
  int64_t uptime = std::chrono::duration_cast<std::chrono::seconds>(
                       std::chrono::steady_clock::now() - start_time_)
                       .count();
  std::string versions = "[";
  {
    bool first = true;
    for (const DatasetVersionSummary& summary : registry_->VersionSummaries()) {
      if (!first) versions += ',';
      first = false;
      versions += "{\"dataset\":" + JsonQuote(summary.name) +
                  ",\"head\":" + std::to_string(summary.head) + ",\"live\":[";
      for (size_t i = 0; i < summary.live.size(); ++i) {
        if (i > 0) versions += ',';
        versions += std::to_string(summary.live[i]);
      }
      versions += "]}";
    }
    versions += "]";
  }
  std::string body =
      "{\"status\":\"ok\",\"datasets\":" + std::to_string(registry_->size()) +
      ",\"sessions\":" + std::to_string(sessions) +
      ",\"sessions_evicted\":" + std::to_string(sessions_evicted_.load()) +
      ",\"versions\":" + versions +
      ",\"versions_gc\":" + std::to_string(registry_->versions_gc()) +
      ",\"cache_invalidations\":" + std::to_string(registry_->cache_invalidations()) +
      ",\"aggregate_cache\":{\"entries\":" + std::to_string(t.agg_entries) +
      ",\"hits\":" + std::to_string(t.agg_hits) +
      ",\"misses\":" + std::to_string(t.agg_misses) +
      ",\"bytes\":" + std::to_string(t.agg_bytes) +
      ",\"evictions\":" + std::to_string(t.agg_evictions) +
      "},\"model_cache\":{\"entries\":" + std::to_string(t.model_entries) +
      ",\"hits\":" + std::to_string(t.model_hits) +
      ",\"misses\":" + std::to_string(t.model_misses) +
      ",\"fits\":" + std::to_string(t.model_fits) +
      ",\"bytes\":" + std::to_string(t.model_bytes) +
      ",\"evictions\":" + std::to_string(t.model_evictions) +
      "},\"uptime_seconds\":" + std::to_string(uptime) +
      ",\"pid\":" + std::to_string(static_cast<int64_t>(getpid())) +
      ",\"build\":" + BuildInfoJson() +
      ",\"metrics\":" + metrics_->RenderJson();
  if (options_.transport_stats_json != nullptr) {
    body += ",\"transport\":" + options_.transport_stats_json();
  }
  body += "}";
  return HttpResponse::Json(200, std::move(body));
}

namespace {

// One hand-rendered Prometheus series for the values that already live
// elsewhere (cache sums, session counts, transport stats) and are sampled at
// scrape time instead of mirrored into the registry on every change.
void AppendPromSeries(std::string* out, const std::string& name, const char* help,
                      const char* type, int64_t value) {
  *out += "# HELP " + name + " " + help + "\n";
  *out += "# TYPE " + name + " ";
  *out += type;
  *out += "\n" + name + " " + std::to_string(value) + "\n";
}

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string PromLabelEscape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// The labeled variant: one HELP/TYPE header, then one sample per
/// (label value, sample) pair under the given label key.
void AppendPromSeries(std::string* out, const std::string& name, const char* help,
                      const char* type, const char* label_key,
                      const std::vector<std::pair<std::string, int64_t>>& samples) {
  *out += "# HELP " + name + " " + help + "\n";
  *out += "# TYPE " + name + " ";
  *out += type;
  *out += "\n";
  for (const auto& [label, value] : samples) {
    *out += name + "{" + label_key + "=\"" + PromLabelEscape(label) + "\"} " +
            std::to_string(value) + "\n";
  }
}

}  // namespace

HttpResponse ReptileService::HandleMetricsz() {
  EnsureProcessMetrics();
  size_t sessions;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    sessions = sessions_.size();
  }
  CacheTotals t = CollectCacheTotals();

  // Request-path series (this service's registry), then the process-wide
  // gauges, then the scrape-time samples.
  std::string body = metrics_->RenderPrometheus();
  body += MetricsRegistry::Global().RenderPrometheus();
  AppendPromSeries(&body, "reptile_datasets", "Registered datasets", "gauge",
                   static_cast<int64_t>(registry_->size()));
  AppendPromSeries(&body, "reptile_sessions", "Live sessions (defaults included)",
                   "gauge", static_cast<int64_t>(sessions));
  AppendPromSeries(&body, "reptile_sessions_evicted_total",
                   "Sessions evicted by the idle TTL", "counter",
                   sessions_evicted_.load());
  AppendPromSeries(&body, "reptile_aggregate_cache_entries",
                   "Shared aggregate-cache entries over live datasets", "gauge",
                   t.agg_entries);
  AppendPromSeries(&body, "reptile_aggregate_cache_hits",
                   "Aggregate-cache hits summed over live datasets", "gauge",
                   t.agg_hits);
  AppendPromSeries(&body, "reptile_aggregate_cache_misses",
                   "Aggregate-cache misses summed over live datasets", "gauge",
                   t.agg_misses);
  AppendPromSeries(&body, "reptile_aggregate_cache_bytes",
                   "Aggregate-cache resident bytes over live datasets", "gauge",
                   t.agg_bytes);
  AppendPromSeries(&body, "reptile_aggregate_cache_evictions",
                   "Aggregate-cache evictions summed over live datasets", "gauge",
                   t.agg_evictions);
  AppendPromSeries(&body, "reptile_model_cache_entries",
                   "Fitted-model cache entries over live datasets", "gauge",
                   t.model_entries);
  AppendPromSeries(&body, "reptile_model_cache_hits",
                   "Model-cache hits summed over live datasets", "gauge", t.model_hits);
  AppendPromSeries(&body, "reptile_model_cache_misses",
                   "Model-cache misses summed over live datasets", "gauge",
                   t.model_misses);
  AppendPromSeries(&body, "reptile_model_cache_fits",
                   "Models fitted, summed over live datasets", "gauge", t.model_fits);
  AppendPromSeries(&body, "reptile_model_cache_bytes",
                   "Model-cache resident bytes over live datasets", "gauge",
                   t.model_bytes);
  AppendPromSeries(&body, "reptile_model_cache_evictions",
                   "Model-cache evictions summed over live datasets", "gauge",
                   t.model_evictions);

  // Version-chain state: live version count and head id per chain, plus the
  // registry-wide GC / dirty-subtree invalidation counters.
  {
    std::vector<std::pair<std::string, int64_t>> live_counts, heads;
    for (const DatasetVersionSummary& summary : registry_->VersionSummaries()) {
      live_counts.emplace_back(summary.name, static_cast<int64_t>(summary.live.size()));
      heads.emplace_back(summary.name, summary.head);
    }
    AppendPromSeries(&body, "reptile_dataset_versions",
                     "Live (pinned or head) versions per dataset chain", "gauge",
                     "dataset", live_counts);
    AppendPromSeries(&body, "reptile_dataset_head_version",
                     "Head version id per dataset chain", "gauge", "dataset", heads);
  }
  AppendPromSeries(&body, "reptile_versions_gc_total",
                   "Unpinned ancestor versions retired by the version GC", "counter",
                   registry_->versions_gc());
  AppendPromSeries(&body, "reptile_cache_invalidations_total",
                   "Aggregate-cache (hierarchy, depth) entries invalidated by "
                   "dirty-subtree appends",
                   "counter", registry_->cache_invalidations());

  // Front-end transport counters (reactor: connections, backpressure trips,
  // ...), re-exported from the same hook /healthz uses. Top-level integers
  // only — that is the whole StatsJson shape.
  if (options_.transport_stats_json != nullptr) {
    Result<JsonValue> stats = ParseJson(options_.transport_stats_json());
    if (stats.ok() && stats->is_object()) {
      for (const auto& [key, value] : stats->object_items()) {
        if (!value.IsInteger()) continue;
        AppendPromSeries(&body, "reptile_transport_" + key,
                         "Front-end transport counter (see /healthz transport)",
                         "gauge", value.IntValue());
      }
    }
  }

  HttpResponse response;
  response.status = 200;
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  response.body = std::move(body);
  return response;
}

HttpResponse ReptileService::HandleDebugRequests() {
  return HttpResponse::Json(200, request_ring_->ToJson());
}

HttpResponse ReptileService::HandleDatasetList() {
  JsonValue root = JsonValue::Object();
  JsonValue datasets = JsonValue::Array();
  for (const std::string& name : registry_->names()) {
    Result<DatasetHandle> handle = registry_->Find(name);
    if (!handle.ok()) continue;  // removed between names() and Find()
    const Dataset& dataset = (*handle)->data();
    const Table& table = dataset.table();

    // Drill state comes from the dataset's default session (absent only when
    // the dataset was added to a shared registry behind this service's back).
    std::map<std::string, int> committed;
    bool have_session = false;
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      auto entry_it = sessions_.find(DefaultSessionId(name));
      if (entry_it != sessions_.end() && entry_it->second->is_default) {
        EntryPtr entry = entry_it->second;
        lock.unlock();
        std::lock_guard<std::mutex> session_lock(entry->mu);
        committed = entry->session.CommittedDepths();
        have_session = true;
      }
    }

    JsonValue item = JsonValue::Object();
    item.mutable_object_items().emplace_back("name", JsonValue::String(name));
    item.mutable_object_items().emplace_back(
        "rows", JsonValue::Number(static_cast<double>(table.num_rows())));

    JsonValue columns = JsonValue::Array();
    for (int c = 0; c < table.num_columns(); ++c) {
      JsonValue column = JsonValue::Object();
      column.mutable_object_items().emplace_back("name",
                                                 JsonValue::String(table.column_name(c)));
      column.mutable_object_items().emplace_back(
          "kind", JsonValue::String(table.is_dimension(c) ? "dimension" : "measure"));
      columns.mutable_array_items().push_back(std::move(column));
    }
    item.mutable_object_items().emplace_back("columns", std::move(columns));

    JsonValue hierarchies = JsonValue::Array();
    for (int h = 0; h < dataset.num_hierarchies(); ++h) {
      const HierarchySchema& schema = dataset.hierarchy(h);
      JsonValue hierarchy = JsonValue::Object();
      hierarchy.mutable_object_items().emplace_back("name", JsonValue::String(schema.name));
      JsonValue attributes = JsonValue::Array();
      for (const std::string& attr : schema.attributes) {
        attributes.mutable_array_items().push_back(JsonValue::String(attr));
      }
      hierarchy.mutable_object_items().emplace_back("attributes", std::move(attributes));
      hierarchy.mutable_object_items().emplace_back("depth",
                                                    JsonValue::Number(schema.depth()));
      auto depth_it = committed.find(schema.name);
      int drill_depth = have_session && depth_it != committed.end() ? depth_it->second : -1;
      hierarchy.mutable_object_items().emplace_back("drill_depth",
                                                    JsonValue::Number(drill_depth));
      hierarchy.mutable_object_items().emplace_back(
          "can_drill", JsonValue::Bool(drill_depth >= 0 && drill_depth < schema.depth()));
      hierarchies.mutable_array_items().push_back(std::move(hierarchy));
    }
    item.mutable_object_items().emplace_back("hierarchies", std::move(hierarchies));
    datasets.mutable_array_items().push_back(std::move(item));
  }
  root.mutable_object_items().emplace_back("datasets", std::move(datasets));
  return HttpResponse::Json(200, WriteJson(root));
}

Result<std::string> ReptileService::ResolveUnderDatasetRoot(const std::string& relative,
                                                            const std::string& field) const {
  // Server-side file access must be confined: without a configured root, an
  // unauthenticated client could read (or write) any file the server process
  // can (CSV parse errors echo file contents byte-for-byte).
  if (options_.dataset_path_root.empty()) {
    return Status::InvalidArgument(
        "server-side \"" + field +
        "\" access is disabled on this server (no dataset root configured)");
  }
  if (relative.empty() || relative.front() == '/') {
    return Status::InvalidArgument(
        "\"" + field + "\" must be relative to the server's dataset root");
  }
  for (size_t pos = 0; pos < relative.size();) {
    size_t end = relative.find('/', pos);
    if (end == std::string::npos) end = relative.size();
    if (relative.substr(pos, end - pos) == "..") {
      return Status::InvalidArgument("\"" + field + "\" must not contain \"..\" components");
    }
    pos = end + 1;
  }
  // Lexical checks are not enough: a symlink under the root can point
  // anywhere, re-opening the arbitrary-file access the root exists to close.
  // Canonicalize both sides and require the resolved file to stay under the
  // resolved root.
  std::error_code ec;
  std::filesystem::path root =
      std::filesystem::weakly_canonical(options_.dataset_path_root, ec);
  if (ec) {
    return Status::IoError("the server's dataset root is not accessible");
  }
  std::filesystem::path resolved = std::filesystem::weakly_canonical(root / relative, ec);
  if (ec) resolved = root / relative;  // nonexistent tail; the open reports it
  auto mismatch = std::mismatch(root.begin(), root.end(), resolved.begin(), resolved.end());
  if (mismatch.first != root.end()) {
    return Status::InvalidArgument("\"" + field + "\" escapes the server's dataset root");
  }
  return resolved.string();
}

HttpResponse ReptileService::HandleDatasetSnapshot(const std::string& name,
                                                   const std::string& body) {
  Result<JsonValue> parsed = ParseJson(body);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  if (!parsed->is_object()) {
    return ErrorResponse(WrongType("request body", "an object", *parsed));
  }
  Status known = CheckKnownKeys(*parsed, "request body", {"path"});
  if (!known.ok()) return ErrorResponse(known);
  Result<std::string> relative = StringField(*parsed, "request body", "path", true);
  if (!relative.ok()) return ErrorResponse(relative.status());
  Result<std::string> resolved = ResolveUnderDatasetRoot(*relative, "path");
  if (!resolved.ok()) return ErrorResponse(resolved.status());
  Result<DatasetHandle> handle = registry_->Find(name);
  if (!handle.ok()) return ErrorResponse(handle.status());
  Status saved = SavePreparedDataset(**handle, *resolved);
  if (!saved.ok()) return ErrorResponse(saved);
  std::error_code ec;
  uintmax_t bytes = std::filesystem::file_size(*resolved, ec);
  std::string response = "{\"dataset\":" + JsonQuote(name) +
                         ",\"path\":" + JsonQuote(*relative) +
                         ",\"bytes\":" + std::to_string(ec ? 0 : bytes) + "}";
  return HttpResponse::Json(201, std::move(response));
}

HttpResponse ReptileService::HandleDatasetCreate(const std::string& body) {
  Result<JsonValue> parsed = ParseJson(body);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  if (!parsed->is_object()) {
    return ErrorResponse(WrongType("request body", "an object", *parsed));
  }
  Status known = CheckKnownKeys(
      *parsed, "request body",
      {"name", "csv", "path", "snapshot", "dimensions", "measures", "hierarchies",
       "separator", "commits"});
  if (!known.ok()) return ErrorResponse(known);

  Result<std::string> name = StringField(*parsed, "request body", "name", true);
  if (!name.ok()) return ErrorResponse(name.status());

  const JsonValue* inline_csv = parsed->Find("csv");
  const JsonValue* path = parsed->Find("path");
  const JsonValue* snapshot = parsed->Find("snapshot");
  int sources = (inline_csv != nullptr) + (path != nullptr) + (snapshot != nullptr);
  if (sources != 1) {
    return ErrorResponse(Status::InvalidArgument(
        "request body needs exactly one of \"csv\" (inline upload), \"path\" "
        "(server-side file), or \"snapshot\" (server-side binary snapshot)"));
  }

  if (snapshot != nullptr) {
    // The snapshot carries its own schema; CSV typing fields are meaningless
    // with it and a silent ignore would hide caller confusion.
    for (const char* field : {"dimensions", "measures", "hierarchies", "separator"}) {
      if (parsed->Find(field) != nullptr) {
        return ErrorResponse(Status::InvalidArgument(
            std::string("\"") + field +
            "\" cannot be combined with \"snapshot\" (the snapshot carries the schema)"));
      }
    }
    if (!snapshot->is_string()) {
      return ErrorResponse(WrongType("snapshot", "a string", *snapshot));
    }
    Result<std::vector<std::string>> snapshot_commits =
        StringListField(*parsed, "request body", "commits", false);
    if (!snapshot_commits.ok()) return ErrorResponse(snapshot_commits.status());
    Result<std::string> resolved =
        ResolveUnderDatasetRoot(snapshot->string_value(), "snapshot");
    if (!resolved.ok()) return ErrorResponse(resolved.status());
    Result<DatasetHandle> handle = LoadPreparedDataset(*resolved);
    if (!handle.ok()) return ErrorResponse(handle.status());
    size_t rows = (*handle)->table().num_rows();
    Status added = AddPreparedDataset(*name, std::move(handle).value(), *snapshot_commits);
    if (!added.ok()) return ErrorResponse(added);
    std::string response = "{\"dataset\":" + JsonQuote(*name) +
                           ",\"rows\":" + std::to_string(rows) +
                           ",\"session\":" + JsonQuote(DefaultSessionId(*name)) + "}";
    return HttpResponse::Json(201, std::move(response));
  }

  CsvSpec spec;
  Result<std::vector<std::string>> dimensions =
      StringListField(*parsed, "request body", "dimensions", true);
  if (!dimensions.ok()) return ErrorResponse(dimensions.status());
  spec.dimension_columns = std::move(*dimensions);
  Result<std::vector<std::string>> measures =
      StringListField(*parsed, "request body", "measures", false);
  if (!measures.ok()) return ErrorResponse(measures.status());
  spec.measure_columns = std::move(*measures);
  Result<std::string> separator = StringField(*parsed, "request body", "separator", false, ",");
  if (!separator.ok()) return ErrorResponse(separator.status());
  if (separator->size() != 1) {
    return ErrorResponse(
        Status::InvalidArgument("separator must be a single character, got \"" + *separator +
                                "\""));
  }
  spec.separator = (*separator)[0];

  std::vector<HierarchySchema> hierarchies;
  const JsonValue* hierarchy_list = parsed->Find("hierarchies");
  if (hierarchy_list == nullptr) {
    return ErrorResponse(
        Status::InvalidArgument("request body is missing required field \"hierarchies\""));
  }
  if (!hierarchy_list->is_array()) {
    return ErrorResponse(WrongType("hierarchies", "an array", *hierarchy_list));
  }
  const std::vector<JsonValue>& items = hierarchy_list->array_items();
  for (size_t i = 0; i < items.size(); ++i) {
    std::string context = "hierarchies[" + std::to_string(i) + "]";
    if (!items[i].is_object()) return ErrorResponse(WrongType(context, "an object", items[i]));
    Status keys = CheckKnownKeys(items[i], context, {"name", "attributes"});
    if (!keys.ok()) return ErrorResponse(keys);
    Result<std::string> hierarchy_name = StringField(items[i], context, "name", true);
    if (!hierarchy_name.ok()) return ErrorResponse(hierarchy_name.status());
    Result<std::vector<std::string>> attributes =
        StringListField(items[i], context, "attributes", true);
    if (!attributes.ok()) return ErrorResponse(attributes.status());
    hierarchies.push_back(
        HierarchySchema{std::move(*hierarchy_name), std::move(*attributes)});
  }

  Result<std::vector<std::string>> commits =
      StringListField(*parsed, "request body", "commits", false);
  if (!commits.ok()) return ErrorResponse(commits.status());

  Result<Table> table = [&]() -> Result<Table> {
    if (inline_csv != nullptr) {
      if (!inline_csv->is_string()) return WrongType("csv", "a string", *inline_csv);
      return LoadCsvText(inline_csv->string_value(), spec);
    }
    if (!path->is_string()) return WrongType("path", "a string", *path);
    Result<std::string> resolved = ResolveUnderDatasetRoot(path->string_value(), "path");
    if (!resolved.ok()) return resolved.status();
    return LoadCsv(*resolved, spec);
  }();
  if (!table.ok()) return ErrorResponse(table.status());
  size_t rows = table->num_rows();

  Result<Dataset> dataset = Dataset::Make(std::move(table).value(), std::move(hierarchies));
  if (!dataset.ok()) return ErrorResponse(dataset.status());

  Status added = AddDataset(*name, std::move(dataset).value(), *commits);
  if (!added.ok()) return ErrorResponse(added);

  std::string response = "{\"dataset\":" + JsonQuote(*name) +
                         ",\"rows\":" + std::to_string(rows) +
                         ",\"session\":" + JsonQuote(DefaultSessionId(*name)) + "}";
  return HttpResponse::Json(201, std::move(response));
}

HttpResponse ReptileService::HandleDatasetDelete(const std::string& name) {
  Status removed = RemoveDataset(name);
  if (!removed.ok()) return ErrorResponse(removed);
  return HttpResponse::Json(200, "{\"deleted\":" + JsonQuote(name) + "}");
}

Result<std::string> ReptileService::AppendToDataset(const std::string& name,
                                                    const std::string& csv_text,
                                                    const std::string& origin) {
  // One append at a time per service: the registry would reject the loser of
  // a head race with FailedPrecondition, but that 409 would be an artifact of
  // server-internal timing — serializing turns two racing clients into a
  // clean v2-then-v3 succession. Taken OUTSIDE mu_, never inside.
  std::lock_guard<std::mutex> append_lock(append_mu_);

  // Appends address the CHAIN, so only its base name is accepted: a pinned
  // "name@vK" alias names an immutable version, not something appendable.
  if (!registry_->Contains(name)) {
    std::string base;
    int64_t pinned = 0;
    if (ParseVersionedName(name, &base, &pinned) && registry_->Contains(base)) {
      return Status::InvalidArgument(
          "appends go to the dataset's base name '" + base +
          "' (its head); the pinned alias '" + name + "' names an immutable version");
    }
    return Status::NotFound("no dataset named '" + name + "' is loaded on this server");
  }
  Result<DatasetHandle> head = registry_->Find(name);
  if (!head.ok()) return head.status();

  Result<AppendResult> appended = AppendRowsCsv(*head, csv_text, origin);
  if (!appended.ok()) return appended.status();
  const DatasetHandle& child = appended->child;
  if (options_.cache_budget_bytes > 0) {
    // The shared caches carry the parent's budget already; this keeps the
    // child's view consistent if the service options changed since.
    child->SetCacheBudgetBytes(options_.cache_budget_bytes);
  }

  // The replacement default session is opened BEFORE mu_ (engine construction
  // is not free); its committed depths are restored under the lock, where the
  // old default can no longer advance them.
  Result<Session> fresh = Session::Open(child, options_.session_defaults);
  if (!fresh.ok()) return fresh.status();

  const std::string id = DefaultSessionId(name);
  {
    // One critical section publishes the new head AND moves the default
    // session onto it — no observer sees the chain advanced but the alias
    // serving the old version (the same atomicity InstallPrepared gives
    // dataset creation). Named sessions are deliberately untouched: they
    // stay pinned to the version they opened.
    std::unique_lock<std::shared_mutex> lock(mu_);
    Result<int64_t> retired =
        registry_->AppendVersion(name, child, appended->invalidated_entries);
    if (!retired.ok()) return retired.status();
    auto it = sessions_.find(id);
    if (it != sessions_.end() && it->second->is_default) {
      std::map<std::string, int> committed;
      {
        std::lock_guard<std::mutex> session_lock(it->second->mu);
        committed = it->second->session.CommittedDepths();
      }
      Status restored = fresh->RestoreCommitted(committed);
      if (!restored.ok()) return restored;  // unreachable: hierarchies are append-invariant
      sessions_[id] = std::make_shared<SessionEntry>(id, name, child->version(),
                                                     /*is_default=*/true,
                                                     std::move(fresh).value(), NowNs());
    }
    // AppendVersion's inline GC ran while the OLD default session (and this
    // frame's head handle) still pinned the parent, so the parent survived
    // it. Both references are gone now — drop ours and re-sweep so an
    // unpinned parent retires at THIS append instead of lingering until the
    // next one.
    (*head).reset();
    (void)registry_->CollectGarbage(name);  // NotFound impossible: name checked above
  }

  return "{\"dataset\":" + JsonQuote(name) +
         ",\"dataset_version\":" + std::to_string(child->version()) +
         ",\"rows\":" + std::to_string(appended->total_rows) +
         ",\"appended\":" + std::to_string(appended->appended_rows) +
         ",\"session\":" + JsonQuote(id) + "}";
}

HttpResponse ReptileService::HandleDatasetAppend(const std::string& name,
                                                 const std::string& body) {
  Result<JsonValue> parsed = ParseJson(body);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  if (!parsed->is_object()) {
    return ErrorResponse(WrongType("request body", "an object", *parsed));
  }
  Status known = CheckKnownKeys(*parsed, "request body", {"csv"});
  if (!known.ok()) return ErrorResponse(known);
  Result<std::string> csv = StringField(*parsed, "request body", "csv", true);
  if (!csv.ok()) return ErrorResponse(csv.status());
  Result<std::string> response = AppendToDataset(name, *csv, "inline csv");
  if (!response.ok()) return ErrorResponse(response.status());
  return HttpResponse::Json(201, std::move(response).value());
}

HttpResponse ReptileService::HandleSessionList() {
  EvictIdleSessions();
  std::vector<EntryPtr> entries;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    entries.reserve(sessions_.size());
    for (const auto& [id, entry] : sessions_) entries.push_back(entry);
  }
  std::string body = "{\"sessions\":[";
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) body += ',';
    body += SessionSnapshotJson(*entries[i]);
  }
  body += "]}";
  return HttpResponse::Json(200, std::move(body));
}

HttpResponse ReptileService::HandleSessionCreate(const std::string& body) {
  Result<JsonValue> parsed = ParseJson(body);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  if (!parsed->is_object()) {
    return ErrorResponse(WrongType("request body", "an object", *parsed));
  }
  Status known =
      CheckKnownKeys(*parsed, "request body", {"dataset", "committed", "options"});
  if (!known.ok()) return ErrorResponse(known);
  Result<std::string> dataset = StringField(*parsed, "request body", "dataset", true);
  if (!dataset.ok()) return ErrorResponse(dataset.status());
  Result<std::map<std::string, int>> committed = ParseCommittedMap(*parsed, "request body");
  if (!committed.ok()) return ErrorResponse(committed.status());

  ExploreRequest session_options = options_.session_defaults;
  if (const JsonValue* options = parsed->Find("options")) {
    const std::string context = "options";
    if (!options->is_object()) {
      return ErrorResponse(WrongType(context, "an object", *options));
    }
    Status option_keys = CheckKnownKeys(*options, context, {"top_k", "threads", "model"});
    if (!option_keys.ok()) return ErrorResponse(option_keys);
    if (options->Find("top_k") != nullptr) {
      Result<int> top_k = IntField(*options, context, "top_k", 0);
      if (!top_k.ok()) return ErrorResponse(top_k.status());
      session_options.TopK(*top_k);
    }
    if (options->Find("threads") != nullptr) {
      Result<int> threads = IntField(*options, context, "threads", 0);
      if (!threads.ok()) return ErrorResponse(threads.status());
      session_options.Threads(*threads);
    }
    if (const JsonValue* model = options->Find("model")) {
      Result<ModelSpec> spec = ParseModelSpec(*model, context + ".model");
      if (!spec.ok()) return ErrorResponse(spec.status());
      session_options.Model(std::move(*spec));
    }
  }

  Result<EntryPtr> entry = CreateSessionEntry(*dataset, *committed, &session_options);
  if (!entry.ok()) return ErrorResponse(entry.status());
  return HttpResponse::Json(201, SessionSnapshotJson(**entry));
}

HttpResponse ReptileService::HandleSessionGet(const std::string& id) {
  Result<EntryPtr> entry = FindSession(id);
  if (!entry.ok()) return ErrorResponse(entry.status());
  return HttpResponse::Json(200, SessionSnapshotJson(**entry));
}

HttpResponse ReptileService::HandleSessionDelete(const std::string& id) {
  Status deleted = DeleteSession(id);
  if (!deleted.ok()) return ErrorResponse(deleted);
  return HttpResponse::Json(200, "{\"deleted\":" + JsonQuote(id) + "}");
}

HttpResponse ReptileService::HandleRecommend(const std::string& body, bool batch,
                                             TraceContext* trace) {
  Result<JsonValue> parsed = [&] {
    ScopedSpan parse_span(trace, "parse");
    return ParseJson(body);
  }();
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  if (!parsed->is_object()) {
    return ErrorResponse(WrongType("request body", "an object", *parsed));
  }
  const char* complaint_key = batch ? "complaints" : "complaint";
  Status known = CheckKnownKeys(*parsed, "request body",
                                {"session", "dataset", std::string_view(complaint_key),
                                 "options"});
  if (!known.ok()) return ErrorResponse(known);

  Result<EntryPtr> entry = ResolveTarget(*parsed);
  if (!entry.ok()) return ErrorResponse(entry.status());

  std::vector<ComplaintSpec> complaints;
  if (batch) {
    const JsonValue* list = parsed->Find("complaints");
    if (list == nullptr) {
      return ErrorResponse(
          Status::InvalidArgument("request body is missing required field \"complaints\""));
    }
    if (!list->is_array()) {
      return ErrorResponse(WrongType("complaints", "an array", *list));
    }
    const std::vector<JsonValue>& items = list->array_items();
    for (size_t i = 0; i < items.size(); ++i) {
      Result<ComplaintSpec> spec =
          ParseComplaintSpec(items[i], "complaints[" + std::to_string(i) + "]");
      if (!spec.ok()) return ErrorResponse(spec.status());
      complaints.push_back(std::move(*spec));
    }
    if (complaints.empty()) {
      return ErrorResponse(Status::InvalidArgument("complaints must be non-empty"));
    }
  } else {
    const JsonValue* one = parsed->Find("complaint");
    if (one == nullptr) {
      return ErrorResponse(
          Status::InvalidArgument("request body is missing required field \"complaint\""));
    }
    Result<ComplaintSpec> spec = ParseComplaintSpec(*one, "complaint");
    if (!spec.ok()) return ErrorResponse(spec.status());
    complaints.push_back(std::move(*spec));
  }

  Result<WireOptions> options = ParseOptions(*parsed);
  if (!options.ok()) return ErrorResponse(options.status());
  options->batch.trace = trace;
  if (trace != nullptr && options->zero_timings) trace->set_zero_durations(true);

  if (batch) {
    Result<BatchExploreResponse> response = [&] {
      std::lock_guard<std::mutex> lock((*entry)->mu);
      return (*entry)->session.RecommendAll(
          std::span<const ComplaintSpec>(complaints.data(), complaints.size()),
          options->batch);
    }();
    if (!response.ok()) return ErrorResponse(response.status());
    if (options->zero_timings) ZeroTimings(&*response);
    std::vector<std::string> pieces;
    {
      ScopedSpan serialize_span(trace, "serialize");
      pieces = response->ToJsonPieces();
    }
    // The version rides a header, NEVER the body: recommend/view bodies are
    // exact ToJson() bytes, and the differential tests compare status + body
    // only — extra headers are free.
    const std::string version = std::to_string((*entry)->dataset_version);
    size_t total = 0;
    for (const std::string& piece : pieces) total += piece.size();
    if (total < options_.stream_threshold_bytes) {
      std::string body;
      body.reserve(total);
      for (const std::string& piece : pieces) body += piece;
      HttpResponse ok = HttpResponse::Json(200, std::move(body));
      ok.extra_headers.emplace_back("X-Dataset-Version", version);
      return ok;
    }
    // Large batch: hand the front end a pull stream over the pieces instead
    // of one giant buffer — chunked on the wire for HTTP/1.1, reassembling
    // to exactly the buffered bytes (ToJsonPieces() concatenates to
    // ToJson()).
    HttpResponse streamed;
    streamed.extra_headers.emplace_back("X-Dataset-Version", version);
    auto state = std::make_shared<std::pair<std::vector<std::string>, size_t>>(
        std::move(pieces), 0);
    streamed.body_stream = [state](std::string* piece) {
      if (state->second >= state->first.size()) return false;
      *piece = std::move(state->first[state->second++]);
      return true;
    };
    return streamed;
  }
  Result<ExploreResponse> response = [&] {
    std::lock_guard<std::mutex> lock((*entry)->mu);
    return (*entry)->session.Recommend(complaints.front(), options->batch);
  }();
  if (!response.ok()) return ErrorResponse(response.status());
  if (options->zero_timings) ZeroTimings(&*response);
  std::string json;
  {
    ScopedSpan serialize_span(trace, "serialize");
    json = response->ToJson();
  }
  HttpResponse ok = HttpResponse::Json(200, std::move(json));
  ok.extra_headers.emplace_back("X-Dataset-Version",
                                std::to_string((*entry)->dataset_version));
  return ok;
}

HttpResponse ReptileService::HandleView(const std::string& body) {
  Result<JsonValue> parsed = ParseJson(body);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  if (!parsed->is_object()) {
    return ErrorResponse(WrongType("request body", "an object", *parsed));
  }
  Status known = CheckKnownKeys(*parsed, "request body",
                                {"session", "dataset", "group_by", "measure", "where"});
  if (!known.ok()) return ErrorResponse(known);

  Result<EntryPtr> entry = ResolveTarget(*parsed);
  if (!entry.ok()) return ErrorResponse(entry.status());

  ViewRequest view;
  const JsonValue* group_by = parsed->Find("group_by");
  if (group_by == nullptr) {
    return ErrorResponse(
        Status::InvalidArgument("request body is missing required field \"group_by\""));
  }
  if (!group_by->is_array()) {
    return ErrorResponse(WrongType("group_by", "an array", *group_by));
  }
  const std::vector<JsonValue>& columns = group_by->array_items();
  for (size_t i = 0; i < columns.size(); ++i) {
    if (!columns[i].is_string()) {
      return ErrorResponse(
          WrongType("group_by[" + std::to_string(i) + "]", "a string", columns[i]));
    }
    view.group_by.push_back(columns[i].string_value());
  }
  Result<std::string> measure = StringField(*parsed, "request body", "measure", false);
  if (!measure.ok()) return ErrorResponse(measure.status());
  view.measure = std::move(*measure);
  Result<std::vector<NamedPredicate>> where = ParseWhere(*parsed, "request body");
  if (!where.ok()) return ErrorResponse(where.status());
  view.where = std::move(*where);

  Result<ViewResponse> response = [&] {
    std::lock_guard<std::mutex> lock((*entry)->mu);
    return (*entry)->session.View(view);
  }();
  if (!response.ok()) return ErrorResponse(response.status());
  HttpResponse ok = HttpResponse::Json(200, response->ToJson());
  ok.extra_headers.emplace_back("X-Dataset-Version",
                                std::to_string((*entry)->dataset_version));
  return ok;
}

HttpResponse ReptileService::HandleCommit(const std::string& body) {
  Result<JsonValue> parsed = ParseJson(body);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  if (!parsed->is_object()) {
    return ErrorResponse(WrongType("request body", "an object", *parsed));
  }
  Status known =
      CheckKnownKeys(*parsed, "request body", {"session", "dataset", "hierarchy"});
  if (!known.ok()) return ErrorResponse(known);

  Result<std::string> hierarchy = StringField(*parsed, "request body", "hierarchy", true);
  if (!hierarchy.ok()) return ErrorResponse(hierarchy.status());
  Result<EntryPtr> entry = ResolveTarget(*parsed);
  if (!entry.ok()) return ErrorResponse(entry.status());

  std::lock_guard<std::mutex> lock((*entry)->mu);
  Session& session = (*entry)->session;
  Status committed = session.Commit(*hierarchy);
  if (!committed.ok()) return ErrorResponse(committed);
  Result<int> depth = session.DrillDepth(*hierarchy);
  Result<bool> can_drill = session.CanDrill(*hierarchy);
  std::string response = "{\"hierarchy\":" + JsonQuote(*hierarchy) +
                         ",\"depth\":" + std::to_string(depth.ok() ? *depth : -1) +
                         ",\"can_drill\":" +
                         ((can_drill.ok() && *can_drill) ? "true" : "false") + "}";
  HttpResponse ok = HttpResponse::Json(200, std::move(response));
  ok.extra_headers.emplace_back("X-Dataset-Version",
                                std::to_string((*entry)->dataset_version));
  return ok;
}

HttpResponse ReptileService::HandleDebugStatus(const std::string& body) {
  Result<JsonValue> parsed = ParseJson(body);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  if (!parsed->is_object()) {
    return ErrorResponse(WrongType("request body", "an object", *parsed));
  }
  Status known = CheckKnownKeys(*parsed, "request body", {"code", "message"});
  if (!known.ok()) return ErrorResponse(known);
  Result<std::string> code_name = StringField(*parsed, "request body", "code", true);
  if (!code_name.ok()) return ErrorResponse(code_name.status());
  Result<std::string> message =
      StringField(*parsed, "request body", "message", false, "debug status");
  if (!message.ok()) return ErrorResponse(message.status());
  for (StatusCode code :
       {StatusCode::kInvalidArgument, StatusCode::kNotFound, StatusCode::kFailedPrecondition,
        StatusCode::kIoError, StatusCode::kParseError, StatusCode::kInternal,
        StatusCode::kDeadlineExceeded}) {
    if (*code_name == StatusCodeName(code)) {
      return ErrorResponse(Status(code, std::move(*message)));
    }
  }
  return ErrorResponse(
      Status::InvalidArgument("unknown status code name '" + *code_name + "'"));
}

}  // namespace reptile
