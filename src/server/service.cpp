#include "server/service.h"

#include <initializer_list>
#include <string_view>
#include <utility>

#include "server/json.h"

namespace reptile {
namespace {

// ---- Strict JSON -> request mapping helpers --------------------------------
// Every helper reports failures as kInvalidArgument naming the offending
// field ("complaints[2].where[0].column must be a string, got number"), which
// the error path renders as HTTP 400.

Status WrongType(const std::string& context, const char* expected, const JsonValue& actual) {
  return Status::InvalidArgument(context + " must be " + expected + ", got " +
                                 actual.KindName());
}

/// Rejects unknown object keys so typos ("topk") fail loudly instead of
/// being silently ignored.
Status CheckKnownKeys(const JsonValue& object, const std::string& context,
                      std::initializer_list<std::string_view> allowed) {
  for (const auto& [key, value] : object.object_items()) {
    bool known = false;
    for (std::string_view name : allowed) {
      if (key == name) known = true;
    }
    if (!known) {
      std::string expected;
      for (std::string_view name : allowed) {
        if (!expected.empty()) expected += ", ";
        expected += name;
      }
      return Status::InvalidArgument("unknown field \"" + key + "\" in " + context +
                                     " (expected one of: " + expected + ")");
    }
  }
  return Status::Ok();
}

Result<std::string> StringField(const JsonValue& object, const std::string& context,
                                const std::string& key, bool required,
                                std::string default_value = std::string()) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr) {
    if (required) {
      return Status::InvalidArgument(context + " is missing required field \"" + key + "\"");
    }
    return default_value;
  }
  if (!value->is_string()) return WrongType(context + "." + key, "a string", *value);
  return value->string_value();
}

Result<int> IntField(const JsonValue& object, const std::string& context,
                     const std::string& key, int default_value) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr) return default_value;
  if (!value->IsInteger()) return WrongType(context + "." + key, "an integer", *value);
  int64_t n = value->IntValue();
  if (n < -2147483648LL || n > 2147483647LL) {
    return Status::InvalidArgument(context + "." + key + " is out of range");
  }
  return static_cast<int>(n);
}

Result<bool> BoolField(const JsonValue& object, const std::string& context,
                       const std::string& key, bool default_value) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr) return default_value;
  if (!value->is_bool()) return WrongType(context + "." + key, "a boolean", *value);
  return value->bool_value();
}

Result<std::vector<NamedPredicate>> ParseWhere(const JsonValue& object,
                                               const std::string& context) {
  std::vector<NamedPredicate> where;
  const JsonValue* value = object.Find("where");
  if (value == nullptr) return where;
  if (!value->is_array()) return WrongType(context + ".where", "an array", *value);
  const std::vector<JsonValue>& items = value->array_items();
  for (size_t i = 0; i < items.size(); ++i) {
    std::string item_context = context + ".where[" + std::to_string(i) + "]";
    if (!items[i].is_object()) return WrongType(item_context, "an object", items[i]);
    REPTILE_RETURN_IF_ERROR(CheckKnownKeys(items[i], item_context, {"column", "value"}));
    Result<std::string> column = StringField(items[i], item_context, "column", true);
    if (!column.ok()) return column.status();
    Result<std::string> pred_value = StringField(items[i], item_context, "value", true);
    if (!pred_value.ok()) return pred_value.status();
    where.push_back(NamedPredicate{std::move(*column), std::move(*pred_value)});
  }
  return where;
}

Result<ComplaintSpec> ParseComplaintSpec(const JsonValue& value, const std::string& context) {
  if (!value.is_object()) return WrongType(context, "an object", value);
  REPTILE_RETURN_IF_ERROR(CheckKnownKeys(
      value, context, {"aggregate", "measure", "direction", "target", "where"}));
  ComplaintSpec spec;
  Result<std::string> aggregate = StringField(value, context, "aggregate", true);
  if (!aggregate.ok()) return aggregate.status();
  spec.aggregate = std::move(*aggregate);
  Result<std::string> measure = StringField(value, context, "measure", false);
  if (!measure.ok()) return measure.status();
  spec.measure = std::move(*measure);
  Result<std::string> direction = StringField(value, context, "direction", false, "too_high");
  if (!direction.ok()) return direction.status();
  spec.direction = std::move(*direction);
  if (const JsonValue* target = value.Find("target")) {
    if (!target->is_number()) return WrongType(context + ".target", "a number", *target);
    spec.target = target->number_value();
  }
  Result<std::vector<NamedPredicate>> where = ParseWhere(value, context);
  if (!where.ok()) return where.status();
  spec.where = std::move(*where);
  return spec;
}

/// The wire-level per-call options: the api BatchOptions plus the one
/// serving-only knob (zero_timings).
struct WireOptions {
  BatchOptions batch;
  bool zero_timings = false;
};

Result<WireOptions> ParseOptions(const JsonValue& body) {
  WireOptions options;
  const JsonValue* value = body.Find("options");
  if (value == nullptr) return options;
  const std::string context = "options";
  if (!value->is_object()) return WrongType(context, "an object", *value);
  REPTILE_RETURN_IF_ERROR(CheckKnownKeys(
      *value, context, {"threads", "top_k", "extra_repair_stats", "zero_timings"}));
  Result<int> threads = IntField(*value, context, "threads", 0);
  if (!threads.ok()) return threads.status();
  options.batch.num_threads = *threads;
  Result<int> top_k = IntField(*value, context, "top_k", 0);
  if (!top_k.ok()) return top_k.status();
  options.batch.top_k = *top_k;
  if (const JsonValue* extras = value->Find("extra_repair_stats")) {
    if (!extras->is_array()) {
      return WrongType(context + ".extra_repair_stats", "an array", *extras);
    }
    options.batch.extra_repair_stats.emplace();  // engaged; empty = toggle off
    const std::vector<JsonValue>& items = extras->array_items();
    for (size_t i = 0; i < items.size(); ++i) {
      if (!items[i].is_string()) {
        return WrongType(context + ".extra_repair_stats[" + std::to_string(i) + "]",
                         "a string", items[i]);
      }
      options.batch.extra_repair_stats->push_back(items[i].string_value());
    }
  }
  Result<bool> zero_timings = BoolField(*value, context, "zero_timings", false);
  if (!zero_timings.ok()) return zero_timings.status();
  options.zero_timings = *zero_timings;
  return options;
}

void ZeroTimings(ExploreResponse* response) {
  for (HierarchyResponse& candidate : response->candidates) {
    candidate.train_seconds = 0.0;
    candidate.total_seconds = 0.0;
  }
}

void ZeroTimings(BatchExploreResponse* batch) {
  batch->train_seconds = 0.0;
  batch->wall_seconds = 0.0;
  for (ExploreResponse& response : batch->responses) ZeroTimings(&response);
}

HttpResponse MethodNotAllowed(const std::string& allow) {
  HttpResponse response = HttpResponse::Json(
      405,
      "{\"error\":{\"code\":\"METHOD_NOT_ALLOWED\",\"http\":405,\"message\":"
      "\"this route only accepts " +
          allow + "\"}}");
  response.extra_headers.emplace_back("Allow", allow);
  return response;
}

}  // namespace

ReptileService::ReptileService(ServiceOptions options) : options_(options) {}

Status ReptileService::AddSession(std::string name, Session session) {
  if (name.empty()) return Status::InvalidArgument("dataset name must be non-empty");
  if (sessions_.find(name) != sessions_.end()) {
    return Status::InvalidArgument("dataset '" + name + "' is already registered");
  }
  sessions_.emplace(std::move(name), std::make_unique<Entry>(std::move(session)));
  return Status::Ok();
}

int ReptileService::HttpStatusFor(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kFailedPrecondition:
      return 409;
    case StatusCode::kIoError:
    case StatusCode::kInternal:
      return 500;
  }
  return 500;
}

HttpResponse ReptileService::ErrorResponse(const Status& status) {
  int http = HttpStatusFor(status.code());
  std::string body = "{\"error\":{\"code\":\"" + std::string(StatusCodeName(status.code())) +
                     "\",\"http\":" + std::to_string(http) +
                     ",\"message\":" + JsonQuote(status.message()) + "}}";
  return HttpResponse::Json(http, std::move(body));
}

std::vector<std::string> ReptileService::dataset_names() const {
  std::vector<std::string> names;
  names.reserve(sessions_.size());
  for (const auto& [name, entry] : sessions_) names.push_back(name);
  return names;
}

Result<ReptileService::Entry*> ReptileService::FindDataset(const std::string& name) {
  auto it = sessions_.find(name);
  if (it == sessions_.end()) {
    return Status::NotFound("no dataset named '" + name + "' is loaded on this server");
  }
  return it->second.get();
}

HttpResponse ReptileService::Handle(const HttpRequest& request) {
  const std::string& path = request.path;
  if (path == "/healthz") {
    if (request.method != "GET") return MethodNotAllowed("GET");
    return HandleHealthz();
  }
  if (path == "/v1/datasets") {
    if (request.method != "GET") return MethodNotAllowed("GET");
    return HandleDatasets();
  }
  if (path == "/v1/recommend" || path == "/v1/recommend_batch") {
    if (request.method != "POST") return MethodNotAllowed("POST");
    return HandleRecommend(request.body, /*batch=*/path == "/v1/recommend_batch");
  }
  if (path == "/v1/view") {
    if (request.method != "POST") return MethodNotAllowed("POST");
    return HandleView(request.body);
  }
  if (path == "/v1/commit") {
    if (request.method != "POST") return MethodNotAllowed("POST");
    return HandleCommit(request.body);
  }
  if (options_.enable_debug_status_route && path == "/v1/_debug/status") {
    if (request.method != "POST") return MethodNotAllowed("POST");
    return HandleDebugStatus(request.body);
  }
  return ErrorResponse(Status::NotFound("no route matches " + path));
}

HttpResponse ReptileService::HandleHealthz() {
  return HttpResponse::Json(
      200, "{\"status\":\"ok\",\"datasets\":" + std::to_string(sessions_.size()) + "}");
}

HttpResponse ReptileService::HandleDatasets() {
  JsonValue root = JsonValue::Object();
  JsonValue datasets = JsonValue::Array();
  for (auto& [name, entry] : sessions_) {
    std::lock_guard<std::mutex> lock(entry->mu);
    const Dataset& dataset = entry->session.dataset();
    const Table& table = dataset.table();

    JsonValue item = JsonValue::Object();
    item.mutable_object_items().emplace_back("name", JsonValue::String(name));
    item.mutable_object_items().emplace_back(
        "rows", JsonValue::Number(static_cast<double>(table.num_rows())));

    JsonValue columns = JsonValue::Array();
    for (int c = 0; c < table.num_columns(); ++c) {
      JsonValue column = JsonValue::Object();
      column.mutable_object_items().emplace_back("name",
                                                 JsonValue::String(table.column_name(c)));
      column.mutable_object_items().emplace_back(
          "kind", JsonValue::String(table.is_dimension(c) ? "dimension" : "measure"));
      columns.mutable_array_items().push_back(std::move(column));
    }
    item.mutable_object_items().emplace_back("columns", std::move(columns));

    JsonValue hierarchies = JsonValue::Array();
    for (int h = 0; h < dataset.num_hierarchies(); ++h) {
      const HierarchySchema& schema = dataset.hierarchy(h);
      JsonValue hierarchy = JsonValue::Object();
      hierarchy.mutable_object_items().emplace_back("name", JsonValue::String(schema.name));
      JsonValue attributes = JsonValue::Array();
      for (const std::string& attr : schema.attributes) {
        attributes.mutable_array_items().push_back(JsonValue::String(attr));
      }
      hierarchy.mutable_object_items().emplace_back("attributes", std::move(attributes));
      hierarchy.mutable_object_items().emplace_back("depth",
                                                    JsonValue::Number(schema.depth()));
      Result<int> drill_depth = entry->session.DrillDepth(schema.name);
      hierarchy.mutable_object_items().emplace_back(
          "drill_depth", JsonValue::Number(drill_depth.ok() ? *drill_depth : -1));
      Result<bool> can_drill = entry->session.CanDrill(schema.name);
      hierarchy.mutable_object_items().emplace_back(
          "can_drill", JsonValue::Bool(can_drill.ok() && *can_drill));
      hierarchies.mutable_array_items().push_back(std::move(hierarchy));
    }
    item.mutable_object_items().emplace_back("hierarchies", std::move(hierarchies));
    datasets.mutable_array_items().push_back(std::move(item));
  }
  root.mutable_object_items().emplace_back("datasets", std::move(datasets));
  return HttpResponse::Json(200, WriteJson(root));
}

HttpResponse ReptileService::HandleRecommend(const std::string& body, bool batch) {
  Result<JsonValue> parsed = ParseJson(body);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  if (!parsed->is_object()) {
    return ErrorResponse(WrongType("request body", "an object", *parsed));
  }
  const char* complaint_key = batch ? "complaints" : "complaint";
  Status known = CheckKnownKeys(*parsed, "request body",
                                {"dataset", std::string_view(complaint_key), "options"});
  if (!known.ok()) return ErrorResponse(known);

  Result<std::string> dataset = StringField(*parsed, "request body", "dataset", true);
  if (!dataset.ok()) return ErrorResponse(dataset.status());
  Result<Entry*> entry = FindDataset(*dataset);
  if (!entry.ok()) return ErrorResponse(entry.status());

  std::vector<ComplaintSpec> complaints;
  if (batch) {
    const JsonValue* list = parsed->Find("complaints");
    if (list == nullptr) {
      return ErrorResponse(
          Status::InvalidArgument("request body is missing required field \"complaints\""));
    }
    if (!list->is_array()) {
      return ErrorResponse(WrongType("complaints", "an array", *list));
    }
    const std::vector<JsonValue>& items = list->array_items();
    for (size_t i = 0; i < items.size(); ++i) {
      Result<ComplaintSpec> spec =
          ParseComplaintSpec(items[i], "complaints[" + std::to_string(i) + "]");
      if (!spec.ok()) return ErrorResponse(spec.status());
      complaints.push_back(std::move(*spec));
    }
    if (complaints.empty()) {
      return ErrorResponse(Status::InvalidArgument("complaints must be non-empty"));
    }
  } else {
    const JsonValue* one = parsed->Find("complaint");
    if (one == nullptr) {
      return ErrorResponse(
          Status::InvalidArgument("request body is missing required field \"complaint\""));
    }
    Result<ComplaintSpec> spec = ParseComplaintSpec(*one, "complaint");
    if (!spec.ok()) return ErrorResponse(spec.status());
    complaints.push_back(std::move(*spec));
  }

  Result<WireOptions> options = ParseOptions(*parsed);
  if (!options.ok()) return ErrorResponse(options.status());

  if (batch) {
    Result<BatchExploreResponse> response = [&] {
      std::lock_guard<std::mutex> lock((*entry)->mu);
      return (*entry)->session.RecommendAll(
          std::span<const ComplaintSpec>(complaints.data(), complaints.size()),
          options->batch);
    }();
    if (!response.ok()) return ErrorResponse(response.status());
    if (options->zero_timings) ZeroTimings(&*response);
    return HttpResponse::Json(200, response->ToJson());
  }
  Result<ExploreResponse> response = [&] {
    std::lock_guard<std::mutex> lock((*entry)->mu);
    return (*entry)->session.Recommend(complaints.front(), options->batch);
  }();
  if (!response.ok()) return ErrorResponse(response.status());
  if (options->zero_timings) ZeroTimings(&*response);
  return HttpResponse::Json(200, response->ToJson());
}

HttpResponse ReptileService::HandleView(const std::string& body) {
  Result<JsonValue> parsed = ParseJson(body);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  if (!parsed->is_object()) {
    return ErrorResponse(WrongType("request body", "an object", *parsed));
  }
  Status known =
      CheckKnownKeys(*parsed, "request body", {"dataset", "group_by", "measure", "where"});
  if (!known.ok()) return ErrorResponse(known);

  Result<std::string> dataset = StringField(*parsed, "request body", "dataset", true);
  if (!dataset.ok()) return ErrorResponse(dataset.status());
  Result<Entry*> entry = FindDataset(*dataset);
  if (!entry.ok()) return ErrorResponse(entry.status());

  ViewRequest view;
  const JsonValue* group_by = parsed->Find("group_by");
  if (group_by == nullptr) {
    return ErrorResponse(
        Status::InvalidArgument("request body is missing required field \"group_by\""));
  }
  if (!group_by->is_array()) {
    return ErrorResponse(WrongType("group_by", "an array", *group_by));
  }
  const std::vector<JsonValue>& columns = group_by->array_items();
  for (size_t i = 0; i < columns.size(); ++i) {
    if (!columns[i].is_string()) {
      return ErrorResponse(
          WrongType("group_by[" + std::to_string(i) + "]", "a string", columns[i]));
    }
    view.group_by.push_back(columns[i].string_value());
  }
  Result<std::string> measure = StringField(*parsed, "request body", "measure", false);
  if (!measure.ok()) return ErrorResponse(measure.status());
  view.measure = std::move(*measure);
  Result<std::vector<NamedPredicate>> where = ParseWhere(*parsed, "request body");
  if (!where.ok()) return ErrorResponse(where.status());
  view.where = std::move(*where);

  Result<ViewResponse> response = [&] {
    std::lock_guard<std::mutex> lock((*entry)->mu);
    return (*entry)->session.View(view);
  }();
  if (!response.ok()) return ErrorResponse(response.status());
  return HttpResponse::Json(200, response->ToJson());
}

HttpResponse ReptileService::HandleCommit(const std::string& body) {
  Result<JsonValue> parsed = ParseJson(body);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  if (!parsed->is_object()) {
    return ErrorResponse(WrongType("request body", "an object", *parsed));
  }
  Status known = CheckKnownKeys(*parsed, "request body", {"dataset", "hierarchy"});
  if (!known.ok()) return ErrorResponse(known);

  Result<std::string> dataset = StringField(*parsed, "request body", "dataset", true);
  if (!dataset.ok()) return ErrorResponse(dataset.status());
  Result<std::string> hierarchy = StringField(*parsed, "request body", "hierarchy", true);
  if (!hierarchy.ok()) return ErrorResponse(hierarchy.status());
  Result<Entry*> entry = FindDataset(*dataset);
  if (!entry.ok()) return ErrorResponse(entry.status());

  std::lock_guard<std::mutex> lock((*entry)->mu);
  Session& session = (*entry)->session;
  Status committed = session.Commit(*hierarchy);
  if (!committed.ok()) return ErrorResponse(committed);
  Result<int> depth = session.DrillDepth(*hierarchy);
  Result<bool> can_drill = session.CanDrill(*hierarchy);
  std::string response = "{\"hierarchy\":" + JsonQuote(*hierarchy) +
                         ",\"depth\":" + std::to_string(depth.ok() ? *depth : -1) +
                         ",\"can_drill\":" +
                         ((can_drill.ok() && *can_drill) ? "true" : "false") + "}";
  return HttpResponse::Json(200, std::move(response));
}

HttpResponse ReptileService::HandleDebugStatus(const std::string& body) {
  Result<JsonValue> parsed = ParseJson(body);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  if (!parsed->is_object()) {
    return ErrorResponse(WrongType("request body", "an object", *parsed));
  }
  Status known = CheckKnownKeys(*parsed, "request body", {"code", "message"});
  if (!known.ok()) return ErrorResponse(known);
  Result<std::string> code_name = StringField(*parsed, "request body", "code", true);
  if (!code_name.ok()) return ErrorResponse(code_name.status());
  Result<std::string> message =
      StringField(*parsed, "request body", "message", false, "debug status");
  if (!message.ok()) return ErrorResponse(message.status());
  for (StatusCode code :
       {StatusCode::kInvalidArgument, StatusCode::kNotFound, StatusCode::kFailedPrecondition,
        StatusCode::kIoError, StatusCode::kParseError, StatusCode::kInternal}) {
    if (*code_name == StatusCodeName(code)) {
      return ErrorResponse(Status(code, std::move(*message)));
    }
  }
  return ErrorResponse(
      Status::InvalidArgument("unknown status code name '" + *code_name + "'"));
}

}  // namespace reptile
