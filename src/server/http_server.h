// Thread-per-connection HTTP/1.1 server over POSIX sockets — the original
// network boundary in front of the routing layer (server/service.h), and the
// differential-testing oracle for the epoll reactor (net/reactor_server.h):
// both front ends share the framing code in net/http_codec.h and must serve
// byte-identical bodies.
//
// Design:
//  * One dedicated accept thread runs a blocking accept loop; each accepted
//    connection is fanned out as a task on a parallel/ ThreadPool (the PR 2
//    worker pool) and handled with blocking reads/writes until it closes.
//    With N pool threads at most N connections are serviced concurrently;
//    further accepted connections queue in the pool (FIFO).
//  * Framing is Content-Length only for requests (a request with
//    Transfer-Encoding is answered 501). Responses may stream: a handler
//    response carrying `body_stream` is written chunk by chunk with
//    Transfer-Encoding: chunked (HTTP/1.0 clients get the concatenated
//    identity body instead). HTTP/1.1 connections are keep-alive by
//    default; "Connection: close" (and HTTP/1.0 without "keep-alive")
//    closes after the response.
//  * Hard request-size limits: header section (431) and body (413) caps are
//    enforced before buffering, so a hostile client cannot balloon memory.
//    Requests accepted by `stream_factory` bypass body buffering entirely:
//    bytes are fed to the returned sink as they arrive, under the larger
//    `max_stream_body_bytes` cap.
//  * The handler runs on the connection's pool thread and must be
//    thread-safe across connections. IMPORTANT: a handler may run compute
//    fan-outs on *other* pools (the engine's SharedThreadPool()), but must
//    never submit to the connection pool it runs on — connection tasks are
//    long-lived blockers, and a compute join queued behind them deadlocks.
//    HttpServer therefore owns its connection pool by default; pass
//    `connection_pool` only to share connection handling between servers,
//    never to share with engines.
//
// Stop() (also the destructor) unblocks the accept loop, shuts every open
// connection down, and waits for all connection tasks to finish — after it
// returns, no handler invocation is in flight.

#ifndef REPTILE_SERVER_HTTP_SERVER_H_
#define REPTILE_SERVER_HTTP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "api/status.h"
#include "net/http_message.h"  // IWYU pragma: export

namespace reptile {

class ThreadPool;  // parallel/thread_pool.h

struct HttpServerOptions {
  std::string bind_address = "127.0.0.1";
  int port = 0;             // 0 = ephemeral; the bound port is port()
  int num_threads = 4;      // connection workers when the server owns its pool
  size_t max_header_bytes = 64 * 1024;
  size_t max_body_bytes = 8 * 1024 * 1024;
  // Cap for request bodies consumed through `stream_factory` sinks. Streamed
  // uploads never buffer, so this can be far above max_body_bytes.
  size_t max_stream_body_bytes = size_t{1} << 30;
  // Seconds a keep-alive connection may sit idle between requests before the
  // server closes it (frees its worker). 0 = never time out.
  int idle_timeout_seconds = 30;
  // After this many responses on one connection the server answers with
  // "Connection: close" and closes — bounds per-connection resource drift
  // (parser buffers, kernel state) and redistributes long-lived clients
  // across a load-balanced fleet. 0 = unlimited.
  int64_t max_requests_per_connection = 0;
  // Admission rate limit in requests/second over buffered API requests
  // (streamed uploads and the /healthz + /metricsz probes are exempt).
  // Refusals get the shared 429 RATE_LIMITED envelope with Retry-After and
  // keep the connection open — a limited client should retry, not
  // reconnect. 0 = unlimited.
  double rate_limit_rps = 0.0;
  // Bucket depth for the limiter; <= 0 defaults to max(rate_limit_rps, 1).
  double rate_limit_burst = 0.0;
  // Shed a connection whose first request waited longer than this in the
  // pool queue before a worker picked it up: the client gets the shared 503
  // OVERLOADED envelope instead of service that would arrive too late to
  // matter. 0 = never shed.
  int queue_deadline_ms = 0;
  // Optional externally owned pool for connection tasks (see the deadlock
  // note above); nullptr = the server creates its own `num_threads` pool.
  ThreadPool* connection_pool = nullptr;
  // Optional hook consulted once a request head is parsed: return a sink to
  // stream the body instead of buffering it (see net/http_message.h).
  HttpStreamFactory stream_factory;
};

class HttpServer {
 public:
  HttpServer(HttpServerOptions options, HttpHandler handler);
  ~HttpServer();  // calls Stop()

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and starts the accept thread. kIoError when the socket
  /// cannot be created or bound (e.g. the port is taken). Call once.
  Status Start();

  /// Unblocks accept, shuts down every open connection, and joins; idempotent
  /// and safe to call from any thread except a handler.
  void Stop();

  /// The bound port (resolves 0 to the ephemeral port). Valid after Start().
  int port() const { return port_; }

  /// Connections accepted so far (monotonic; for tests and stats).
  int64_t connections_accepted() const { return connections_accepted_.load(); }

  /// Requests refused 429 by the admission rate limiter.
  int64_t requests_rate_limited() const { return requests_rate_limited_.load(); }

  /// Connections shed 503 for overstaying the queue deadline.
  int64_t requests_shed() const { return requests_shed_.load(); }

  /// Transport counters as a one-line JSON object, shape-compatible with
  /// ReactorServer::StatsJson() so serve_main can wire either server's stats
  /// into the /metricsz transport block.
  std::string StatsJson() const;

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  HttpServerOptions options_;
  HttpHandler handler_;
  std::unique_ptr<class TokenBucket> limiter_;  // null when rate_limit_rps <= 0
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
  std::atomic<int64_t> connections_accepted_{0};
  std::atomic<int64_t> requests_rate_limited_{0};
  std::atomic<int64_t> requests_shed_{0};

  std::mutex stop_mu_;  // serializes Stop() callers
  mutable std::mutex mu_;
  std::condition_variable connections_done_;
  std::set<int> open_connections_;  // fds of live connections, for Stop()
  int64_t active_connections_ = 0;
};

}  // namespace reptile

#endif  // REPTILE_SERVER_HTTP_SERVER_H_
