// reptile_serve — serve one or more Reptile sessions over HTTP/JSON.
//
//   reptile_serve --demo --port 8080
//   reptile_serve --csv data.csv --name drought
//       --dimensions district,village,year --measures severity
//       --hierarchy geo=district,village --hierarchy time=year
//       --commit time --port 8080
//
// Flags:
//   --csv PATH            load the dataset from a CSV file (header row; see
//                         data/csv.h for the format contract)
//   --name NAME           dataset name on the wire (default "default")
//   --dimensions a,b,c    dimension columns of the CSV (required with --csv)
//   --measures x,y        measure columns of the CSV (required with --csv)
//   --hierarchy n=a,b     hierarchy schema, repeatable (required with --csv)
//   --separator C         CSV separator (default ',')
//   --commit NAME         pre-commit a drill-down, repeatable
//   --demo                serve a built-in synthetic district/village/year
//                         severity panel as dataset "demo" ("time" is
//                         pre-committed, so year-scoped complaints work
//                         out of the box)
//   --port N              listen port (default 8080; 0 = ephemeral, printed)
//   --http-threads N      connection workers (default 4)
//   --engine-threads N    per-call engine fan-out (default 0 = hardware)
//   --top-k N             groups returned per candidate (default 5)
//   --max-body-bytes N    request body cap (default 8 MiB)
//   --session-ttl N       evict per-client sessions idle > N seconds
//                         (default 0 = never; default sessions are exempt)
//   --dataset-root DIR    allow POST /v1/datasets {"path"|"snapshot": ...}
//                         server-side loads and POST
//                         /v1/datasets/{name}/snapshot writes, confined to
//                         DIR (default: disabled — inline "csv" uploads are
//                         always available)
//   --snapshot-dir DIR    warm start: load every *.snap binary snapshot in
//                         DIR at boot (api/dataset_snapshot.h), registering
//                         each under its file stem with caches pre-warmed —
//                         the first recommend after a restart is
//                         byte-identical to the process that wrote the
//                         snapshot, with zero builds and zero fits
//   --cache-budget-mb N   per-dataset cache memory target in MiB, split
//                         between the shared aggregate cache and the
//                         fitted-model cache; past it, least-recently-used
//                         entries are evicted (default 0 = unlimited)
//   --max-requests-per-connection N
//                         close a keep-alive connection (with
//                         "Connection: close") after N responses, both
//                         front ends (default 0 = unlimited)
//   --max-sessions N      cap on live per-client sessions (default 1024,
//                         0 = unlimited; exceeding it is HTTP 409)
//   --max-datasets N      cap on registered datasets (default 64, same deal)
//   --reactor             serve with the epoll reactor front end
//                         (net/reactor_server.h): 1 event thread owns every
//                         connection, --http-threads compute workers, slow
//                         clients cost KBs not threads. Default: the
//                         thread-per-connection front end. Either way the
//                         bodies on the wire are byte-identical.
//   --auth-token T        require "Authorization: Bearer T" on mutating
//                         routes (dataset/session create+delete, commit);
//                         reads and /healthz stay open. Default: no auth.
//   --stream-threshold N  stream recommend_batch bodies of >= N bytes
//                         (chunked on HTTP/1.1) instead of buffering them
//                         (default: off)
//   --max-connections N   reactor only: 503 new connections past N open
//                         (default 0 = unlimited)
//   --rate-limit-rps R    admission token bucket: past R requests/second
//                         (sustained) API requests get 429 RATE_LIMITED with
//                         Retry-After, both front ends; /healthz, /metricsz
//                         and streamed csv uploads are exempt (default 0 =
//                         unlimited)
//   --rate-limit-burst B  bucket depth for --rate-limit-rps: up to B
//                         requests are admitted back-to-back before the
//                         sustained rate applies (default 2*R)
//   --queue-deadline-ms N shed work that waited > N ms behind busy workers
//                         with 503 OVERLOADED instead of serving it late:
//                         per-request in the reactor's handler queue,
//                         per-connection in the threaded accept queue
//                         (default 0 = never shed)
//   --idle-timeout S      reactor only: drop connections idle > S seconds
//                         (slow-loris bound; default 30, 0 = never)
//   --write-stall S       reactor only: drop clients whose reads make no
//                         progress for S seconds (default 10, 0 = never)
//   --high-water-bytes N  reactor only: per-connection write-queue cap;
//                         streamed responses pause above it (default 1 MiB)
//   --log-level L         structured-log threshold: debug|info|warn|error|off
//                         (default info; debug logs one JSON line per
//                         request). Lines are JSON objects, one per line,
//                         carrying the request's trace id — see obs/log.h
//   --log-file PATH       append log lines to PATH instead of stderr
//   --slow-request-ms N   warn-log any request slower than N ms with its
//                         stage spans (default 0 = off)
//   --debug-requests N    retain the last N request traces, served at
//                         GET /v1/debug/requests (bearer-gated when
//                         --auth-token is set; default 0 = route disabled)
//
// In both modes POST /v1/datasets accepts a streamed text/csv body (typing
// in the query string — see server/service.h) fed incrementally through
// CsvStreamParser, and /healthz carries the front end's transport counters
// under "transport" (both front ends; the reactor exports more of them).
//
// Datasets loaded at startup (--demo / --csv) are registered in the shared
// DatasetRegistry with a default session each (the deprecated
// {"dataset": name} alias target); clients may upload more datasets via
// POST /v1/datasets and open isolated per-client sessions via
// POST /v1/sessions at runtime.
//
// On SIGINT/SIGTERM the server stops accepting, finishes in-flight
// requests, and exits 0 — scripts/check.sh's smoke stage asserts that.

#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include <algorithm>
#include <filesystem>

#include "api/dataset_snapshot.h"
#include "datagen/panel_gen.h"
#include "net/reactor_server.h"
#include "obs/build_info.h"
#include "obs/log.h"
#include "reptile/reptile.h"
#include "server/http_server.h"
#include "server/service.h"

namespace reptile {
namespace {

// Written by the signal handler, read by main's shutdown wait.
int g_signal_pipe[2] = {-1, -1};

void HandleSignal(int) {
  char byte = 1;
  // write() is async-signal-safe; best-effort (the pipe never fills).
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

std::vector<std::string> SplitCommas(const std::string& list) {
  std::vector<std::string> out;
  size_t begin = 0;
  while (begin <= list.size()) {
    size_t end = list.find(',', begin);
    if (end == std::string::npos) end = list.size();
    if (end > begin) out.push_back(list.substr(begin, end - begin));
    begin = end + 1;
  }
  return out;
}

// The --demo dataset: the datagen severity panel (the shape the fig08
// benchmark explores), small enough to build instantly.
Dataset MakeDemoPanel() {
  PanelSpec spec;
  spec.districts = 8;
  spec.villages_per_district = 6;
  spec.years = 10;
  spec.rows_per_group = 4;
  spec.seed = 17;
  return MakeSeverityPanel(spec);
}

struct Args {
  std::string csv;
  std::string name = "default";
  std::vector<std::string> dimensions;
  std::vector<std::string> measures;
  std::vector<HierarchySchema> hierarchies;
  std::vector<std::string> commits;
  char separator = ',';
  bool demo = false;
  int port = 8080;
  int http_threads = 4;
  int engine_threads = 0;
  int top_k = 5;
  int session_ttl = 0;
  std::string dataset_root;
  std::string snapshot_dir;
  size_t cache_budget_mb = 0;
  long max_requests_per_connection = 0;
  long max_sessions = 1024;
  long max_datasets = 64;
  size_t max_body_bytes = 8 * 1024 * 1024;
  bool reactor = false;
  std::string auth_token;
  size_t stream_threshold = SIZE_MAX;  // off
  long max_connections = 0;
  double rate_limit_rps = 0.0;
  double rate_limit_burst = 0.0;
  int queue_deadline_ms = 0;
  int idle_timeout = 30;
  double write_stall = 10.0;
  size_t high_water_bytes = size_t{1} << 20;
  std::string log_level = "info";
  std::string log_file;
  double slow_request_ms = 0.0;
  long debug_requests = 0;
};

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--demo | --csv PATH --dimensions a,b --measures x "
               "--hierarchy name=a,b [...]) [--name N] [--commit H]... "
               "[--port P] [--http-threads N] [--engine-threads N] [--top-k K] "
               "[--session-ttl S] [--dataset-root DIR] [--max-sessions N] "
               "[--max-datasets N] [--max-body-bytes N] [--separator C] "
               "[--reactor] [--auth-token T] [--stream-threshold N] "
               "[--max-connections N] [--rate-limit-rps R] "
               "[--rate-limit-burst B] [--queue-deadline-ms N] "
               "[--idle-timeout S] [--write-stall S] "
               "[--high-water-bytes N] [--snapshot-dir DIR] "
               "[--cache-budget-mb N] [--max-requests-per-connection N] "
               "[--log-level L] [--log-file PATH] [--slow-request-ms N] "
               "[--debug-requests N]\n",
               argv0);
  std::exit(2);
}

Args ParseArgs(int argc, char** argv) {
  Args args;
  auto value_of = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "flag %s needs a value\n", argv[i]);
      Usage(argv[0]);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag == "--demo") {
      args.demo = true;
    } else if (flag == "--csv") {
      args.csv = value_of(i);
    } else if (flag == "--name") {
      args.name = value_of(i);
    } else if (flag == "--dimensions") {
      args.dimensions = SplitCommas(value_of(i));
    } else if (flag == "--measures") {
      args.measures = SplitCommas(value_of(i));
    } else if (flag == "--hierarchy") {
      std::string spec = value_of(i);
      size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
        std::fprintf(stderr, "--hierarchy wants NAME=attr1,attr2 but got '%s'\n",
                     spec.c_str());
        Usage(argv[0]);
      }
      args.hierarchies.push_back(
          HierarchySchema{spec.substr(0, eq), SplitCommas(spec.substr(eq + 1))});
    } else if (flag == "--commit") {
      args.commits.push_back(value_of(i));
    } else if (flag == "--separator") {
      std::string s = value_of(i);
      if (s.size() != 1) {
        std::fprintf(stderr, "--separator wants a single character\n");
        Usage(argv[0]);
      }
      args.separator = s[0];
    } else if (flag == "--port") {
      // Strict parse: HttpServer truncates the port through uint16_t, so a
      // typo'd or out-of-range value would silently bind a different port.
      std::string value = value_of(i);
      char* end = nullptr;
      long port = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || port < 0 || port > 65535) {
        std::fprintf(stderr, "--port wants an integer in [0, 65535], got '%s'\n",
                     value.c_str());
        Usage(argv[0]);
      }
      args.port = static_cast<int>(port);
    } else if (flag == "--http-threads") {
      args.http_threads = std::atoi(value_of(i).c_str());
    } else if (flag == "--engine-threads") {
      args.engine_threads = std::atoi(value_of(i).c_str());
    } else if (flag == "--top-k") {
      args.top_k = std::atoi(value_of(i).c_str());
    } else if (flag == "--session-ttl") {
      args.session_ttl = std::atoi(value_of(i).c_str());
    } else if (flag == "--dataset-root") {
      args.dataset_root = value_of(i);
    } else if (flag == "--snapshot-dir") {
      args.snapshot_dir = value_of(i);
    } else if (flag == "--cache-budget-mb") {
      args.cache_budget_mb =
          static_cast<size_t>(std::strtoull(value_of(i).c_str(), nullptr, 10));
    } else if (flag == "--max-requests-per-connection") {
      args.max_requests_per_connection = std::atol(value_of(i).c_str());
    } else if (flag == "--max-sessions") {
      args.max_sessions = std::atol(value_of(i).c_str());
    } else if (flag == "--max-datasets") {
      args.max_datasets = std::atol(value_of(i).c_str());
    } else if (flag == "--max-body-bytes") {
      args.max_body_bytes = static_cast<size_t>(std::strtoull(value_of(i).c_str(), nullptr, 10));
    } else if (flag == "--reactor") {
      args.reactor = true;
    } else if (flag == "--auth-token") {
      args.auth_token = value_of(i);
    } else if (flag == "--stream-threshold") {
      args.stream_threshold =
          static_cast<size_t>(std::strtoull(value_of(i).c_str(), nullptr, 10));
    } else if (flag == "--max-connections") {
      args.max_connections = std::atol(value_of(i).c_str());
    } else if (flag == "--rate-limit-rps") {
      args.rate_limit_rps = std::atof(value_of(i).c_str());
    } else if (flag == "--rate-limit-burst") {
      args.rate_limit_burst = std::atof(value_of(i).c_str());
    } else if (flag == "--queue-deadline-ms") {
      args.queue_deadline_ms = std::atoi(value_of(i).c_str());
    } else if (flag == "--idle-timeout") {
      args.idle_timeout = std::atoi(value_of(i).c_str());
    } else if (flag == "--write-stall") {
      args.write_stall = std::atof(value_of(i).c_str());
    } else if (flag == "--high-water-bytes") {
      args.high_water_bytes =
          static_cast<size_t>(std::strtoull(value_of(i).c_str(), nullptr, 10));
    } else if (flag == "--log-level") {
      args.log_level = value_of(i);
      if (!ParseLogLevel(args.log_level).has_value()) {
        std::fprintf(stderr, "--log-level wants debug|info|warn|error|off, got '%s'\n",
                     args.log_level.c_str());
        Usage(argv[0]);
      }
    } else if (flag == "--log-file") {
      args.log_file = value_of(i);
    } else if (flag == "--slow-request-ms") {
      args.slow_request_ms = std::atof(value_of(i).c_str());
    } else if (flag == "--debug-requests") {
      args.debug_requests = std::atol(value_of(i).c_str());
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      Usage(argv[0]);
    }
  }
  if (!args.demo && args.csv.empty() && args.snapshot_dir.empty()) Usage(argv[0]);
  return args;
}

int Main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);

  // Logger first: everything after this line may log. ParseArgs already
  // validated the level string.
  if (!Logger::Global().Configure(*ParseLogLevel(args.log_level), args.log_file)) {
    std::fprintf(stderr, "cannot open --log-file %s\n", args.log_file.c_str());
    return 1;
  }

  // Assigned once the chosen front end exists (below); the service's healthz
  // hook dereferences it lazily, per request, so construction order is fine.
  std::function<std::string()> transport_stats;

  ServiceOptions service_options;
  service_options.session_defaults.TopK(args.top_k).Threads(args.engine_threads);
  service_options.session_ttl_seconds = args.session_ttl;
  service_options.dataset_path_root = args.dataset_root;
  service_options.max_sessions = args.max_sessions;
  service_options.max_datasets = args.max_datasets;
  service_options.auth_token = args.auth_token;
  service_options.stream_threshold_bytes = args.stream_threshold;
  service_options.cache_budget_bytes = args.cache_budget_mb * 1024 * 1024;
  service_options.slow_request_ms = args.slow_request_ms;
  service_options.debug_request_ring =
      args.debug_requests > 0 ? static_cast<size_t>(args.debug_requests) : 0;
  // Both front ends export transport counters now (the threaded server grew
  // a StatsJson for the admission-control counters), so the hook is
  // unconditional.
  service_options.transport_stats_json = [&transport_stats] {
    return transport_stats ? transport_stats() : std::string("null");
  };

  ReptileService service(service_options);
  if (args.demo) {
    // --name applies to the CSV dataset when both are served; a lone --demo
    // honors --name, defaulting to "demo".
    std::string name = args.csv.empty() ? (args.name == "default" ? "demo" : args.name)
                                        : "demo";
    Status added = service.AddDataset(name, MakeDemoPanel(), {"time"});
    if (!added.ok()) {
      std::fprintf(stderr, "demo dataset failed: %s\n", added.ToString().c_str());
      return 1;
    }
    std::printf("loaded dataset '%s' (demo panel, hierarchy 'time' committed)\n",
                name.c_str());
  }
  if (!args.csv.empty()) {
    CsvSpec spec;
    spec.dimension_columns = args.dimensions;
    spec.measure_columns = args.measures;
    spec.separator = args.separator;
    Result<Table> table = LoadCsv(args.csv, spec);
    if (!table.ok()) {
      std::fprintf(stderr, "loading %s failed: %s\n", args.csv.c_str(),
                   table.status().ToString().c_str());
      return 1;
    }
    Result<Dataset> dataset = Dataset::Make(std::move(table).value(), args.hierarchies);
    if (!dataset.ok()) {
      std::fprintf(stderr, "loading %s failed: %s\n", args.csv.c_str(),
                   dataset.status().ToString().c_str());
      return 1;
    }
    Status added = service.AddDataset(args.name, std::move(dataset).value(), args.commits);
    if (!added.ok()) {
      std::fprintf(stderr, "%s\n", added.ToString().c_str());
      return 1;
    }
    std::printf("loaded dataset '%s' from %s\n", args.name.c_str(), args.csv.c_str());
  }
  if (!args.snapshot_dir.empty()) {
    // Warm start: every *.snap in the directory becomes a dataset named
    // after its file stem, caches pre-warmed. Deterministic order (sorted)
    // so duplicate-name failures are reproducible.
    std::error_code ec;
    std::vector<std::filesystem::path> snapshots;
    for (const auto& entry : std::filesystem::directory_iterator(args.snapshot_dir, ec)) {
      if (entry.path().extension() == ".snap") snapshots.push_back(entry.path());
    }
    if (ec) {
      std::fprintf(stderr, "cannot read --snapshot-dir %s: %s\n",
                   args.snapshot_dir.c_str(), ec.message().c_str());
      return 1;
    }
    std::sort(snapshots.begin(), snapshots.end());
    for (const std::filesystem::path& snapshot : snapshots) {
      Result<DatasetHandle> handle = LoadPreparedDataset(snapshot.string());
      if (!handle.ok()) {
        std::fprintf(stderr, "loading snapshot %s failed: %s\n", snapshot.c_str(),
                     handle.status().ToString().c_str());
        return 1;
      }
      std::string name = snapshot.stem().string();
      // --commit applies here too: the snapshot carries fitted models keyed
      // by committed-depth state, so re-committing the same drill-downs is
      // what makes the first recommend warm.
      Status added = service.AddPreparedDataset(name, std::move(handle).value(), args.commits);
      if (!added.ok()) {
        std::fprintf(stderr, "registering snapshot %s failed: %s\n", snapshot.c_str(),
                     added.ToString().c_str());
        return 1;
      }
      std::printf("loaded dataset '%s' from snapshot %s (caches warm)\n", name.c_str(),
                  snapshot.c_str());
    }
  }

  HttpHandler handler = [&service](const HttpRequest& request) {
    return service.Handle(request);
  };
  HttpStreamFactory stream_factory = [&service](const HttpRequest& head) {
    return service.StartStreamingBody(head);
  };

  // --rate-limit-burst defaults to two seconds of sustained rate: deep
  // enough that an interactive client's click-burst is admitted, shallow
  // enough that a flood hits the 429s within a second.
  double rate_limit_burst =
      args.rate_limit_burst > 0.0 ? args.rate_limit_burst : 2.0 * args.rate_limit_rps;

  std::unique_ptr<HttpServer> threaded;
  std::unique_ptr<ReactorServer> reactor;
  Status started;
  int port = 0;
  if (args.reactor) {
    ReactorServerOptions server_options;
    server_options.port = args.port;
    server_options.num_threads = args.http_threads;
    server_options.max_body_bytes = args.max_body_bytes;
    server_options.max_connections = args.max_connections;
    server_options.idle_timeout_seconds = args.idle_timeout;
    server_options.write_stall_seconds = args.write_stall;
    server_options.write_high_water_bytes = args.high_water_bytes;
    server_options.max_requests_per_connection = args.max_requests_per_connection;
    server_options.rate_limit_rps = args.rate_limit_rps;
    server_options.rate_limit_burst = rate_limit_burst;
    server_options.queue_deadline_ms = args.queue_deadline_ms;
    server_options.stream_factory = stream_factory;
    reactor = std::make_unique<ReactorServer>(std::move(server_options), handler);
    ReactorServer* raw = reactor.get();
    transport_stats = [raw] { return raw->StatsJson(); };
    started = reactor->Start();
    port = reactor->port();
  } else {
    HttpServerOptions server_options;
    server_options.port = args.port;
    server_options.num_threads = args.http_threads;
    server_options.max_body_bytes = args.max_body_bytes;
    server_options.max_requests_per_connection = args.max_requests_per_connection;
    server_options.rate_limit_rps = args.rate_limit_rps;
    server_options.rate_limit_burst = rate_limit_burst;
    server_options.queue_deadline_ms = args.queue_deadline_ms;
    server_options.stream_factory = stream_factory;
    threaded = std::make_unique<HttpServer>(server_options, handler);
    HttpServer* raw = threaded.get();
    transport_stats = [raw] { return raw->StatsJson(); };
    started = threaded->Start();
    port = threaded->port();
  }
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("reptile_serve listening on 127.0.0.1:%d\n", port);
  if (args.reactor) {
    std::printf("front end: epoll reactor (1 event thread, %d workers)\n",
                args.http_threads);
  }
  std::fflush(stdout);
  LogEvent(LogLevel::kInfo, "server_started",
           {LogField::Int("port", port),
            LogField::Str("front_end", args.reactor ? "reactor" : "threaded"),
            LogField::Int("pid", static_cast<int64_t>(::getpid())),
            LogField::Raw("build", BuildInfoJson())});

  // Block until SIGINT/SIGTERM, then stop cleanly (in-flight requests finish).
  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "pipe() failed: %s\n", std::strerror(errno));
    return 1;
  }
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  char byte;
  ssize_t n;
  do {
    n = ::read(g_signal_pipe[0], &byte, 1);
  } while (n < 0 && errno == EINTR);
  std::printf("shutting down\n");
  std::fflush(stdout);
  LogEvent(LogLevel::kInfo, "server_stopping", {LogField::Int("port", port)});
  if (reactor != nullptr) reactor->Stop();
  if (threaded != nullptr) threaded->Stop();
  return 0;
}

}  // namespace
}  // namespace reptile

int main(int argc, char** argv) { return reptile::Main(argc, argv); }
