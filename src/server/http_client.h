// Minimal blocking HTTP/1.1 client over POSIX sockets — just enough to drive
// the server from loopback integration tests and benchmarks without an
// external dependency. Requests carry Content-Length; responses may be
// Content-Length framed or chunked (the servers stream large bodies with
// Transfer-Encoding: chunked — the client hands back the decoded body, so
// callers never see the framing). Keep-alive: one TCP connection is reused
// across requests and transparently re-established when the server closes
// it.
//
// Not a general-purpose client: no TLS, no redirects, no request
// pipelining. A client instance is single-threaded; concurrent test traffic
// uses one client per thread.

#ifndef REPTILE_SERVER_HTTP_CLIENT_H_
#define REPTILE_SERVER_HTTP_CLIENT_H_

#include <string>
#include <utility>
#include <vector>

#include "api/status.h"

namespace reptile {

struct HttpClientResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;  // names lowercased
  std::string body;

  const std::string* FindHeader(const std::string& lowercase_name) const;
};

class HttpClient {
 public:
  HttpClient(std::string host, int port);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// kIoError when the server is unreachable or drops the connection,
  /// kParseError when the response is not well-formed HTTP.
  Result<HttpClientResponse> Get(const std::string& path);
  Result<HttpClientResponse> Post(const std::string& path, const std::string& body,
                                  const std::string& content_type = "application/json");
  Result<HttpClientResponse> Delete(const std::string& path);

  /// Adds a header to every subsequent request — e.g.
  /// SetHeader("Authorization", "Bearer tok"). Setting a name again replaces
  /// it; an empty value removes it.
  void SetHeader(const std::string& name, const std::string& value);

  /// Bounds connect(), every socket read, and every socket write of
  /// subsequent requests to `timeout_ms` each (0 restores the default:
  /// block forever). A deadline miss surfaces as kDeadlineExceeded — distinct
  /// from kIoError so the load generator can count timeouts separately from
  /// dropped connections — and always tears down the connection: the reply
  /// may still arrive later, and reusing the socket would desync request and
  /// response. Applies from the next Connect(), so callers normally set it
  /// before the first request.
  void SetTimeoutMs(int timeout_ms);

  /// Sends raw bytes on a fresh connection and returns everything the server
  /// writes until it closes — for tests that need to speak *malformed* HTTP
  /// (the framing-error surface, which Get/Post can't produce).
  Result<std::string> SendRaw(const std::string& bytes);

 private:
  Result<HttpClientResponse> Request(const std::string& method, const std::string& path,
                                     const std::string& body,
                                     const std::string& content_type);
  Status Connect();
  void Disconnect();

  std::string host_;
  int port_;
  int timeout_ms_ = 0;
  int fd_ = -1;
  std::vector<std::pair<std::string, std::string>> default_headers_;
};

}  // namespace reptile

#endif  // REPTILE_SERVER_HTTP_CLIENT_H_
