// The routing/handler layer of the Reptile server: maps HTTP requests onto
// named, pre-loaded Sessions and speaks the api/ Status error contract as
// HTTP status codes.
//
// Routes (all bodies are JSON):
//   GET  /healthz             liveness: {"status":"ok","datasets":N}
//   GET  /v1/datasets         every session: columns, hierarchies, drill state
//   POST /v1/recommend        {"dataset","complaint",{"options"}} -> ExploreResponse
//   POST /v1/recommend_batch  {"dataset","complaints":[...],"options"} -> BatchExploreResponse
//   POST /v1/view             {"dataset","group_by":[...],"measure","where"} -> ViewResponse
//   POST /v1/commit           {"dataset","hierarchy"} -> the new drill state
//
// Success bodies of recommend/recommend_batch/view are the *exact* bytes of
// the corresponding response ToJson() — the HTTP layer adds nothing — so a
// wire client sees byte-identical output to an in-process Session call.
// `"options":{"zero_timings":true}` zeroes the (scheduling-dependent) timing
// fields before serialization for clients that want cacheable/comparable
// bodies; everything else is unaffected.
//
// Error contract: every failure is rendered as
//   {"error":{"code":"NOT_FOUND","http":404,"message":"..."}}
// with one central StatusCode -> HTTP mapping (HttpStatusFor):
//   kInvalidArgument, kParseError -> 400    kNotFound -> 404
//   kFailedPrecondition           -> 409    kIoError, kInternal -> 500
// Unknown routes are 404, known routes with the wrong method 405 (with an
// Allow header); request-framing failures (oversized body 413, oversized
// headers 431, malformed syntax 400) are produced by the HTTP layer below.
//
// Request mapping is strict: unknown or wrong-typed fields are rejected as
// kInvalidArgument naming the field, and malformed JSON is a kParseError
// carrying the parser's byte offset.
//
// Concurrency: Handle() is thread-safe. Sessions are registered before
// serving starts (AddSession is not synchronized against Handle); each
// session serializes its calls behind a per-session mutex — a Session is
// not thread-safe, and parallelism belongs *inside* a call (the engine's
// worker-pool fan-out), not across calls.

#ifndef REPTILE_SERVER_SERVICE_H_
#define REPTILE_SERVER_SERVICE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/session.h"
#include "api/status.h"
#include "server/http_server.h"

namespace reptile {

struct ServiceOptions {
  // Enables POST /v1/_debug/status {"code","message"}, which renders the
  // named StatusCode through the error path — lets integration tests assert
  // the complete StatusCode -> HTTP mapping over loopback, including codes
  // (kIoError, kInternal) no healthy data route produces. Off by default;
  // never enable on an exposed server.
  bool enable_debug_status_route = false;
};

class ReptileService {
 public:
  explicit ReptileService(ServiceOptions options = ServiceOptions());

  /// Registers a session under a dataset name. InvalidArgument on an empty
  /// or duplicate name. Call before serving: not synchronized with Handle().
  Status AddSession(std::string name, Session session);

  /// Routes one request; never throws. Thread-safe across connections.
  HttpResponse Handle(const HttpRequest& request);

  /// The single StatusCode -> HTTP status mapping (kOk -> 200).
  static int HttpStatusFor(StatusCode code);

  /// A non-OK Status rendered as the standard JSON error body.
  static HttpResponse ErrorResponse(const Status& status);

  /// Registered dataset names, sorted.
  std::vector<std::string> dataset_names() const;

 private:
  struct Entry {
    explicit Entry(Session s) : session(std::move(s)) {}
    std::mutex mu;  // serializes calls into this session
    Session session;
  };

  Result<Entry*> FindDataset(const std::string& name);

  HttpResponse HandleHealthz();
  HttpResponse HandleDatasets();
  HttpResponse HandleRecommend(const std::string& body, bool batch);
  HttpResponse HandleView(const std::string& body);
  HttpResponse HandleCommit(const std::string& body);
  HttpResponse HandleDebugStatus(const std::string& body);

  ServiceOptions options_;
  std::map<std::string, std::unique_ptr<Entry>> sessions_;
};

}  // namespace reptile

#endif  // REPTILE_SERVER_SERVICE_H_
