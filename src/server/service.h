// The routing/handler layer of the Reptile server: a shared immutable
// DatasetRegistry plus a runtime-mutable table of per-client Sessions, with
// the api/ Status error contract spoken as HTTP status codes.
//
// Routes (all bodies are JSON):
//   GET    /healthz            liveness + warm-path counters: datasets,
//                              sessions, sessions_evicted, and the shared
//                              aggregate-/model-cache hit/miss/entry (+fits)
//                              totals summed over every LIVE dataset — each
//                              dataset's counters are monotonic, but deleting
//                              a dataset drops its contribution, so treat the
//                              sums as a gauge, not a monotonic counter.
//                              Version-chain state rides along: a "versions"
//                              array (per dataset: head id + live version
//                              ids) plus the registry's versions_gc /
//                              cache_invalidations counters
//   GET    /metricsz           Prometheus text exposition (version 0.0.4):
//                              request-latency and per-stage histograms, the
//                              cache/session/transport counters, and the
//                              process-wide gauges — served identically by
//                              both front ends
//   GET    /v1/debug/requests  the bounded ring of recent request trace
//                              records (opt-in via ServiceOptions::
//                              debug_request_ring; requires the bearer token
//                              when auth is configured)
//   GET    /v1/datasets        registered datasets: columns, hierarchies, and
//                              the DEFAULT session's drill state
//   POST   /v1/datasets        load a dataset into the registry — server-side
//                              CSV file ("path") or inline upload ("csv"),
//                              with "dimensions"/"measures"/"hierarchies"
//                              typing; opens the dataset's default session.
//                              With a text/csv Content-Type the body is the
//                              raw CSV, STREAMED through CsvStreamParser
//                              (never materialized), and the typing rides the
//                              query string — see StartStreamingBody()
//   DELETE /v1/datasets/{name} drop the dataset — the WHOLE version chain —
//                              and every session over any of its versions
//                              (in-flight requests finish; the prepared
//                              dataset is freed when the last handle drops)
//   POST   /v1/datasets/{name}/rows
//                              append rows: {"csv": "..."} (inline, same
//                              separator conventions as upload) or a raw
//                              text/csv body. The header must carry exactly
//                              the dataset's columns — schema or hierarchy
//                              changes are 400 naming the column. Produces
//                              an immutable new version ("name@v2", ...)
//                              that structurally shares unchanged columns,
//                              dictionary prefixes, f-tree subtrees and
//                              (hierarchy, depth) aggregates with its parent
//                              (version/append.h); the default session moves
//                              to the new head (committed depths preserved),
//                              while named sessions stay PINNED to the
//                              version they opened. Unpinned ancestors are
//                              garbage-collected. 201 body:
//                              {"dataset","dataset_version","rows",
//                               "appended","session"}
//   GET    /v1/sessions        all live sessions (id, dataset, drill state)
//   POST   /v1/sessions        open a per-client session over a named dataset:
//                              {"dataset","committed"?,"options"?} -> the
//                              session snapshot (a "committed" depth map
//                              restores persisted drill state)
//   GET    /v1/sessions/{id}   drill-state snapshot (persist / migration)
//   DELETE /v1/sessions/{id}   close the session
//   POST   /v1/datasets/{name}/snapshot
//                              {"path": rel} — write the dataset (table,
//                              hierarchies, cached f-trees, persistable
//                              fitted models) as a binary snapshot under the
//                              server's dataset root (api/dataset_snapshot.h).
//                              Mutating-route auth applies; disabled without
//                              a configured --dataset-root
//   POST   /v1/recommend       {"session"|"dataset","complaint",{"options"}}
//   POST   /v1/recommend_batch {"session"|"dataset","complaints":[...],"options"}
//   POST   /v1/view            {"session"|"dataset","group_by":[...],...}
//   POST   /v1/commit          {"session"|"dataset","hierarchy"}
//
// POST /v1/datasets also accepts {"name","snapshot": rel} — registering a
// dataset from a snapshot file (same root confinement as "path"): the schema
// rides in the file, the caches come up pre-warmed, and the first recommend
// is byte-identical to the process that wrote the snapshot.
//
// Dataset/session split: every dataset is prepared once (table, hierarchies,
// f-trees, shared aggregate cache) and all sessions over it — created and
// destroyed freely at runtime — share that immutable state; a session owns
// only its drill depths. Two analysts exploring one dataset no longer share
// drill state (the PR 3 follow-on), yet still share every cached aggregate.
//
// Deprecated alias: the PR 3 request form {"dataset": name, ...} routes to
// the dataset's DEFAULT session (opened when the dataset is registered) and
// returns byte-identical bodies to the old named-session server, so existing
// clients keep working unchanged. New clients create their own session and
// pass {"session": id, ...}.
//
// Idle TTL: a non-default session untouched for session_ttl_seconds is
// evicted on the next session-table access (no background thread; the table
// is swept opportunistically). Default sessions are never evicted.
//
// Success bodies of recommend/recommend_batch/view are the *exact* bytes of
// the corresponding response ToJson() — the HTTP layer adds nothing — so a
// wire client sees byte-identical output to an in-process Session call.
// `"options":{"zero_timings":true}` zeroes the (scheduling-dependent) timing
// fields before serialization for clients that want cacheable/comparable
// bodies; everything else is unaffected.
//
// Error contract: every failure is rendered as
//   {"error":{"code":"NOT_FOUND","http":404,"message":"..."}}
// with one central StatusCode -> HTTP mapping (HttpStatusFor):
//   kInvalidArgument, kParseError -> 400    kNotFound -> 404
//   kFailedPrecondition           -> 409    kIoError, kInternal -> 500
// Unknown routes are 404, known routes with the wrong method 405 (with an
// Allow header); request-framing failures (oversized body 413, oversized
// headers 431, malformed syntax 400) are produced by the HTTP layer below.
//
// Request mapping is strict: unknown or wrong-typed fields are rejected as
// kInvalidArgument naming the field, and malformed JSON is a kParseError
// carrying the parser's byte offset.
//
// Auth: when ServiceOptions::auth_token is set, MUTATING routes (dataset
// create/delete, session create/delete, commit) require
// "Authorization: Bearer <token>"; failures get the standard envelope with
// code UNAUTHENTICATED and HTTP 401. /healthz and read-only routes stay
// open so probes and dashboards need no credentials.
//
// Concurrency: Handle() is thread-safe, and — unlike PR 3's
// register-before-serving contract — so is every mutator: the session table
// sits behind a shared_mutex (lookups take the shared lock; create / delete
// / TTL eviction take the exclusive lock), the registry is internally
// synchronized, and entries are shared_ptr so a session evicted or deleted
// mid-request finishes its in-flight call safely. Each session serializes
// its calls behind a per-session mutex — a Session is not thread-safe, and
// parallelism belongs *inside* a call (the engine's worker-pool fan-out) or
// across *different* sessions, never across calls into one session.

#ifndef REPTILE_SERVER_SERVICE_H_
#define REPTILE_SERVER_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "api/registry.h"
#include "api/session.h"
#include "api/status.h"
#include "server/http_server.h"

namespace reptile {

class JsonValue;        // server/json.h
class TraceContext;     // obs/trace.h
class RequestRing;      // obs/request_ring.h
class MetricsRegistry;  // obs/metrics.h
class Counter;          // obs/metrics.h
class Histogram;        // obs/metrics.h

struct ServiceOptions {
  // Enables POST /v1/_debug/status {"code","message"}, which renders the
  // named StatusCode through the error path — lets integration tests assert
  // the complete StatusCode -> HTTP mapping over loopback, including codes
  // (kIoError, kInternal) no healthy data route produces. Off by default;
  // never enable on an exposed server.
  bool enable_debug_status_route = false;

  // Idle TTL for non-default sessions, in seconds; 0 = never evict. An
  // expired session is evicted on the next session-table access (the sweep
  // is throttled to at most once per ttl/8 so steady-state lookups do not
  // pay an O(sessions) scan).
  int session_ttl_seconds = 0;

  // Root directory for POST /v1/datasets {"path": ...} server-side loads.
  // EMPTY (the default) DISABLES the path form entirely — an unauthenticated
  // client must not be able to read arbitrary server-side files (CSV parse
  // errors echo file contents). When set, requests are confined to this
  // directory: absolute paths and ".." components are rejected. Inline
  // {"csv": ...} uploads are always available.
  std::string dataset_path_root;

  // Session options (top_k, threads, model, ...) applied to every session
  // the service opens: default sessions, POST /v1/sessions (whose per-call
  // "options" override top_k / threads), and uploaded datasets.
  ExploreRequest session_defaults;

  // Resource caps — both routes are unauthenticated, so without bounds a
  // client could grow the session table / registry until the server OOMs.
  // Exceeding a cap is kFailedPrecondition (HTTP 409). 0 = unlimited.
  // max_sessions counts per-client sessions only (defaults are one per
  // dataset, already bounded by max_datasets).
  int64_t max_sessions = 1024;
  int64_t max_datasets = 64;

  // Time source for TTL bookkeeping; nullptr = std::chrono::steady_clock.
  // Injectable so tests drive eviction deterministically.
  std::function<std::chrono::steady_clock::time_point()> clock;

  // Bearer token required on mutating routes (see the header comment) when
  // non-empty. Empty (the default) disables the check entirely.
  std::string auth_token;

  // recommend_batch responses whose serialized body reaches this many bytes
  // are streamed (HttpResponse::body_stream over ToJsonPieces(), chunked on
  // the wire for HTTP/1.1) instead of materialized in one buffer. The
  // reassembled bytes are identical to the buffered body — ToJsonPieces()
  // concatenates to exactly ToJson(). SIZE_MAX (the default) disables
  // streaming, so existing clients see unchanged framing.
  size_t stream_threshold_bytes = SIZE_MAX;

  // When set, /healthz gains ,"transport":<hook's JSON> — the serving binary
  // wires the front end's counters (e.g. ReactorServer::StatsJson) in here.
  std::function<std::string()> transport_stats_json;

  // Capacity of the in-memory ring of recent request trace records served
  // at GET /v1/debug/requests (trace id, route, status, stage spans). 0
  // (the default) disables both the ring and the route — debug introspection
  // is opt-in. When auth_token is set the route requires the bearer token
  // (request paths and ids are operational data, not for anonymous probes).
  size_t debug_request_ring = 0;

  // Requests slower than this many milliseconds are logged at warn level
  // (event "slow_request") with their stage spans, regardless of the
  // logger's per-request debug line. 0 (the default) disables the check.
  double slow_request_ms = 0.0;

  // Total cache memory target per dataset, in bytes, split between the
  // dataset's shared aggregate cache and its fitted-model cache (see
  // PreparedDataset::SetCacheBudgetBytes). Applied to every dataset the
  // service installs (startup loads, uploads, snapshot restores). Past the
  // budget the caches evict least-recently-used entries; in-flight holders
  // keep evicted entries alive via their shared_ptr. 0 = unlimited.
  size_t cache_budget_bytes = 0;
};

class ReptileService {
 public:
  explicit ReptileService(ServiceOptions options = ServiceOptions());

  /// Shares an externally owned registry (e.g. with direct in-process
  /// sessions, or a second server): datasets added on either side are
  /// visible to both.
  ReptileService(std::shared_ptr<DatasetRegistry> registry, ServiceOptions options);

  ~ReptileService();  // out-of-line: members are forward-declared obs types

  /// Registers `dataset` under `name` and opens its default session (the
  /// deprecated {"dataset": name} alias target), committing `commits` in
  /// order. InvalidArgument on an empty/duplicate name or invalid dataset.
  /// Thread-safe; callable while serving.
  Status AddDataset(std::string name, Dataset dataset,
                    const std::vector<std::string>& commits = {});

  /// Registers an already-prepared dataset (e.g. one restored from a binary
  /// snapshot, caches pre-warmed) exactly as AddDataset does: applies the
  /// service cache budget, opens the default session, commits `commits`.
  Status AddPreparedDataset(const std::string& name, DatasetHandle handle,
                            const std::vector<std::string>& commits = {});

  /// Drops the dataset from the registry AND removes every session over it
  /// (default included) — the only safe way to unload: removing through
  /// registry() directly would strand the default session serving the
  /// deprecated alias forever. In-flight requests hold their entry and
  /// handle, so they finish; the prepared dataset's memory is released when
  /// the last holder drops. NotFound when the name is not registered.
  Status RemoveDataset(const std::string& name);

  /// Opens a per-client session over the named dataset, optionally restoring
  /// a committed-depth map; returns the new session id. Thread-safe. The
  /// HTTP route POST /v1/sessions lands here.
  Result<std::string> CreateSession(const std::string& dataset,
                                    const std::map<std::string, int>& committed = {},
                                    const ExploreRequest* options = nullptr);

  /// Deletes a non-default session by id. NotFound for unknown ids,
  /// InvalidArgument for a default session.
  Status DeleteSession(const std::string& id);

  /// Routes one request; never throws. Thread-safe across connections.
  /// Observability wrapper around the routing chain: mints (or adopts from a
  /// valid X-Request-Id header) the request's trace id, threads a
  /// TraceContext through the recommend pipeline, and stamps every response
  /// with X-Request-Id and Server-Timing headers while recording the
  /// request into the latency histograms, the debug ring (when enabled),
  /// and the structured log.
  HttpResponse Handle(const HttpRequest& request);

  /// Streaming-upload hook for the front ends (HttpServerOptions /
  /// ReactorServerOptions::stream_factory). Engages for two text/csv POSTs:
  ///
  /// POST /v1/datasets/{name}/rows — the body is the raw CSV of the appended
  /// rows (header line included); no query parameters are accepted (the
  /// dataset already defines the schema and separator). The chunks are
  /// accumulated and run through the same append path as the JSON form.
  ///
  /// POST /v1/datasets — the body is raw CSV,
  /// fed chunk by chunk through CsvStreamParser (never materialized), and
  /// the dataset typing rides the query string, percent-decoded:
  ///   name=NAME&dimensions=a,b[&measures=x,y][&hierarchy=geo:country,city]
  ///   [&hierarchy=...][&commits=geo,time][&separator=%09]
  /// ("hierarchy" repeats, one per hierarchy, attributes comma-separated.)
  /// Returns nullptr for every other request — the front end buffers those
  /// normally. Auth/metadata failures still return a sink: one that rejects
  /// the first body chunk and reports the error, so the client gets the
  /// standard envelope without the server consuming the upload.
  std::unique_ptr<HttpBodySink> StartStreamingBody(const HttpRequest& head);

  /// The single StatusCode -> HTTP status mapping (kOk -> 200).
  static int HttpStatusFor(StatusCode code);

  /// A non-OK Status rendered as the standard JSON error body.
  static HttpResponse ErrorResponse(const Status& status);

  /// Registered dataset names, sorted.
  std::vector<std::string> dataset_names() const;

  /// Live session ids, sorted (default sessions included).
  std::vector<std::string> session_ids() const;

  /// Sessions evicted by the idle TTL so far.
  int64_t sessions_evicted() const { return sessions_evicted_.load(); }

  /// The shared dataset registry.
  DatasetRegistry& registry() { return *registry_; }
  const DatasetRegistry& registry() const { return *registry_; }

 private:
  friend class DatasetUploadSink;  // the StartStreamingBody sinks (service.cpp)
  friend class DatasetAppendSink;

  struct SessionEntry {
    SessionEntry(std::string id, std::string dataset, int64_t dataset_version,
                 bool is_default, Session s, int64_t now_ns)
        : id(std::move(id)),
          dataset(std::move(dataset)),
          dataset_version(dataset_version),
          is_default(is_default),
          session(std::move(s)),
          last_used_ns(now_ns) {}

    const std::string id;
    const std::string dataset;           // registry BASE name (no "@vK")
    const int64_t dataset_version;       // chain version this session is pinned to
    const bool is_default;    // alias target: never evicted, not deletable
    std::mutex mu;                // serializes calls into this session
    Session session;
    std::atomic<int64_t> last_used_ns;  // steady-clock ns; TTL bookkeeping
  };
  using EntryPtr = std::shared_ptr<SessionEntry>;

  int64_t NowNs() const;

  /// The single spelling of a dataset's default-session id ("default:NAME");
  /// minted by AddDataset and echoed by the dataset-upload response.
  static std::string DefaultSessionId(const std::string& dataset);

  /// Evicts idle non-default sessions (no-op when the TTL is off). Called on
  /// every session-table access.
  void EvictIdleSessions();

  Result<EntryPtr> FindSession(const std::string& id);
  Result<EntryPtr> FindDefaultSession(const std::string& dataset);

  /// CreateSession's body, returning the live entry so the HTTP route never
  /// has to re-look up (and possibly lose to a racing delete) the session it
  /// just made.
  Result<EntryPtr> CreateSessionEntry(const std::string& dataset,
                                      const std::map<std::string, int>& committed,
                                      const ExploreRequest* options);

  /// Resolves the request body's session address — exactly one of
  /// {"session": id} (per-client) or {"dataset": name} (deprecated alias,
  /// the default session) — and stamps the entry's last-used time.
  Result<EntryPtr> ResolveTarget(const JsonValue& body);

  /// The session snapshot JSON (id, dataset, default flag, committed depths).
  std::string SessionSnapshotJson(SessionEntry& entry);

  /// True when the request may proceed: auth is off, the route is
  /// read-only, or the Authorization header carries the configured token.
  bool CheckAuth(const HttpRequest& request) const;

  /// AddDataset / AddPreparedDataset's shared tail: applies the cache
  /// budget, opens + commits the default session, and publishes the registry
  /// entry and the session atomically.
  Status InstallPrepared(const std::string& name, DatasetHandle handle,
                         const std::vector<std::string>& commits);

  /// The append core shared by the JSON route and the streamed-CSV sink:
  /// serializes appends behind append_mu_, builds the child version
  /// structurally sharing the head (version/append.h), publishes it through
  /// DatasetRegistry::AppendVersion, and moves the dataset's DEFAULT session
  /// to the new head (committed depths preserved — named sessions stay
  /// pinned). Returns the 201 response body. `name` must be the chain's base
  /// name: appending through a pinned "name@vK" alias is NotFound.
  Result<std::string> AppendToDataset(const std::string& name,
                                      const std::string& csv_text,
                                      const std::string& origin);

  /// Confines a client-supplied relative path to the configured dataset
  /// root (rejecting absolute paths, ".." components, and symlink escapes)
  /// and returns the resolved absolute path. `field` names the JSON field
  /// in error messages.
  Result<std::string> ResolveUnderDatasetRoot(const std::string& relative,
                                              const std::string& field) const;

  /// The routing chain proper (Handle() without the observability wrapper).
  HttpResponse HandleInternal(const HttpRequest& request, TraceContext* trace);

  /// Sums both shared caches' counters over every live dataset (gauge
  /// semantics: a deleted dataset drops its contribution) — the one
  /// collection point behind /healthz and /metricsz.
  struct CacheTotals;
  CacheTotals CollectCacheTotals() const;

  HttpResponse HandleHealthz();
  HttpResponse HandleMetricsz();
  HttpResponse HandleDebugRequests();
  HttpResponse HandleDatasetList();
  HttpResponse HandleDatasetCreate(const std::string& body);
  HttpResponse HandleDatasetDelete(const std::string& name);
  HttpResponse HandleDatasetAppend(const std::string& name, const std::string& body);
  HttpResponse HandleDatasetSnapshot(const std::string& name, const std::string& body);
  HttpResponse HandleSessionList();
  HttpResponse HandleSessionCreate(const std::string& body);
  HttpResponse HandleSessionGet(const std::string& id);
  HttpResponse HandleSessionDelete(const std::string& id);
  HttpResponse HandleRecommend(const std::string& body, bool batch, TraceContext* trace);
  HttpResponse HandleView(const std::string& body);
  HttpResponse HandleCommit(const std::string& body);
  HttpResponse HandleDebugStatus(const std::string& body);

  ServiceOptions options_;
  std::shared_ptr<DatasetRegistry> registry_;

  // Guards sessions_ and next_session_. AddDataset/RemoveDataset also hold
  // it exclusively around their registry mutation so a dataset and its
  // default session appear and disappear atomically (the registry's own
  // lock nests inside mu_, never the other way around). Default sessions
  // are keyed DefaultSessionId(dataset) — no separate dataset->id map.
  mutable std::shared_mutex mu_;
  std::map<std::string, EntryPtr> sessions_;  // by session id
  uint64_t next_session_ = 1;
  std::atomic<int64_t> sessions_evicted_{0};
  std::atomic<int64_t> last_sweep_ns_{0};  // throttles EvictIdleSessions

  // Serializes appends per service (taken OUTSIDE mu_, never inside): the
  // registry rejects out-of-order successions (FailedPrecondition), but
  // serializing here turns two racing clients into clean v2-then-v3 instead
  // of surfacing a 409 for an internal race the client cannot reason about.
  std::mutex append_mu_;

  // Observability state. The registry is per-service (two services in one
  // process — e.g. the differential test stacks — must not share request
  // series); genuinely process-wide series live on MetricsRegistry::Global().
  // Series pointers are cached at construction so the per-request path never
  // takes the registry mutex.
  const std::chrono::steady_clock::time_point start_time_;
  std::unique_ptr<MetricsRegistry> metrics_;
  Histogram* request_latency_ = nullptr;           // reptile_http_request_duration_seconds
  std::map<int, Counter*> requests_by_class_;      // reptile_http_requests_total{code="Nxx"}
  std::map<std::string, Histogram*> stage_latency_;  // ..._stage_duration_seconds{stage=...}
  std::unique_ptr<RequestRing> request_ring_;      // null unless opted in
};

}  // namespace reptile

#endif  // REPTILE_SERVER_SERVICE_H_
