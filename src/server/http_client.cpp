#include "server/http_client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "server/net_util.h"

namespace reptile {
namespace {

using net_internal::Lowercase;
using net_internal::Trim;
using net_internal::WriteAll;

// Appends whatever is readable. When SetTimeoutMs armed SO_RCVTIMEO on the
// socket, a stalled peer surfaces as EAGAIN → kTimeout, distinct from the
// peer being gone (kClosed) so callers can map it to kDeadlineExceeded.
enum class FillResult { kData, kClosed, kTimeout };

FillResult Fill(int fd, std::string* buffer) {
  char chunk[16 * 1024];
  ssize_t n;
  do {
    n = ::recv(fd, chunk, sizeof(chunk), 0);
  } while (n < 0 && errno == EINTR);
  if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return FillResult::kTimeout;
  if (n <= 0) return FillResult::kClosed;
  buffer->append(chunk, static_cast<size_t>(n));
  return FillResult::kData;
}

Status TimeoutStatus(int timeout_ms, const char* what) {
  return Status::DeadlineExceeded("no data for " + std::to_string(timeout_ms) + "ms " +
                                  what);
}

}  // namespace

const std::string* HttpClientResponse::FindHeader(const std::string& lowercase_name) const {
  for (const auto& [name, value] : headers) {
    if (name == lowercase_name) return &value;
  }
  return nullptr;
}

HttpClient::HttpClient(std::string host, int port) : host_(std::move(host)), port_(port) {}

HttpClient::~HttpClient() { Disconnect(); }

Status HttpClient::Connect() {
  if (fd_ >= 0) return Status::Ok();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Status::IoError(std::string("socket(): ") + std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port_));
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    Disconnect();
    return Status::InvalidArgument("bad host address '" + host_ + "'");
  }
  if (timeout_ms_ > 0) {
    // Bounded connect: go non-blocking, poll for writability, then read
    // SO_ERROR for the real outcome before restoring blocking mode.
    int flags = ::fcntl(fd_, F_GETFL, 0);
    ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      if (errno != EINPROGRESS) {
        Status status = Status::IoError("connect(" + host_ + ":" +
                                        std::to_string(port_) + "): " +
                                        std::strerror(errno));
        Disconnect();
        return status;
      }
      pollfd pfd{fd_, POLLOUT, 0};
      int ready;
      do {
        ready = ::poll(&pfd, 1, timeout_ms_);
      } while (ready < 0 && errno == EINTR);
      if (ready == 0) {
        Disconnect();
        return Status::DeadlineExceeded("connect(" + host_ + ":" +
                                        std::to_string(port_) + ") still pending after " +
                                        std::to_string(timeout_ms_) + "ms");
      }
      int err = 0;
      socklen_t err_len = sizeof(err);
      if (ready < 0 ||
          ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0 || err != 0) {
        Status status = Status::IoError("connect(" + host_ + ":" +
                                        std::to_string(port_) + "): " +
                                        std::strerror(err != 0 ? err : errno));
        Disconnect();
        return status;
      }
    }
    ::fcntl(fd_, F_SETFL, flags);
    timeval tv{};
    tv.tv_sec = timeout_ms_ / 1000;
    tv.tv_usec = static_cast<suseconds_t>(timeout_ms_ % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  } else if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::IoError("connect(" + host_ + ":" + std::to_string(port_) +
                                   "): " + std::strerror(errno));
    Disconnect();
    return status;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::Ok();
}

void HttpClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<HttpClientResponse> HttpClient::Get(const std::string& path) {
  return Request("GET", path, std::string(), std::string());
}

Result<HttpClientResponse> HttpClient::Post(const std::string& path, const std::string& body,
                                            const std::string& content_type) {
  return Request("POST", path, body, content_type);
}

Result<HttpClientResponse> HttpClient::Delete(const std::string& path) {
  return Request("DELETE", path, std::string(), std::string());
}

void HttpClient::SetHeader(const std::string& name, const std::string& value) {
  for (auto it = default_headers_.begin(); it != default_headers_.end(); ++it) {
    if (it->first == name) {
      if (value.empty()) {
        default_headers_.erase(it);
      } else {
        it->second = value;
      }
      return;
    }
  }
  if (!value.empty()) default_headers_.emplace_back(name, value);
}

void HttpClient::SetTimeoutMs(int timeout_ms) {
  timeout_ms_ = timeout_ms > 0 ? timeout_ms : 0;
  Disconnect();  // the current socket keeps its old deadline; re-arm fresh
}

Result<HttpClientResponse> HttpClient::Request(const std::string& method,
                                               const std::string& path,
                                               const std::string& body,
                                               const std::string& content_type) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    bool fresh_connection = fd_ < 0;
    REPTILE_RETURN_IF_ERROR(Connect());

    std::string request = method + " " + path + " HTTP/1.1\r\n";
    request += "Host: " + host_ + ":" + std::to_string(port_) + "\r\n";
    for (const auto& [name, value] : default_headers_) {
      request += name + ": " + value + "\r\n";
    }
    if (!content_type.empty()) request += "Content-Type: " + content_type + "\r\n";
    if (method != "GET" || !body.empty()) {
      request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    }
    request += "\r\n";
    request += body;

    // A reused keep-alive connection may have been closed by the server
    // since the last request; retry exactly once on a fresh connection. A
    // send that stalls past SO_SNDTIMEO is a deadline miss, not a stale
    // socket — retrying would double-submit the request.
    if (!WriteAll(fd_, request)) {
      bool send_timed_out = errno == EAGAIN || errno == EWOULDBLOCK;
      Disconnect();
      if (send_timed_out) return TimeoutStatus(timeout_ms_, "while sending the request");
      if (fresh_connection) return Status::IoError("connection dropped while sending");
      continue;
    }

    std::string buffer;
    size_t head_end;
    while ((head_end = buffer.find("\r\n\r\n")) == std::string::npos) {
      FillResult fill = Fill(fd_, &buffer);
      if (fill == FillResult::kTimeout) {
        Disconnect();
        return TimeoutStatus(timeout_ms_, "waiting for response headers");
      }
      if (fill == FillResult::kClosed) {
        Disconnect();
        if (buffer.empty() && !fresh_connection) goto retry;  // stale keep-alive
        return Status::IoError("connection closed before a full response arrived");
      }
    }

    {
      HttpClientResponse response;
      std::string head = buffer.substr(0, head_end + 4);
      size_t line_end = head.find("\r\n");
      std::string status_line = head.substr(0, line_end);
      if (status_line.rfind("HTTP/1.", 0) != 0) {
        Disconnect();
        return Status::ParseError("malformed status line: " + status_line);
      }
      size_t space = status_line.find(' ');
      if (space == std::string::npos || space + 4 > status_line.size()) {
        Disconnect();
        return Status::ParseError("malformed status line: " + status_line);
      }
      response.status = std::atoi(status_line.c_str() + space + 1);
      if (response.status < 100 || response.status > 599) {
        Disconnect();
        return Status::ParseError("implausible status code in: " + status_line);
      }

      size_t pos = line_end + 2;
      while (pos + 2 <= head.size()) {
        size_t end = head.find("\r\n", pos);
        if (end == pos) break;
        std::string line = head.substr(pos, end - pos);
        size_t colon = line.find(':');
        if (colon == std::string::npos) {
          Disconnect();
          return Status::ParseError("malformed response header: " + line);
        }
        response.headers.emplace_back(Lowercase(Trim(line.substr(0, colon))),
                                      Trim(line.substr(colon + 1)));
        pos = end + 2;
      }

      buffer.erase(0, head_end + 4);
      const std::string* te = response.FindHeader("transfer-encoding");
      if (te != nullptr) {
        // Streamed responses arrive chunked; the decoded bytes are the body.
        if (Lowercase(*te) != "chunked") {
          Disconnect();
          return Status::ParseError("unsupported Transfer-Encoding: " + *te);
        }
        for (;;) {
          size_t size_end;
          while ((size_end = buffer.find("\r\n")) == std::string::npos) {
            FillResult fill = Fill(fd_, &buffer);
            if (fill != FillResult::kData) {
              Disconnect();
              if (fill == FillResult::kTimeout) return TimeoutStatus(timeout_ms_, "mid-body");
              return Status::IoError("connection closed mid-body");
            }
          }
          std::string size_line = buffer.substr(0, size_end);
          size_t semicolon = size_line.find(';');  // chunk extensions: ignored
          if (semicolon != std::string::npos) size_line.erase(semicolon);
          char* end = nullptr;
          errno = 0;
          unsigned long long size = std::strtoull(size_line.c_str(), &end, 16);
          if (end == size_line.c_str() || errno == ERANGE) {
            Disconnect();
            return Status::ParseError("malformed chunk size: " + size_line);
          }
          buffer.erase(0, size_end + 2);
          while (buffer.size() < size + 2) {
            FillResult fill = Fill(fd_, &buffer);
            if (fill != FillResult::kData) {
              Disconnect();
              if (fill == FillResult::kTimeout) return TimeoutStatus(timeout_ms_, "mid-body");
              return Status::IoError("connection closed mid-body");
            }
          }
          if (buffer.compare(size, 2, "\r\n") != 0) {
            Disconnect();
            return Status::ParseError(size == 0 ? "unexpected chunked trailer"
                                                : "chunk is missing its CRLF terminator");
          }
          if (size == 0) {
            buffer.erase(0, 2);
            break;
          }
          response.body.append(buffer, 0, static_cast<size_t>(size));
          buffer.erase(0, static_cast<size_t>(size) + 2);
        }
        // Anything left over would be a pipelined response we never asked
        // for; drop the connection in that case to stay in lockstep.
        if (!buffer.empty()) Disconnect();
      } else {
        const std::string* length_header = response.FindHeader("content-length");
        if (length_header == nullptr) {
          Disconnect();
          return Status::ParseError("response has no Content-Length");
        }
        size_t length =
            static_cast<size_t>(std::strtoull(length_header->c_str(), nullptr, 10));
        while (buffer.size() < length) {
          FillResult fill = Fill(fd_, &buffer);
          if (fill != FillResult::kData) {
            Disconnect();
            if (fill == FillResult::kTimeout) return TimeoutStatus(timeout_ms_, "mid-body");
            return Status::IoError("connection closed mid-body");
          }
        }
        response.body = buffer.substr(0, length);
        // Anything after the body would be a pipelined response we never
        // asked for; drop the connection in that case to stay in lockstep.
        if (buffer.size() != length) Disconnect();
      }

      const std::string* connection = response.FindHeader("connection");
      if (connection != nullptr && Lowercase(*connection) == "close") Disconnect();
      return response;
    }

  retry:
    continue;
  }
  return Status::IoError("request failed after reconnect");
}

Result<std::string> HttpClient::SendRaw(const std::string& bytes) {
  Disconnect();  // always a fresh connection: raw bytes assume clean state
  REPTILE_RETURN_IF_ERROR(Connect());
  if (!WriteAll(fd_, bytes)) {
    Disconnect();
    return Status::IoError("connection dropped while sending");
  }
  ::shutdown(fd_, SHUT_WR);  // half-close: the server sees EOF after our bytes
  std::string out;
  FillResult fill;
  while ((fill = Fill(fd_, &out)) == FillResult::kData) {
  }
  Disconnect();
  if (fill == FillResult::kTimeout) return TimeoutStatus(timeout_ms_, "draining the reply");
  return out;
}

}  // namespace reptile
