// Strict JSON for the server boundary: a recursive-descent value parser with
// byte-offset error messages, plus the escape/number helpers shared with the
// hand-rolled ToJson writers in api/response.cpp.
//
// Scope (deliberately small, zero dependencies):
//  * Parsing is strict RFC 8259 — objects, arrays, strings with the full
//    escape set (\uXXXX including surrogate pairs, decoded to UTF-8),
//    numbers, true/false/null. No comments, no trailing commas, no NaN /
//    Infinity literals. Any violation is a kParseError naming the byte
//    offset, so a client can locate the defect in its request body.
//  * Numbers are doubles (like JavaScript); integers above 2^53 lose
//    precision. IsInteger()/IntValue() are provided for the option fields
//    that must be whole numbers.
//  * Objects preserve insertion order (they are not maps): WriteJson of a
//    parsed value reproduces the member order of the input, which is what
//    makes parser <-> writer round-trip tests byte-exact.
//
// The escaping/number-formatting conventions are shared with the api/
// writers via common/json_util.h (JsonEscape / JsonQuote / JsonNumber).

#ifndef REPTILE_SERVER_JSON_H_
#define REPTILE_SERVER_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "api/status.h"
#include "common/json_util.h"

namespace reptile {

/// One parsed JSON value (a tree). Accessors abort on kind mismatch
/// (REPTILE_CHECK-style programmer error); request-mapping code checks
/// kind() first and reports wrong-typed fields as kInvalidArgument.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double value);
  static JsonValue String(std::string value);
  static JsonValue Array();
  static JsonValue Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Human-readable kind name ("string", "object", ...) for error messages.
  const char* KindName() const;
  static const char* KindName(Kind kind);

  bool bool_value() const;
  double number_value() const;
  const std::string& string_value() const;

  /// True when this is a number with an integral value that fits an int64.
  bool IsInteger() const;
  int64_t IntValue() const;

  const std::vector<JsonValue>& array_items() const;
  std::vector<JsonValue>& mutable_array_items();

  /// Object members in insertion order (duplicate keys are a parse error, so
  /// every key occurs once).
  const std::vector<std::pair<std::string, JsonValue>>& object_items() const;
  std::vector<std::pair<std::string, JsonValue>>& mutable_object_items();

  /// Member lookup; nullptr when absent (or when this is not an object).
  const JsonValue* Find(std::string_view key) const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses exactly one JSON value spanning all of `text` (trailing whitespace
/// allowed, trailing content not). Every failure is a kParseError whose
/// message starts with the 0-based byte offset, e.g.
/// "byte 17: expected ':' after object key".
Result<JsonValue> ParseJson(std::string_view text);

/// Compact serialization (no whitespace), member order preserved, strings
/// escaped with JsonEscape and numbers rendered with JsonNumber — the same
/// conventions as the api/ ToJson writers.
std::string WriteJson(const JsonValue& value);

}  // namespace reptile

#endif  // REPTILE_SERVER_JSON_H_
