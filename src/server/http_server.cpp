#include "server/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/check.h"
#include "net/http_codec.h"
#include "net/net_util.h"
#include "net/token_bucket.h"
#include "parallel/thread_pool.h"

namespace reptile {

namespace {

using net_internal::WriteAll;

// Buffered reader over a connection fd: ReadRequestHead/ReadBody consume from
// an internal buffer so bytes of a pipelined next request are never lost.
class ConnectionReader {
 public:
  explicit ConnectionReader(int fd) : fd_(fd) {}

  /// Reads until the blank line ending the header section, appending to
  /// `head` (terminator included). Returns false on EOF/error/cap.
  enum class HeadResult { kOk, kClosed, kTooLarge, kTimeout };
  HeadResult ReadRequestHead(std::string* head, size_t max_bytes) {
    size_t scanned = 0;  // first index of buffer_ not yet scanned for \r\n\r\n
    for (;;) {
      size_t pos = buffer_.find("\r\n\r\n", scanned >= 3 ? scanned - 3 : 0);
      if (pos != std::string::npos) {
        if (pos + 4 > max_bytes) return HeadResult::kTooLarge;
        head->assign(buffer_, 0, pos + 4);
        buffer_.erase(0, pos + 4);
        return HeadResult::kOk;
      }
      if (buffer_.size() > max_bytes) return HeadResult::kTooLarge;
      scanned = buffer_.size();
      switch (Fill()) {
        case FillResult::kData:
          break;
        case FillResult::kClosed:
          return HeadResult::kClosed;
        case FillResult::kTimeout:
          return HeadResult::kTimeout;
      }
    }
  }

  /// Reads exactly `length` body bytes into `body`. False on EOF/error.
  bool ReadBody(std::string* body, size_t length) {
    while (buffer_.size() < length) {
      if (Fill() != FillResult::kData) return false;
    }
    body->assign(buffer_, 0, length);
    buffer_.erase(0, length);
    return true;
  }

  /// Moves up to `max_bytes` of already-available body bytes into `chunk`
  /// (reading from the socket only when the buffer is empty). False on
  /// EOF/error/timeout. Lets a streamed upload flow through a fixed-size
  /// window instead of a body-sized buffer.
  bool ReadBodyChunk(std::string* chunk, size_t max_bytes) {
    if (buffer_.empty() && Fill() != FillResult::kData) return false;
    size_t take = buffer_.size() < max_bytes ? buffer_.size() : max_bytes;
    chunk->assign(buffer_, 0, take);
    buffer_.erase(0, take);
    return true;
  }

  bool has_buffered_bytes() const { return !buffer_.empty(); }

 private:
  enum class FillResult { kData, kClosed, kTimeout };
  FillResult Fill() {
    char chunk[16 * 1024];
    ssize_t n;
    do {
      n = ::recv(fd_, chunk, sizeof(chunk), 0);
    } while (n < 0 && errno == EINTR);
    if (n > 0) {
      buffer_.append(chunk, static_cast<size_t>(n));
      return FillResult::kData;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return FillResult::kTimeout;  // SO_RCVTIMEO expired (idle keep-alive)
    }
    return FillResult::kClosed;  // orderly EOF or hard error: drop either way
  }

  int fd_;
  std::string buffer_;
};

// Writes a buffered response (head + body in one send). Streamed responses
// go through WriteStreamedResponse below.
bool WriteResponse(int fd, const HttpResponse& response, bool keep_alive) {
  std::string out = SerializeResponseHead(response, keep_alive, /*chunked=*/false);
  out += response.body;
  return WriteAll(fd, out);
}

// Drains a `body_stream` response to the wire chunk by chunk — the full body
// never exists in one buffer. `chunked` is false for HTTP/1.0 peers, which
// cannot parse chunked framing: their bodies are accumulated and sent with
// Content-Length (identical bytes, different framing).
bool WriteStreamedResponse(int fd, HttpResponse& response, bool keep_alive,
                           bool chunked) {
  if (!chunked) {
    std::string piece;
    while (response.body_stream(&piece)) {
      response.body += piece;
      piece.clear();
    }
    response.body_stream = nullptr;
    return WriteResponse(fd, response, keep_alive);
  }
  if (!WriteAll(fd, SerializeResponseHead(response, keep_alive, /*chunked=*/true))) {
    return false;
  }
  std::string piece;
  std::string wire;
  while (response.body_stream(&piece)) {
    wire.clear();
    AppendHttpChunk(&wire, piece);
    piece.clear();
    if (!wire.empty() && !WriteAll(fd, wire)) return false;
  }
  return WriteAll(fd, kHttpLastChunk);
}

// Writes a framing-error response on a connection that is about to close
// while the peer may still be sending (e.g. a 413 for a body we refused to
// read). close() with unread bytes queued sends an RST that can destroy the
// response before the client reads it, so half-close and drain what the
// peer has in flight before the caller closes the fd — a lingering close.
// The drain is bounded in bytes AND by a wall-clock deadline: a per-recv
// SO_RCVTIMEO alone would let a client trickling one byte per interval pin
// this worker indefinitely.
void WriteErrorAndDrain(int fd, const HttpResponse& response) {
  if (!WriteResponse(fd, response, /*keep_alive=*/false)) return;
  ::shutdown(fd, SHUT_WR);
  timeval timeout{};
  timeout.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  char sink[16 * 1024];
  size_t drained = 0;
  constexpr size_t kMaxDrainBytes = 16 * 1024 * 1024;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (drained < kMaxDrainBytes && std::chrono::steady_clock::now() < deadline) {
    ssize_t n = ::recv(fd, sink, sizeof(sink), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF, error, or timeout: the peer saw our FIN
    drained += static_cast<size_t>(n);
  }
}

}  // namespace

HttpServer::HttpServer(HttpServerOptions options, HttpHandler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {
  REPTILE_CHECK(handler_ != nullptr);
  if (options_.rate_limit_rps > 0.0) {
    limiter_ = std::make_unique<TokenBucket>(options_.rate_limit_rps,
                                             options_.rate_limit_burst);
  }
  if (options_.connection_pool != nullptr) {
    pool_ = options_.connection_pool;
  } else {
    int threads = options_.num_threads < 1 ? 1 : options_.num_threads;
    owned_pool_ = std::make_unique<ThreadPool>(threads);
    pool_ = owned_pool_.get();
  }
}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  REPTILE_CHECK(!started_.load()) << "HttpServer::Start called twice";
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket(): ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address '" + options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::IoError("bind(" + options_.bind_address + ":" +
                                   std::to_string(options_.port) +
                                   "): " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 128) != 0) {
    Status status = Status::IoError(std::string("listen(): ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    Status status = Status::IoError(std::string("getsockname(): ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  port_ = static_cast<int>(ntohs(bound.sin_port));

  started_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void HttpServer::Stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mu_);  // serialize concurrent Stop()s
  if (!started_.load()) return;
  if (!stopping_.exchange(true)) {
    // Break the blocking accept(); the loop sees stopping_ and returns.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Half-close live connections (read side only): a task blocked waiting
    // for the next keep-alive request sees EOF and exits, while a task
    // mid-handler can still write its in-flight response before closing —
    // stopping_ makes that response `Connection: close`.
    std::unique_lock<std::mutex> lock(mu_);
    for (int fd : open_connections_) ::shutdown(fd, SHUT_RD);
    connections_done_.wait(lock, [this] { return active_connections_ == 0; });
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // started_ stays true: a stopped server cannot be restarted (Start()'s
  // "call once" CHECK enforces it; the old accept loop is gone for good).
}

void HttpServer::AcceptLoop() {
  for (;;) {
    int fd;
    do {
      fd = ::accept(listen_fd_, nullptr, nullptr);
    } while (fd < 0 && errno == EINTR);
    if (stopping_.load()) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) {
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS || errno == ENOMEM) {
        // Resource pressure: back off instead of spinning a core against
        // the very handlers that must finish to free descriptors.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      if (errno == EBADF || errno == EINVAL) return;  // listen socket is gone
      // Anything else (ECONNABORTED, EPROTO, ...) concerns only the one
      // aborted connection — the listener is fine, keep accepting.
      continue;
    }
    connections_accepted_.fetch_add(1);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_.load()) {
        ::close(fd);
        continue;
      }
      open_connections_.insert(fd);
      ++active_connections_;
    }
    const auto accepted_at = std::chrono::steady_clock::now();
    pool_->Submit([this, fd, accepted_at] {
      // Queue-deadline shedding: with every worker busy, a connection sits
      // in the pool's FIFO between accept and this task. Past the deadline
      // the client is better served by a fast 503 (and a retry elsewhere)
      // than by a response that arrives after it stopped caring.
      double waited_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - accepted_at)
                             .count();
      if (options_.queue_deadline_ms > 0 && !stopping_.load() &&
          waited_ms > options_.queue_deadline_ms) {
        requests_shed_.fetch_add(1);
        WriteErrorAndDrain(fd, QueueDeadlineError(waited_ms, options_.queue_deadline_ms));
      } else {
        HandleConnection(fd);
      }
      std::lock_guard<std::mutex> lock(mu_);
      open_connections_.erase(fd);
      ::close(fd);
      if (--active_connections_ == 0) connections_done_.notify_all();
    });
  }
}

std::string HttpServer::StatsJson() const {
  size_t open;
  {
    std::lock_guard<std::mutex> lock(mu_);
    open = open_connections_.size();
  }
  std::string out = "{\"open_connections\":" + std::to_string(open);
  out += ",\"connections_accepted\":" + std::to_string(connections_accepted_.load());
  out += ",\"requests_rate_limited\":" + std::to_string(requests_rate_limited_.load());
  out += ",\"requests_shed\":" + std::to_string(requests_shed_.load());
  out += "}";
  return out;
}

void HttpServer::HandleConnection(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (options_.idle_timeout_seconds > 0) {
    timeval timeout{};
    timeout.tv_sec = options_.idle_timeout_seconds;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  }

  ConnectionReader reader(fd);
  int64_t responses_sent = 0;
  while (!stopping_.load()) {
    std::string head;
    switch (reader.ReadRequestHead(&head, options_.max_header_bytes)) {
      case ConnectionReader::HeadResult::kOk:
        break;
      case ConnectionReader::HeadResult::kClosed:
        return;  // peer closed between requests (or mid-head): nothing to say
      case ConnectionReader::HeadResult::kTimeout:
        if (reader.has_buffered_bytes()) {
          WriteResponse(fd, HttpFramingError(408, "timed out reading the request"), false);
        }
        return;
      case ConnectionReader::HeadResult::kTooLarge:
        WriteErrorAndDrain(fd, HttpFramingError(431, "header section exceeds " +
                                                         std::to_string(options_.max_header_bytes) +
                                                         " bytes"));
        return;
    }

    HttpRequest request;
    HttpResponse framing_error;
    if (!ParseHttpRequestHead(head, &request, &framing_error)) {
      WriteErrorAndDrain(fd, framing_error);
      return;
    }
    size_t content_length = 0;
    if (!ValidateRequestFraming(request, &content_length, &framing_error)) {
      WriteErrorAndDrain(fd, framing_error);
      return;
    }

    bool keep_alive = RequestKeepsAlive(request);
    if (stopping_.load()) keep_alive = false;
    // The response about to be written is this connection's Nth: at the
    // limit it must carry "Connection: close", so decide before serializing.
    ++responses_sent;
    if (options_.max_requests_per_connection > 0 &&
        responses_sent >= options_.max_requests_per_connection) {
      keep_alive = false;
    }

    HttpResponse response;
    bool handled_by_sink = false;
    if (options_.stream_factory) {
      if (std::unique_ptr<HttpBodySink> sink = options_.stream_factory(request)) {
        // Streamed upload: feed the declared body through a fixed-size
        // window. Any early exit (abort, oversize) closes the connection —
        // the stream position is unrecoverable mid-body.
        handled_by_sink = true;
        keep_alive = false;
        if (content_length > options_.max_stream_body_bytes) {
          WriteErrorAndDrain(
              fd, BodyTooLargeError(content_length, options_.max_stream_body_bytes));
          return;
        }
        size_t remaining = content_length;
        bool aborted = false;
        std::string chunk;
        while (remaining > 0) {
          if (!reader.ReadBodyChunk(&chunk, remaining)) return;  // peer vanished
          remaining -= chunk.size();
          if (!sink->Append(chunk)) {
            aborted = true;
            break;
          }
        }
        response = sink->Finish(!aborted);
        if (aborted) {
          WriteErrorAndDrain(fd, response);
          return;
        }
      }
    }
    if (!handled_by_sink) {
      if (content_length > options_.max_body_bytes) {
        WriteErrorAndDrain(fd, BodyTooLargeError(content_length, options_.max_body_bytes));
        return;
      }
      if (content_length > 0 && !reader.ReadBody(&request.body, content_length)) {
        return;  // peer vanished mid-body
      }

      double retry_after = 0.0;
      if (limiter_ != nullptr && request.path != "/healthz" &&
          request.path != "/metricsz" && !limiter_->TryAcquire(&retry_after)) {
        // Refused only after the body is consumed, so the connection stays
        // in framing sync and keep-alive survives — a limited client should
        // back off and retry, not pay a reconnect on top.
        requests_rate_limited_.fetch_add(1);
        response = RateLimitedError(retry_after);
      } else {
        try {
          response = handler_(request);
        } catch (const std::exception& e) {
          response = HttpFramingError(500, std::string("unhandled exception: ") + e.what());
          keep_alive = false;
        } catch (...) {
          response = HttpFramingError(500, "unhandled exception");
          keep_alive = false;
        }
      }
    }
    if (response.body_stream) {
      if (!WriteStreamedResponse(fd, response, keep_alive,
                                 /*chunked=*/request.http_version == "HTTP/1.1")) {
        return;
      }
    } else if (!WriteResponse(fd, response, keep_alive)) {
      return;
    }
    if (!keep_alive) return;
  }
}

}  // namespace reptile
