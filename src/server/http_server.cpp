#include "server/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/check.h"
#include "parallel/thread_pool.h"
#include "server/json.h"
#include "server/net_util.h"

namespace reptile {

const std::string* HttpRequest::FindHeader(const std::string& lowercase_name) const {
  for (const auto& [name, value] : headers) {
    if (name == lowercase_name) return &value;
  }
  return nullptr;
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 201:
      return "Created";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 409:
      return "Conflict";
    case 413:
      return "Payload Too Large";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    default:
      return "Unknown";
  }
}

namespace {

using net_internal::Lowercase;
using net_internal::Trim;
using net_internal::WriteAll;

// Buffered reader over a connection fd: ReadRequestHead/ReadBody consume from
// an internal buffer so bytes of a pipelined next request are never lost.
class ConnectionReader {
 public:
  explicit ConnectionReader(int fd) : fd_(fd) {}

  /// Reads until the blank line ending the header section, appending to
  /// `head` (terminator included). Returns false on EOF/error/cap.
  enum class HeadResult { kOk, kClosed, kTooLarge, kTimeout };
  HeadResult ReadRequestHead(std::string* head, size_t max_bytes) {
    size_t scanned = 0;  // first index of buffer_ not yet scanned for \r\n\r\n
    for (;;) {
      size_t pos = buffer_.find("\r\n\r\n", scanned >= 3 ? scanned - 3 : 0);
      if (pos != std::string::npos) {
        if (pos + 4 > max_bytes) return HeadResult::kTooLarge;
        head->assign(buffer_, 0, pos + 4);
        buffer_.erase(0, pos + 4);
        return HeadResult::kOk;
      }
      if (buffer_.size() > max_bytes) return HeadResult::kTooLarge;
      scanned = buffer_.size();
      switch (Fill()) {
        case FillResult::kData:
          break;
        case FillResult::kClosed:
          return HeadResult::kClosed;
        case FillResult::kTimeout:
          return HeadResult::kTimeout;
      }
    }
  }

  /// Reads exactly `length` body bytes into `body`. False on EOF/error.
  bool ReadBody(std::string* body, size_t length) {
    while (buffer_.size() < length) {
      if (Fill() != FillResult::kData) return false;
    }
    body->assign(buffer_, 0, length);
    buffer_.erase(0, length);
    return true;
  }

  bool has_buffered_bytes() const { return !buffer_.empty(); }

 private:
  enum class FillResult { kData, kClosed, kTimeout };
  FillResult Fill() {
    char chunk[16 * 1024];
    ssize_t n;
    do {
      n = ::recv(fd_, chunk, sizeof(chunk), 0);
    } while (n < 0 && errno == EINTR);
    if (n > 0) {
      buffer_.append(chunk, static_cast<size_t>(n));
      return FillResult::kData;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return FillResult::kTimeout;  // SO_RCVTIMEO expired (idle keep-alive)
    }
    return FillResult::kClosed;  // orderly EOF or hard error: drop either way
  }

  int fd_;
  std::string buffer_;
};

bool WriteResponse(int fd, const HttpResponse& response, bool keep_alive) {
  std::string out;
  out.reserve(response.body.size() + 256);
  out += "HTTP/1.1 " + std::to_string(response.status) + " " +
         HttpReasonPhrase(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  for (const auto& [name, value] : response.extra_headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "\r\n";
  out += response.body;
  return WriteAll(fd, out);
}

// Writes a framing-error response on a connection that is about to close
// while the peer may still be sending (e.g. a 413 for a body we refused to
// read). close() with unread bytes queued sends an RST that can destroy the
// response before the client reads it, so half-close and drain what the
// peer has in flight before the caller closes the fd — a lingering close.
// The drain is bounded in bytes AND by a wall-clock deadline: a per-recv
// SO_RCVTIMEO alone would let a client trickling one byte per interval pin
// this worker indefinitely.
void WriteErrorAndDrain(int fd, const HttpResponse& response) {
  if (!WriteResponse(fd, response, /*keep_alive=*/false)) return;
  ::shutdown(fd, SHUT_WR);
  timeval timeout{};
  timeout.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  char sink[16 * 1024];
  size_t drained = 0;
  constexpr size_t kMaxDrainBytes = 16 * 1024 * 1024;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (drained < kMaxDrainBytes && std::chrono::steady_clock::now() < deadline) {
    ssize_t n = ::recv(fd, sink, sizeof(sink), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF, error, or timeout: the peer saw our FIN
    drained += static_cast<size_t>(n);
  }
}

HttpResponse FramingError(int status, const std::string& message) {
  return HttpResponse::Json(
      status, "{\"error\":{\"code\":\"" + std::string(HttpReasonPhrase(status)) +
                  "\",\"http\":" + std::to_string(status) +
                  ",\"message\":" + JsonQuote(message) + "}}");
}

// Parses the head (request line + headers). Returns a non-OK framing status
// via `error` (the response to send before closing) on malformed input.
bool ParseRequestHead(const std::string& head, HttpRequest* request, HttpResponse* error) {
  size_t line_end = head.find("\r\n");
  REPTILE_CHECK(line_end != std::string::npos);  // head always ends in CRLFCRLF
  const std::string request_line = head.substr(0, line_end);
  size_t method_end = request_line.find(' ');
  size_t target_end =
      method_end == std::string::npos ? std::string::npos : request_line.find(' ', method_end + 1);
  if (method_end == std::string::npos || target_end == std::string::npos ||
      request_line.find(' ', target_end + 1) != std::string::npos) {
    *error = FramingError(400, "malformed request line");
    return false;
  }
  request->method = request_line.substr(0, method_end);
  request->target = request_line.substr(method_end + 1, target_end - method_end - 1);
  request->http_version = request_line.substr(target_end + 1);
  if (request->method.empty() || request->target.empty() ||
      (request->http_version != "HTTP/1.1" && request->http_version != "HTTP/1.0")) {
    *error = FramingError(400, "malformed request line");
    return false;
  }
  size_t query_pos = request->target.find('?');
  request->path = request->target.substr(0, query_pos);
  request->query =
      query_pos == std::string::npos ? std::string() : request->target.substr(query_pos + 1);

  size_t pos = line_end + 2;
  while (pos + 2 <= head.size()) {
    size_t end = head.find("\r\n", pos);
    REPTILE_CHECK(end != std::string::npos);
    if (end == pos) break;  // blank line: end of headers
    std::string line = head.substr(pos, end - pos);
    // RFC 9112 §5: obsolete line folding (a field line starting with
    // whitespace) and whitespace between the field name and the colon MUST
    // be rejected — a lenient reading here while a front proxy reads
    // strictly is a request-smuggling desync (e.g. "Content-Length : 4").
    if (line[0] == ' ' || line[0] == '\t') {
      *error = FramingError(400, "obsolete header line folding is not supported");
      return false;
    }
    size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) {
      *error = FramingError(400, "malformed header line");
      return false;
    }
    std::string name = line.substr(0, colon);
    if (name.find_first_of(" \t") != std::string::npos) {
      *error = FramingError(400, "whitespace in a header field name");
      return false;
    }
    request->headers.emplace_back(Lowercase(std::move(name)), Trim(line.substr(colon + 1)));
    pos = end + 2;
  }
  return true;
}

}  // namespace

HttpServer::HttpServer(HttpServerOptions options, HttpHandler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {
  REPTILE_CHECK(handler_ != nullptr);
  if (options_.connection_pool != nullptr) {
    pool_ = options_.connection_pool;
  } else {
    int threads = options_.num_threads < 1 ? 1 : options_.num_threads;
    owned_pool_ = std::make_unique<ThreadPool>(threads);
    pool_ = owned_pool_.get();
  }
}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  REPTILE_CHECK(!started_.load()) << "HttpServer::Start called twice";
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket(): ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address '" + options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::IoError("bind(" + options_.bind_address + ":" +
                                   std::to_string(options_.port) +
                                   "): " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 128) != 0) {
    Status status = Status::IoError(std::string("listen(): ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    Status status = Status::IoError(std::string("getsockname(): ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  port_ = static_cast<int>(ntohs(bound.sin_port));

  started_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void HttpServer::Stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mu_);  // serialize concurrent Stop()s
  if (!started_.load()) return;
  if (!stopping_.exchange(true)) {
    // Break the blocking accept(); the loop sees stopping_ and returns.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Half-close live connections (read side only): a task blocked waiting
    // for the next keep-alive request sees EOF and exits, while a task
    // mid-handler can still write its in-flight response before closing —
    // stopping_ makes that response `Connection: close`.
    std::unique_lock<std::mutex> lock(mu_);
    for (int fd : open_connections_) ::shutdown(fd, SHUT_RD);
    connections_done_.wait(lock, [this] { return active_connections_ == 0; });
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // started_ stays true: a stopped server cannot be restarted (Start()'s
  // "call once" CHECK enforces it; the old accept loop is gone for good).
}

void HttpServer::AcceptLoop() {
  for (;;) {
    int fd;
    do {
      fd = ::accept(listen_fd_, nullptr, nullptr);
    } while (fd < 0 && errno == EINTR);
    if (stopping_.load()) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) {
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS || errno == ENOMEM) {
        // Resource pressure: back off instead of spinning a core against
        // the very handlers that must finish to free descriptors.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      if (errno == EBADF || errno == EINVAL) return;  // listen socket is gone
      // Anything else (ECONNABORTED, EPROTO, ...) concerns only the one
      // aborted connection — the listener is fine, keep accepting.
      continue;
    }
    connections_accepted_.fetch_add(1);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_.load()) {
        ::close(fd);
        continue;
      }
      open_connections_.insert(fd);
      ++active_connections_;
    }
    pool_->Submit([this, fd] {
      HandleConnection(fd);
      std::lock_guard<std::mutex> lock(mu_);
      open_connections_.erase(fd);
      ::close(fd);
      if (--active_connections_ == 0) connections_done_.notify_all();
    });
  }
}

void HttpServer::HandleConnection(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (options_.idle_timeout_seconds > 0) {
    timeval timeout{};
    timeout.tv_sec = options_.idle_timeout_seconds;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  }

  ConnectionReader reader(fd);
  while (!stopping_.load()) {
    std::string head;
    switch (reader.ReadRequestHead(&head, options_.max_header_bytes)) {
      case ConnectionReader::HeadResult::kOk:
        break;
      case ConnectionReader::HeadResult::kClosed:
        return;  // peer closed between requests (or mid-head): nothing to say
      case ConnectionReader::HeadResult::kTimeout:
        if (reader.has_buffered_bytes()) {
          WriteResponse(fd, FramingError(408, "timed out reading the request"), false);
        }
        return;
      case ConnectionReader::HeadResult::kTooLarge:
        WriteErrorAndDrain(fd, FramingError(431, "header section exceeds " +
                                                     std::to_string(options_.max_header_bytes) +
                                                     " bytes"));
        return;
    }

    HttpRequest request;
    HttpResponse framing_error;
    if (!ParseRequestHead(head, &request, &framing_error)) {
      WriteErrorAndDrain(fd, framing_error);
      return;
    }
    if (request.FindHeader("transfer-encoding") != nullptr) {
      WriteErrorAndDrain(fd, FramingError(501, "transfer-encoding is not supported"));
      return;
    }
    // Exactly one Content-Length may appear: duplicates (even identical
    // ones) are the classic request-smuggling desync vector when a proxy in
    // front picks a different one than we do (RFC 9112 §6.3).
    int content_length_headers = 0;
    for (const auto& [name, value] : request.headers) {
      if (name == "content-length") ++content_length_headers;
    }
    if (content_length_headers > 1) {
      WriteErrorAndDrain(fd, FramingError(400, "multiple Content-Length headers"));
      return;
    }
    size_t content_length = 0;
    if (const std::string* header = request.FindHeader("content-length")) {
      // Digits only: strtoull would silently wrap "-1" to a huge unsigned
      // value, turning an invalid header into a bogus 413.
      if (header->empty() ||
          header->find_first_not_of("0123456789") != std::string::npos) {
        WriteErrorAndDrain(fd, FramingError(400, "malformed Content-Length"));
        return;
      }
      errno = 0;
      unsigned long long parsed = std::strtoull(header->c_str(), nullptr, 10);
      if (errno != 0) {  // ERANGE: larger than any plausible body
        WriteErrorAndDrain(fd, FramingError(400, "malformed Content-Length"));
        return;
      }
      content_length = static_cast<size_t>(parsed);
    }
    if (content_length > options_.max_body_bytes) {
      WriteErrorAndDrain(fd, FramingError(413, "request body of " +
                                                   std::to_string(content_length) +
                                                   " bytes exceeds the " +
                                                   std::to_string(options_.max_body_bytes) +
                                                   "-byte limit"));
      return;
    }
    if (content_length > 0 && !reader.ReadBody(&request.body, content_length)) {
      return;  // peer vanished mid-body
    }

    bool keep_alive = request.http_version == "HTTP/1.1";
    if (const std::string* connection = request.FindHeader("connection")) {
      std::string value = Lowercase(*connection);
      if (value == "close") keep_alive = false;
      if (value == "keep-alive") keep_alive = true;
    }
    if (stopping_.load()) keep_alive = false;

    HttpResponse response;
    try {
      response = handler_(request);
    } catch (const std::exception& e) {
      response = FramingError(500, std::string("unhandled exception: ") + e.what());
      keep_alive = false;
    } catch (...) {
      response = FramingError(500, "unhandled exception");
      keep_alive = false;
    }
    if (!WriteResponse(fd, response, keep_alive)) return;
    if (!keep_alive) return;
  }
}

}  // namespace reptile
