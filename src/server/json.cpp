#include "server/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <unordered_set>

#include "common/check.h"

namespace reptile {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::String(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

const char* JsonValue::KindName(Kind kind) {
  switch (kind) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return "boolean";
    case Kind::kNumber:
      return "number";
    case Kind::kString:
      return "string";
    case Kind::kArray:
      return "array";
    case Kind::kObject:
      return "object";
  }
  return "unknown";
}

const char* JsonValue::KindName() const { return KindName(kind_); }

bool JsonValue::bool_value() const {
  REPTILE_CHECK(is_bool());
  return bool_;
}

double JsonValue::number_value() const {
  REPTILE_CHECK(is_number());
  return number_;
}

const std::string& JsonValue::string_value() const {
  REPTILE_CHECK(is_string());
  return string_;
}

bool JsonValue::IsInteger() const {
  if (!is_number()) return false;
  if (!std::isfinite(number_)) return false;
  if (number_ != std::floor(number_)) return false;
  // Exact int64 range in doubles: -2^63 is representable and in range, but
  // 2^63 is one past INT64_MAX, so the upper bound must be strict — casting
  // a double equal to 2^63 to int64 is undefined behavior.
  return number_ >= -9223372036854775808.0 && number_ < 9223372036854775808.0;
}

int64_t JsonValue::IntValue() const {
  REPTILE_CHECK(IsInteger());
  return static_cast<int64_t>(number_);
}

const std::vector<JsonValue>& JsonValue::array_items() const {
  REPTILE_CHECK(is_array());
  return array_;
}

std::vector<JsonValue>& JsonValue::mutable_array_items() {
  REPTILE_CHECK(is_array());
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::object_items() const {
  REPTILE_CHECK(is_object());
  return object_;
}

std::vector<std::pair<std::string, JsonValue>>& JsonValue::mutable_object_items() {
  REPTILE_CHECK(is_object());
  return object_;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

// Nesting cap: recursive descent uses the C++ stack, so unbounded depth in a
// hostile request body would overflow it. 128 is far beyond any legitimate
// request of this API (which nests at most 4 levels).
constexpr int kMaxDepth = 128;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWhitespace();
    Result<JsonValue> value = ParseValue(0);
    if (!value.ok()) return value.status();
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error(pos_, "trailing content after the JSON value");
    }
    return value;
  }

 private:
  Status Error(size_t offset, const std::string& what) const {
    return Status::ParseError("byte " + std::to_string(offset) + ": " + what);
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd()) {
      char c = Peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        return;
      }
    }
  }

  // Consumes `literal` (e.g. "true") or reports an error at its start.
  Status ExpectLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Error(pos_, "invalid literal (expected '" + std::string(literal) + "')");
    }
    pos_ += literal.size();
    return Status::Ok();
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) {
      return Error(pos_, "nesting deeper than " + std::to_string(kMaxDepth) + " levels");
    }
    if (AtEnd()) return Error(pos_, "unexpected end of input (expected a value)");
    switch (Peek()) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"':
        return ParseString();
      case 't': {
        REPTILE_RETURN_IF_ERROR(ExpectLiteral("true"));
        return JsonValue::Bool(true);
      }
      case 'f': {
        REPTILE_RETURN_IF_ERROR(ExpectLiteral("false"));
        return JsonValue::Bool(false);
      }
      case 'n': {
        REPTILE_RETURN_IF_ERROR(ExpectLiteral("null"));
        return JsonValue::Null();
      }
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    ++pos_;  // consume '{'
    JsonValue object = JsonValue::Object();
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return object;
    }
    // Duplicate keys are detected with a side set, not object.Find(): a
    // linear scan per key would make a hostile many-keyed object O(n^2) —
    // minutes of CPU within the default body-size cap.
    std::unordered_set<std::string> seen_keys;
    for (;;) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') {
        return Error(pos_, "expected '\"' to begin an object key");
      }
      size_t key_offset = pos_;
      Result<JsonValue> key = ParseString();
      if (!key.ok()) return key.status();
      if (!seen_keys.insert(key->string_value()).second) {
        return Error(key_offset, "duplicate object key \"" + key->string_value() + "\"");
      }
      SkipWhitespace();
      if (AtEnd() || Peek() != ':') {
        return Error(pos_, "expected ':' after object key");
      }
      ++pos_;
      SkipWhitespace();
      Result<JsonValue> value = ParseValue(depth + 1);
      if (!value.ok()) return value.status();
      object.mutable_object_items().emplace_back(key->string_value(), std::move(*value));
      SkipWhitespace();
      if (AtEnd()) return Error(pos_, "unexpected end of input inside an object");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return object;
      }
      return Error(pos_, "expected ',' or '}' in an object");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    ++pos_;  // consume '['
    JsonValue array = JsonValue::Array();
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return array;
    }
    for (;;) {
      SkipWhitespace();
      Result<JsonValue> value = ParseValue(depth + 1);
      if (!value.ok()) return value.status();
      array.mutable_array_items().push_back(std::move(*value));
      SkipWhitespace();
      if (AtEnd()) return Error(pos_, "unexpected end of input inside an array");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return array;
      }
      return Error(pos_, "expected ',' or ']' in an array");
    }
  }

  // Appends `code_point` to `out` as UTF-8.
  static void AppendUtf8(std::string* out, uint32_t code_point) {
    if (code_point < 0x80) {
      out->push_back(static_cast<char>(code_point));
    } else if (code_point < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code_point >> 6)));
      out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    } else if (code_point < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code_point >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code_point >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code_point >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    }
  }

  // Parses the 4 hex digits of a \u escape; pos_ is just past the 'u'.
  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) {
      return Error(pos_, "unexpected end of input inside a \\u escape");
    }
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + static_cast<size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error(pos_ + static_cast<size_t>(i), "invalid hex digit in a \\u escape");
      }
    }
    pos_ += 4;
    return value;
  }

  Result<JsonValue> ParseString() {
    ++pos_;  // consume opening '"'
    std::string out;
    for (;;) {
      if (AtEnd()) return Error(pos_, "unterminated string");
      char c = Peek();
      if (c == '"') {
        ++pos_;
        return JsonValue::String(std::move(out));
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error(pos_, "unescaped control character in a string");
      }
      if (c != '\\') {
        out.push_back(c);
        ++pos_;
        continue;
      }
      size_t escape_offset = pos_;
      ++pos_;  // consume '\'
      if (AtEnd()) return Error(escape_offset, "unterminated escape sequence");
      char e = Peek();
      ++pos_;
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          Result<uint32_t> unit = ParseHex4();
          if (!unit.ok()) return unit.status();
          uint32_t code_point = *unit;
          if (code_point >= 0xD800 && code_point <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
              return Error(escape_offset, "high surrogate not followed by \\u low surrogate");
            }
            pos_ += 2;
            Result<uint32_t> low = ParseHex4();
            if (!low.ok()) return low.status();
            if (*low < 0xDC00 || *low > 0xDFFF) {
              return Error(escape_offset, "invalid low surrogate in a surrogate pair");
            }
            code_point = 0x10000 + ((code_point - 0xD800) << 10) + (*low - 0xDC00);
          } else if (code_point >= 0xDC00 && code_point <= 0xDFFF) {
            return Error(escape_offset, "unpaired low surrogate");
          }
          AppendUtf8(&out, code_point);
          break;
        }
        default:
          return Error(escape_offset, std::string("invalid escape '\\") + e + "'");
      }
    }
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (!AtEnd() && Peek() == '-') ++pos_;
    // Integer part: one digit, or a nonzero digit followed by digits (JSON
    // forbids leading zeros like 01).
    if (AtEnd() || Peek() < '0' || Peek() > '9') {
      return Error(start, "invalid character (expected a value)");
    }
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && Peek() >= '0' && Peek() <= '9') {
      return Error(start, "number has a leading zero");
    }
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Error(pos_, "expected a digit after the decimal point");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Error(pos_, "expected a digit in the exponent");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Error(start, "malformed number");  // unreachable given the scan above
    }
    return JsonValue::Number(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

void WriteValue(const JsonValue& value, std::string* out) {
  switch (value.kind()) {
    case JsonValue::Kind::kNull:
      *out += "null";
      return;
    case JsonValue::Kind::kBool:
      *out += value.bool_value() ? "true" : "false";
      return;
    case JsonValue::Kind::kNumber:
      *out += JsonNumber(value.number_value());
      return;
    case JsonValue::Kind::kString:
      *out += JsonQuote(value.string_value());
      return;
    case JsonValue::Kind::kArray: {
      *out += '[';
      const std::vector<JsonValue>& items = value.array_items();
      for (size_t i = 0; i < items.size(); ++i) {
        if (i > 0) *out += ',';
        WriteValue(items[i], out);
      }
      *out += ']';
      return;
    }
    case JsonValue::Kind::kObject: {
      *out += '{';
      const auto& members = value.object_items();
      for (size_t i = 0; i < members.size(); ++i) {
        if (i > 0) *out += ',';
        *out += JsonQuote(members[i].first);
        *out += ':';
        WriteValue(members[i].second, out);
      }
      *out += '}';
      return;
    }
  }
}

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) { return Parser(text).Parse(); }

std::string WriteJson(const JsonValue& value) {
  std::string out;
  WriteValue(value, &out);
  return out;
}

}  // namespace reptile
