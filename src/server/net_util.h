// Forwarding header: the helpers moved to net/net_util.h when the framing
// layer was factored out of the threaded server. Include that directly in
// new code.

#ifndef REPTILE_SERVER_NET_UTIL_H_
#define REPTILE_SERVER_NET_UTIL_H_

#include "net/net_util.h"  // IWYU pragma: export

#endif  // REPTILE_SERVER_NET_UTIL_H_
