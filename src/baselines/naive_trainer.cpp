#include "baselines/naive_trainer.h"

#include "common/check.h"
#include "fmatrix/cluster_ops.h"
#include "fmatrix/materialize.h"

namespace reptile {

std::vector<int64_t> ClusterBeginsOf(const FactorizedMatrix& fm) {
  std::vector<int64_t> begins;
  ClusterIterator it(fm);
  for (bool ok = it.Start(); ok; ok = it.Next()) {
    begins.push_back(it.row_begin());
  }
  begins.push_back(fm.num_rows());
  return begins;
}

MultiLevelModel TrainMultiLevelDense(const FactorizedMatrix& fm, const std::vector<double>& y,
                                     const std::vector<int>& z_cols,
                                     const MultiLevelOptions& options, Matrix* x_storage) {
  REPTILE_CHECK(x_storage != nullptr);
  *x_storage = MaterializeMatrix(fm);
  DenseEmBackend backend(x_storage, ClusterBeginsOf(fm), z_cols);
  return TrainMultiLevel(&backend, y, options);
}

}  // namespace reptile
