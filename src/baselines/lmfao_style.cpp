#include "baselines/lmfao_style.h"

#include "common/check.h"

namespace reptile {
namespace {

// Subtree leaf counts of one level, recomputed from the chain relations
// (parent arrays) with a fresh bottom-up pass — no reuse across queries.
std::vector<int64_t> SubtreeCounts(const FTree& tree, int level) {
  std::vector<int64_t> counts(tree.num_nodes(tree.depth() - 1), 1);
  for (int l = tree.depth() - 1; l > level; --l) {
    std::vector<int64_t> up(tree.num_nodes(l - 1), 0);
    const std::vector<int64_t>& parents = tree.level(l).parent;
    for (size_t node = 0; node < parents.size(); ++node) {
      up[static_cast<size_t>(parents[node])] += counts[node];
    }
    counts = std::move(up);
  }
  return counts;
}

}  // namespace

LmfaoStyleResult LmfaoStyleComputeAggregates(const FactorizedMatrix& fm) {
  LmfaoStyleResult result;
  int m = fm.num_cols();
  result.gram = Matrix(static_cast<size_t>(m), static_cast<size_t>(m));
  double n = static_cast<double>(fm.num_rows());

  // --- COUNT per attribute: one independent query each. ---
  for (int flat = 0; flat < fm.num_attrs(); ++flat) {
    AttrId attr = fm.FlatAttr(flat);
    const FTree& tree = fm.tree(attr.hierarchy);
    std::vector<int64_t> local = SubtreeCounts(tree, attr.level);
    int64_t suffix = fm.SuffixLeaves(attr.hierarchy);
    for (int64_t& c : local) c *= suffix;
    result.counts.push_back(std::move(local));
  }

  // --- Gram matrix: one independent query per cell. ---
  for (int i = 0; i < m; ++i) {
    const FeatureColumn& a = fm.column(i);
    REPTILE_CHECK(!a.is_multi) << "LMFAO baseline covers single-attribute features";
    for (int j = i; j < m; ++j) {
      const FeatureColumn& b = fm.column(j);
      double cell = 0.0;
      if (a.attr.hierarchy == b.attr.hierarchy) {
        const FTree& tree = fm.tree(a.attr.hierarchy);
        int la = a.attr.level;
        int lb = b.attr.level;
        const FeatureColumn* upper = &a;
        const FeatureColumn* lower = &b;
        if (la > lb) {
          std::swap(la, lb);
          std::swap(upper, lower);
        }
        // Per-query subtree counts (recomputed) and per-node ancestor walks
        // (no shared COF tables).
        std::vector<int64_t> counts = SubtreeCounts(tree, lb);
        double multiplier = n / static_cast<double>(tree.num_leaves());
        const FTree::Level& deep = tree.level(lb);
        double sum = 0.0;
        for (int64_t node = 0; node < deep.size(); ++node) {
          int64_t anc = tree.AncestorAt(lb, node, la);  // walks the chain
          sum += static_cast<double>(counts[static_cast<size_t>(node)]) *
                 upper->ValueForCode(tree.level(la).value[anc]) *
                 lower->ValueForCode(deep.value[node]);
        }
        cell = multiplier * sum;
      } else {
        // Cross-hierarchy: materialise the COF pair table (the cartesian
        // product Reptile never builds), then aggregate over it.
        const FTree& ta = fm.tree(a.attr.hierarchy);
        const FTree& tb = fm.tree(b.attr.hierarchy);
        std::vector<int64_t> ca = SubtreeCounts(ta, a.attr.level);
        std::vector<int64_t> cb = SubtreeCounts(tb, b.attr.level);
        int64_t na = ta.num_nodes(a.attr.level);
        int64_t nb = tb.num_nodes(b.attr.level);
        std::vector<double> cof(static_cast<size_t>(na * nb));
        double scale = n / (static_cast<double>(ta.num_leaves()) *
                            static_cast<double>(tb.num_leaves()));
        for (int64_t x = 0; x < na; ++x) {
          for (int64_t y = 0; y < nb; ++y) {
            cof[static_cast<size_t>(x * nb + y)] =
                scale * static_cast<double>(ca[static_cast<size_t>(x)]) *
                static_cast<double>(cb[static_cast<size_t>(y)]);
          }
        }
        result.materialized_cof_cells += na * nb;
        const FTree::Level& level_a = ta.level(a.attr.level);
        const FTree::Level& level_b = tb.level(b.attr.level);
        double sum = 0.0;
        for (int64_t x = 0; x < na; ++x) {
          double fa = a.ValueForCode(level_a.value[x]);
          for (int64_t y = 0; y < nb; ++y) {
            sum += cof[static_cast<size_t>(x * nb + y)] * fa *
                   b.ValueForCode(level_b.value[y]);
          }
        }
        cell = sum;
      }
      result.gram(static_cast<size_t>(i), static_cast<size_t>(j)) = cell;
      result.gram(static_cast<size_t>(j), static_cast<size_t>(i)) = cell;
    }
  }
  return result;
}

}  // namespace reptile
