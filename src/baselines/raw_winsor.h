// Raw baseline (paper Section 5.2.1): record-level bottom-up repair based on
// Winsorization [Lien & Balakrishnan 2005]. Each row's measure is clipped to
// the plausibility band [MEAN - STD, MEAN + STD] derived from the drill-down
// groups' statistics, i.e., the repair "drifts the group's values back"
// toward the cross-group norm (the paper's own phrasing); groups are then
// ranked by how well their clipping-based repair resolves the complaint.
//
// Because the repair only changes values, Raw cannot capture missing or
// duplicated records (Figure 11), and because the repair's impact scales
// with the group's row count, it confuses Missing+Decrease errors (the
// paper's explanation of Raw's failure there).

#ifndef REPTILE_BASELINES_RAW_WINSOR_H_
#define REPTILE_BASELINES_RAW_WINSOR_H_

#include <vector>

#include "core/complaint.h"
#include "core/ranker.h"
#include "data/group_by.h"
#include "data/table.h"

namespace reptile {

/// Ranks the groups of `table` (restricted to the complaint filter, grouped
/// by `key_columns`) by the complaint value after the group's rows are
/// winsorized to the cross-group band.
std::vector<ScoredGroup> RawWinsorRank(const Table& table, const std::vector<int>& key_columns,
                                       const Complaint& complaint);

}  // namespace reptile

#endif  // REPTILE_BASELINES_RAW_WINSOR_H_
