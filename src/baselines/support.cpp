#include "baselines/support.h"

#include <algorithm>

namespace reptile {

std::vector<ScoredGroup> SupportRank(const GroupByResult& siblings) {
  std::vector<ScoredGroup> scored;
  scored.reserve(siblings.num_groups());
  for (size_t g = 0; g < siblings.num_groups(); ++g) {
    ScoredGroup sg;
    sg.key = siblings.key_tuple(g);
    sg.observed = siblings.stats(g);
    sg.repaired = sg.observed;
    sg.repaired_complaint_value = sg.observed.count;
    sg.score = -sg.observed.count;
    scored.push_back(std::move(sg));
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const ScoredGroup& a, const ScoredGroup& b) { return a.score < b.score; });
  return scored;
}

}  // namespace reptile
