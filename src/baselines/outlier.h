// Outlier baseline (paper Section 5.2.3): uses the same model predictions as
// Reptile but ignores the complaint — it returns the group whose statistic
// most deviates from the model's expectation, regardless of direction. The
// ablation of Figure 12 shows why the complaint matters.

#ifndef REPTILE_BASELINES_OUTLIER_H_
#define REPTILE_BASELINES_OUTLIER_H_

#include <vector>

#include "agg/aggregates.h"
#include "core/ranker.h"
#include "data/group_by.h"

namespace reptile {

/// Ranks sibling groups by descending |observed - predicted| of the given
/// statistic. `predictions` is aligned with the sibling groups (as produced
/// by the engine's repair models).
std::vector<ScoredGroup> OutlierRank(const GroupByResult& siblings,
                                     const GroupPredictions& predictions, AggFn agg);

}  // namespace reptile

#endif  // REPTILE_BASELINES_OUTLIER_H_
