#include "baselines/raw_winsor.h"

#include <algorithm>

#include "common/check.h"

namespace reptile {

std::vector<ScoredGroup> RawWinsorRank(const Table& table, const std::vector<int>& key_columns,
                                       const Complaint& complaint) {
  REPTILE_CHECK_GE(complaint.measure_column, 0) << "Raw needs a measure column";
  GroupByResult siblings =
      GroupBy(table, key_columns, complaint.measure_column, complaint.filter);

  // Collect each group's raw measure values in one pass.
  std::vector<std::vector<double>> raw_values(siblings.num_groups());
  const std::vector<double>& measures = table.measure(complaint.measure_column);
  std::vector<int32_t> key(key_columns.size());
  for (size_t row = 0; row < table.num_rows(); ++row) {
    if (!complaint.filter.empty() && !table.Matches(complaint.filter, row)) continue;
    for (size_t k = 0; k < key_columns.size(); ++k) {
      key[k] = table.dim_codes(key_columns[k])[row];
    }
    std::optional<size_t> g = siblings.Find(key);
    REPTILE_CHECK(g.has_value());
    raw_values[*g].push_back(measures[row]);
  }

  Moments total;
  for (size_t g = 0; g < siblings.num_groups(); ++g) total.Add(siblings.stats(g));

  // Cross-group plausibility band: mean +- std of the drill-down groups'
  // means. Clipping into this band is the "drift the values back" repair.
  std::vector<double> group_means;
  group_means.reserve(siblings.num_groups());
  for (size_t g = 0; g < siblings.num_groups(); ++g) {
    group_means.push_back(siblings.stats(g).Mean());
  }
  Moments band;
  for (double m : group_means) band.Observe(m);
  double lo = band.Mean() - band.SampleStd();
  double hi = band.Mean() + band.SampleStd();

  std::vector<ScoredGroup> scored;
  scored.reserve(siblings.num_groups());
  for (size_t g = 0; g < siblings.num_groups(); ++g) {
    ScoredGroup sg;
    sg.key = siblings.key_tuple(g);
    sg.observed = siblings.stats(g);
    Moments repaired;
    for (double v : raw_values[g]) {
      repaired.Observe(std::clamp(v, lo, hi));
    }
    sg.repaired = repaired;
    Moments repaired_total = total;
    repaired_total.Subtract(sg.observed);
    repaired_total.Add(sg.repaired);
    sg.repaired_complaint_value = repaired_total.Value(complaint.agg);
    sg.score = complaint.Score(sg.repaired_complaint_value);
    scored.push_back(std::move(sg));
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const ScoredGroup& a, const ScoredGroup& b) { return a.score < b.score; });
  return scored;
}

}  // namespace reptile
