// Support baseline (paper Section 5.2.1): density-based ranking — the
// fraction of rows in a drill-down group, commonly used as a pruning
// criterion in explanation systems. Recommends the group with the largest
// COUNT; ignores the complaint and any auxiliary data.

#ifndef REPTILE_BASELINES_SUPPORT_H_
#define REPTILE_BASELINES_SUPPORT_H_

#include <vector>

#include "core/complaint.h"
#include "core/ranker.h"
#include "data/group_by.h"

namespace reptile {

/// Ranks sibling groups by descending support (row count). The reported
/// score is the negated support so that lower = better, matching the shared
/// ScoredGroup convention.
std::vector<ScoredGroup> SupportRank(const GroupByResult& siblings);

}  // namespace reptile

#endif  // REPTILE_BASELINES_SUPPORT_H_
