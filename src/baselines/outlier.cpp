#include "baselines/outlier.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "core/repair.h"

namespace reptile {

std::vector<ScoredGroup> OutlierRank(const GroupByResult& siblings,
                                     const GroupPredictions& predictions, AggFn agg) {
  REPTILE_CHECK_EQ(siblings.num_groups(), predictions.size());
  std::vector<ScoredGroup> scored;
  scored.reserve(siblings.num_groups());
  for (size_t g = 0; g < siblings.num_groups(); ++g) {
    ScoredGroup sg;
    sg.key = siblings.key_tuple(g);
    sg.observed = siblings.stats(g);
    sg.repaired = ApplyRepair(sg.observed, predictions[g]);
    double deviation = std::fabs(sg.observed.Value(agg) - sg.repaired.Value(agg));
    sg.repaired_complaint_value = sg.repaired.Value(agg);
    sg.score = -deviation;  // largest deviation first
    scored.push_back(std::move(sg));
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const ScoredGroup& a, const ScoredGroup& b) { return a.score < b.score; });
  return scored;
}

}  // namespace reptile
