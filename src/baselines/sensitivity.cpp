#include "baselines/sensitivity.h"

#include <algorithm>

namespace reptile {

std::vector<ScoredGroup> SensitivityRank(const GroupByResult& siblings,
                                         const Complaint& complaint) {
  Moments total;
  for (size_t g = 0; g < siblings.num_groups(); ++g) total.Add(siblings.stats(g));
  std::vector<ScoredGroup> scored;
  scored.reserve(siblings.num_groups());
  for (size_t g = 0; g < siblings.num_groups(); ++g) {
    ScoredGroup sg;
    sg.key = siblings.key_tuple(g);
    sg.observed = siblings.stats(g);
    // Deletion intervention: the repaired sketch is empty.
    sg.repaired = Moments();
    Moments remaining = total;
    remaining.Subtract(sg.observed);
    sg.repaired_complaint_value = remaining.Value(complaint.agg);
    sg.score = complaint.Score(sg.repaired_complaint_value);
    scored.push_back(std::move(sg));
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const ScoredGroup& a, const ScoredGroup& b) { return a.score < b.score; });
  return scored;
}

}  // namespace reptile
