// Sensitivity baseline (paper Section 5.2.1): Scorpion-style interventional
// deletion [Wu & Madden 2013]. Recommends the group which, after deleting all
// of its rows, best resolves the complaint. No auxiliary data, no model.

#ifndef REPTILE_BASELINES_SENSITIVITY_H_
#define REPTILE_BASELINES_SENSITIVITY_H_

#include <vector>

#include "core/complaint.h"
#include "core/ranker.h"
#include "data/group_by.h"

namespace reptile {

/// Ranks sibling groups by fcomp(G(V' \ {t})) — the complaint value after
/// deleting the group (ascending).
std::vector<ScoredGroup> SensitivityRank(const GroupByResult& siblings,
                                         const Complaint& complaint);

}  // namespace reptile

#endif  // REPTILE_BASELINES_SENSITIVITY_H_
