// LMFAO-style batch aggregation baseline (paper Section 5.1.2).
//
// LMFAO [Schleich & Olteanu 2020] computes batches of group-by aggregates
// over factorised joins, but (a) computes each aggregate query separately
// rather than sharing work across the batch, and (b) materialises the
// cross-hierarchy group-by (COF) outputs because it does not exploit the
// independence between hierarchies. This baseline reproduces both behaviours
// over the same chain-relation inputs Reptile uses, so Figure 8 measures
// exactly the two optimizations the paper credits for its speedup.

#ifndef REPTILE_BASELINES_LMFAO_STYLE_H_
#define REPTILE_BASELINES_LMFAO_STYLE_H_

#include <cstdint>
#include <vector>

#include "factor/frep.h"
#include "linalg/matrix.h"

namespace reptile {

/// Outputs of the batch: the global COUNT aggregate of every attribute and
/// the gram matrix over the feature columns.
struct LmfaoStyleResult {
  std::vector<std::vector<int64_t>> counts;  // [flat attr][node] global COUNT
  Matrix gram;
  // Bookkeeping so benchmarks can report the materialised COF volume.
  int64_t materialized_cof_cells = 0;
};

/// Computes COUNT for every attribute and the full gram matrix without
/// multi-query sharing: subtree counts are recomputed per aggregate, ancestor
/// chains are walked per pair, and cross-hierarchy COFs are materialised.
LmfaoStyleResult LmfaoStyleComputeAggregates(const FactorizedMatrix& fm);

}  // namespace reptile

#endif  // REPTILE_BASELINES_LMFAO_STYLE_H_
