// The Matlab/LAPACK-style baseline trainer (paper Section 5.1.4): fully
// materialises the feature matrix and runs the same EM over dense kernels.
// Reptile's factorised trainer produces identical estimates without ever
// materialising X.

#ifndef REPTILE_BASELINES_NAIVE_TRAINER_H_
#define REPTILE_BASELINES_NAIVE_TRAINER_H_

#include <vector>

#include "factor/frep.h"
#include "model/multilevel.h"

namespace reptile {

/// Cluster boundaries of the factorised matrix in row order (first row of
/// each cluster plus the sentinel n) — the input DenseEmBackend expects.
std::vector<int64_t> ClusterBeginsOf(const FactorizedMatrix& fm);

/// Materialises X from `fm` and fits the multi-level model densely.
/// `x_storage` receives the materialised matrix (kept alive for the backend)
/// so callers can reuse it for predictions.
MultiLevelModel TrainMultiLevelDense(const FactorizedMatrix& fm, const std::vector<double>& y,
                                     const std::vector<int>& z_cols,
                                     const MultiLevelOptions& options, Matrix* x_storage);

}  // namespace reptile

#endif  // REPTILE_BASELINES_NAIVE_TRAINER_H_
