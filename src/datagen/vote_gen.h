// Simulated US presidential county-level vote data (paper Appendices K
// and N).
//
//  * Country-wide panel: 50 states x ~63 counties (3,147 total, as in the
//    paper); each county's 2020 share strongly correlates with its 2016
//    share — the auxiliary feature that makes Linear-f / Multi-level-f win
//    the Figure 16 AIC comparison.
//  * Georgia panel: 159 counties of a swing state with heavy-tailed county
//    sizes; rows are vote blocks so that the state-level MEAN of the measure
//    is the turnout-weighted vote share, making repairs size-aware
//    (Figure 18). A variant injects missing records (halved rows) into a
//    few counties to reproduce Figure 18h/i.

#ifndef REPTILE_DATAGEN_VOTE_GEN_H_
#define REPTILE_DATAGEN_VOTE_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace reptile {

struct VoteCountry {
  Dataset dataset;  // hierarchy geo [state, county]; measure "share2020"
  Table aux2016;    // county -> share2016
};

/// Country-wide panel for the model-quality (AIC) evaluation.
VoteCountry MakeVoteCountry(uint64_t seed = 42);

struct GeorgiaPanel {
  Dataset dataset;          // hierarchy geo [county]; measure "trump_share"
  Dataset dataset_missing;  // same, with missing records injected
  Table aux2016;            // county -> share2016
  std::vector<std::string> missing_counties;  // ground truth of the injection
};

/// Georgia-like swing-state panel for the Figure 18 case study.
GeorgiaPanel MakeGeorgia(uint64_t seed = 42);

}  // namespace reptile

#endif  // REPTILE_DATAGEN_VOTE_GEN_H_
