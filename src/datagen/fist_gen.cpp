#include "datagen/fist_gen.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/check.h"
#include "common/rng.h"

namespace reptile {
namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr int kYears = 36;
constexpr int kVillagesPerDistrict = 9;
constexpr int kReportsPerVillageYear = 8;

// Region 1 (mid rainfall: severities away from both clamps) has exactly 3
// districts so the two-district STD case reproduces the 2-of-3 invariance of
// Appendix M (fixing one of two equally shifted districts out of three
// leaves the variance essentially unchanged).
const int kDistrictsPerRegion[] = {7, 3, 8};

std::string RegionName(int r) { return "R" + std::to_string(r); }
std::string DistrictName(int r, int d) { return RegionName(r) + "_D" + std::to_string(d); }
std::string VillageName(int r, int d, int v) {
  return DistrictName(r, d) + "_V" + std::to_string(v);
}
std::string YearName(int y) { return "Y" + std::to_string(1984 + y); }

// Latent rainfall in mm for a village-year.
double LatentRainfall(int region, int district, int village, int year, Rng* rng) {
  double region_base = 80.0 + 60.0 * region;  // region 0 arid .. region 2 wet
  double cycle = 35.0 * std::sin(2.0 * kPi * (year + 3.0 * district) / 11.0);
  double village_effect = 8.0 * std::sin(0.7 * village + 0.3 * district);
  return std::max(5.0, region_base + cycle + village_effect + rng->Normal(0.0, 10.0));
}

double SeverityFromRainfall(double rainfall, Rng* rng) {
  double raw = 11.0 - rainfall / 22.0 + rng->Normal(0.0, 0.7);
  return std::clamp(raw, 1.0, 10.0);
}

struct RawStudy {
  // Per (village key string, year): report values.
  Table table;
  Table rainfall;
  int region_col, district_col, village_col, year_col, severity_col;
};

RawStudy GenerateClean(Rng* rng) {
  RawStudy raw;
  raw.region_col = raw.table.AddDimensionColumn("region");
  raw.district_col = raw.table.AddDimensionColumn("district");
  raw.village_col = raw.table.AddDimensionColumn("village");
  raw.year_col = raw.table.AddDimensionColumn("year");
  raw.severity_col = raw.table.AddMeasureColumn("severity");

  int rain_village = raw.rainfall.AddDimensionColumn("village");
  int rain_year = raw.rainfall.AddDimensionColumn("year");
  int rain_measure = raw.rainfall.AddMeasureColumn("rainfall");

  for (int r = 0; r < 3; ++r) {
    for (int d = 0; d < kDistrictsPerRegion[r]; ++d) {
      for (int v = 0; v < kVillagesPerDistrict; ++v) {
        for (int y = 0; y < kYears; ++y) {
          double rainfall = LatentRainfall(r, d, v, y, rng);
          // Satellite estimate: the latent field plus sensing noise.
          raw.rainfall.SetDim(rain_village, VillageName(r, d, v));
          raw.rainfall.SetDim(rain_year, YearName(y));
          raw.rainfall.SetMeasure(rain_measure, rainfall + rng->Normal(0.0, 12.0));
          raw.rainfall.CommitRow();
          for (int i = 0; i < kReportsPerVillageYear; ++i) {
            raw.table.SetDim(raw.region_col, RegionName(r));
            raw.table.SetDim(raw.district_col, DistrictName(r, d));
            raw.table.SetDim(raw.village_col, VillageName(r, d, v));
            raw.table.SetDim(raw.year_col, YearName(y));
            raw.table.SetMeasure(raw.severity_col, SeverityFromRainfall(rainfall, rng));
            raw.table.CommitRow();
          }
        }
      }
    }
  }
  return raw;
}

// Corruption helpers operating on the flat report table.
struct Corruptor {
  Table* table;
  int village_col, year_col, severity_col;

  // Applies `fn(row)` to rows of (village, year); returns matched rows.
  std::vector<size_t> Rows(const std::string& village, const std::string& year) const {
    std::vector<size_t> rows;
    std::optional<int32_t> vc = table->dict(village_col).Find(village);
    std::optional<int32_t> yc = table->dict(year_col).Find(year);
    REPTILE_CHECK(vc.has_value() && yc.has_value());
    for (size_t row = 0; row < table->num_rows(); ++row) {
      if (table->dim_codes(village_col)[row] == *vc &&
          table->dim_codes(year_col)[row] == *yc) {
        rows.push_back(row);
      }
    }
    return rows;
  }

  void Drift(const std::string& village, const std::string& year, double delta) const {
    for (size_t row : Rows(village, year)) {
      double& v = table->mutable_measure(severity_col)[row];
      v = std::clamp(v + delta, 1.0, 10.0);
    }
  }

  void InflateStd(const std::string& village, const std::string& year, double delta) const {
    bool up = true;
    for (size_t row : Rows(village, year)) {
      double& v = table->mutable_measure(severity_col)[row];
      v = std::clamp(v + (up ? delta : -delta), 1.0, 10.0);
      up = !up;
    }
  }
};

}  // namespace

FistStudy MakeCleanFist(uint64_t seed) {
  Rng rng(seed);
  RawStudy raw = GenerateClean(&rng);
  FistStudy study;
  study.rainfall = std::move(raw.rainfall);
  study.dataset = Dataset(std::move(raw.table), {{"geo", {"region", "district", "village"}},
                                                 {"time", {"year"}}});
  return study;
}

FistStudy MakeFistStudy(uint64_t seed) {
  Rng rng(seed);
  RawStudy raw = GenerateClean(&rng);
  Table& table = raw.table;
  Corruptor corrupt{&table, raw.village_col, raw.year_col, raw.severity_col};

  FistStudy study;
  std::vector<bool> delete_row(table.num_rows(), false);
  std::vector<std::pair<std::vector<std::string>, double>> duplicate_requests;

  auto filter_for = [&](const std::string& region, const std::string& district,
                        const std::string& year) {
    RowFilter filter;
    filter.Add(raw.region_col, *table.dict(raw.region_col).Find(region));
    if (!district.empty()) {
      filter.Add(raw.district_col, *table.dict(raw.district_col).Find(district));
    }
    filter.Add(raw.year_col, *table.dict(raw.year_col).Find(year));
    return filter;
  };

  int severity = raw.severity_col;
  int case_id = 0;
  auto add_case = [&](const std::string& kind, const Complaint& complaint, int geo_depth,
                      const std::string& expected, bool success) {
    FistComplaintCase c;
    c.name = "P" + std::to_string(1 + case_id % 3) + " #" + std::to_string(case_id + 1) + " " +
             kind;
    ++case_id;
    c.complaint = complaint;
    c.geo_commit_depth = geo_depth;
    c.expected_substr = expected;
    c.expect_success = success;
    study.cases.push_back(std::move(c));
  };

  // --- 20 detectable complaints across error classes. Targets spread over
  // regions/districts/villages/years deterministically. ---
  struct Target {
    int r, d, v, y;
  };
  std::vector<Target> targets;
  for (int i = 0; i < 20; ++i) {
    int r = i % 3;
    // Downward drifts need headroom above the severity floor: the wet
    // region's severities already sit near 1, so assign those cases to the
    // arid regions.
    if (i % 5 == 1) r = i % 2;
    int d = (i * 2 + 1) % kDistrictsPerRegion[r];
    int v = (i * 5 + 2) % kVillagesPerDistrict;
    int y = (i * 7 + 3) % kYears;
    targets.push_back(Target{r, d, v, y});
  }

  for (int i = 0; i < 20; ++i) {
    Target t = targets[static_cast<size_t>(i)];
    std::string region = RegionName(t.r);
    std::string district = DistrictName(t.r, t.d);
    std::string village = VillageName(t.r, t.d, t.v);
    std::string year = YearName(t.y);
    RowFilter filter = filter_for(region, district, year);
    switch (i % 5) {
      case 0: {  // non-drought year reported highly severe
        corrupt.Drift(village, year, +3.5);
        add_case("reported severe (MEAN high)",
                 Complaint::TooHigh(AggFn::kMean, severity, filter), 2,
                 "village=" + village, true);
        break;
      }
      case 1: {  // drought year under-reported
        corrupt.Drift(village, year, -3.5);
        add_case("under-reported (MEAN low)",
                 Complaint::TooLow(AggFn::kMean, severity, filter), 2,
                 "village=" + village, true);
        break;
      }
      case 2: {  // missing reports
        std::vector<size_t> rows = corrupt.Rows(village, year);
        for (size_t k = 0; k < rows.size() - 2; ++k) delete_row[rows[k]] = true;
        add_case("missing reports (COUNT low)",
                 Complaint::TooLow(AggFn::kCount, -1, filter), 2, "village=" + village,
                 true);
        break;
      }
      case 3: {  // duplicated reports (entered twice)
        duplicate_requests.push_back({{region, district, village, year}, 1.0});
        add_case("duplicated reports (COUNT high)",
                 Complaint::TooHigh(AggFn::kCount, -1, filter), 2, "village=" + village,
                 true);
        break;
      }
      default: {  // misremembered events: inflated spread
        corrupt.InflateStd(village, year, 3.0);
        add_case("misremembered (STD high)",
                 Complaint::TooHigh(AggFn::kStd, severity, filter), 2,
                 "village=" + village, true);
        break;
      }
    }
  }

  // --- Failure 1: inherently ambiguous — a drift well below reporting
  // noise; team members disagreed about the cause (Appendix M). ---
  {
    std::string village = VillageName(0, 0, 0);
    std::string year = YearName(20);
    corrupt.Drift(village, year, +0.4);
    add_case("ambiguous (MEAN high, sub-noise)",
             Complaint::TooHigh(AggFn::kMean, severity,
                                filter_for(RegionName(0), DistrictName(0, 0), year)),
             2, "village=" + village, false);
  }

  // --- Failure 2: two of region R1's three districts shifted equally; the
  // STD complaint cannot be resolved by repairing a single district
  // (Appendix M). ---
  {
    // Year 5 is used by no other region-1 case, so the corruptions do not
    // overlap.
    std::string year = YearName(5);
    for (int d : {0, 1}) {
      for (int v = 0; v < kVillagesPerDistrict; ++v) {
        corrupt.Drift(VillageName(1, d, v), year, +3.0);
      }
    }
    add_case("two-district STD (Appendix M)",
             Complaint::TooHigh(AggFn::kStd, severity, filter_for(RegionName(1), "", year)),
             1, "district=" + DistrictName(1, 0), false);
  }

  // Apply deletions and duplications in one pass.
  {
    std::vector<bool> keep(table.num_rows());
    for (size_t row = 0; row < table.num_rows(); ++row) keep[row] = !delete_row[row];
    Table filtered = table.FilteredCopy(keep);
    // Duplications: append copies of every row of the requested groups.
    for (const auto& [names, fraction] : duplicate_requests) {
      (void)fraction;
      int32_t rc = *filtered.dict(raw.region_col).Find(names[0]);
      int32_t dc = *filtered.dict(raw.district_col).Find(names[1]);
      int32_t vc = *filtered.dict(raw.village_col).Find(names[2]);
      int32_t yc = *filtered.dict(raw.year_col).Find(names[3]);
      size_t original_rows = filtered.num_rows();
      for (size_t row = 0; row < original_rows; ++row) {
        if (filtered.dim_codes(raw.village_col)[row] == vc &&
            filtered.dim_codes(raw.year_col)[row] == yc) {
          filtered.SetDimCode(raw.region_col, rc);
          filtered.SetDimCode(raw.district_col, dc);
          filtered.SetDimCode(raw.village_col, vc);
          filtered.SetDimCode(raw.year_col, yc);
          filtered.SetMeasure(raw.severity_col,
                              filtered.measure(raw.severity_col)[row]);
          filtered.CommitRow();
        }
      }
    }
    table = std::move(filtered);
  }

  study.rainfall = std::move(raw.rainfall);
  study.dataset = Dataset(std::move(table), {{"geo", {"region", "district", "village"}},
                                             {"time", {"year"}}});
  return study;
}

}  // namespace reptile
