// Shape-matched clones of the paper's end-to-end datasets (Section 5.1.4).
// Figure 10 measures runtime only ("we arbitrarily pick a sequence of
// drill-down attributes"), so only row counts, hierarchy structure and
// attribute cardinalities matter:
//
//  * Absentee: 179K rows of North Carolina absentee voting; hierarchies
//    county (100), party (6), week (53), gender (3), one attribute each.
//  * COMPAS: 60,843 rows of recidivism scores; time hierarchy
//    year -> month -> day (704 distinct days), plus age range (3), race (6),
//    charge degree (3).

#ifndef REPTILE_DATAGEN_SHAPES_GEN_H_
#define REPTILE_DATAGEN_SHAPES_GEN_H_

#include <cstdint>

#include "data/dataset.h"

namespace reptile {

/// Absentee-shaped dataset; drill order county, party, week, gender.
Dataset MakeAbsenteeShaped(uint64_t seed = 42);

/// COMPAS-shaped dataset; drill order year, month, day, age, race, degree.
Dataset MakeCompasShaped(uint64_t seed = 42);

}  // namespace reptile

#endif  // REPTILE_DATAGEN_SHAPES_GEN_H_
