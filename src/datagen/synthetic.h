// Synthetic performance workloads (paper Section 5.1 default setup): d
// hierarchies of t attributes each, every attribute with w unique values,
// data in BCNF — i.e., each hierarchy is a set of w root-to-leaf chains, and
// the virtual feature matrix is their cross product (w^d rows).

#ifndef REPTILE_DATAGEN_SYNTHETIC_H_
#define REPTILE_DATAGEN_SYNTHETIC_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "factor/decomposed.h"
#include "factor/frep.h"
#include "factor/ftree.h"

namespace reptile {

struct SyntheticOptions {
  int num_hierarchies = 3;
  int attrs_per_hierarchy = 3;
  int64_t cardinality = 1000000;  // w: unique values per attribute
  bool random_branching = false;  // true: random parent assignment per level
  // Fan shape (Appendix F setup): one root path per hierarchy with
  // `cardinality` children at the deepest level, so the per-cluster
  // operators see clusters of size w instead of 1.
  bool fan_leaves = false;
  uint64_t seed = 42;
};

/// Owns the trees, local aggregates and the factorised matrix with one
/// random feature column per attribute (plus the intercept).
struct SyntheticMatrix {
  std::vector<std::unique_ptr<FTree>> trees;  // intercept first
  std::vector<std::unique_ptr<LocalAggregates>> locals;
  FactorizedMatrix fm;

  std::vector<const LocalAggregates*> LocalPtrs() const {
    std::vector<const LocalAggregates*> out;
    for (const auto& l : locals) out.push_back(l.get());
    return out;
  }
};

/// Builds the matrix of the Section 5.1 setup.
SyntheticMatrix MakeSyntheticMatrix(const SyntheticOptions& options);

/// Fact-table form of the chain hierarchies for drill-down experiments
/// (Section 5.1.3): `rows` base rows, each picking one chain per hierarchy
/// uniformly at random; one measure column "m".
Dataset MakeChainDataset(const SyntheticOptions& options, int64_t rows);

}  // namespace reptile

#endif  // REPTILE_DATAGEN_SYNTHETIC_H_
