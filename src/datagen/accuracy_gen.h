// Synthetic accuracy workloads (paper Section 5.2).
//
// One dimension attribute with `num_groups` values; rows per group drawn
// from N(rows_mean, rows_sd); measure values from N(measure_mean,
// measure_sd). One auxiliary table per aggregate statistic (COUNT, MEAN,
// STD) whose measure has a chosen rank correlation (Iman-Conover) with the
// *clean* statistic. Errors: missing/duplicated records (half the group's
// rows) and +-drift of all measure values, individually and in combination
// (Section 5.2.1); the ablation conditions corrupt two groups consistently
// with the complaint and one against it (Section 5.2.3).

#ifndef REPTILE_DATAGEN_ACCURACY_GEN_H_
#define REPTILE_DATAGEN_ACCURACY_GEN_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/complaint.h"
#include "data/dataset.h"

namespace reptile {

/// Error classes of Figure 11 (Dup = duplication, arrows = value drift).
enum class ErrorType {
  kMissing,
  kDup,
  kIncrease,
  kDecrease,
  kMissingDecrease,
  kDupIncrease,
};

std::string ErrorTypeName(ErrorType type);

/// Multi-error conditions of Figure 12.
enum class AblationCondition {
  kMissingPlusDup,        // complaint: COUNT too low
  kDecreasePlusIncrease,  // complaint: MEAN too low
  kAll,                   // complaint: SUM too low
};

std::string AblationConditionName(AblationCondition condition);

struct AccuracyOptions {
  int num_groups = 100;
  double rows_mean = 100.0;
  double rows_sd = 20.0;
  double measure_mean = 100.0;
  double measure_sd = 20.0;
  double drift = 5.0;
};

/// One generated dataset instance with ground truth.
struct AccuracyInstance {
  Dataset dataset;  // hierarchy "dim" = [group]; measure "m"
  Table aux_count;  // group -> measure correlated with clean COUNT
  Table aux_mean;   // ... with clean MEAN
  Table aux_std;    // ... with clean STD
  std::vector<int32_t> true_errors;      // group codes the complaint points at
  std::vector<int32_t> false_positives;  // corrupted against the complaint
  Moments clean_total;
  Complaint complaint;
};

/// Figure 11 instance: a single corrupted group; the complaint targets the
/// clean total of the statistic matching the error class.
AccuracyInstance MakeAccuracyInstance(const AccuracyOptions& options, ErrorType type,
                                      double rho, Rng* rng);

/// Figure 12 instance: two true errors plus one false positive; directional
/// complaint.
AccuracyInstance MakeAblationInstance(const AccuracyOptions& options,
                                      AblationCondition condition, double rho, Rng* rng);

}  // namespace reptile

#endif  // REPTILE_DATAGEN_ACCURACY_GEN_H_
