#include "datagen/covid_gen.h"

#include <cmath>
#include <map>

#include "common/check.h"
#include "common/rng.h"
#include "data/group_by.h"

namespace reptile {
namespace {

constexpr double kPi = 3.14159265358979323846;

struct Location {
  std::string name;
  double scale;    // relative epidemic size
  int sub_units;   // counties / provinces
};

// US states: the issue states plus fillers; California is deliberately the
// county-richest state so the Support baseline has a fixed (wrong) favourite.
std::vector<Location> UsLocations() {
  return {
      {"California", 12.0, 9}, {"Texas", 9.0, 6},        {"NewYork", 8.0, 6},
      {"Washington", 4.0, 4},  {"Arizona", 3.5, 4},      {"Utah", 2.0, 4},
      {"Montana", 0.8, 3},     {"NorthDakota", 0.7, 3},  {"Iowa", 1.5, 4},
      {"Nevada", 1.8, 5},      {"Massachusetts", 3.0, 4}, {"Ohio", 4.5, 5},
      {"Florida", 7.0, 6},     {"Georgia", 4.0, 4},      {"Illinois", 5.0, 5},
      {"Michigan", 3.5, 4},    {"Virginia", 2.8, 4},     {"Colorado", 2.2, 4},
      {"Oregon", 1.6, 3},      {"Kansas", 1.0, 3},       {"Maine", 0.5, 3},
      {"Idaho", 0.6, 3},       {"Wyoming", 0.3, 3},      {"Vermont", 0.25, 3},
      {"Alaska", 0.12, 3},     {"SouthDakota", 0.15, 3}, {"Delaware", 0.1, 3},
      {"RhodeIsland", 0.08, 3},
  };
}

// Countries: Turkey is deliberately the province-richest country (Support's
// fixed favourite) and India/USA the largest by scale.
std::vector<Location> GlobalLocations() {
  return {
      {"India", 15.0, 6},    {"USA", 14.0, 6},      {"Brazil", 10.0, 5},
      {"Turkey", 5.0, 9},    {"Germany", 6.0, 5},   {"France", 6.5, 5},
      {"UK", 6.0, 5},        {"Mexico", 5.5, 5},    {"Canada", 4.0, 6},
      {"Sweden", 1.5, 3},    {"Thailand", 1.0, 3},  {"Kazakhstan", 1.2, 3},
      {"Afghanistan", 0.9, 3}, {"Spain", 5.0, 4},   {"Italy", 5.5, 4},
      {"Poland", 3.0, 4},    {"Ukraine", 2.5, 4},   {"Peru", 2.0, 3},
      {"Chile", 1.8, 3},     {"Japan", 2.2, 4},     {"Iceland", 0.1, 3},
      {"Malta", 0.07, 3},    {"Cyprus", 0.09, 3},   {"Fiji", 0.05, 3},
  };
}

std::string DayName(int day) {
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "d%03d", day);
  return buffer;
}

// Clean per-(location, sub-unit, day) confirmed cases.
double CleanCases(const Location& loc, int sub, int day, Rng* rng) {
  double wave = 40.0 + 30.0 * std::sin(2.0 * kPi * (day + 11.0 * (loc.scale)) / 90.0);
  double weekly = 1.0 + 0.25 * std::sin(2.0 * kPi * day / 7.0);
  double share = 1.0 / (1.0 + sub);  // larger sub-units report more
  double noise = std::max(0.2, rng->Normal(1.0, 0.025));
  return loc.scale * wave * weekly * share * noise + 1.0;
}

}  // namespace

std::string CovidLocationAttr(bool global) { return global ? "country" : "state"; }

Dataset MakeCovidPanel(const CovidPanelConfig& config) {
  Rng rng(config.seed);
  std::vector<Location> locations = config.global ? GlobalLocations() : UsLocations();
  Table table;
  int loc_col = table.AddDimensionColumn(CovidLocationAttr(config.global));
  int sub_col = table.AddDimensionColumn(config.global ? "province" : "county");
  int day_col = table.AddDimensionColumn("day");
  int confirmed = table.AddMeasureColumn("confirmed");
  int deaths = table.AddMeasureColumn("deaths");
  int recovered = config.global ? table.AddMeasureColumn("recovered") : -1;

  for (int day = 0; day < config.days; ++day) {
    for (const Location& loc : locations) {
      for (int sub = 0; sub < loc.sub_units; ++sub) {
        std::string sub_name = loc.name + "_" + std::to_string(sub);
        // Nevada's county 0 is "Eureka" and New York's county 0 is "Albany"
        // so the corresponding issues target nameable sub-units.
        if (!config.global && loc.name == "Nevada" && sub == 0) sub_name = "Eureka";
        if (!config.global && loc.name == "NewYork" && sub == 0) sub_name = "Albany";
        double cases = CleanCases(loc, sub, day, &rng);
        table.SetDim(loc_col, loc.name);
        table.SetDim(sub_col, sub_name);
        table.SetDim(day_col, DayName(day));
        table.SetMeasure(confirmed, cases);
        table.SetMeasure(deaths, cases * std::max(0.0, rng.Normal(0.02, 0.0015)));
        if (recovered >= 0) {
          table.SetMeasure(recovered, cases * std::max(0.0, rng.Normal(0.85, 0.02)));
        }
        table.CommitRow();
      }
    }
  }
  std::string loc_attr = CovidLocationAttr(config.global);
  std::string sub_attr = config.global ? "province" : "county";
  return Dataset(std::move(table),
                 {{"geo", {loc_attr, sub_attr}}, {"time", {"day"}}});
}

Dataset MakeCorruptedPanel(const CovidPanelConfig& config, const CovidIssueSpec& issue) {
  Dataset panel = MakeCovidPanel(config);
  Table& table = panel.mutable_table();
  int loc_col = table.ColumnIndex(CovidLocationAttr(config.global));
  int sub_col = table.ColumnIndex(config.global ? "province" : "county");
  int day_col = table.ColumnIndex("day");
  int measure = table.ColumnIndex(issue.measure);
  std::optional<int32_t> loc_code = table.dict(loc_col).Find(issue.location);
  REPTILE_CHECK(loc_code.has_value()) << "unknown location " << issue.location;
  std::vector<double>& values = table.mutable_measure(measure);
  const std::vector<int32_t>& locs = table.dim_codes(loc_col);
  const std::vector<int32_t>& subs = table.dim_codes(sub_col);
  const std::vector<int32_t>& days = table.dim_codes(day_col);
  auto day_code = [&](int day) {
    std::optional<int32_t> code = table.dict(day_col).Find(DayName(day));
    REPTILE_CHECK(code.has_value());
    return *code;
  };

  switch (issue.kind) {
    case CovidIssueKind::kMissingReports: {
      int32_t d = day_code(issue.day);
      for (size_t r = 0; r < values.size(); ++r) {
        if (locs[r] == *loc_code && days[r] == d) values[r] *= 0.35;
      }
      break;
    }
    case CovidIssueKind::kBacklog: {
      // Three withheld days released as one spike.
      double withheld = 0.0;
      std::vector<int32_t> prior = {day_code(issue.day - 3), day_code(issue.day - 2),
                                    day_code(issue.day - 1)};
      for (size_t r = 0; r < values.size(); ++r) {
        if (locs[r] != *loc_code) continue;
        for (int32_t d : prior) {
          if (days[r] == d) {
            withheld += values[r] * 0.75;
            values[r] *= 0.25;
          }
        }
      }
      int32_t d = day_code(issue.day);
      int64_t spike_rows = 0;
      for (size_t r = 0; r < values.size(); ++r) {
        if (locs[r] == *loc_code && days[r] == d) ++spike_rows;
      }
      for (size_t r = 0; r < values.size(); ++r) {
        if (locs[r] == *loc_code && days[r] == d) {
          values[r] += withheld / static_cast<double>(spike_rows);
        }
      }
      break;
    }
    case CovidIssueKind::kHugeBacklog: {
      // Definition change dumping a retroactive correction of ~10 days'
      // volume onto one day (Turkey, issue 3471): large enough that the
      // location tops every other location's daily total.
      int32_t d = day_code(issue.day);
      double recent = 0.0;
      int32_t recent_days = 0;
      for (int day = issue.day - 7; day < issue.day; ++day) {
        int32_t code = day_code(day);
        for (size_t r = 0; r < values.size(); ++r) {
          if (locs[r] == *loc_code && days[r] == code) recent += values[r];
        }
        ++recent_days;
      }
      double per_day = recent / recent_days;
      int64_t spike_rows = 0;
      for (size_t r = 0; r < values.size(); ++r) {
        if (locs[r] == *loc_code && days[r] == d) ++spike_rows;
      }
      for (size_t r = 0; r < values.size(); ++r) {
        if (locs[r] == *loc_code && days[r] == d) {
          values[r] += 10.0 * per_day / static_cast<double>(spike_rows);
        }
      }
      break;
    }
    case CovidIssueKind::kOverReport: {
      int32_t d = day_code(issue.day);
      for (size_t r = 0; r < values.size(); ++r) {
        if (locs[r] == *loc_code && days[r] == d) values[r] *= 1.7;
      }
      break;
    }
    case CovidIssueKind::kMethodologyChange: {
      // Guidance change: a step applied from the issue day onward; the jump
      // at the issue day is what users notice.
      for (int day = issue.day; day < config.days; ++day) {
        int32_t d = day_code(day);
        for (size_t r = 0; r < values.size(); ++r) {
          if (locs[r] == *loc_code && days[r] == d) values[r] *= 1.6;
        }
      }
      break;
    }
    case CovidIssueKind::kTypo: {
      // One sub-unit gains ~1.5% of the location's daily total: below the
      // day-to-day noise, as in issue 3402.
      int32_t d = day_code(issue.day);
      double total = 0.0;
      for (size_t r = 0; r < values.size(); ++r) {
        if (locs[r] == *loc_code && days[r] == d) total += values[r];
      }
      for (size_t r = 0; r < values.size(); ++r) {
        if (locs[r] == *loc_code && days[r] == d && subs[r] >= 0) {
          values[r] += total * 0.015;
          break;
        }
      }
      break;
    }
    case CovidIssueKind::kMissingSource: {
      // Prevalent error: the whole series is slightly under-reported.
      for (size_t r = 0; r < values.size(); ++r) {
        if (locs[r] == *loc_code) values[r] *= 0.92;
      }
      break;
    }
    case CovidIssueKind::kWrongReportSubtle: {
      // ~1% error in the direction of the complaint: well below the day-to-
      // day noise (issues 3423, 3424).
      int32_t d = day_code(issue.day);
      double factor = issue.direction == ComplaintDirection::kTooHigh ? 1.01 : 0.99;
      for (size_t r = 0; r < values.size(); ++r) {
        if (locs[r] == *loc_code && days[r] == d) values[r] *= factor;
      }
      break;
    }
    case CovidIssueKind::kDayShift: {
      // One sub-unit's day moved to the next day: the location total at the
      // complaint day changes by only that sub-unit's share.
      int32_t d = day_code(issue.day);
      int32_t next = day_code(issue.day + 1);
      // Pick the last (smallest-share) sub-unit and shift 60% of its day.
      int32_t target_sub = -1;
      for (size_t r = 0; r < values.size(); ++r) {
        if (locs[r] == *loc_code && days[r] == d) target_sub = subs[r];
      }
      double moved = 0.0;
      for (size_t r = 0; r < values.size(); ++r) {
        if (locs[r] == *loc_code && days[r] == d && subs[r] == target_sub) {
          moved += values[r] * 0.3;
          values[r] *= 0.7;
        }
      }
      for (size_t r = 0; r < values.size(); ++r) {
        if (locs[r] == *loc_code && days[r] == next && subs[r] == target_sub) {
          values[r] += moved;
          break;
        }
      }
      break;
    }
    case CovidIssueKind::kNullified: {
      int32_t d = day_code(issue.day);
      for (size_t r = 0; r < values.size(); ++r) {
        if (locs[r] == *loc_code && days[r] == d) values[r] = 0.0;
      }
      break;
    }
  }
  return panel;
}

Table MakeCovidLagTable(const Dataset& panel, const std::string& measure, int lag) {
  const Table& table = panel.table();
  bool global = table.FindColumn("country").has_value();
  int loc_col = table.ColumnIndex(CovidLocationAttr(global));
  int day_col = table.ColumnIndex("day");
  GroupByResult groups =
      GroupBy(table, {loc_col, day_col}, table.ColumnIndex(measure));

  // Day codes are assigned in chronological order by the generator, so the
  // lag is a code shift.
  Table out;
  int out_loc = out.AddDimensionColumn(CovidLocationAttr(global));
  int out_day = out.AddDimensionColumn("day");
  int out_measure = out.AddMeasureColumn("lag" + std::to_string(lag));
  for (size_t g = 0; g < groups.num_groups(); ++g) {
    int32_t loc = groups.key(g, 0);
    int32_t day = groups.key(g, 1);
    std::optional<size_t> lagged = groups.Find({loc, day - lag});
    if (!lagged.has_value()) continue;
    out.SetDim(out_loc, table.dict(loc_col).name(loc));
    out.SetDim(out_day, table.dict(day_col).name(day));
    out.SetMeasure(out_measure, groups.stats(*lagged).Mean());
    out.CommitRow();
  }
  return out;
}

std::vector<CovidIssueSpec> UsIssueList() {
  auto issue = [](int id, const std::string& name, const std::string& location,
                  const std::string& measure, CovidIssueKind kind, ComplaintDirection dir,
                  bool prevalent, bool rp, bool st, bool sp) {
    CovidIssueSpec spec;
    spec.id = id;
    spec.name = name;
    spec.location = location;
    spec.measure = measure;
    spec.kind = kind;
    spec.direction = dir;
    spec.prevalent = prevalent;
    spec.paper_reptile_detects = rp;
    spec.paper_sensitivity_detects = st;
    spec.paper_support_detects = sp;
    return spec;
  };
  int next_day = 58;
  auto at_day = [&next_day](CovidIssueSpec spec) {
    spec.day = next_day;
    next_day += 3;
    return spec;
  };
  using K = CovidIssueKind;
  using D = ComplaintDirection;
  return {
      at_day(issue(3572, "Texas confirmed missing reports", "Texas", "confirmed",
            K::kMissingReports, D::kTooLow, false, true, false, false)),
      at_day(issue(3521, "Arizona death methodology altered", "Arizona", "deaths",
            K::kMethodologyChange, D::kTooHigh, false, true, false, false)),
      at_day(issue(3482, "Washington missing reports", "Washington", "confirmed",
            K::kMissingReports, D::kTooLow, false, true, false, false)),
      at_day(issue(3476, "Utah missing source", "Utah", "confirmed", K::kMissingSource,
            D::kTooLow, true, false, false, false)),
      at_day(issue(3468, "New York death missing reports", "NewYork", "deaths",
            K::kMissingReports, D::kTooLow, false, true, false, false)),
      at_day(issue(3466, "Montana missing reports", "Montana", "confirmed", K::kMissingReports,
            D::kTooLow, false, true, false, false)),
      at_day(issue(3456, "North Dakota confirmed backlog", "NorthDakota", "confirmed", K::kBacklog,
            D::kTooHigh, false, true, false, false)),
      at_day(issue(3451, "Iowa death missing reports", "Iowa", "deaths", K::kMissingReports,
            D::kTooLow, false, true, false, false)),
      at_day(issue(3449, "Arizona test over reported", "Arizona", "confirmed", K::kOverReport,
            D::kTooHigh, false, true, false, false)),
      at_day(issue(3448, "Washington death wrongly reported", "Washington", "deaths",
            K::kOverReport, D::kTooHigh, false, true, false, false)),
      at_day(issue(3441, "Albany confirmed day shift", "NewYork", "confirmed", K::kDayShift,
            D::kTooLow, true, false, false, false)),
      at_day(issue(3438, "Ohio confirmed backlog", "Ohio", "confirmed", K::kBacklog, D::kTooHigh,
            false, true, false, false)),
      at_day(issue(3424, "Massachusetts confirmed backlog", "Massachusetts", "confirmed",
            K::kWrongReportSubtle, D::kTooHigh, false, false, false, false)),
      at_day(issue(3416, "Nevada death over reported", "Nevada", "deaths", K::kOverReport,
            D::kTooHigh, false, true, false, false)),
      at_day(issue(3414, "Eureka death over reported", "Nevada", "deaths", K::kOverReport,
            D::kTooHigh, false, true, false, false)),
      at_day(issue(3402, "Washington confirmed typo", "Washington", "confirmed", K::kTypo,
            D::kTooHigh, false, false, false, false)),
  };
}

std::vector<CovidIssueSpec> GlobalIssueList() {
  auto issue = [](int id, const std::string& name, const std::string& location,
                  const std::string& measure, CovidIssueKind kind, ComplaintDirection dir,
                  bool prevalent, bool rp, bool st, bool sp) {
    CovidIssueSpec spec;
    spec.id = id;
    spec.name = name;
    spec.location = location;
    spec.measure = measure;
    spec.kind = kind;
    spec.direction = dir;
    spec.prevalent = prevalent;
    spec.paper_reptile_detects = rp;
    spec.paper_sensitivity_detects = st;
    spec.paper_support_detects = sp;
    return spec;
  };
  int next_day = 61;
  auto at_day = [&next_day](CovidIssueSpec spec) {
    spec.day = next_day;
    next_day += 4;
    return spec;
  };
  using K = CovidIssueKind;
  using D = ComplaintDirection;
  return {
      at_day(issue(3623, "Germany recovered over reported", "Germany", "recovered", K::kOverReport,
            D::kTooHigh, false, true, false, false)),
      at_day(issue(3618, "Quebec death missing source", "Canada", "deaths", K::kMissingSource,
            D::kTooLow, true, false, false, false)),
      at_day(issue(3578, "US recovery nullified", "USA", "recovered", K::kNullified, D::kTooLow,
            false, true, true, false)),
      at_day(issue(3567, "India confirmed missing reports", "India", "confirmed",
            K::kMissingReports, D::kTooLow, false, true, false, false)),
      at_day(issue(3546, "Thailand confirmed missing source", "Thailand", "confirmed",
            K::kMissingSource, D::kTooLow, true, false, false, false)),
      at_day(issue(35381, "Mexico confirmed definition altered", "Mexico", "confirmed",
            K::kMethodologyChange, D::kTooHigh, false, true, false, false)),
      at_day(issue(35382, "Mexico confirmed missing reports", "Mexico", "confirmed",
            K::kMissingReports, D::kTooLow, false, true, false, false)),
      at_day(issue(3518, "Sweden death missing source", "Sweden", "deaths", K::kMissingSource,
            D::kTooLow, true, false, false, false)),
      at_day(issue(3498, "Alberta missing source", "Canada", "confirmed", K::kMissingSource,
            D::kTooLow, true, false, false, false)),
      at_day(issue(3494, "UK death missing reports", "UK", "deaths", K::kMissingReports,
            D::kTooLow, false, true, false, false)),
      at_day(issue(3471, "Turkey confirmed definition altered", "Turkey", "confirmed",
            K::kHugeBacklog, D::kTooHigh, false, true, true, true)),
      at_day(issue(3423, "Afghanistan confirmed wrongly reported", "Afghanistan", "confirmed",
            K::kWrongReportSubtle, D::kTooLow, false, false, false, false)),
      at_day(issue(3413, "France missing reports", "France", "confirmed", K::kMissingReports,
            D::kTooLow, false, true, false, false)),
      at_day(issue(3408, "Kazakhstan confirmed over reported", "Kazakhstan", "confirmed",
            K::kOverReport, D::kTooHigh, false, true, false, false)),
  };
}

}  // namespace reptile
