#include "datagen/synthetic.h"

#include <string>

#include "common/check.h"

namespace reptile {

SyntheticMatrix MakeSyntheticMatrix(const SyntheticOptions& options) {
  Rng rng(options.seed);
  SyntheticMatrix out;
  out.trees.push_back(std::make_unique<FTree>(FTree::Singleton()));
  for (int h = 0; h < options.num_hierarchies; ++h) {
    std::vector<std::vector<int32_t>> paths;
    paths.reserve(static_cast<size_t>(options.cardinality));
    for (int64_t chain = 0; chain < options.cardinality; ++chain) {
      std::vector<int32_t> path(static_cast<size_t>(options.attrs_per_hierarchy));
      for (int l = 0; l < options.attrs_per_hierarchy; ++l) {
        if (options.fan_leaves && l + 1 < options.attrs_per_hierarchy) {
          path[static_cast<size_t>(l)] = 0;  // single shared root path
        } else if (options.random_branching && l + 1 < options.attrs_per_hierarchy) {
          path[static_cast<size_t>(l)] =
              static_cast<int32_t>(rng.UniformInt(0, options.cardinality - 1));
        } else {
          path[static_cast<size_t>(l)] = static_cast<int32_t>(chain);
        }
      }
      paths.push_back(std::move(path));
    }
    out.trees.push_back(
        std::make_unique<FTree>(FTree::FromPaths(std::move(paths), options.attrs_per_hierarchy)));
  }
  for (const auto& tree : out.trees) {
    out.locals.push_back(std::make_unique<LocalAggregates>(tree.get()));
  }
  for (const auto& tree : out.trees) out.fm.AddTree(tree.get());

  // Intercept column plus one random-valued column per attribute.
  FeatureColumn intercept;
  intercept.name = "intercept";
  intercept.attr = AttrId{0, 0};
  intercept.value_map = {1.0};
  out.fm.AddColumn(std::move(intercept));
  for (int k = 1; k < out.fm.num_trees(); ++k) {
    for (int l = 0; l < out.fm.tree(k).depth(); ++l) {
      FeatureColumn col;
      col.name = "f" + std::to_string(k) + "_" + std::to_string(l);
      col.attr = AttrId{k, l};
      col.value_map.resize(static_cast<size_t>(options.cardinality));
      for (double& v : col.value_map) v = rng.Normal(0.0, 1.0);
      out.fm.AddColumn(std::move(col));
    }
  }
  return out;
}

Dataset MakeChainDataset(const SyntheticOptions& options, int64_t rows) {
  Rng rng(options.seed + 1);
  Table table;
  std::vector<HierarchySchema> hierarchies;
  std::vector<std::vector<int>> columns(static_cast<size_t>(options.num_hierarchies));
  for (int h = 0; h < options.num_hierarchies; ++h) {
    HierarchySchema schema;
    schema.name = "H" + std::to_string(h);
    for (int l = 0; l < options.attrs_per_hierarchy; ++l) {
      std::string name = "h" + std::to_string(h) + "_a" + std::to_string(l);
      schema.attributes.push_back(name);
      columns[static_cast<size_t>(h)].push_back(table.AddDimensionColumn(name));
    }
    hierarchies.push_back(std::move(schema));
  }
  int measure = table.AddMeasureColumn("m");

  // Pre-register value names so codes equal chain indices.
  for (int h = 0; h < options.num_hierarchies; ++h) {
    for (int l = 0; l < options.attrs_per_hierarchy; ++l) {
      ValueDict& dict = table.mutable_dict(columns[static_cast<size_t>(h)][static_cast<size_t>(l)]);
      for (int64_t v = 0; v < options.cardinality; ++v) {
        dict.GetOrAdd("v" + std::to_string(v));
      }
    }
  }
  for (int64_t row = 0; row < rows; ++row) {
    for (int h = 0; h < options.num_hierarchies; ++h) {
      int32_t chain = static_cast<int32_t>(rng.UniformInt(0, options.cardinality - 1));
      for (int l = 0; l < options.attrs_per_hierarchy; ++l) {
        table.SetDimCode(columns[static_cast<size_t>(h)][static_cast<size_t>(l)], chain);
      }
    }
    table.SetMeasure(measure, rng.Normal(100.0, 20.0));
    table.CommitRow();
  }
  return Dataset(std::move(table), std::move(hierarchies));
}

}  // namespace reptile
