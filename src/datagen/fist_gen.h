// Simulated FIST drought-survey data and the 22-complaint expert study
// (paper Sections 2.1, 5.4, Appendices K and M).
//
// Farmer-reported drought severity (1-10) per (region, district, village,
// year), driven by a latent rainfall field; a noisy satellite rainfall
// estimate per (village, year) is available as an auxiliary dataset. The
// expert study is reproduced with 22 scripted complaints over injected
// errors of the classes the paper reports (year confusion, misremembered
// severity, non-drought years reported severe, missing/duplicate reports),
// including the two documented failures: an inherently ambiguous complaint
// (error below noise) and the two-district standard-deviation case whose
// single-group repair cannot reduce the STD (Appendix M's parabola
// argument).

#ifndef REPTILE_DATAGEN_FIST_GEN_H_
#define REPTILE_DATAGEN_FIST_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/complaint.h"
#include "data/dataset.h"

namespace reptile {

/// One scripted complaint of the expert study.
struct FistComplaintCase {
  std::string name;
  Complaint complaint;
  int geo_commit_depth = 2;  // committed geo depth before the complaint
                             // (2 = district level -> drill villages)
  std::string expected_substr;  // substring the top group must contain
  bool expect_success = true;   // the paper's 20/22 split
};

struct FistStudy {
  Dataset dataset;  // hierarchies geo [region, district, village], time [year]
  Table rainfall;   // auxiliary: (village, year) -> satellite estimate
  std::vector<FistComplaintCase> cases;
};

/// Builds the corrupted survey panel plus the 22 complaints.
FistStudy MakeFistStudy(uint64_t seed = 42);

/// Clean panel only (used by the Figure 16 model-quality evaluation).
FistStudy MakeCleanFist(uint64_t seed = 42);

}  // namespace reptile

#endif  // REPTILE_DATAGEN_FIST_GEN_H_
