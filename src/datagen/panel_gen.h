// The district x village x year severity panel (the fig08 multi-query
// workload's shape): severity carries additive district and year effects
// plus deterministic LCG noise, under a two-hierarchy schema
// {geo: district > village, time: year}.
//
// One parameterized builder instead of per-file copies: the HTTP loopback
// tests assert byte-equality between a served session and a directly
// constructed one, which silently depends on both being built from
// bit-identical data — a single generator makes that coupling explicit.
// (bench/fig08_multiquery.cpp and tests/parallel_test.cpp predate this
// helper and still carry local copies; they can migrate.)

#ifndef REPTILE_DATAGEN_PANEL_GEN_H_
#define REPTILE_DATAGEN_PANEL_GEN_H_

#include <cstdint>

#include "data/dataset.h"

namespace reptile {

struct PanelSpec {
  int districts = 8;
  int villages_per_district = 6;
  int years = 10;
  int rows_per_group = 4;
  uint64_t seed = 8;
};

/// Deterministic in `spec`: equal specs produce bit-identical datasets.
/// Dimension values are "d3", "d3_v1", "y7"; the measure is "severity".
Dataset MakeSeverityPanel(const PanelSpec& spec = PanelSpec());

}  // namespace reptile

#endif  // REPTILE_DATAGEN_PANEL_GEN_H_
