#include "datagen/shapes_gen.h"

#include <string>

#include "common/rng.h"

namespace reptile {

Dataset MakeAbsenteeShaped(uint64_t seed) {
  Rng rng(seed);
  Table table;
  int county = table.AddDimensionColumn("county");
  int party = table.AddDimensionColumn("party");
  int week = table.AddDimensionColumn("week");
  int gender = table.AddDimensionColumn("gender");
  int value = table.AddMeasureColumn("value");
  // Skewed county sizes and party shares, mirroring real voting data.
  std::vector<double> county_weight(100);
  for (double& w : county_weight) w = rng.Uniform(0.2, 3.0);
  for (int64_t row = 0; row < 179000; ++row) {
    // Weighted county pick via rejection (weights bounded by 3).
    int c;
    for (;;) {
      c = static_cast<int>(rng.UniformInt(0, 99));
      if (rng.Uniform(0.0, 3.0) < county_weight[static_cast<size_t>(c)]) break;
    }
    table.SetDim(county, "county" + std::to_string(c));
    table.SetDim(party, "party" + std::to_string(rng.UniformInt(0, 5)));
    table.SetDim(week, "week" + std::to_string(rng.UniformInt(0, 52)));
    table.SetDim(gender, "gender" + std::to_string(rng.UniformInt(0, 2)));
    table.SetMeasure(value, rng.Normal(50.0, 10.0));
    table.CommitRow();
  }
  return Dataset(std::move(table), {{"county", {"county"}},
                                    {"party", {"party"}},
                                    {"week", {"week"}},
                                    {"gender", {"gender"}}});
}

Dataset MakeCompasShaped(uint64_t seed) {
  Rng rng(seed);
  Table table;
  int year = table.AddDimensionColumn("year");
  int month = table.AddDimensionColumn("month");
  int day = table.AddDimensionColumn("day");
  int age = table.AddDimensionColumn("age_range");
  int race = table.AddDimensionColumn("race");
  int degree = table.AddDimensionColumn("charge_degree");
  int score = table.AddMeasureColumn("score");
  // 704 distinct days spanning ~23 months of two years.
  const int kDays = 704;
  for (int64_t row = 0; row < 60843; ++row) {
    int d = static_cast<int>(rng.UniformInt(0, kDays - 1));
    int m = d / 30;            // ~24 months
    int y = m / 12;            // 2 years
    table.SetDim(year, "y" + std::to_string(2013 + y));
    table.SetDim(month, "y" + std::to_string(2013 + y) + "-m" + std::to_string(m % 12));
    table.SetDim(day, "d" + std::to_string(d));
    table.SetDim(age, "age" + std::to_string(rng.UniformInt(0, 2)));
    table.SetDim(race, "race" + std::to_string(rng.UniformInt(0, 5)));
    table.SetDim(degree, "degree" + std::to_string(rng.UniformInt(0, 2)));
    table.SetMeasure(score, rng.Uniform(1.0, 10.0));
    table.CommitRow();
  }
  return Dataset(std::move(table), {{"time", {"year", "month", "day"}},
                                    {"age", {"age_range"}},
                                    {"race", {"race"}},
                                    {"degree", {"charge_degree"}}});
}

}  // namespace reptile
