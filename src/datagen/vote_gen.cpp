#include "datagen/vote_gen.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace reptile {
namespace {

std::string CountyName(const std::string& state, int c) {
  return state + "_c" + std::to_string(c);
}

}  // namespace

VoteCountry MakeVoteCountry(uint64_t seed) {
  Rng rng(seed);
  VoteCountry out;
  Table table;
  int state_col = table.AddDimensionColumn("state");
  int county_col = table.AddDimensionColumn("county");
  int share_col = table.AddMeasureColumn("share2020");
  int aux_county = out.aux2016.AddDimensionColumn("county");
  int aux_share = out.aux2016.AddMeasureColumn("share2016");

  const int kStates = 50;
  int counties_total = 0;
  for (int s = 0; s < kStates; ++s) {
    std::string state = "state" + std::to_string(s);
    double state_lean = rng.Normal(0.5, 0.12);
    double state_swing = rng.Normal(-0.02, 0.02);
    // 3,147 counties in total: most states get 63, the first ones get extra.
    int counties = 62 + (s < 47 ? 1 : 0);
    for (int c = 0; c < counties; ++c) {
      ++counties_total;
      std::string county = CountyName(state, c);
      double rural = rng.Uniform(-0.15, 0.2);
      double share2016 = std::clamp(state_lean + rural + rng.Normal(0.0, 0.03), 0.03, 0.97);
      double share2020 =
          std::clamp(share2016 + state_swing + rng.Normal(0.0, 0.02), 0.03, 0.97);
      out.aux2016.SetDim(aux_county, county);
      out.aux2016.SetMeasure(aux_share, share2016);
      out.aux2016.CommitRow();
      // A handful of rows per county so the MEAN statistic is the share.
      for (int i = 0; i < 4; ++i) {
        table.SetDim(state_col, state);
        table.SetDim(county_col, county);
        table.SetMeasure(share_col, std::clamp(share2020 + rng.Normal(0.0, 0.005), 0.0, 1.0));
        table.CommitRow();
      }
    }
  }
  (void)counties_total;  // 47*63 + 3*62 = 3147
  out.dataset = Dataset(std::move(table), {{"geo", {"state", "county"}}});
  return out;
}

GeorgiaPanel MakeGeorgia(uint64_t seed) {
  Rng rng(seed);
  GeorgiaPanel out;
  Table table;
  int county_col = table.AddDimensionColumn("county");
  int share_col = table.AddMeasureColumn("trump_share");
  int aux_county = out.aux2016.AddDimensionColumn("county");
  int aux_share = out.aux2016.AddMeasureColumn("share2016");
  int aux_votes = out.aux2016.AddMeasureColumn("votes2016");

  const int kCounties = 159;
  std::vector<int> rows_per_county(kCounties);
  std::vector<double> shares(kCounties);
  for (int c = 0; c < kCounties; ++c) {
    std::string county = "county" + std::to_string(c);
    // Heavy-tailed county sizes: a few metro counties dominate.
    double size = std::exp(rng.Normal(2.2, 1.0));
    int rows = std::max(3, static_cast<int>(size));
    // Small rural counties lean Trump; metros lean Democratic; 2020 swings
    // slightly against Trump in metros.
    double share2016 = std::clamp(0.78 - 0.08 * std::log(size) + rng.Normal(0.0, 0.05),
                                  0.05, 0.95);
    double swing = -0.01 - 0.01 * std::log(size) / 4.0 + rng.Normal(0.0, 0.015);
    double share2020 = std::clamp(share2016 + swing, 0.05, 0.95);
    rows_per_county[static_cast<size_t>(c)] = rows;
    shares[static_cast<size_t>(c)] = share2020;
    out.aux2016.SetDim(aux_county, county);
    out.aux2016.SetMeasure(aux_share, share2016);
    // 2016 turnout in vote blocks: close to 2020 (the count model's size
    // signal, per Appendix N's "total votes compared to 2016").
    out.aux2016.SetMeasure(aux_votes,
                           static_cast<double>(rows) * rng.Uniform(0.92, 1.02));
    out.aux2016.CommitRow();
    for (int i = 0; i < rows; ++i) {
      table.SetDim(county_col, county);
      table.SetMeasure(share_col, share2020);
      table.CommitRow();
    }
  }

  // Missing-records variant (Figure 18h): a few mid-size counties lose half
  // of their vote blocks.
  for (int c = 10; c < kCounties; c += 23) {
    out.missing_counties.push_back("county" + std::to_string(c));
  }
  Table missing = table;  // copy, then drop half the rows of the victims
  {
    std::vector<bool> keep(missing.num_rows(), true);
    for (const std::string& county : out.missing_counties) {
      int32_t code = *missing.dict(county_col).Find(county);
      int64_t seen = 0;
      for (size_t row = 0; row < missing.num_rows(); ++row) {
        if (missing.dim_codes(county_col)[row] == code && (seen++ % 2 == 0)) {
          keep[row] = false;
        }
      }
    }
    missing = missing.FilteredCopy(keep);
  }

  out.dataset = Dataset(std::move(table), {{"geo", {"county"}}});
  out.dataset_missing = Dataset(std::move(missing), {{"geo", {"county"}}});
  return out;
}

}  // namespace reptile
