#include "datagen/panel_gen.h"

#include <string>
#include <utility>

#include "common/check.h"
#include "data/table.h"

namespace reptile {

Dataset MakeSeverityPanel(const PanelSpec& spec) {
  REPTILE_CHECK_GE(spec.districts, 1);
  REPTILE_CHECK_GE(spec.villages_per_district, 1);
  REPTILE_CHECK_GE(spec.years, 1);
  REPTILE_CHECK_GE(spec.rows_per_group, 1);
  Table table;
  int district = table.AddDimensionColumn("district");
  int village = table.AddDimensionColumn("village");
  int year = table.AddDimensionColumn("year");
  int severity = table.AddMeasureColumn("severity");
  uint64_t state = spec.seed;
  auto noise = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(state >> 11) / 9007199254740992.0 - 0.5;
  };
  for (int d = 0; d < spec.districts; ++d) {
    for (int v = 0; v < spec.villages_per_district; ++v) {
      std::string district_name = "d" + std::to_string(d);
      std::string village_name = district_name + "_v" + std::to_string(v);
      for (int y = 0; y < spec.years; ++y) {
        for (int r = 0; r < spec.rows_per_group; ++r) {
          table.SetDim(district, district_name);
          table.SetDim(village, village_name);
          table.SetDim(year, "y" + std::to_string(y));
          table.SetMeasure(severity, 5.0 + 0.4 * d + 0.25 * y + noise());
          table.CommitRow();
        }
      }
    }
  }
  Result<Dataset> dataset = Dataset::Make(
      std::move(table), {{"geo", {"district", "village"}}, {"time", {"year"}}});
  REPTILE_CHECK(dataset.ok()) << dataset.status().ToString();
  return std::move(dataset).value();
}

}  // namespace reptile
