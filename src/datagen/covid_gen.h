// Simulated JHU CSSE COVID-19 datasets and the 30 resolved data issues of
// paper Tables 1-2 (Section 5.3, Appendix L).
//
// The real study corrupts the JHU repository according to issues confirmed
// on GitHub; we reproduce each issue class by construction on simulated
// daily panels with the same ground-truth labelling (which location, which
// day, direction), preserving the code path and the failure modes: prevalent
// errors (an entire mis-scaled series) and sub-noise errors remain
// undetectable by design.
//
//  * US panel: geography [state, county] x time [day]; measures confirmed
//    and deaths. 16 issues.
//  * Global panel: geography [country, province] x time [day]; measures
//    confirmed, deaths and recovered. 14 issues.

#ifndef REPTILE_DATAGEN_COVID_GEN_H_
#define REPTILE_DATAGEN_COVID_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/complaint.h"
#include "data/dataset.h"

namespace reptile {

/// Issue classes appearing in Tables 1-2.
enum class CovidIssueKind {
  kMissingReports,     // a day's reports mostly missing
  kBacklog,            // withheld days totalled into one spike
  kHugeBacklog,        // definition change: months of cases dumped on one day
  kOverReport,         // one day scaled up
  kMethodologyChange,  // step change from the issue day onward
  kTypo,               // tiny one-county error (sub-noise)
  kMissingSource,      // prevalent: whole series mis-scaled
  kWrongReportSubtle,  // tiny one-day error (sub-noise)
  kDayShift,           // one county's day moved to the next day
  kNullified,          // a day zeroed out entirely
};

/// One reproduced GitHub issue.
struct CovidIssueSpec {
  int id = 0;                 // the paper's issue id
  std::string name;           // e.g. "Texas confirmed missing reports"
  std::string location;       // ground-truth state / country
  std::string measure;        // "confirmed", "deaths" or "recovered"
  CovidIssueKind kind = CovidIssueKind::kMissingReports;
  int day = 90;               // complaint day index
  ComplaintDirection direction = ComplaintDirection::kTooLow;
  bool prevalent = false;     // marked with a star in the paper's tables
  bool paper_reptile_detects = false;  // the checkmark in Tables 1-2
  bool paper_sensitivity_detects = false;
  bool paper_support_detects = false;
};

/// The 16 US issues of Table 1.
std::vector<CovidIssueSpec> UsIssueList();

/// The 14 global issues of Table 2.
std::vector<CovidIssueSpec> GlobalIssueList();

struct CovidPanelConfig {
  bool global = false;
  int days = 120;
  uint64_t seed = 42;
};

/// Clean simulated panel.
Dataset MakeCovidPanel(const CovidPanelConfig& config);

/// Panel with one issue injected.
Dataset MakeCorruptedPanel(const CovidPanelConfig& config, const CovidIssueSpec& issue);

/// Location-level lag feature table: (location, day) -> the location's
/// per-county mean of `measure` `lag` days earlier. Registered with the
/// engine as a multi-attribute auxiliary dataset (paper Section 5.3 uses
/// 1-day and 7-day lags).
Table MakeCovidLagTable(const Dataset& panel, const std::string& measure, int lag);

/// The top-level geography attribute name of a panel ("state" or "country").
std::string CovidLocationAttr(bool global);

}  // namespace reptile

#endif  // REPTILE_DATAGEN_COVID_GEN_H_
