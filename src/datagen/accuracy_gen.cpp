#include "datagen/accuracy_gen.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stats.h"

namespace reptile {
namespace {

std::string GroupName(int g) { return "g" + std::to_string(g); }

// Clean per-group raw values.
struct CleanData {
  std::vector<std::vector<double>> values;  // per group
  std::vector<double> counts, means, stds;
};

CleanData MakeCleanData(const AccuracyOptions& options, Rng* rng) {
  CleanData data;
  data.values.resize(static_cast<size_t>(options.num_groups));
  for (int g = 0; g < options.num_groups; ++g) {
    int rows = std::max<int>(4, static_cast<int>(std::lround(
                                    rng->Normal(options.rows_mean, options.rows_sd))));
    std::vector<double>& vs = data.values[static_cast<size_t>(g)];
    vs.resize(static_cast<size_t>(rows));
    for (double& v : vs) v = rng->Normal(options.measure_mean, options.measure_sd);
    data.counts.push_back(static_cast<double>(rows));
    data.means.push_back(Mean(vs));
    data.stds.push_back(SampleStd(vs));
  }
  return data;
}

// Auxiliary table with the given rank correlation to `reference`, using the
// same group names as the base table (so dictionary translation aligns).
Table MakeAuxTable(const std::vector<double>& reference, double rho, Rng* rng) {
  Table aux;
  int group = aux.AddDimensionColumn("group");
  int measure = aux.AddMeasureColumn("aux");
  std::vector<double> values = InduceRankCorrelation(reference, rho, 0.0, 1.0, rng);
  for (size_t g = 0; g < reference.size(); ++g) {
    aux.SetDim(group, GroupName(static_cast<int>(g)));
    aux.SetMeasure(measure, values[g]);
    aux.CommitRow();
  }
  return aux;
}

void ApplyMissing(std::vector<double>* values) {
  values->resize(values->size() - values->size() / 2);
}

void ApplyDup(std::vector<double>* values) {
  size_t half = values->size() / 2;
  values->insert(values->end(), values->begin(),
                 values->begin() + static_cast<ptrdiff_t>(half));
}

void ApplyDrift(std::vector<double>* values, double delta) {
  for (double& v : *values) v += delta;
}

// Assembles the instance from (possibly corrupted) per-group values.
AccuracyInstance Assemble(const AccuracyOptions& options, const CleanData& clean,
                          std::vector<std::vector<double>> corrupted, double rho, Rng* rng) {
  AccuracyInstance inst;
  Table table;
  int group = table.AddDimensionColumn("group");
  int measure = table.AddMeasureColumn("m");
  // Register group names in order so codes equal group indices even if a
  // group lost all of its rows.
  for (int g = 0; g < options.num_groups; ++g) table.mutable_dict(group).GetOrAdd(GroupName(g));
  for (int g = 0; g < options.num_groups; ++g) {
    for (double v : corrupted[static_cast<size_t>(g)]) {
      table.SetDimCode(group, g);
      table.SetMeasure(measure, v);
      table.CommitRow();
    }
  }
  inst.dataset = Dataset(std::move(table), {{"dim", {"group"}}});
  inst.aux_count = MakeAuxTable(clean.counts, rho, rng);
  inst.aux_mean = MakeAuxTable(clean.means, rho, rng);
  inst.aux_std = MakeAuxTable(clean.stds, rho, rng);
  for (int g = 0; g < options.num_groups; ++g) {
    for (double v : clean.values[static_cast<size_t>(g)]) inst.clean_total.Observe(v);
  }
  return inst;
}

}  // namespace

std::string ErrorTypeName(ErrorType type) {
  switch (type) {
    case ErrorType::kMissing:
      return "Missing(COUNT)";
    case ErrorType::kDup:
      return "Dup(COUNT)";
    case ErrorType::kIncrease:
      return "Increase(MEAN)";
    case ErrorType::kDecrease:
      return "Decrease(MEAN)";
    case ErrorType::kMissingDecrease:
      return "Missing+Decrease(SUM)";
    case ErrorType::kDupIncrease:
      return "Dup+Increase(SUM)";
  }
  return "?";
}

std::string AblationConditionName(AblationCondition condition) {
  switch (condition) {
    case AblationCondition::kMissingPlusDup:
      return "Missing+Duplication(COUNT low)";
    case AblationCondition::kDecreasePlusIncrease:
      return "Decrease+Increase(MEAN low)";
    case AblationCondition::kAll:
      return "All(SUM low)";
  }
  return "?";
}

AccuracyInstance MakeAccuracyInstance(const AccuracyOptions& options, ErrorType type,
                                      double rho, Rng* rng) {
  CleanData clean = MakeCleanData(options, rng);
  std::vector<std::vector<double>> corrupted = clean.values;
  int target = static_cast<int>(rng->UniformInt(0, options.num_groups - 1));
  std::vector<double>* tv = &corrupted[static_cast<size_t>(target)];
  AggFn agg = AggFn::kCount;
  switch (type) {
    case ErrorType::kMissing:
      ApplyMissing(tv);
      agg = AggFn::kCount;
      break;
    case ErrorType::kDup:
      ApplyDup(tv);
      agg = AggFn::kCount;
      break;
    case ErrorType::kIncrease:
      ApplyDrift(tv, options.drift);
      agg = AggFn::kMean;
      break;
    case ErrorType::kDecrease:
      ApplyDrift(tv, -options.drift);
      agg = AggFn::kMean;
      break;
    case ErrorType::kMissingDecrease:
      ApplyMissing(tv);
      ApplyDrift(tv, -options.drift);
      agg = AggFn::kSum;
      break;
    case ErrorType::kDupIncrease:
      ApplyDup(tv);
      ApplyDrift(tv, options.drift);
      agg = AggFn::kSum;
      break;
  }
  AccuracyInstance inst = Assemble(options, clean, std::move(corrupted), rho, rng);
  inst.true_errors = {target};
  // The complaint states the clean value of the statistic (fcomp(t) =
  // |t[agg] - v|, Section 3.1).
  int measure_column = agg == AggFn::kCount ? -1 : inst.dataset.table().ColumnIndex("m");
  inst.complaint = Complaint::Equals(agg, measure_column, RowFilter(),
                                     inst.clean_total.Value(agg));
  return inst;
}

AccuracyInstance MakeAblationInstance(const AccuracyOptions& options,
                                      AblationCondition condition, double rho, Rng* rng) {
  CleanData clean = MakeCleanData(options, rng);
  std::vector<std::vector<double>> corrupted = clean.values;
  // Three distinct groups: two true errors, one false positive.
  std::vector<int> picks;
  while (picks.size() < 3) {
    int g = static_cast<int>(rng->UniformInt(0, options.num_groups - 1));
    if (std::find(picks.begin(), picks.end(), g) == picks.end()) picks.push_back(g);
  }
  auto group_values = [&](int i) { return &corrupted[static_cast<size_t>(picks[static_cast<size_t>(i)])]; };
  AggFn agg = AggFn::kCount;
  switch (condition) {
    case AblationCondition::kMissingPlusDup:
      ApplyMissing(group_values(0));
      ApplyMissing(group_values(1));
      ApplyDup(group_values(2));
      agg = AggFn::kCount;
      break;
    case AblationCondition::kDecreasePlusIncrease:
      ApplyDrift(group_values(0), -options.drift);
      ApplyDrift(group_values(1), -options.drift);
      ApplyDrift(group_values(2), options.drift);
      agg = AggFn::kMean;
      break;
    case AblationCondition::kAll:
      ApplyMissing(group_values(0));
      ApplyDrift(group_values(0), -options.drift);
      ApplyMissing(group_values(1));
      ApplyDrift(group_values(1), -options.drift);
      ApplyDup(group_values(2));
      ApplyDrift(group_values(2), options.drift);
      agg = AggFn::kSum;
      break;
  }
  AccuracyInstance inst = Assemble(options, clean, std::move(corrupted), rho, rng);
  inst.true_errors = {picks[0], picks[1]};
  inst.false_positives = {picks[2]};
  // Directional complaint ("COUNT is low", Section 5.2.3) — the direction is
  // what lets Reptile reject the false positive.
  int measure_column = agg == AggFn::kCount ? -1 : inst.dataset.table().ColumnIndex("m");
  inst.complaint = Complaint::TooLow(agg, measure_column, RowFilter());
  return inst;
}

}  // namespace reptile
