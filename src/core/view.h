// Aggregate views and the drill-down operator (paper Section 3.1).
//
// A view V = gamma_{Agb, f(Aagg)}(R) is a group-by over the (filtered) base
// relation; drilldown(V, t, H) appends the next attribute of hierarchy H to
// the group-by and restricts R to the provenance of t. Views are the
// user-facing objects of the exploration loop and the substrate of the
// ranker (the sibling groups that recombine into the repaired complaint
// tuple).

#ifndef REPTILE_CORE_VIEW_H_
#define REPTILE_CORE_VIEW_H_

#include <string>
#include <vector>

#include "agg/aggregates.h"
#include "data/group_by.h"
#include "data/table.h"

namespace reptile {

/// Specification of an aggregate view.
struct ViewSpec {
  std::vector<int> key_columns;  // group-by dimension columns
  int measure_column = -1;       // -1: COUNT only
  RowFilter filter;              // provenance restriction
};

/// A computed view: per-group moment sketches plus their merge.
struct ViewResult {
  GroupByResult groups;
  Moments total;
};

/// Computes a view over the table.
ViewResult ComputeView(const Table& table, const ViewSpec& spec);

/// Renders a group key as "attr=value, ..." using the table dictionaries.
std::string FormatGroupKey(const Table& table, const std::vector<int>& key_columns,
                           const std::vector<int32_t>& key);

}  // namespace reptile

#endif  // REPTILE_CORE_VIEW_H_
