// The Reptile engine (paper Sections 2.1, 3 and 4.5).
//
// An Engine is a per-session object owning the dataset, the feature registry
// (auxiliary datasets, custom and multi-attribute features), and the
// drill-down aggregate caches. Each RecommendDrillDown(complaint) call runs
// the full pipeline of Section 4.5 for every candidate hierarchy:
//
//   1. extend the factorised feature matrix with the candidate's next
//      attribute (candidate hierarchy last in the attribute order),
//   2. recompute that hierarchy's local decomposed aggregates (multi-query
//      plan) and update the others in O(1) via the drill-down cache,
//   3. build the y vector over all parallel groups (empty groups included)
//      and the feature columns for every primitive statistic the complaint
//      decomposes into,
//   4. fit one multi-level model per primitive via EM (factorised backend
//      when all features are single-attribute, dense otherwise),
//   5. repair every group under the complaint tuple with the model's
//      expectations and rank by the repaired complaint value.
//
// The best hierarchy and its top-K groups are returned; CommitDrillDown
// advances the session state.

#ifndef REPTILE_CORE_ENGINE_H_
#define REPTILE_CORE_ENGINE_H_

#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "api/model_spec.h"
#include "api/status.h"
#include "core/complaint.h"
#include "core/ranker.h"
#include "data/dataset.h"
#include "factor/drilldown.h"
#include "model/features.h"
#include "model/multilevel.h"

namespace reptile {

class ThreadPool;              // parallel/thread_pool.h
class SharedFittedModelCache;  // factor/model_cache.h
struct FittedModel;            // factor/model_cache.h
class TraceContext;            // obs/trace.h

/// A registered auxiliary dataset (Section 3.3.2 / Appendix H): joined on one
/// or more hierarchy attributes, exposing one measure as a feature. The
/// engine aligns the auxiliary table's dictionaries with the base table's.
struct AuxiliarySpec {
  std::string name;
  const Table* table = nullptr;          // borrowed; must outlive the engine
  std::vector<std::string> join_attrs;   // hierarchy attribute names
  std::string measure;                   // measure column in the aux table
  bool normalize = true;
};

/// A registered custom feature (Section 3.3.3): q(A, Y) mapping per-value
/// group statistics to feature values.
struct CustomFeatureSpec {
  std::string name;
  std::string attr;  // hierarchy attribute name
  CustomFeatureFn fn;
};

/// Random-effect matrix policy (Section 3.3.4). The paper sets Z = X by
/// default but notes Z "may be tuned to only keep attributes relevant within
/// clusters": with Z = X and small clusters the per-cluster regression can
/// interpolate a corrupted group (high leverage), defeating the repair. The
/// engine therefore defaults to random intercepts — the standard multilevel
/// default (lme / statsmodels) — and offers Z = X as an option; individual
/// features can further be excluded by name.
enum class RandomEffects { kInterceptOnly, kAllFeatures };

struct EngineOptions {
  int top_k = 5;
  // How models are trained: family, backend, EM caps, extra repair
  // primitives, fitted-model-cache opt-out. This single spec subsumes the
  // pre-ModelSpec knobs (EngineOptions::model/backend/em/extra_repair_stats).
  ModelSpec model;
  RandomEffects random_effects = RandomEffects::kInterceptOnly;
  DrillDownState::Mode drill_mode = DrillDownState::Mode::kCacheDynamic;
  // Worker threads for the plan/execute fan-out: 0 = hardware concurrency,
  // 1 = fully sequential (inline, no pool). Recommendations are element-wise
  // identical at every setting; only the timing fields differ.
  int num_threads = 0;
  // When true (the default) and the resolved width equals the machine-wide
  // default, the fan-out runs on the process-wide SharedThreadPool() so many
  // concurrent engines in one process (a server) share one set of workers
  // instead of each spawning hardware_concurrency threads. Set false to keep
  // every pool engine-owned (isolation; e.g. embedding next to another
  // workload). Explicit non-default widths always use an owned pool of
  // exactly that width.
  bool share_pool = true;
};

/// Per-invocation overrides for one RecommendBatch call, distinct from the
/// engine-construction options. Zero-valued (or null) fields inherit
/// EngineOptions.
struct BatchOverrides {
  int num_threads = 0;  // 0 = engine option; 1 = force sequential
  int top_k = 0;        // 0 = engine option
  // Complete per-call ModelSpec: nullptr = engine option. When set it
  // replaces the engine's model configuration wholesale for this call
  // (including extra_repair_stats — the legacy pointer below is ignored).
  // The pointee is borrowed for the duration of the call.
  const ModelSpec* model = nullptr;
  // Deprecated (subsumed by ModelSpec::extra_repair_stats): extra statistics
  // frepair restores for this call only (Appendix N). nullptr = engine
  // option; a pointer to an empty vector toggles extras off. Consulted only
  // when `model` is null. The pointee is borrowed for the call.
  const std::vector<AggFn>* extra_repair_stats = nullptr;
  // Per-request trace (obs/trace.h): when set, RecommendBatch records
  // plan/fit/rank stage spans (the fit span's detail carries the cache
  // hit/miss split) onto it. nullptr = untraced, zero recording overhead.
  // Borrowed for the duration of the call.
  TraceContext* trace = nullptr;
};

/// Batch-level timing: the summed per-task fit durations (what the work
/// cost) next to the end-to-end wall clock (what the caller waited). Under
/// concurrency train_seconds can exceed wall_seconds; summing candidates'
/// wall clocks instead would double-count overlapping tasks.
struct BatchTiming {
  double wall_seconds = 0.0;
  double train_seconds = 0.0;
  // Max realized EM iteration count over every fit the batch consulted —
  // trained this call or served from the shared cache (the cached model
  // stores the count of the call that trained it, so warm and cold batches
  // report the same number). 0 when no multi-level fit was involved.
  int em_iterations_run = 0;
};

/// One recommended drill-down group.
struct GroupRecommendation {
  std::string description;          // "year=1986, village=Zata"
  std::vector<int32_t> key;         // codes over the drill key columns
  Moments observed;
  Moments repaired;
  std::map<AggFn, double> predicted;  // per primitive statistic
  double repaired_complaint_value = 0.0;
  double score = 0.0;
};

/// Result of evaluating one candidate hierarchy.
struct HierarchyRecommendation {
  int hierarchy = -1;
  std::string attribute;          // the newly added (drilled) attribute
  std::vector<int> key_columns;   // table columns the group keys range over
  std::vector<GroupRecommendation> top_groups;
  double best_score = 0.0;
  int64_t model_rows = 0;      // parallel groups (incl. empty)
  int64_t model_clusters = 0;  // multi-level clusters
  // Work actually performed while answering this complaint: the summed
  // durations of the individual model fits this complaint was the first (in
  // batch order) to require; fits served from the batch's model cache
  // contribute 0. Summing per-fit durations keeps the number meaningful when
  // fits run concurrently — it is CPU work, not elapsed time (see
  // BatchTiming for the wall clock). Recommendations are batch/sequential-
  // and thread-count-identical; timings are not.
  double train_seconds = 0.0;
  double total_seconds = 0.0;
};

/// The full recommendation: all candidates plus the arg-min hierarchy.
struct Recommendation {
  std::vector<HierarchyRecommendation> candidates;
  int best_index = -1;

  const HierarchyRecommendation& best() const;
};

/// Work counters for one engine, reset on demand. `models_trained` counts
/// primitive-model fits THIS engine actually performed: a batched invocation
/// trains each shared (hierarchy, measure, primitive) model at most once,
/// and a fit served by the process-shared fitted-model cache — warmed by an
/// earlier call of this session or by another session over the same prepared
/// dataset — counts under `fit_cache_hits` instead. A fully warm call
/// therefore shows models_trained == 0.
struct EngineStats {
  int64_t models_trained = 0;
  int64_t fit_cache_hits = 0;
  int64_t plans_built = 0;
  int64_t complaints_evaluated = 0;
};

/// The engine pipeline is staged so the batched entry point can enter
/// mid-way (Section 4.5 / the LMFAO-style multi-query planning of §5.1.2):
///
///   validate — ValidateComplaint / ValidateModelSpec: user-input checks as
///              Status (no aborts);
///   plan     — per candidate hierarchy, assemble trees / drill-down caches /
///              the factorised layout once, shared by every complaint;
///   execute  — per (measure, primitive) train one model — first consulting
///              the process-shared fitted-model cache (factor/model_cache.h)
///              when the effective ModelSpec allows, so warm sessions skip
///              training entirely and concurrent sessions racing on one key
///              fit once between them — then per complaint rank its sibling
///              groups.
///
/// Within one RecommendBatch call, plan assembly, model fits, and complaint
/// rankings are independent tasks dispatched over a fixed-size worker pool
/// (EngineOptions::num_threads / BatchOverrides::num_threads); every task is
/// single-threaded internally and all inputs it shares (dataset, f-trees,
/// local aggregates, the plan's group statistics) are immutable by the time
/// it runs, so output is deterministic and element-wise identical to the
/// sequential path.
class Engine {
 public:
  /// Borrowing constructor: the engine reads `dataset` (caller keeps it
  /// alive) and owns a private drill-down cache — the pre-registry behavior,
  /// used by benchmarks and tests that drive one engine over one dataset.
  explicit Engine(const Dataset* dataset, EngineOptions options = EngineOptions());

  /// Shared constructor: the engine reads/fills the cross-session caches, so
  /// every engine over the same prepared dataset shares f-trees,
  /// committed-depth aggregates AND fitted primitive models; `owner` keeps
  /// whatever object holds `dataset` and the caches (api/'s PreparedDataset)
  /// alive without core/ depending on the api/ facade. The aggregate cache
  /// is used under the default kCacheDynamic drill mode (the evicting
  /// kStatic/kDynamic modes fall back to a private cache — their eviction is
  /// the point of those policies); the model cache is consulted whenever the
  /// effective ModelSpec has fit_cache on. Either cache may be null.
  ///
  /// Version plumbing (incremental dataset versions, api/registry.h):
  /// `epochs` (borrowed via owner; nullptr = all-1s, the unversioned
  /// default) selects which version's entries this engine addresses in the
  /// shared aggregate cache, and `version_token` (empty for v1) is appended
  /// to every fitted-model cache key — an appended version's group
  /// statistics include the new rows, so its fits must never collide with
  /// its ancestors' in the shared cache the whole chain reads.
  Engine(const Dataset* dataset, SharedAggregateCache* shared_cache,
         SharedFittedModelCache* model_cache, std::shared_ptr<const void> owner,
         EngineOptions options = EngineOptions(),
         const AggregateEpochs* epochs = nullptr,
         std::string version_token = std::string());

  ~Engine();

  /// Registers an auxiliary dataset; its features apply automatically once
  /// every join attribute is part of the drill-down (Section 3.3.2).
  void RegisterAuxiliary(AuxiliarySpec spec);

  /// Registers a custom featurizer for one attribute.
  void RegisterCustomFeature(CustomFeatureSpec spec);

  /// Excludes a feature (by name) from the random-effect matrix Z
  /// (Section 3.3.4). Attribute main-effect features carry their attribute's
  /// name; auxiliary/custom features carry their spec name.
  void ExcludeFromRandomEffects(const std::string& feature_name);

  /// Validate stage: checks a pre-built complaint's column indices and codes
  /// against the dataset (delegates to core/complaint's ValidateComplaint —
  /// name-based construction via ResolveComplaint validates implicitly).
  Status ValidateComplaint(const Complaint& complaint) const;

  /// Validate stage, model half: the spec's own range checks plus
  /// feature-dependent constraints — forcing the factorised backend while a
  /// multi-attribute auxiliary is registered would abort at fit time, so it
  /// is rejected here as Status instead.
  Status ValidateModelSpec(const ModelSpec& spec) const;

  /// The ModelSpec a call with `overrides` would actually run: the per-call
  /// spec (or the engine option) with the legacy extra-repair-stats override
  /// folded in, kAuto canonicalized to the backend it will pick when that
  /// is statically known (every feature single-attribute — always true
  /// without multi-attribute auxiliaries), and RandomPolicy::kDefault
  /// resolved to the engine-level policy (EngineOptions::random_effects).
  /// This is both the response echo and the fitted-model cache-key spec, so
  /// what clients see is what keyed the cache.
  ModelSpec EffectiveModelSpec(const BatchOverrides& overrides = {}) const;

  /// Evaluates every drillable hierarchy and returns the ranked groups.
  Recommendation RecommendDrillDown(const Complaint& complaint);

  /// Batched entry point: plans all complaints over one pass of the
  /// drill-down caches. Complaints that share a hierarchy extension reuse the
  /// feature-matrix extension and the trained primitive models. Per-hierarchy
  /// plan assembly, per-(hierarchy, measure, primitive) model fits, and
  /// per-complaint ranking fan out across a fixed-size worker pool (the
  /// num_threads knob; each individual fit stays single-threaded) and results
  /// are merged in complaint order, so the recommendations are element-wise
  /// identical to N sequential RecommendDrillDown calls at any thread count
  /// (timing fields reflect the shared work). The engine itself is not
  /// thread-safe: callers issue one batch at a time; concurrency is internal.
  std::vector<Recommendation> RecommendBatch(std::span<const Complaint> complaints,
                                             const BatchOverrides& overrides = {},
                                             BatchTiming* timing = nullptr);

  /// Commits the drill-down on `hierarchy` (advances the session state).
  void CommitDrillDown(int hierarchy);

  int drill_depth(int hierarchy) const { return drill_state_.depth(hierarchy); }
  bool CanDrill(int hierarchy) const { return drill_state_.CanDrill(hierarchy); }
  const Dataset& dataset() const { return *dataset_; }
  DrillDownState& drill_state() { return drill_state_; }
  const EngineOptions& options() const { return options_; }
  const EngineStats& stats() const { return stats_; }
  /// Aggregate (f-tree + locals) builds THIS engine performed; an engine
  /// warmed by its handle's shared cache performs zero.
  int64_t aggregate_builds() const { return drill_state_.total_builds(); }
  void ResetStats() {
    stats_ = EngineStats();
    drill_state_.ResetStats();  // keep aggregate_builds() consistent with stats()
  }

 private:
  struct CandidatePlan;  // defined in engine.cpp

  /// Plan stage: assembles the shared per-hierarchy context (trees, caches,
  /// factorised layout) for drilling `hierarchy` one level deeper. Reads the
  /// drill-down cache only (entries are prefetched by RecommendBatch), so
  /// plans for different hierarchies assemble concurrently.
  std::unique_ptr<CandidatePlan> BuildCandidatePlan(int hierarchy) const;

  /// Execute stage, model half: fits one primitive statistic over one
  /// measure column against the plan's shared context, the way `spec` says.
  /// Const — reads the plan's group statistics, returns the fit; the caller
  /// owns caching (per-invocation plan map and/or the shared model cache).
  FittedModel FitPrimitive(const CandidatePlan& plan, int measure_column, AggFn primitive,
                           const ModelSpec& spec) const;

  /// Shared fitted-model cache key for one (plan, measure, primitive) fit
  /// under `spec`: the feature-registration token, random-effect policy,
  /// canonical spec, every hierarchy's committed depth, and the fit
  /// coordinates. Everything a fitted model is a function of, given the
  /// immutable prepared dataset.
  std::string FitCacheKey(const ModelSpec& spec, int hierarchy, int measure_column,
                          AggFn primitive) const;

  /// Re-partitions this engine's future fitted-model cache keys; called by
  /// every feature-registration mutator (auxiliaries, custom features,
  /// random-effect exclusions). Models fitted under a different feature set
  /// are never reused; engines whose registrations are value-equal land in
  /// the same partition (see feature_token_ below).
  void BumpFeatureToken();

  /// Execute stage, ranking half: scores one complaint's sibling groups
  /// against the plan's trained models (all fits are already in the plan).
  /// `extra_stats` is the batch-effective extra-repair list (per-call
  /// override or the engine option); `charged_train_seconds` / `charge_build`
  /// carry the deterministic cost attribution computed by RecommendBatch.
  HierarchyRecommendation ExecuteComplaint(const CandidatePlan& plan,
                                           const Complaint& complaint, int top_k,
                                           const std::vector<AggFn>& extra_stats,
                                           double charged_train_seconds,
                                           bool charge_build) const;

  /// The worker pool for one batch: nullptr when num_threads resolves to 1;
  /// the process-wide SharedThreadPool() when share_pool is on and the width
  /// is the machine default; otherwise an owned pool of that width, created
  /// once and reused by every later batch requesting the same width (no
  /// churn when per-call widths vary).
  ThreadPool* PoolFor(int num_threads);

  std::shared_ptr<const void> owner_;  // may be null; keeps dataset_ alive
  const Dataset* dataset_;
  SharedFittedModelCache* model_cache_;  // borrowed via owner_; may be null
  EngineOptions options_;
  DrillDownState drill_state_;
  // Fitted-model cache key partition for this engine's feature
  // registrations: empty = the shareable default feature set (no
  // auxiliaries, custom features or Z exclusions); "h:<hash>" = a content
  // hash of the registered auxiliaries and Z exclusions, so sessions with
  // equal registrations share models — across processes too, which is what
  // lets snapshots persist these partitions; "#<epoch>" = a process-unique
  // fallback for custom features (opaque std::functions have no content
  // identity), never shared and never persisted.
  std::string feature_token_;
  // Dataset-version component of every fitted-model cache key ("" for v1 —
  // legacy keys and persisted snapshots stay valid); see the shared ctor.
  std::string version_token_;
  std::vector<AuxiliarySpec> auxiliaries_;
  std::vector<CustomFeatureSpec> custom_features_;
  std::vector<std::string> z_exclusions_;
  EngineStats stats_;
  std::map<int, std::unique_ptr<ThreadPool>> pools_;  // by width; see PoolFor
};

}  // namespace reptile

#endif  // REPTILE_CORE_ENGINE_H_
