#include "core/repair.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace reptile {

std::vector<AggFn> RequiredPrimitives(AggFn agg) {
  switch (agg) {
    case AggFn::kCount:
      return {AggFn::kCount};
    case AggFn::kMean:
      return {AggFn::kMean};
    case AggFn::kSum:
      return {AggFn::kCount, AggFn::kMean};
    case AggFn::kStd:
    case AggFn::kVar:
      // A parent's STD recombines from every child's (count, mean, std)
      // triple, and anomalous STDs are usually driven by a group's mean
      // diverging from its siblings (Figure 1: repairing Zata's mean is
      // what resolves Ofla's STD complaint). frepair therefore restores the
      // full expected tuple.
      return {AggFn::kCount, AggFn::kMean, AggFn::kStd};
  }
  return {};
}

Moments ApplyRepair(const Moments& observed, const std::map<AggFn, double>& predicted) {
  double count = observed.count;
  double mean = observed.Mean();
  double std = observed.SampleStd();
  for (const auto& [fn, value] : predicted) {
    switch (fn) {
      case AggFn::kCount:
        count = std::max(0.0, value);
        break;
      case AggFn::kMean:
        mean = value;
        break;
      case AggFn::kStd:
        std = std::max(0.0, value);
        break;
      case AggFn::kVar:
        std = std::sqrt(std::max(0.0, value));
        break;
      case AggFn::kSum:
        // SUM is never predicted directly; it decomposes into COUNT and MEAN.
        REPTILE_CHECK(false) << "SUM must be repaired via COUNT and MEAN";
        break;
    }
  }
  return Moments::FromStats(count, mean, std);
}

}  // namespace reptile
