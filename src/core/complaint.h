// User complaints (paper Section 3.1).
//
// A complaint is a function fcomp over the complained tuple's aggregate value
// that the user wants minimised: "too high" (minimise the value), "too low"
// (maximise it, i.e. minimise its negation), or "should equal v" (minimise
// |value - v|). The complaint tuple tc is identified by a conjunctive filter
// over already-drilled attributes.

#ifndef REPTILE_CORE_COMPLAINT_H_
#define REPTILE_CORE_COMPLAINT_H_

#include <string>
#include <vector>

#include "agg/aggregates.h"
#include "api/status.h"
#include "data/dataset.h"
#include "data/table.h"

namespace reptile {

/// Direction of the complaint.
enum class ComplaintDirection {
  kTooHigh,  // the aggregate should be lower
  kTooLow,   // the aggregate should be higher
  kEquals,   // the aggregate should equal `target`
};

/// A complaint about one tuple of the current aggregate view.
struct Complaint {
  /// The complained statistic (COUNT, SUM, MEAN, STD).
  AggFn agg = AggFn::kCount;

  /// Table measure column the statistic is over (-1 for pure COUNT).
  int measure_column = -1;

  /// Coordinates of the complaint tuple tc: equality predicates over
  /// dimension columns (the drill-down path plus the tuple's own key).
  RowFilter filter;

  ComplaintDirection direction = ComplaintDirection::kTooHigh;

  /// Expected value for kEquals.
  double target = 0.0;

  /// fcomp: the value the system minimises.
  double Score(double value) const;

  /// Human-readable description for logs and example output.
  std::string Describe() const;

  // Convenience constructors.
  static Complaint TooHigh(AggFn agg, int measure_column, RowFilter filter);
  static Complaint TooLow(AggFn agg, int measure_column, RowFilter filter);
  static Complaint Equals(AggFn agg, int measure_column, RowFilter filter, double target);
};

/// One equality predicate over a dimension column, by name. The name-based
/// counterpart of a RowFilter entry.
struct NamedPredicate {
  std::string column;
  std::string value;
};

/// Validates a resolved complaint against the table: the measure column must
/// be a measure (or -1, allowed for COUNT only), filter columns must be
/// in-range dimension columns with in-range codes, and an EQUALS target must
/// be finite. The single source of truth for complaint validation — used by
/// ResolveComplaint after name resolution and by the engine's validate stage
/// for pre-built complaints.
Status ValidateComplaint(const Table& table, const Complaint& complaint);

/// Builds a Complaint from names: the aggregate name must parse, the measure
/// and predicate columns/values must exist (NotFound otherwise), and the
/// result must pass ValidateComplaint. All failures come back as a non-OK
/// Status; nothing aborts.
Result<Complaint> ResolveComplaint(const Dataset& dataset, const std::string& aggregate,
                                   const std::string& measure,
                                   const std::vector<NamedPredicate>& where,
                                   ComplaintDirection direction, double target);

}  // namespace reptile

#endif  // REPTILE_CORE_COMPLAINT_H_
