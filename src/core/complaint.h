// User complaints (paper Section 3.1).
//
// A complaint is a function fcomp over the complained tuple's aggregate value
// that the user wants minimised: "too high" (minimise the value), "too low"
// (maximise it, i.e. minimise its negation), or "should equal v" (minimise
// |value - v|). The complaint tuple tc is identified by a conjunctive filter
// over already-drilled attributes.

#ifndef REPTILE_CORE_COMPLAINT_H_
#define REPTILE_CORE_COMPLAINT_H_

#include <string>

#include "agg/aggregates.h"
#include "data/table.h"

namespace reptile {

/// Direction of the complaint.
enum class ComplaintDirection {
  kTooHigh,  // the aggregate should be lower
  kTooLow,   // the aggregate should be higher
  kEquals,   // the aggregate should equal `target`
};

/// A complaint about one tuple of the current aggregate view.
struct Complaint {
  /// The complained statistic (COUNT, SUM, MEAN, STD).
  AggFn agg = AggFn::kCount;

  /// Table measure column the statistic is over (-1 for pure COUNT).
  int measure_column = -1;

  /// Coordinates of the complaint tuple tc: equality predicates over
  /// dimension columns (the drill-down path plus the tuple's own key).
  RowFilter filter;

  ComplaintDirection direction = ComplaintDirection::kTooHigh;

  /// Expected value for kEquals.
  double target = 0.0;

  /// fcomp: the value the system minimises.
  double Score(double value) const;

  /// Human-readable description for logs and example output.
  std::string Describe() const;

  // Convenience constructors.
  static Complaint TooHigh(AggFn agg, int measure_column, RowFilter filter);
  static Complaint TooLow(AggFn agg, int measure_column, RowFilter filter);
  static Complaint Equals(AggFn agg, int measure_column, RowFilter filter, double target);
};

}  // namespace reptile

#endif  // REPTILE_CORE_COMPLAINT_H_
