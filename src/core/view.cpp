#include "core/view.h"

#include <sstream>

namespace reptile {

ViewResult ComputeView(const Table& table, const ViewSpec& spec) {
  ViewResult result;
  result.groups = GroupBy(table, spec.key_columns, spec.measure_column, spec.filter);
  for (size_t g = 0; g < result.groups.num_groups(); ++g) {
    result.total.Add(result.groups.stats(g));
  }
  return result;
}

std::string FormatGroupKey(const Table& table, const std::vector<int>& key_columns,
                           const std::vector<int32_t>& key) {
  std::ostringstream os;
  for (size_t k = 0; k < key_columns.size(); ++k) {
    if (k > 0) os << ", ";
    os << table.column_name(key_columns[k]) << "=" << table.dict(key_columns[k]).name(key[k]);
  }
  return os.str();
}

}  // namespace reptile
